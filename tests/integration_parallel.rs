//! Parallel-executor equivalence: `run_par(k)` / `run_batch(.., k)` must
//! return byte-identical result sets and identical per-query and
//! aggregate statistics to sequential execution — for every organization
//! model and every window technique — and the parallel join must produce
//! exactly the sequential join's pairs.

use spatialdb::geom::{Point, Polyline, Rect};
use spatialdb::storage::{OrganizationKind, QueryStats, WindowTechnique};
use spatialdb::{DbOptions, IoStats, SpatialDatabase, Workspace};

const ALL_KINDS: [OrganizationKind; 3] = [
    OrganizationKind::Secondary,
    OrganizationKind::Primary,
    OrganizationKind::Cluster,
];

const ALL_TECHNIQUES: [WindowTechnique; 4] = [
    WindowTechnique::Complete,
    WindowTechnique::Threshold,
    WindowTechnique::Slm,
    WindowTechnique::PageByPage,
];

/// A 10k-object street-like map on the unit square, deterministic.
fn load(ws: &Workspace, kind: OrganizationKind, n: u64) -> SpatialDatabase {
    let mut db = ws.create_database(DbOptions::new(kind));
    let side = (n as f64).sqrt().ceil() as u64;
    for i in 0..n {
        let x = (i % side) as f64 / side as f64;
        let y = (i / side) as f64 / side as f64;
        db.insert(
            i,
            Polyline::new(vec![
                Point::new(x, y),
                Point::new(x + 0.6 / side as f64, y + 0.3 / side as f64),
                Point::new(x + 1.2 / side as f64, y),
            ]),
        );
    }
    db.finish_loading();
    db
}

fn windows() -> Vec<Rect> {
    vec![
        Rect::new(0.0, 0.0, 0.3, 0.3),
        Rect::new(0.2, 0.2, 0.6, 0.5),
        Rect::new(0.5, 0.1, 0.9, 0.4),
        Rect::new(0.05, 0.55, 0.45, 0.95),
        Rect::new(0.45, 0.45, 0.55, 0.55),
        Rect::new(-1.0, -1.0, 2.0, 2.0),
    ]
}

/// The acceptance matrix: 3 organizations × 4 window techniques on a
/// 10k-object database; `run_par(8)` and `run_batch(.., 8)` must match
/// sequential execution exactly (ids, per-query stats, aggregates).
#[test]
fn run_par_matches_sequential_all_orgs_and_techniques() {
    const N: u64 = 10_000;
    for kind in ALL_KINDS {
        let ws = Workspace::new(512);
        let mut db = load(&ws, kind, N);
        assert_eq!(db.len(), N as usize);
        for technique in ALL_TECHNIQUES {
            // Sequential reference, from a cold object buffer.
            db.store_mut().begin_query();
            let mut seq_ids: Vec<Vec<u64>> = Vec::new();
            let mut seq_stats: Vec<QueryStats> = Vec::new();
            let mut seq_agg = QueryStats::default();
            let mut seq_io = IoStats::new();
            for w in windows() {
                let cursor = db.query().window(w).technique(technique).run();
                seq_stats.push(cursor.stats());
                seq_agg.accumulate(&cursor.stats());
                seq_io = seq_io.plus(&cursor.io_stats());
                seq_ids.push(cursor.ids());
            }
            // Parallel batch from the same cold start.
            db.store_mut().begin_query();
            let batch = ws.run_batch(
                windows()
                    .into_iter()
                    .map(|w| db.query().window(w).technique(technique))
                    .collect(),
                8,
            );
            assert_eq!(batch.len(), seq_ids.len());
            for (i, outcome) in batch.outcomes().iter().enumerate() {
                assert_eq!(outcome.ids(), &seq_ids[i][..], "{kind:?}/{technique:?}/{i}");
                assert_eq!(outcome.stats(), seq_stats[i], "{kind:?}/{technique:?}/{i}");
            }
            assert_eq!(batch.aggregate_stats(), seq_agg, "{kind:?}/{technique:?}");
            assert_eq!(batch.aggregate_io(), seq_io, "{kind:?}/{technique:?}");
            // Single-query run_par(8): same result set and stats as the
            // sequential cursor, for each window in isolation.
            for (i, w) in windows().into_iter().enumerate() {
                db.store_mut().begin_query();
                let outcome = db.query().window(w).technique(technique).run_par(8);
                db.store_mut().begin_query();
                let cursor = db.query().window(w).technique(technique).run();
                assert_eq!(
                    outcome.stats(),
                    cursor.stats(),
                    "{kind:?}/{technique:?}/{i}"
                );
                assert_eq!(
                    outcome.into_ids(),
                    cursor.ids(),
                    "{kind:?}/{technique:?}/{i}"
                );
            }
        }
    }
}

/// Mixed window + point batches, including the in-memory baseline.
#[test]
fn mixed_batch_matches_sequential() {
    let ws = Workspace::new(256);
    let mut db = load(&ws, OrganizationKind::Cluster, 2_000);
    let points: Vec<Point> = (0..40)
        .map(|i| Point::new((i % 8) as f64 / 8.0, (i / 8) as f64 / 5.0))
        .collect();
    db.store_mut().begin_query();
    let mut seq: Vec<(Vec<u64>, QueryStats)> = Vec::new();
    for w in windows() {
        let c = db.query().window(w).run();
        let s = c.stats();
        seq.push((c.ids(), s));
    }
    for p in &points {
        let c = db.query().point(*p).run();
        let s = c.stats();
        seq.push((c.ids(), s));
    }
    db.store_mut().begin_query();
    let mut queries = Vec::new();
    for w in windows() {
        queries.push(db.query().window(w));
    }
    for p in &points {
        queries.push(db.query().point(*p));
    }
    let batch = ws.run_batch(queries, 8);
    assert_eq!(batch.len(), seq.len());
    for (outcome, (ids, stats)) in batch.outcomes().iter().zip(&seq) {
        assert_eq!(outcome.ids(), &ids[..]);
        assert_eq!(outcome.stats(), *stats);
    }
}

/// Truly concurrent reads: many threads querying one database through
/// `&SpatialDatabase` (the `Send + Sync` read path) still produce exact
/// results, and each thread's per-query stats delta stays self-consistent
/// despite interleaved charges on the shared disk.
#[test]
fn concurrent_reads_are_exact() {
    let ws = Workspace::new(512);
    let mut db = load(&ws, OrganizationKind::Cluster, 2_000);
    db.store_mut().begin_query();
    let expected: Vec<Vec<u64>> = windows()
        .into_iter()
        .map(|w| db.query().window(w).run().ids())
        .collect();
    db.store_mut().begin_query();
    let db = &db;
    let global_before = db.store().disk().stats();
    // Every thread reports the sum of its per-query io_ms deltas. The
    // deltas are taken against the thread-local tally, so each disk
    // request lands in exactly *one* query's delta: the reported sums
    // must conserve — add up to the global counter growth — under any
    // scheduling. (With the pre-refactor global-counter deltas, each
    // query would also absorb the other threads' concurrent charges and
    // the sum would come out a multiple of the actual I/O.)
    let reported: f64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let expected = &expected;
                scope.spawn(move || {
                    let mut my_ms = 0.0;
                    for (i, w) in windows().into_iter().enumerate() {
                        let cursor = db.query().window(w).run();
                        my_ms += cursor.stats().io_ms;
                        assert_eq!(cursor.ids(), expected[i]);
                    }
                    my_ms
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let global = db.store().disk().stats().since(&global_before);
    assert!(
        (reported - global.io_ms).abs() < 1e-6,
        "threads reported {reported} ms but the disk recorded {} ms",
        global.io_ms
    );
}

/// `run_batch` on a workspace rejects queries that belong to another
/// workspace's disk — the determinism contract is per-workspace.
#[test]
#[should_panic(expected = "another workspace")]
fn run_batch_rejects_foreign_workspace_queries() {
    let ws_a = Workspace::new(64);
    let ws_b = Workspace::new(64);
    let db_b = load(&ws_b, OrganizationKind::Cluster, 50);
    let _ = ws_a.run_batch(vec![db_b.query().window(Rect::new(0.0, 0.0, 1.0, 1.0))], 2);
}

/// The parallel join returns exactly the sequential join's refined
/// pairs (and candidate count) at every thread count.
#[test]
fn parallel_join_matches_sequential() {
    fn build_pair(ws: &Workspace) -> (SpatialDatabase, SpatialDatabase) {
        let mut a = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
        let mut b = ws.create_database(DbOptions::new(OrganizationKind::Secondary));
        for i in 0..1_500u64 {
            let x = (i % 40) as f64 / 40.0;
            let y = (i / 40) as f64 / 40.0;
            a.insert(
                i,
                Polyline::new(vec![Point::new(x, y), Point::new(x + 0.03, y + 0.02)]),
            );
            b.insert(
                i,
                Polyline::new(vec![
                    Point::new(x + 0.015, y + 0.02),
                    Point::new(x + 0.045, y),
                ]),
            );
        }
        a.finish_loading();
        b.finish_loading();
        (a, b)
    }
    let ws = Workspace::new(1024);
    let (a, b) = build_pair(&ws);
    let seq_cursor = a.join(&b).run();
    let seq_stats = seq_cursor.stats();
    let seq_pairs = seq_cursor.pairs();
    assert!(!seq_pairs.is_empty());
    for threads in [1, 2, 8] {
        // Fresh identical workspace so buffer state cannot leak between
        // the runs being compared.
        let ws2 = Workspace::new(1024);
        let (a2, b2) = build_pair(&ws2);
        let par_cursor = a2.join(&b2).run_par(threads);
        let par_stats = par_cursor.stats();
        assert_eq!(par_stats.mbr_pairs, seq_stats.mbr_pairs, "{threads}");
        assert_eq!(par_stats.exact_test_ms, seq_stats.exact_test_ms);
        assert_eq!(par_cursor.pairs(), seq_pairs, "{threads} threads");
        // Determinism of the merged stats for a fixed thread count.
        let ws3 = Workspace::new(1024);
        let (a3, b3) = build_pair(&ws3);
        let again = a3.join(&b3).run_par(threads).stats();
        assert_eq!(again.mbr_join_ms, par_stats.mbr_join_ms, "{threads}");
        assert_eq!(again.transfer_ms, par_stats.transfer_ms, "{threads}");
    }
}

/// Batches may span several databases of one workspace.
#[test]
fn batch_spans_multiple_databases() {
    let ws = Workspace::new(512);
    let streets = load(&ws, OrganizationKind::Cluster, 1_000);
    let rivers = load(&ws, OrganizationKind::Secondary, 1_000);
    let w = Rect::new(0.1, 0.1, 0.6, 0.6);
    let batch = ws.run_batch(vec![streets.query().window(w), rivers.query().window(w)], 2);
    assert_eq!(batch.len(), 2);
    assert_eq!(batch.outcomes()[0].ids(), batch.outcomes()[1].ids());
}

//! Integration tests of the declustered disk array end-to-end through
//! the storage backends and the timed executor: the one-arm identity
//! matrix (any stripe policy on a single arm is byte-identical to the
//! single-arm path for every organization × window technique), charge
//! conservation under multi-arm replay, per-arm accounting, and the
//! makespan effect of declustering a batch across databases.
//!
//! The array-level anchors (partition properties, parallel drain order,
//! one-arm equivalence of `DiskArray` itself) are asserted inside
//! `spatialdb-disk`; these tests pin the same contract through
//! `Workspace::run_batch` under a timed [`ExecPlan`].

use spatialdb::data::workload::WindowQuerySet;
use spatialdb::data::{DataSet, GeometryMode, MapId, SeriesId, SpatialMap};
use spatialdb::storage::WindowTechnique;
use spatialdb::{
    ArmPolicy, Arrival, DbOptions, EngineConfig, ExecPlan, OrganizationKind, OverlapConfig,
    SpatialDatabase, StripePolicy, Workspace,
};

const ALL_KINDS: [OrganizationKind; 3] = [
    OrganizationKind::Secondary,
    OrganizationKind::Primary,
    OrganizationKind::Cluster,
];

const ALL_TECHNIQUES: [WindowTechnique; 4] = [
    WindowTechnique::Complete,
    WindowTechnique::Threshold,
    WindowTechnique::Slm,
    WindowTechnique::Optimum,
];

const ALL_STRIPES: [StripePolicy; 3] = [
    StripePolicy::RoundRobin,
    StripePolicy::RegionHash,
    StripePolicy::MbrLocality,
];

const BUFFER_PAGES: usize = 192;

fn test_map() -> SpatialMap {
    let set = DataSet {
        series: SeriesId::A,
        map: MapId::Map1,
    };
    SpatialMap::generate(set, 0.003, GeometryMode::Full, 42)
}

fn load(ws: &Workspace, kind: OrganizationKind, map: &SpatialMap) -> SpatialDatabase {
    let mut db = ws.create_database(DbOptions::new(kind).smax_bytes(40 * 1024));
    for obj in &map.objects {
        db.insert(obj.id, obj.geometry.clone().unwrap());
    }
    db.finish_loading();
    db
}

fn run_timed(
    ws: &Workspace,
    db: &mut SpatialDatabase,
    queries: &WindowQuerySet,
    technique: WindowTechnique,
    config: OverlapConfig,
) -> spatialdb::BatchOutcome {
    db.store_mut().begin_query();
    let batch: Vec<_> = queries
        .windows
        .iter()
        .map(|w| db.query().window(*w).technique(technique))
        .collect();
    ws.run_batch(batch, ExecPlan::threads(2).timed(config))
}

fn makespan(batch: &spatialdb::BatchOutcome) -> f64 {
    batch
        .outcomes()
        .iter()
        .map(|o| o.latency_stats().expect("latency present").completed_ms)
        .fold(0.0, f64::max)
}

/// The acceptance matrix: one arm under **any** stripe policy is
/// byte-identical to the single-arm path — answers, `QueryStats`,
/// `IoStats` and `LatencyStats` all unchanged — for every organization
/// × window technique.
#[test]
fn one_arm_any_stripe_matrix_matches_single_arm_path() {
    let map = test_map();
    let queries = WindowQuerySet::generate(&map, 1e-2, 10, 5);
    for kind in ALL_KINDS {
        for technique in ALL_TECHNIQUES {
            let base_cfg = OverlapConfig {
                depth: 4,
                policy: ArmPolicy::Elevator,
                arrival: Arrival::every_ms(10.0),
                ..OverlapConfig::default()
            };
            let ws_base = Workspace::new(BUFFER_PAGES);
            let mut db_base = load(&ws_base, kind, &map);
            let base = run_timed(&ws_base, &mut db_base, &queries, technique, base_cfg);

            for stripe in ALL_STRIPES {
                let ws = Workspace::new(BUFFER_PAGES);
                let mut db = load(&ws, kind, &map);
                let got = run_timed(
                    &ws,
                    &mut db,
                    &queries,
                    technique,
                    OverlapConfig {
                        arms: 1,
                        stripe,
                        ..base_cfg
                    },
                );
                assert_eq!(base.len(), got.len());
                for (i, (b, g)) in base.outcomes().iter().zip(got.outcomes()).enumerate() {
                    let tag = format!("{kind:?}/{technique:?}/{stripe:?} query {i}");
                    assert_eq!(b.ids(), g.ids(), "{tag}: answers changed");
                    assert_eq!(b.stats(), g.stats(), "{tag}: QueryStats changed");
                    assert_eq!(b.io_stats(), g.io_stats(), "{tag}: IoStats changed");
                    assert_eq!(
                        b.latency_stats(),
                        g.latency_stats(),
                        "{tag}: LatencyStats changed"
                    );
                }
                assert_eq!(ws_base.disk().stats(), ws.disk().stats());
            }
        }
    }
}

/// Multi-arm replay shapes only the simulated timeline: answers and
/// every charged figure stay byte-identical to the one-arm run, for
/// every stripe policy and arm count.
#[test]
fn multi_arm_replay_preserves_answers_and_charges() {
    let map = test_map();
    let queries = WindowQuerySet::generate(&map, 1e-2, 10, 5);
    let run = |arms: usize, stripe: StripePolicy| {
        let ws = Workspace::new(BUFFER_PAGES);
        let mut db = load(&ws, OrganizationKind::Cluster, &map);
        let batch = run_timed(
            &ws,
            &mut db,
            &queries,
            WindowTechnique::Slm,
            OverlapConfig {
                depth: 8,
                policy: ArmPolicy::Fcfs,
                arrival: Arrival::Burst,
                arms,
                stripe,
                ..OverlapConfig::default()
            },
        );
        let disk = ws.disk().stats();
        (batch, disk)
    };
    let (base, base_disk) = run(1, StripePolicy::RoundRobin);
    for stripe in ALL_STRIPES {
        for arms in [2usize, 4, 8] {
            let (got, disk) = run(arms, stripe);
            assert_eq!(
                disk, base_disk,
                "{stripe:?}/{arms}: charged disk stats moved"
            );
            for (b, g) in base.outcomes().iter().zip(got.outcomes()) {
                assert_eq!(b.ids(), g.ids(), "{stripe:?}/{arms}: answers changed");
                assert_eq!(b.stats(), g.stats());
                assert_eq!(b.io_stats(), g.io_stats());
                // The same requests land on the timeline; only their
                // schedule moves.
                assert_eq!(
                    b.latency_stats().expect("latency").requests,
                    g.latency_stats().expect("latency").requests
                );
            }
            // Per-arm FCFS never reorders, so declustering can only
            // shrink the burst's makespan.
            assert!(
                makespan(&got) <= makespan(&base) + 1e-9,
                "{stripe:?}/{arms}: makespan grew"
            );
        }
    }
}

/// The per-arm statistics of a timed batch account for every request on
/// the timeline: serviced counts sum to the batch's request total, no
/// request is left pending, and only in-range arms appear.
#[test]
fn arm_stats_cover_every_timed_request() {
    let map = test_map();
    let queries = WindowQuerySet::generate(&map, 1e-2, 10, 5);
    for stripe in ALL_STRIPES {
        let arms = 4;
        let ws = Workspace::new(BUFFER_PAGES);
        let mut db = load(&ws, OrganizationKind::Cluster, &map);
        let batch = run_timed(
            &ws,
            &mut db,
            &queries,
            WindowTechnique::Slm,
            OverlapConfig {
                depth: 8,
                arms,
                stripe,
                ..OverlapConfig::default()
            },
        );
        let total: u64 = batch
            .outcomes()
            .iter()
            .map(|o| o.latency_stats().expect("latency").requests)
            .sum();
        assert!(total > 0, "{stripe:?}: workload must do I/O");
        let stats = batch.arm_stats();
        assert_eq!(stats.len(), arms, "{stripe:?}: one row per arm");
        assert_eq!(
            stats.iter().map(|s| s.serviced).sum::<u64>(),
            total,
            "{stripe:?}: arm accounting incomplete"
        );
        for (i, s) in stats.iter().enumerate() {
            assert_eq!(s.arm, i);
            assert_eq!(s.pending, 0, "{stripe:?}: drained batch left work");
            if s.serviced > 0 {
                assert!(s.busy_ms > 0.0 && s.clock_ms > 0.0);
                assert!(s.utilization() > 0.0 && s.utilization() <= 1.0 + 1e-9);
            }
        }
        let report = spatialdb::report::summarize_arms(stats);
        assert_eq!(report.len(), arms);
    }
}

/// Declustering pays off across databases: a closed burst interleaving
/// queries over several databases of one workspace finishes strictly
/// sooner on four arms than on one (their regions land on different
/// arms, so independent files are serviced in parallel).
#[test]
fn declustered_batch_across_databases_shrinks_makespan() {
    let map = test_map();
    let queries = WindowQuerySet::generate(&map, 1e-2, 12, 5);
    let run = |arms: usize| {
        let ws = Workspace::new(BUFFER_PAGES * 3);
        let mut dbs: Vec<SpatialDatabase> = (0..3)
            .map(|_| load(&ws, OrganizationKind::Cluster, &map))
            .collect();
        for db in &mut dbs {
            db.store_mut().begin_query();
        }
        let batch: Vec<_> = queries
            .windows
            .iter()
            .enumerate()
            .map(|(i, w)| {
                dbs[i % 3]
                    .query()
                    .window(*w)
                    .technique(WindowTechnique::Slm)
            })
            .collect();
        let out = ws.run_batch(
            batch,
            ExecPlan::threads(2).timed(OverlapConfig {
                depth: 8,
                policy: ArmPolicy::Fcfs,
                arrival: Arrival::Burst,
                arms,
                stripe: StripePolicy::RoundRobin,
                ..OverlapConfig::default()
            }),
        );
        let ids: Vec<Vec<u64>> = out.outcomes().iter().map(|o| o.ids().to_vec()).collect();
        (makespan(&out), ids)
    };
    let (one_arm, ids_one) = run(1);
    let (four_arms, ids_four) = run(4);
    assert_eq!(ids_one, ids_four, "arm count changed the answers");
    assert!(
        four_arms < one_arm,
        "declustering did not shrink the makespan: {four_arms} >= {one_arm}"
    );
}

/// The `EngineConfig` knobs: `arms(..)` shapes the workspace's own
/// disk (visible via `num_arms`/`stripe_policy`) without touching the
/// charged path, and `adaptive_shards(true)` toggles the pool's quota
/// mode — neither changes a synchronous workload's answers or charges.
#[test]
fn workspace_conveniences_leave_charges_flat() {
    let map = test_map();
    let queries = WindowQuerySet::generate(&map, 1e-2, 8, 5);
    let run = |ws: &Workspace| {
        let mut db = load(ws, OrganizationKind::Cluster, &map);
        db.store_mut().begin_query();
        queries
            .windows
            .iter()
            .map(|w| {
                let mut cursor = db.query().window(*w).technique(WindowTechnique::Slm).run();
                let ids: Vec<u64> = cursor.by_ref().map(|(id, _)| id).collect();
                (ids, cursor.stats(), cursor.io_stats())
            })
            .collect::<Vec<_>>()
    };
    let plain = Workspace::new(BUFFER_PAGES);
    let base = run(&plain);

    let striped = Workspace::from_config(
        EngineConfig::default()
            .buffer_pages(BUFFER_PAGES)
            .arms(4, StripePolicy::RegionHash),
    );
    assert_eq!(striped.disk().num_arms(), 4);
    assert_eq!(striped.disk().stripe_policy(), StripePolicy::RegionHash);
    assert_eq!(run(&striped), base, "arm config leaked into charges");

    let adaptive = Workspace::from_config(
        EngineConfig::default()
            .buffer_pages(BUFFER_PAGES)
            .shards(4)
            .routing(spatialdb::Routing::ByRegion)
            .adaptive_shards(true),
    );
    let got = run(&adaptive);
    for ((ids, stats, _), (base_ids, base_stats, _)) in got.iter().zip(&base) {
        assert_eq!(ids, base_ids, "adaptive shards changed the answers");
        assert_eq!(stats.candidates, base_stats.candidates);
        assert_eq!(stats.result_bytes, base_stats.result_bytes);
    }
}

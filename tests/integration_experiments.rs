//! Integration tests of the experiment harness itself: determinism,
//! cross-driver consistency, and the cluster-size adaptation study.

use spatialdb::data::{DataSet, MapId, SeriesId};
use spatialdb::experiments::{
    cluster_size_adaptation, construction_suite, records_of, window_query_orgs, Scale,
};
use spatialdb::storage::WindowTechnique;

fn tiny() -> Scale {
    Scale {
        data_scale: 0.02,
        num_queries: 30,
        ..Scale::smoke()
    }
}

fn a1() -> DataSet {
    DataSet {
        series: SeriesId::A,
        map: MapId::Map1,
    }
}

#[test]
fn experiments_are_deterministic() {
    let scale = tiny();
    let r1 = construction_suite(&scale, &[a1()]);
    let r2 = construction_suite(&scale, &[a1()]);
    assert_eq!(r1[0].io_seconds, r2[0].io_seconds);
    assert_eq!(r1[0].occupied_pages, r2[0].occupied_pages);
    let w1 = window_query_orgs(&scale, &[a1()]);
    let w2 = window_query_orgs(&scale, &[a1()]);
    for (x, y) in w1.iter().zip(&w2) {
        assert_eq!(x.ms_per_4kb, y.ms_per_4kb);
        assert_eq!(x.avg_candidates, y.avg_candidates);
    }
}

#[test]
fn different_seeds_change_io_but_not_shape() {
    let base = tiny();
    let other = Scale {
        seed: 4242,
        ..tiny()
    };
    let r1 = window_query_orgs(&base, &[a1()]);
    let r2 = window_query_orgs(&other, &[a1()]);
    // Different data → different absolute numbers…
    assert_ne!(r1[0].ms_per_4kb, r2[0].ms_per_4kb);
    // …but the same qualitative result at the largest window.
    let l1 = r1.iter().find(|r| r.area == 1e-1).unwrap();
    let l2 = r2.iter().find(|r| r.area == 1e-1).unwrap();
    assert!(l1.ms_per_4kb[2] < l1.ms_per_4kb[0]);
    assert!(l2.ms_per_4kb[2] < l2.ms_per_4kb[0]);
}

#[test]
fn records_preserve_map_statistics() {
    let scale = tiny();
    let map = scale.map(a1());
    let records = records_of(&map.objects);
    assert_eq!(records.len(), map.len());
    let total: u64 = records.iter().map(|r| u64::from(r.size_bytes)).sum();
    assert_eq!(total, map.total_bytes());
    for (rec, obj) in records.iter().zip(&map.objects) {
        assert_eq!(rec.mbr, obj.mbr);
    }
}

#[test]
fn figure11_adaptation_helps_complete_most() {
    // §5.4.4: adapting the cluster size to the query size helps the
    // simple complete technique clearly more than threshold/SLM.
    let scale = Scale {
        data_scale: 0.03,
        num_queries: 40,
        ..Scale::smoke()
    };
    let rows = cluster_size_adaptation(&scale);
    assert_eq!(rows.len(), 3);
    let complete = rows
        .iter()
        .find(|r| r.technique == WindowTechnique::Complete)
        .unwrap();
    let slm = rows
        .iter()
        .find(|r| r.technique == WindowTechnique::Slm)
        .unwrap();
    // Gains are non-negative and grow with the factor for the complete
    // technique.
    assert!(complete.gain_factor100_pct >= complete.gain_factor10_pct - 1.0);
    assert!(complete.gain_factor100_pct > 0.0);
    // The sophisticated technique depends less on adaptation.
    assert!(
        slm.gain_factor100_pct <= complete.gain_factor100_pct + 1.0,
        "slm {} vs complete {}",
        slm.gain_factor100_pct,
        complete.gain_factor100_pct
    );
}

#[test]
fn scale_paper_defaults_match_the_paper() {
    let s = Scale::paper();
    assert_eq!(s.data_scale, 1.0);
    assert_eq!(s.num_queries, 678);
    assert_eq!(s.join_buffers, vec![200, 400, 800, 1600, 3200, 6400]);
}

//! Integration tests of the overlapped-I/O subsystem: the depth-1 FCFS
//! equivalence matrix (the timed executor is byte-identical to the
//! synchronous path for every organization × window technique), the
//! determinism of the simulated latency, the elevator-vs-FCFS ordering
//! at queue depth, and the timed join.
//!
//! The request-level anchor — depth-1 `Disk::submit`/`complete_next`
//! mirroring `Disk::charge` byte for byte — is asserted inside
//! `spatialdb-disk`; these tests pin the same contract end-to-end
//! through the storage backends and the executor.

use spatialdb::data::workload::WindowQuerySet;
use spatialdb::data::{DataSet, GeometryMode, MapId, SeriesId, SpatialMap};
use spatialdb::disk::IoStats;
use spatialdb::storage::{MemoryStore, QueryStats, WindowTechnique};
use spatialdb::{
    ArmPolicy, Arrival, DbOptions, ExecPlan, OrganizationKind, OverlapConfig, SpatialDatabase,
    Workspace,
};

const ALL_KINDS: [OrganizationKind; 3] = [
    OrganizationKind::Secondary,
    OrganizationKind::Primary,
    OrganizationKind::Cluster,
];

const ALL_TECHNIQUES: [WindowTechnique; 4] = [
    WindowTechnique::Complete,
    WindowTechnique::Threshold,
    WindowTechnique::Slm,
    WindowTechnique::Optimum,
];

const BUFFER_PAGES: usize = 192;

fn a1() -> DataSet {
    DataSet {
        series: SeriesId::A,
        map: MapId::Map1,
    }
}

fn test_map() -> SpatialMap {
    SpatialMap::generate(a1(), 0.003, GeometryMode::Full, 42)
}

fn load(ws: &Workspace, kind: OrganizationKind, map: &SpatialMap) -> SpatialDatabase {
    let mut db = ws.create_database(DbOptions::new(kind).smax_bytes(40 * 1024));
    for obj in &map.objects {
        db.insert(obj.id, obj.geometry.clone().unwrap());
    }
    db.finish_loading();
    db
}

/// Run the workload sequentially through the cursor path (one cold
/// start, then the buffer evolves across the queries — the same
/// evolution the timed batch sees).
fn run_sync(
    db: &mut SpatialDatabase,
    queries: &WindowQuerySet,
    technique: WindowTechnique,
) -> Vec<(Vec<u64>, QueryStats, IoStats)> {
    db.store_mut().begin_query();
    queries
        .windows
        .iter()
        .map(|w| {
            let mut cursor = db.query().window(*w).technique(technique).run();
            let stats = cursor.stats();
            let io = cursor.io_stats();
            let ids: Vec<u64> = cursor.by_ref().map(|(id, _)| id).collect();
            (ids, stats, io)
        })
        .collect()
}

/// Run the same workload through the timed executor.
fn run_timed(
    ws: &Workspace,
    db: &mut SpatialDatabase,
    queries: &WindowQuerySet,
    technique: WindowTechnique,
    config: OverlapConfig,
) -> spatialdb::BatchOutcome {
    db.store_mut().begin_query();
    let batch: Vec<_> = queries
        .windows
        .iter()
        .map(|w| db.query().window(*w).technique(technique))
        .collect();
    ws.run_batch(batch, ExecPlan::threads(2).timed(config))
}

/// The acceptance matrix: at queue depth 1 under FCFS, the timed
/// executor produces **unchanged answers, `QueryStats` and `IoStats`**
/// for every organization × window technique — the overlapped subsystem
/// degenerates to today's synchronous charge path.
#[test]
fn depth_one_fcfs_matrix_matches_sync_path() {
    let map = test_map();
    let queries = WindowQuerySet::generate(&map, 1e-2, 10, 5);
    let config = OverlapConfig {
        depth: 1,
        policy: ArmPolicy::Fcfs,
        arrival: Arrival::Burst,
        ..OverlapConfig::default()
    };
    for kind in ALL_KINDS {
        for technique in ALL_TECHNIQUES {
            let ws_sync = Workspace::new(BUFFER_PAGES);
            let mut db_sync = load(&ws_sync, kind, &map);
            let sync = run_sync(&mut db_sync, &queries, technique);

            let ws_timed = Workspace::new(BUFFER_PAGES);
            let mut db_timed = load(&ws_timed, kind, &map);
            let timed = run_timed(&ws_timed, &mut db_timed, &queries, technique, config);

            assert_eq!(sync.len(), timed.len());
            for (i, ((ids, stats, io), outcome)) in
                sync.iter().zip(timed.outcomes().iter()).enumerate()
            {
                assert_eq!(
                    ids,
                    outcome.ids(),
                    "{kind:?}/{technique:?} query {i}: answers changed"
                );
                assert_eq!(
                    *stats,
                    outcome.stats(),
                    "{kind:?}/{technique:?} query {i}: QueryStats changed"
                );
                assert_eq!(
                    *io,
                    outcome.io_stats(),
                    "{kind:?}/{technique:?} query {i}: IoStats changed"
                );
                let latency = outcome
                    .latency_stats()
                    .expect("timed batch carries latency");
                // Every physically-charged request is on the timeline
                // (the Optimum baseline charges analytically via
                // charge_raw, which has no physical run to schedule).
                if technique == WindowTechnique::Optimum {
                    assert!(latency.requests <= io.requests());
                } else {
                    assert_eq!(
                        latency.requests,
                        io.requests(),
                        "{kind:?}/{technique:?} query {i}: trace incomplete"
                    );
                }
            }
            // The workspaces' cumulative disk counters agree too.
            assert_eq!(ws_sync.disk().stats(), ws_timed.disk().stats());
        }
    }
}

/// The simulated latency is deterministic: two identical timed runs
/// produce identical per-query `LatencyStats`.
#[test]
fn timed_latency_is_deterministic() {
    let map = test_map();
    let queries = WindowQuerySet::generate(&map, 1e-2, 10, 5);
    let config = OverlapConfig {
        depth: 4,
        policy: ArmPolicy::Elevator,
        arrival: Arrival::every_ms(20.0),
        ..OverlapConfig::default()
    };
    let run = || {
        let ws = Workspace::new(BUFFER_PAGES);
        let mut db = load(&ws, OrganizationKind::Cluster, &map);
        run_timed(&ws, &mut db, &queries, WindowTechnique::Slm, config)
            .outcomes()
            .iter()
            .map(|o| o.latency_stats().expect("latency present"))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

/// At queue depth ≥ 4 the elevator beats FCFS on mean end-to-end
/// latency, while answers and charged stats stay identical — the
/// scheduling policy shapes only the simulated timeline.
#[test]
fn elevator_beats_fcfs_at_depth_four() {
    let map = test_map();
    let queries = WindowQuerySet::generate(&map, 1e-2, 10, 5);
    let mut means = Vec::new();
    let mut answers = Vec::new();
    for policy in [ArmPolicy::Fcfs, ArmPolicy::Elevator] {
        let ws = Workspace::new(BUFFER_PAGES);
        let mut db = load(&ws, OrganizationKind::Cluster, &map);
        let batch = run_timed(
            &ws,
            &mut db,
            &queries,
            WindowTechnique::Slm,
            OverlapConfig {
                depth: 4,
                policy,
                arrival: Arrival::Burst, // closed burst: maximal queueing
                ..OverlapConfig::default()
            },
        );
        let latencies: Vec<f64> = batch
            .outcomes()
            .iter()
            .map(|o| o.latency_stats().expect("latency present").latency_ms())
            .collect();
        means.push(latencies.iter().sum::<f64>() / latencies.len() as f64);
        answers.push(
            batch
                .outcomes()
                .iter()
                .map(|o| o.ids().to_vec())
                .collect::<Vec<_>>(),
        );
    }
    assert_eq!(answers[0], answers[1], "policy changed the answers");
    assert!(
        means[1] < means[0],
        "elevator mean {} not below fcfs mean {}",
        means[1],
        means[0]
    );
}

/// Deeper submission windows overlap a query's own requests: with a
/// single query in the system, queue waits appear at depth > 1 while
/// depth 1 reproduces the sequential request order (no queueing).
#[test]
fn depth_controls_per_query_overlap() {
    let map = test_map();
    let queries = WindowQuerySet::generate(&map, 1e-2, 4, 5);
    let run = |depth| {
        let ws = Workspace::new(BUFFER_PAGES);
        let mut db = load(&ws, OrganizationKind::Secondary, &map);
        // Arrivals far apart: queries never overlap each other, only
        // their own requests.
        run_timed(
            &ws,
            &mut db,
            &queries,
            WindowTechnique::Slm,
            OverlapConfig {
                depth,
                policy: ArmPolicy::Elevator,
                arrival: Arrival::every_ms(1e7),
                ..OverlapConfig::default()
            },
        )
        .outcomes()
        .iter()
        .map(|o| o.latency_stats().expect("latency present"))
        .collect::<Vec<_>>()
    };
    let d1 = run(1);
    let d8 = run(8);
    assert!(d1.iter().all(|l| l.queue_ms == 0.0), "depth 1 never queues");
    for (a, b) in d1.iter().zip(&d8) {
        // Same requests on the timeline at either depth; only their
        // overlap differs (the elevator may also re-order a query's own
        // window, so per-query service time can move either way).
        assert_eq!(a.requests, b.requests);
    }
    assert!(
        d8.iter().any(|l| l.queue_ms > 0.0),
        "depth 8 must overlap requests"
    );
}

/// The timed join: identical pairs to the synchronous join, plus a
/// latency figure for its captured request trace.
#[test]
fn timed_join_matches_sync_join() {
    let map = test_map();
    let ws = Workspace::new(512);
    let mut a = load(&ws, OrganizationKind::Cluster, &map);
    let mut b_db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
    for obj in &map.objects {
        let g = obj.geometry.clone().unwrap();
        b_db.insert(obj.id, g);
    }
    b_db.finish_loading();

    // Cold object buffer before each join so both runs do real I/O.
    a.store_mut().begin_query();
    b_db.store_mut().begin_query();
    let sync_pairs = a.join(&b_db).run().pairs();
    a.store_mut().begin_query();
    b_db.store_mut().begin_query();
    let timed = a.join(&b_db).run_timed(4, ArmPolicy::Elevator);
    let latency = timed.latency_stats().expect("timed join carries latency");
    assert!(latency.requests > 0);
    assert!(latency.latency_ms() > 0.0);
    assert_eq!(timed.pairs(), sync_pairs);
}

/// A store that charges no I/O (the in-memory baseline) reports zero
/// latency through the timed executor.
#[test]
fn memory_store_has_zero_latency() {
    let map = test_map();
    let ws = Workspace::new(64);
    let store = MemoryStore::new(ws.disk(), ws.pool());
    let mut db = ws.create_database_with(Box::new(store));
    for obj in &map.objects {
        db.insert(obj.id, obj.geometry.clone().unwrap());
    }
    db.finish_loading();
    let queries = WindowQuerySet::generate(&map, 1e-2, 4, 5);
    let batch: Vec<_> = queries
        .windows
        .iter()
        .map(|w| db.query().window(*w))
        .collect();
    let out = ws.run_batch(batch, ExecPlan::threads(2).timed(OverlapConfig::default()));
    for o in out.outcomes() {
        let l = o.latency_stats().expect("latency present");
        assert_eq!(l.requests, 0);
        assert_eq!(l.latency_ms(), 0.0);
    }
}

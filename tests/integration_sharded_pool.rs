//! Integration tests of the sharded buffer pool: the shard-equivalence
//! matrix (1-shard pool ≡ the classic single-lock pool for every
//! organization × window technique), the conservation invariants of
//! N > 1 shards, the overlapped batch executor, and the panic-safety of
//! the I/O tallies.
//!
//! The byte-level anchor — a 1-shard [`ShardedPool`] mirroring
//! `BufferPool` operation for operation — is asserted by the
//! randomized mirror test inside `spatialdb-disk`; these tests pin the
//! same contract end-to-end through the storage backends and executor.

use spatialdb::data::workload::WindowQuerySet;
use spatialdb::data::{DataSet, GeometryMode, MapId, SeriesId, SpatialMap};
use spatialdb::disk::IoStats;
use spatialdb::storage::{QueryStats, WindowTechnique};
use spatialdb::{DbOptions, EngineConfig, ExecPlan, OrganizationKind, SpatialDatabase, Workspace};

const ALL_KINDS: [OrganizationKind; 3] = [
    OrganizationKind::Secondary,
    OrganizationKind::Primary,
    OrganizationKind::Cluster,
];

const ALL_TECHNIQUES: [WindowTechnique; 4] = [
    WindowTechnique::Complete,
    WindowTechnique::Threshold,
    WindowTechnique::Slm,
    WindowTechnique::Optimum,
];

const BUFFER_PAGES: usize = 192;

fn a1() -> DataSet {
    DataSet {
        series: SeriesId::A,
        map: MapId::Map1,
    }
}

fn test_map() -> SpatialMap {
    SpatialMap::generate(a1(), 0.003, GeometryMode::Full, 42)
}

fn load(ws: &Workspace, kind: OrganizationKind, map: &SpatialMap) -> SpatialDatabase {
    let mut db = ws.create_database(DbOptions::new(kind).smax_bytes(40 * 1024));
    for obj in &map.objects {
        db.insert(obj.id, obj.geometry.clone().unwrap());
    }
    db.finish_loading();
    db
}

/// Run the window workload and collect per-query stats + I/O deltas.
fn run_workload(
    db: &mut SpatialDatabase,
    queries: &WindowQuerySet,
    technique: WindowTechnique,
) -> Vec<(Vec<u64>, QueryStats, IoStats)> {
    queries
        .windows
        .iter()
        .map(|w| {
            db.store_mut().begin_query();
            let mut cursor = db.query().window(*w).technique(technique).run();
            let stats = cursor.stats();
            let io = cursor.io_stats();
            let ids: Vec<u64> = cursor.by_ref().map(|(id, _)| id).collect();
            (ids, stats, io)
        })
        .collect()
}

/// The equivalence matrix of the refactor's acceptance criterion: for
/// every organization × window technique, a workspace on the 1-shard
/// `ShardedPool` produces **byte-identical** per-query `QueryStats` and
/// `IoStats` to `Workspace::new` — which is the pre-sharding
/// configuration (`SharedPool` used to be the single-lock pool; the
/// 1-shard pool mirrors it operation for operation, see the
/// `one_shard_mirrors_buffer_pool` test in `spatialdb-disk`).
#[test]
fn one_shard_matrix_byte_identical_stats() {
    let map = test_map();
    let queries = WindowQuerySet::generate(&map, 1e-2, 10, 5);
    for kind in ALL_KINDS {
        for technique in ALL_TECHNIQUES {
            let ws_plain = Workspace::new(BUFFER_PAGES);
            let mut db_plain = load(&ws_plain, kind, &map);
            let plain = run_workload(&mut db_plain, &queries, technique);

            let ws_sharded =
                Workspace::from_config(EngineConfig::default().buffer_pages(BUFFER_PAGES));
            let mut db_sharded = load(&ws_sharded, kind, &map);
            let sharded = run_workload(&mut db_sharded, &queries, technique);

            assert_eq!(
                plain, sharded,
                "{kind:?}/{technique:?}: 1-shard stats must be byte-identical"
            );
        }
    }
}

/// N > 1 shards: exact answers and candidate sets never change, the
/// capacity budget is conserved, and for backends whose page-access
/// sequence does not depend on buffer contents (secondary and primary:
/// plain `read_set`/`read_page` paths) the hit + miss classification
/// count is conserved too — every requested-page access is classified
/// exactly once, whatever the shard count.
#[test]
fn multi_shard_conserves_answers_budget_and_access_counts() {
    let map = test_map();
    let queries = WindowQuerySet::generate(&map, 1e-2, 10, 5);
    for kind in ALL_KINDS {
        let ws_one = Workspace::from_config(EngineConfig::default().buffer_pages(BUFFER_PAGES));
        let mut db_one = load(&ws_one, kind, &map);
        let base = run_workload(&mut db_one, &queries, WindowTechnique::Slm);
        let base_accesses = ws_one.pool().hits() + ws_one.pool().misses();

        for shards in [2usize, 4] {
            let ws = Workspace::from_config(
                EngineConfig::default()
                    .buffer_pages(BUFFER_PAGES)
                    .shards(shards),
            );
            assert_eq!(ws.pool().num_shards(), shards);
            let quota_total: usize = (0..shards).map(|i| ws.pool().shard_capacity(i)).sum();
            assert_eq!(quota_total, BUFFER_PAGES, "budget conserved across quotas");

            let mut db = load(&ws, kind, &map);
            let run = run_workload(&mut db, &queries, WindowTechnique::Slm);
            for (i, ((ids, stats, _), (base_ids, base_stats, _))) in
                run.iter().zip(base.iter()).enumerate()
            {
                assert_eq!(ids, base_ids, "{kind:?} query {i}: answers changed");
                assert_eq!(
                    stats.candidates, base_stats.candidates,
                    "{kind:?} query {i}: candidate set changed"
                );
                assert_eq!(stats.result_bytes, base_stats.result_bytes);
            }
            // The pool never holds more pages than its budget.
            assert!(ws.pool().len() <= BUFFER_PAGES);
            if matches!(
                kind,
                OrganizationKind::Secondary | OrganizationKind::Primary
            ) {
                let accesses = ws.pool().hits() + ws.pool().misses();
                assert_eq!(
                    accesses, base_accesses,
                    "{kind:?}/{shards} shards: hit+miss count not conserved"
                );
            }
        }
    }
}

/// Region-keyed shard routing (`EngineConfig::routing(ByRegion)`): each
/// database file becomes one lock domain. Answers and candidate sets
/// never change versus page-hash routing, the budget is conserved, and
/// every page of one region really routes to one shard.
#[test]
fn region_routing_conserves_answers_and_partitions_regions() {
    use spatialdb::Routing;
    let map = test_map();
    let queries = WindowQuerySet::generate(&map, 1e-2, 10, 5);
    for kind in ALL_KINDS {
        let ws_page =
            Workspace::from_config(EngineConfig::default().buffer_pages(BUFFER_PAGES).shards(4));
        let mut db_page = load(&ws_page, kind, &map);
        let base = run_workload(&mut db_page, &queries, WindowTechnique::Slm);

        let ws_region = Workspace::from_config(
            EngineConfig::default()
                .buffer_pages(BUFFER_PAGES)
                .shards(4)
                .routing(Routing::ByRegion),
        );
        assert_eq!(ws_region.pool().routing(), Routing::ByRegion);
        let mut db_region = load(&ws_region, kind, &map);
        let run = run_workload(&mut db_region, &queries, WindowTechnique::Slm);

        for (i, ((ids, stats, _), (base_ids, base_stats, _))) in
            run.iter().zip(base.iter()).enumerate()
        {
            assert_eq!(ids, base_ids, "{kind:?} query {i}: answers changed");
            assert_eq!(stats.candidates, base_stats.candidates);
            assert_eq!(stats.result_bytes, base_stats.result_bytes);
        }
        assert!(ws_region.pool().len() <= BUFFER_PAGES, "budget conserved");
        // Every page of a region routes to that region's one shard.
        let pool = ws_region.pool();
        for region in (0..4u16).map(spatialdb::disk::RegionId) {
            let home = pool.shard_of(&spatialdb::disk::PageId::new(region, 0));
            for offset in 1..100u64 {
                assert_eq!(
                    pool.shard_of(&spatialdb::disk::PageId::new(region, offset)),
                    home,
                    "{kind:?}: region {} split across shards",
                    region.0
                );
            }
        }
    }
}

/// The overlapped filter mode returns the same exact answers as the
/// deterministic serialized batch, and at one worker thread it *is*
/// the serialized order — byte-identical stats.
#[test]
fn overlapped_batch_matches_serialized_answers() {
    let map = test_map();
    let queries = WindowQuerySet::generate(&map, 1e-2, 16, 5);
    let ws = Workspace::from_config(EngineConfig::default().buffer_pages(BUFFER_PAGES).shards(4));
    let mut db = load(&ws, OrganizationKind::Cluster, &map);

    db.store_mut().begin_query();
    let serialized = ws.run_batch(
        queries
            .windows
            .iter()
            .map(|w| db.query().window(*w))
            .collect(),
        4,
    );
    db.store_mut().begin_query();
    let overlapped = ws.run_batch(
        queries
            .windows
            .iter()
            .map(|w| db.query().window(*w))
            .collect::<Vec<_>>(),
        ExecPlan::threads(4).overlapped(),
    );
    assert_eq!(serialized.len(), overlapped.len());
    for (s, o) in serialized.outcomes().iter().zip(overlapped.outcomes()) {
        assert_eq!(s.ids(), o.ids(), "overlapped filter changed an answer");
        assert_eq!(s.stats().candidates, o.stats().candidates);
        assert_eq!(s.stats().result_bytes, o.stats().result_bytes);
    }

    // Single worker: the overlapped mode degenerates to submission
    // order — stats byte-identical to the serialized path.
    db.store_mut().begin_query();
    let serial_one = ws.run_batch(
        queries
            .windows
            .iter()
            .map(|w| db.query().window(*w))
            .collect(),
        1,
    );
    db.store_mut().begin_query();
    let overlap_one = ws.run_batch(
        queries
            .windows
            .iter()
            .map(|w| db.query().window(*w))
            .collect::<Vec<_>>(),
        ExecPlan::threads(1).overlapped(),
    );
    for (s, o) in serial_one.outcomes().iter().zip(overlap_one.outcomes()) {
        assert_eq!(s.ids(), o.ids());
        assert_eq!(s.stats(), o.stats());
        assert_eq!(s.io_stats(), o.io_stats());
    }
    assert_eq!(
        serial_one.aggregate_stats(),
        overlap_one.aggregate_stats(),
        "single-thread overlapped batch must stay deterministic"
    );
}

/// Panic-safety of the I/O tallies: a refinement worker that panics
/// (here: refining a filter-only record bulk-loaded without exact
/// geometry) aborts the batch, but every charge the filter phase made
/// stays in the workspace's cumulative disk counters — nothing leaks.
#[test]
fn panicking_batch_worker_leaks_no_charges() {
    use spatialdb::geom::Rect;
    use spatialdb::rtree::ObjectId;
    use spatialdb::storage::ObjectRecord;

    let ws = Workspace::new(BUFFER_PAGES);
    let mut db = ws.create_database(DbOptions::new(OrganizationKind::Secondary));
    // Filter-only records: refinement has no exact geometry and panics.
    let records: Vec<ObjectRecord> = (0..40u64)
        .map(|i| {
            let x = (i % 8) as f64 / 8.0;
            let y = (i / 8) as f64 / 8.0;
            ObjectRecord::new(ObjectId(i), Rect::new(x, y, x + 0.05, y + 0.05), 700)
        })
        .collect();
    db.store_mut().bulk_load(&records);
    db.finish_loading();

    let before = db.io_stats();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        ws.run_batch(vec![db.query().window(Rect::new(0.0, 0.0, 1.0, 1.0))], 4)
    }));
    assert!(outcome.is_err(), "refining filter-only records must panic");
    let grown = db.io_stats().since(&before);
    // The filter step's page reads all survived the unwind.
    assert!(
        grown.read_requests > 0,
        "filter-phase charges leaked out of the cumulative stats"
    );
}

//! Integration tests of the redesigned public API: the pluggable
//! [`SpatialStore`] backends and the streaming `Query` builder.
//!
//! The core matrix runs one window workload through every organization
//! model × every window technique and asserts that the *exact result
//! sets* are identical everywhere — the organization and the transfer
//! technique may only change the I/O cost, never the answer.

use spatialdb::data::workload::WindowQuerySet;
use spatialdb::data::{DataSet, GeometryMode, MapId, SeriesId, SpatialMap};
use spatialdb::geom::{HasMbr, Point, Rect};
use spatialdb::storage::{MemoryStore, WindowTechnique};
use spatialdb::{DbOptions, OrganizationKind, SpatialDatabase, Workspace};

const ALL_KINDS: [OrganizationKind; 3] = [
    OrganizationKind::Secondary,
    OrganizationKind::Primary,
    OrganizationKind::Cluster,
];

const ALL_TECHNIQUES: [WindowTechnique; 4] = [
    WindowTechnique::Complete,
    WindowTechnique::Threshold,
    WindowTechnique::Slm,
    WindowTechnique::Optimum,
];

fn a1() -> DataSet {
    DataSet {
        series: SeriesId::A,
        map: MapId::Map1,
    }
}

fn load(ws: &Workspace, kind: OrganizationKind, map: &SpatialMap) -> SpatialDatabase {
    let mut db = ws.create_database(DbOptions::new(kind).smax_bytes(40 * 1024));
    for obj in &map.objects {
        db.insert(obj.id, obj.geometry.clone().unwrap());
    }
    db.finish_loading();
    db
}

#[test]
fn result_sets_identical_across_stores_and_techniques() {
    let map = SpatialMap::generate(a1(), 0.003, GeometryMode::Full, 42);
    let queries = WindowQuerySet::generate(&map, 1e-2, 12, 5);
    // Brute-force reference answers.
    let reference: Vec<Vec<u64>> = queries
        .windows
        .iter()
        .map(|w| {
            map.objects
                .iter()
                .filter(|o| o.geometry.as_ref().unwrap().intersects_rect(w))
                .map(|o| o.id)
                .collect()
        })
        .collect();
    for kind in ALL_KINDS {
        let ws = Workspace::new(256);
        let mut db = load(&ws, kind, &map);
        for technique in ALL_TECHNIQUES {
            for (w, want) in queries.windows.iter().zip(&reference) {
                db.store_mut().begin_query();
                let got = db.query().window(*w).technique(technique).run().ids();
                assert_eq!(&got, want, "{kind:?} / {technique:?} / {w}");
            }
        }
    }
    // The in-memory baseline answers identically, for free.
    let ws = Workspace::new(256);
    let mut db = ws.create_database_with(Box::new(MemoryStore::new(ws.disk(), ws.pool())));
    for obj in &map.objects {
        db.insert(obj.id, obj.geometry.clone().unwrap());
    }
    db.finish_loading();
    for (w, want) in queries.windows.iter().zip(&reference) {
        let cursor = db.query().window(*w).run();
        assert_eq!(cursor.stats().io_ms, 0.0);
        assert_eq!(&cursor.ids(), want, "memory / {w}");
    }
}

#[test]
fn techniques_change_cost_but_not_candidates() {
    let map = SpatialMap::generate(a1(), 0.01, GeometryMode::MbrOnly, 7);
    let ws = Workspace::new(256);
    let mut db =
        ws.create_database(DbOptions::new(OrganizationKind::Cluster).smax_bytes(40 * 1024));
    // MBR-only loading straight into the store: exercises bulk_load and
    // the filter-only (candidate) path of the cursor.
    let records: Vec<_> = map
        .objects
        .iter()
        .map(|o| {
            spatialdb::storage::ObjectRecord::new(spatialdb::ObjectId(o.id), o.mbr, o.size_bytes)
        })
        .collect();
    db.store_mut().bulk_load(&records);
    db.finish_loading();
    assert_eq!(db.len(), map.len());
    let w = Rect::new(0.2, 0.2, 0.5, 0.5);
    let mut costs = Vec::new();
    let mut candidates = Vec::new();
    for technique in ALL_TECHNIQUES {
        db.store_mut().begin_query();
        let cursor = db.query().window(w).technique(technique).run();
        costs.push(cursor.stats().io_ms);
        candidates.push(cursor.stats().candidates);
    }
    assert!(
        candidates.windows(2).all(|p| p[0] == p[1]),
        "{candidates:?}"
    );
    // Optimum is the lower bound of the swept techniques.
    let optimum = costs[3];
    assert!(costs.iter().all(|&c| optimum <= c + 1e-9), "{costs:?}");
}

#[test]
fn per_query_io_isolated_between_databases_of_one_workspace() {
    let ws = Workspace::new(256);
    let mut a = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
    let mut b = ws.create_database(DbOptions::new(OrganizationKind::Secondary));
    for i in 0..40u64 {
        let x = (i % 8) as f64 / 8.0;
        let y = (i / 8) as f64 / 8.0;
        let line =
            spatialdb::geom::Polyline::new(vec![Point::new(x, y), Point::new(x + 0.01, y + 0.01)]);
        a.insert(i, line.clone());
        b.insert(i, line);
    }
    a.finish_loading();
    b.finish_loading();
    let w = Rect::new(0.0, 0.0, 0.6, 0.6);
    let cost_a = a.query().window(w).run().io_stats();
    let cost_b = b.query().window(w).run().io_stats();
    assert!(cost_a.read_requests > 0);
    assert!(cost_b.read_requests > 0);
    // The workspace disk accumulated both, each cursor saw only its own.
    let total = a.io_stats();
    assert!(total.read_requests >= cost_a.read_requests + cost_b.read_requests);
}

#[test]
fn cursor_streams_geometry_references() {
    let map = SpatialMap::generate(a1(), 0.002, GeometryMode::Full, 11);
    let ws = Workspace::new(256);
    let db = load(&ws, OrganizationKind::Cluster, &map);
    let w = Rect::new(0.1, 0.1, 0.9, 0.9);
    for (id, geometry) in db.query().window(w).run() {
        // Every yielded geometry really intersects and matches the map's.
        assert!(geometry.intersects_rect(&w), "{id}");
        let original = map.objects.iter().find(|o| o.id == id).unwrap();
        assert_eq!(geometry.mbr(), original.mbr, "{id}");
    }
}

#[test]
fn point_queries_agree_across_stores() {
    let map = SpatialMap::generate(a1(), 0.002, GeometryMode::Full, 23);
    let points: Vec<Point> = map
        .objects
        .iter()
        .step_by(7)
        .map(|o| o.geometry.as_ref().unwrap().vertices()[0])
        .collect();
    let mut per_kind = Vec::new();
    for kind in ALL_KINDS {
        let ws = Workspace::new(256);
        let db = load(&ws, kind, &map);
        let answers: Vec<Vec<u64>> = points
            .iter()
            .map(|p| db.query().point(*p).run().ids())
            .collect();
        // Each probe point lies on its source object.
        for (i, answer) in answers.iter().enumerate() {
            assert!(
                answer.contains(&map.objects[i * 7].id),
                "{kind:?}: probe {i} missed its own object"
            );
        }
        per_kind.push(answers);
    }
    assert_eq!(per_kind[0], per_kind[1]);
    assert_eq!(per_kind[1], per_kind[2]);
}

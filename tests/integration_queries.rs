//! Cross-crate integration tests: window- and point-query shapes of
//! Figures 8, 10, 11 and 12, plus exact-answer correctness through the
//! public database API.

use spatialdb::data::workload::WindowQuerySet;
use spatialdb::data::{DataSet, GeometryMode, MapId, SeriesId, SpatialMap};
use spatialdb::experiments::{point_queries, window_query_orgs, window_query_techniques, Scale};
use spatialdb::geom::{HasMbr, Rect};
use spatialdb::{DbOptions, OrganizationKind, Workspace};

fn smoke() -> Scale {
    Scale {
        data_scale: 0.03,
        num_queries: 50,
        query_buffer: 256,
        ..Scale::smoke()
    }
}

fn a1() -> DataSet {
    DataSet {
        series: SeriesId::A,
        map: MapId::Map1,
    }
}

#[test]
fn figure8_cluster_wins_large_windows() {
    let rows = window_query_orgs(&smoke(), &[a1()]);
    // Largest window (10% of the data space): cluster must beat the
    // secondary organization by a large factor.
    let large = rows.iter().find(|r| r.area == 1e-1).unwrap();
    let speedup = large.ms_per_4kb[0] / large.ms_per_4kb[2];
    assert!(speedup > 4.0, "10% window speedup only {speedup:.1}x");
    // And the advantage must grow with the window size.
    let small = rows.iter().find(|r| r.area == 1e-4).unwrap();
    let small_speedup = small.ms_per_4kb[0] / small.ms_per_4kb[2];
    assert!(
        speedup > small_speedup,
        "speedup must grow: {small_speedup:.1} → {speedup:.1}"
    );
    // Primary organization sits between the two for large windows.
    assert!(large.ms_per_4kb[1] < large.ms_per_4kb[0]);
    assert!(large.ms_per_4kb[1] > large.ms_per_4kb[2]);
}

#[test]
fn figure10_technique_ordering() {
    let rows = window_query_techniques(&smoke(), &[a1()]);
    for row in &rows {
        let [complete, threshold, slm, optimum] = row.ms_per_4kb;
        // Optimum is a lower bound for every technique.
        assert!(optimum <= complete + 1e-9, "{}: opt > complete", row.area);
        assert!(optimum <= threshold + 1e-9, "{}: opt > threshold", row.area);
        assert!(optimum <= slm + 1e-9, "{}: opt > slm", row.area);
        // Threshold and SLM never lose badly to complete.
        assert!(
            threshold <= complete * 1.05,
            "{}: threshold worse",
            row.area
        );
        assert!(slm <= complete * 1.05, "{}: slm worse", row.area);
    }
    // For the most selective windows the sophisticated techniques help;
    // for the largest they all converge (within 10%).
    let small = rows.iter().find(|r| r.area == 1e-5).unwrap();
    assert!(small.ms_per_4kb[2] < small.ms_per_4kb[0] * 0.95);
    let large = rows.iter().find(|r| r.area == 1e-1).unwrap();
    assert!(large.ms_per_4kb[2] > large.ms_per_4kb[0] * 0.85);
}

#[test]
fn figure12_point_queries_cluster_not_penalized() {
    let rows = point_queries(&smoke(), &[a1()]);
    let row = &rows[0];
    // §5.5: almost no difference between secondary and cluster.
    let rel = (row.ms_per_4kb[2] - row.ms_per_4kb[0]).abs() / row.ms_per_4kb[0];
    assert!(
        rel < 0.15,
        "cluster deviates {:.0}% from secondary",
        rel * 100.0
    );
    // Primary is best for the smallest objects.
    assert!(row.ms_per_4kb[1] < row.ms_per_4kb[0]);
}

#[test]
fn window_queries_return_exact_answers() {
    // End-to-end through the public API with full geometry: the database
    // must agree with brute force over the polylines.
    let map = SpatialMap::generate(a1(), 0.002, GeometryMode::Full, 7);
    for kind in [
        OrganizationKind::Secondary,
        OrganizationKind::Primary,
        OrganizationKind::Cluster,
    ] {
        let ws = Workspace::new(256);
        let mut db = ws.create_database(DbOptions::new(kind).smax_bytes(40 * 1024));
        for obj in &map.objects {
            db.insert(obj.id, obj.geometry.clone().unwrap());
        }
        db.finish_loading();
        let queries = WindowQuerySet::generate(&map, 1e-2, 20, 3);
        for w in &queries.windows {
            let got = db.query().window(*w).run().ids();
            let want: Vec<u64> = map
                .objects
                .iter()
                .filter(|o| {
                    o.geometry
                        .as_ref()
                        .map(|g| g.intersects_rect(w))
                        .unwrap_or(false)
                })
                .map(|o| o.id)
                .collect();
            assert_eq!(got, want, "{kind:?} window {w}");
        }
    }
}

#[test]
fn refinement_filters_false_mbr_hits() {
    // A window overlapping MBRs but missing the exact geometry must
    // return nothing.
    let map = SpatialMap::generate(a1(), 0.002, GeometryMode::Full, 11);
    let ws = Workspace::new(256);
    let mut db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
    for obj in &map.objects {
        db.insert(obj.id, obj.geometry.clone().unwrap());
    }
    db.finish_loading();
    // Count candidate vs exact answers over a sample of windows: the MBR
    // filter must over-approximate (candidates ≥ answers) and refinement
    // must discard at least some false hit somewhere.
    // Tiny windows (side ~0.001, smaller than an object MBR) centred
    // inside MBRs often sit in an empty MBR corner of a diagonal street.
    let queries = WindowQuerySet::generate(&map, 1e-6, 120, 5);
    let mut candidates_total = 0usize;
    let mut answers_total = 0usize;
    for w in &queries.windows {
        let answers = db.query().window(*w).run().ids();
        let candidates = map
            .objects
            .iter()
            .filter(|o| o.geometry.as_ref().unwrap().mbr().intersects(w))
            .count();
        assert!(candidates >= answers.len());
        candidates_total += candidates;
        answers_total += answers.len();
    }
    assert!(
        candidates_total > answers_total,
        "refinement never filtered anything ({candidates_total} candidates)"
    );
}

#[test]
fn window_answer_counts_scale_with_area() {
    let scale = smoke();
    let rows = window_query_orgs(&scale, &[a1()]);
    let mut last = 0.0;
    for row in rows {
        assert!(
            row.avg_candidates >= last,
            "answers must grow with window area"
        );
        last = row.avg_candidates;
    }
}

#[test]
fn queries_outside_data_space_are_cheap_and_empty() {
    let ws = Workspace::new(128);
    let mut db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
    let map = SpatialMap::generate(a1(), 0.001, GeometryMode::Full, 13);
    for obj in &map.objects {
        db.insert(obj.id, obj.geometry.clone().unwrap());
    }
    db.finish_loading();
    let far = Rect::new(5.0, 5.0, 6.0, 6.0);
    assert!(db.query().window(far).run().ids().is_empty());
}

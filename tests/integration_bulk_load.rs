//! STR bulk-load equivalence matrix: the sequential bulk load and the
//! parallel driver at 1/2/8 threads must produce identical trees,
//! identical physical placement and identical answers across all three
//! organization models × all four window techniques; single-threaded
//! parallel must be *byte-identical* in I/O accounting to the
//! sequential path; STR-built trees must beat insertion-built trees on
//! construction I/O and directory size while answering identically; and
//! a worker panic mid-tile must salvage the completed partitions'
//! charges, mirroring the parallel-join contract.

use std::panic::{catch_unwind, AssertUnwindSafe};

use spatialdb::bulk_load_records_par;
use spatialdb::geom::{Geometry, Point, Polyline, Rect};
use spatialdb::storage::{
    new_shared_pool, ObjectRecord, OrganizationKind, SecondaryOrganization, WindowTechnique,
};
use spatialdb::{DbOptions, Disk, ObjectId, SpatialDatabase, Workspace};

const ALL_KINDS: [OrganizationKind; 3] = [
    OrganizationKind::Secondary,
    OrganizationKind::Primary,
    OrganizationKind::Cluster,
];

const ALL_TECHNIQUES: [WindowTechnique; 4] = [
    WindowTechnique::Complete,
    WindowTechnique::Threshold,
    WindowTechnique::Slm,
    WindowTechnique::PageByPage,
];

/// A deterministic street-like map of `n` polylines on the unit square.
fn objects(n: u64) -> Vec<(u64, Geometry)> {
    let side = (n as f64).sqrt().ceil() as u64;
    (0..n)
        .map(|i| {
            let x = (i % side) as f64 / side as f64;
            let y = (i / side) as f64 / side as f64;
            let line = Polyline::new(vec![
                Point::new(x, y),
                Point::new(x + 0.6 / side as f64, y + 0.3 / side as f64),
                Point::new(x + 1.2 / side as f64, y),
            ]);
            (i, Geometry::from(line))
        })
        .collect()
}

fn windows() -> Vec<Rect> {
    vec![
        Rect::new(0.0, 0.0, 0.3, 0.3),
        Rect::new(0.2, 0.2, 0.6, 0.5),
        Rect::new(0.5, 0.1, 0.9, 0.4),
        Rect::new(0.05, 0.55, 0.45, 0.95),
        Rect::new(0.45, 0.45, 0.55, 0.55),
        Rect::new(-1.0, -1.0, 2.0, 2.0),
    ]
}

/// Build a database with the sequential STR bulk load.
fn load_str(ws: &Workspace, kind: OrganizationKind, n: u64) -> SpatialDatabase {
    let mut db = ws.create_database(DbOptions::new(kind));
    db.bulk_load(objects(n));
    db.finish_loading();
    db
}

/// Build a database with the parallel STR bulk load on `threads`.
fn load_str_par(ws: &Workspace, kind: OrganizationKind, n: u64, threads: usize) -> SpatialDatabase {
    let mut db = ws.create_database(DbOptions::new(kind));
    ws.bulk_load_par(&mut db, objects(n), threads);
    db.finish_loading();
    db
}

/// Build a database with the insertion loop (the pre-STR path).
fn load_insert(ws: &Workspace, kind: OrganizationKind, n: u64) -> SpatialDatabase {
    let mut db = ws.create_database(DbOptions::new(kind));
    for (id, g) in objects(n) {
        db.insert(id, g);
    }
    db.finish_loading();
    db
}

/// `bulk_load_par(.., 1)` is byte-identical to the sequential
/// `SpatialDatabase::bulk_load` — same I/O statistics to the last
/// fraction of a millisecond, same tree, same placement.
#[test]
fn str_par1_is_byte_identical_to_sequential() {
    const N: u64 = 6_000;
    for kind in ALL_KINDS {
        let ws_seq = Workspace::new(256);
        let ws_par = Workspace::new(256);
        let mut seq = load_str(&ws_seq, kind, N);
        let mut par = load_str_par(&ws_par, kind, N, 1);
        assert_eq!(seq.io_stats(), par.io_stats(), "{kind:?} build stats");
        assert_eq!(seq.occupied_pages(), par.occupied_pages(), "{kind:?}");
        assert_eq!(seq.len(), par.len(), "{kind:?}");
        assert_tree_placement_identical(&mut seq, &mut par, kind);
    }
}

/// The full matrix: at 2 and 8 threads the parallel bulk load builds
/// the same tree with the same physical placement — every window query
/// under every technique answers identically, page run for page run —
/// and writes the same number of pages (only the leaf-run *request
/// count* may differ across thread counts).
#[test]
fn str_par_threads_agree_across_orgs_and_techniques() {
    const N: u64 = 6_000;
    for kind in ALL_KINDS {
        let ws_seq = Workspace::new(256);
        let mut seq = load_str(&ws_seq, kind, N);
        let s = seq.io_stats(); // snapshot before queries pollute the cumulative stats
        for threads in [2usize, 8] {
            let ws_par = Workspace::new(256);
            let mut par = load_str_par(&ws_par, kind, N, threads);
            let p = par.io_stats();
            assert_eq!(s.pages_written, p.pages_written, "{kind:?} t={threads}");
            assert_eq!(s.pages_read, p.pages_read, "{kind:?} t={threads}");
            assert_eq!(
                seq.occupied_pages(),
                par.occupied_pages(),
                "{kind:?} t={threads}"
            );
            assert_tree_placement_identical(&mut seq, &mut par, kind);
        }
    }
}

/// Assert two databases have structurally identical trees and answer
/// every window × technique with identical stats, ids and physical
/// page requests (placement equivalence).
fn assert_tree_placement_identical(
    a: &mut SpatialDatabase,
    b: &mut SpatialDatabase,
    kind: OrganizationKind,
) {
    assert_eq!(
        a.store().tree().height(),
        b.store().tree().height(),
        "{kind:?}"
    );
    assert_eq!(
        a.store().tree().num_nodes(),
        b.store().tree().num_nodes(),
        "{kind:?}"
    );
    assert_eq!(
        a.store().tree().num_leaves(),
        b.store().tree().num_leaves(),
        "{kind:?}"
    );
    for technique in ALL_TECHNIQUES {
        for (i, w) in windows().into_iter().enumerate() {
            // Cold-start both stores so buffer state from earlier
            // queries cannot skew the comparison.
            a.store_mut().begin_query();
            b.store_mut().begin_query();
            let (stats_a, trace_a) = a.store().window_query_traced(&w, technique);
            let (stats_b, trace_b) = b.store().window_query_traced(&w, technique);
            assert_eq!(stats_a, stats_b, "{kind:?}/{technique:?}/{i} stats");
            assert_eq!(trace_a, trace_b, "{kind:?}/{technique:?}/{i} requests");
        }
    }
}

/// STR construction charges strictly less simulated I/O than the
/// insertion loop, packs a strictly smaller directory, and the finished
/// database answers the full technique matrix with the same result sets.
#[test]
fn str_beats_insertion_and_answers_identically() {
    const N: u64 = 6_000;
    for kind in ALL_KINDS {
        let ws_ins = Workspace::new(256);
        let ws_str = Workspace::new(256);
        let ins = load_insert(&ws_ins, kind, N);
        let str_db = load_str(&ws_str, kind, N);
        assert!(
            str_db.io_stats().io_ms < ins.io_stats().io_ms,
            "{kind:?}: STR build {} ms not below insertion build {} ms",
            str_db.io_stats().io_ms,
            ins.io_stats().io_ms,
        );
        assert!(
            str_db.store().tree().num_nodes() < ins.store().tree().num_nodes(),
            "{kind:?}: STR packs no fewer nodes",
        );
        for technique in ALL_TECHNIQUES {
            for (i, w) in windows().into_iter().enumerate() {
                let mut ids_ins: Vec<u64> = str_db
                    .query()
                    .window(w)
                    .technique(technique)
                    .run()
                    .map(|(id, _)| id)
                    .collect();
                let mut ids_str: Vec<u64> = ins
                    .query()
                    .window(w)
                    .technique(technique)
                    .run()
                    .map(|(id, _)| id)
                    .collect();
                ids_ins.sort_unstable();
                ids_str.sort_unstable();
                assert_eq!(ids_ins, ids_str, "{kind:?}/{technique:?}/{i}");
            }
        }
    }
}

/// Packing quality: at the default 0.9 fill factor the STR leaf level
/// is near-minimal — no more than 6 % above ⌈N / leaf_cap⌉ leaves
/// (slack for per-slice ragged tails) — while the insertion-built tree
/// runs ~30 % fatter.
#[test]
fn str_leaf_level_is_packed() {
    const N: u64 = 10_000;
    let ws = Workspace::new(256);
    let db = load_str(&ws, OrganizationKind::Secondary, N);
    let store = db.store();
    let tree = store.tree();
    let leaf_cap = (tree.config().max_entries as f64 * 0.9).floor() as usize;
    let minimal = (N as usize).div_ceil(leaf_cap);
    assert!(
        tree.num_leaves() <= minimal + minimal / 16,
        "{} leaves for a minimal packing of {minimal}",
        tree.num_leaves(),
    );
    let ws_ins = Workspace::new(256);
    let ins = load_insert(&ws_ins, OrganizationKind::Secondary, N);
    assert!(ins.store().tree().num_leaves() > tree.num_leaves());
}

/// The in-memory baseline takes the same bulk-load entry points and
/// answers identically to its insertion-built twin.
#[test]
fn memory_store_bulk_load_matches_insertion() {
    use spatialdb::storage::MemoryStore;
    const N: u64 = 2_000;
    let ws_a = Workspace::new(64);
    let mut a = ws_a.create_database_with(Box::new(MemoryStore::new(ws_a.disk(), ws_a.pool())));
    ws_a.bulk_load_par(&mut a, objects(N), 4);
    let ws_b = Workspace::new(64);
    let b = ws_b.create_database_with(Box::new(MemoryStore::new(ws_b.disk(), ws_b.pool())));
    for (id, g) in objects(N) {
        b.insert(id, g);
    }
    assert_eq!(a.len(), b.len());
    for (i, w) in windows().into_iter().enumerate() {
        let mut ids_a: Vec<u64> = a.query().window(w).run().map(|(id, _)| id).collect();
        let mut ids_b: Vec<u64> = b.query().window(w).run().map(|(id, _)| id).collect();
        ids_a.sort_unstable();
        ids_b.sort_unstable();
        assert_eq!(ids_a, ids_b, "window {i}");
    }
}

/// Duplicate object ids are rejected up front, before any I/O.
#[test]
#[should_panic(expected = "already stored")]
fn bulk_load_rejects_duplicate_ids() {
    let ws = Workspace::new(64);
    let mut db = ws.create_database(DbOptions::new(OrganizationKind::Secondary));
    let mut objs = objects(100);
    objs.push((42, objs[42].1.clone()));
    db.bulk_load(objs);
}

/// A worker panicking mid-tile (here: a non-finite MBR smuggled past
/// the planner) must not lose the I/O already charged by the
/// partitions that completed — the scratch tallies absorb on unwind,
/// exactly like the parallel MBR join's salvage contract.
#[test]
fn worker_panic_salvages_completed_partition_io() {
    const N: u64 = 4_000;
    let disk = Disk::with_defaults();
    let pool = new_shared_pool(disk.clone(), 128);
    let mut org = SecondaryOrganization::new(disk.clone(), pool);
    let side = (N as f64).sqrt().ceil() as u64;
    let mut records: Vec<ObjectRecord> = (0..N)
        .map(|i| {
            let x = (i % side) as f64 / side as f64;
            let y = (i / side) as f64 / side as f64;
            ObjectRecord::new(ObjectId(i), Rect::new(x, y, x + 0.01, y + 0.01), 512)
        })
        .collect();
    // NaN sorts last under the STR total order, so the poisoned entry
    // lands in the final partition; the earlier partitions finish their
    // tiling (and leaf-run charges) before the panic propagates.
    records.push(ObjectRecord::new(
        ObjectId(N),
        Rect {
            xmin: f64::NAN,
            ymin: 0.0,
            xmax: f64::NAN,
            ymax: 1.0,
        },
        512,
    ));
    let result = catch_unwind(AssertUnwindSafe(|| {
        bulk_load_records_par(&mut org, &records, 4);
    }));
    assert!(result.is_err(), "non-finite MBR must abort the bulk load");
    let stats = disk.stats();
    assert!(
        stats.pages_written > 0,
        "completed partitions' leaf-run charges were lost",
    );
}

//! Cross-crate integration tests: the spatial-join shapes of Figures 14,
//! 16 and 17, plus join correctness through the public API.

use spatialdb::data::{DataSet, GeometryMode, MapId, SeriesId, SpatialMap};
use spatialdb::experiments::{
    calibrate_versions, join_breakdown, join_orgs, join_techniques, Scale,
};
use spatialdb::{DbOptions, JoinConfig, OrganizationKind, Workspace};

fn smoke() -> Scale {
    Scale {
        data_scale: 0.03,
        // Buffers sized relative to the shrunken maps, all larger than
        // one C-series cluster unit (80 pages).
        join_buffers: vec![160, 320, 640],
        ..Scale::smoke()
    }
}

#[test]
fn join_versions_calibrate_to_paper_selectivities() {
    let (a, b) = calibrate_versions(&smoke(), SeriesId::C);
    assert!(
        (a.pairs_per_mbr - 0.65).abs() / 0.65 < 0.2,
        "version a: {} pairs/MBR",
        a.pairs_per_mbr
    );
    assert!(
        (b.pairs_per_mbr - 9.0).abs() / 9.0 < 0.2,
        "version b: {} pairs/MBR",
        b.pairs_per_mbr
    );
    assert!(b.inflation > a.inflation);
}

#[test]
fn figure14_cluster_wins_joins() {
    let rows = join_orgs(&smoke(), SeriesId::C);
    for row in &rows {
        let [sec, _prim, clu] = row.io_seconds;
        assert!(
            clu < sec,
            "v{} buf {}: cluster {clu} !< secondary {sec}",
            row.version,
            row.buffer_pages
        );
    }
    // Version b (9 pairs/MBR) profits more than version a (0.65).
    let speedup = |version: &str| {
        let r = rows
            .iter()
            .filter(|r| r.version == version)
            .max_by_key(|r| r.buffer_pages)
            .unwrap();
        r.io_seconds[0] / r.io_seconds[2]
    };
    assert!(
        speedup("b") > speedup("a"),
        "b {:.1}x !> a {:.1}x",
        speedup("b"),
        speedup("a")
    );
    assert!(speedup("a") > 1.5, "version a speedup {:.1}x", speedup("a"));
}

#[test]
fn figure14_larger_buffers_never_hurt() {
    let rows = join_orgs(&smoke(), SeriesId::C);
    for version in ["a", "b"] {
        let mut per_version: Vec<_> = rows.iter().filter(|r| r.version == version).collect();
        per_version.sort_by_key(|r| r.buffer_pages);
        for pair in per_version.windows(2) {
            for k in 0..3 {
                assert!(
                    pair[1].io_seconds[k] <= pair[0].io_seconds[k] + 1e-6,
                    "v{version} org {k}: {} pages {} > {} pages {}",
                    pair[1].buffer_pages,
                    pair[1].io_seconds[k],
                    pair[0].buffer_pages,
                    pair[0].io_seconds[k]
                );
            }
        }
    }
}

#[test]
fn figure16_optimum_bounds_and_convergence() {
    let rows = join_techniques(&smoke(), SeriesId::C);
    for row in &rows {
        let [complete, vector, read, opt] = row.io_seconds;
        assert!(opt <= complete + 1e-9);
        assert!(opt <= vector + 1e-9);
        assert!(opt <= read + 1e-9);
    }
    // At the largest buffer the complete technique is close to optimum
    // ("the maximum transfer rate of the disk is reached", §6.2).
    let best = rows
        .iter()
        .filter(|r| r.version == "a")
        .max_by_key(|r| r.buffer_pages)
        .unwrap();
    assert!(
        best.io_seconds[0] < best.io_seconds[3] * 2.2,
        "complete {} far from optimum {}",
        best.io_seconds[0],
        best.io_seconds[3]
    );
}

#[test]
fn figure17_breakdown_shape() {
    let rows = join_breakdown(&smoke(), 320);
    for version in ["a", "b"] {
        let sec = rows
            .iter()
            .find(|r| r.version == version && r.organization == "sec. org.")
            .unwrap();
        let clu = rows
            .iter()
            .find(|r| r.version == version && r.organization == "cluster org.")
            .unwrap();
        // Same MBR pairs, same exact-test cost, similar MBR-join cost.
        assert_eq!(sec.mbr_pairs, clu.mbr_pairs);
        assert_eq!(sec.exact_test_s, clu.exact_test_s);
        // The transfer step is what collapses.
        assert!(
            clu.transfer_s < sec.transfer_s / 2.0,
            "v{version}: transfer {} !< {}/2",
            clu.transfer_s,
            sec.transfer_s
        );
        // Total speedup in the paper's ballpark (≥ 2x at smoke scale).
        let speedup = sec.total_s() / clu.total_s();
        assert!(speedup > 2.0, "v{version}: total speedup {speedup:.1}x");
    }
}

#[test]
fn join_exact_results_match_brute_force() {
    let m1 = SpatialMap::generate(
        DataSet {
            series: SeriesId::A,
            map: MapId::Map1,
        },
        0.002,
        GeometryMode::Full,
        3,
    );
    let m2 = SpatialMap::generate(
        DataSet {
            series: SeriesId::A,
            map: MapId::Map2,
        },
        0.002,
        GeometryMode::Full,
        3,
    );
    let ws = Workspace::new(512);
    let mut a = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
    let mut b = ws.create_database(DbOptions::new(OrganizationKind::Secondary));
    for o in &m1.objects {
        a.insert(o.id, o.geometry.clone().unwrap());
    }
    for o in &m2.objects {
        b.insert(o.id, o.geometry.clone().unwrap());
    }
    a.finish_loading();
    b.finish_loading();
    let cursor = a.join(&b).config(JoinConfig::default()).run();
    let stats = cursor.stats();
    let got = cursor.pairs();
    let mut want = Vec::new();
    for x in &m1.objects {
        for y in &m2.objects {
            let gx = x.geometry.as_ref().unwrap();
            let gy = y.geometry.as_ref().unwrap();
            if gx.intersects_polyline(gy) {
                want.push((x.id, y.id));
            }
        }
    }
    want.sort_unstable();
    assert_eq!(got, want);
    assert!(stats.mbr_pairs as usize >= got.len());
}

//! Cross-crate integration tests: building the three organization models
//! from generated data and checking the construction / storage-utilization
//! shapes of Figures 5–7.

use spatialdb::data::{DataSet, MapId, SeriesId};
use spatialdb::experiments::{
    build_organization, construction_suite, records_of, table1, ClusterSizing, Scale,
};
use spatialdb::rtree::validate::check_invariants;
use spatialdb::storage::{OrganizationKind, SpatialStore};

fn smoke() -> Scale {
    Scale {
        data_scale: 0.03,
        num_queries: 40,
        construction_buffer: 64,
        ..Scale::smoke()
    }
}

fn a1() -> DataSet {
    DataSet {
        series: SeriesId::A,
        map: MapId::Map1,
    }
}

#[test]
fn table1_matches_paper_statistics() {
    let rows = table1(&smoke());
    assert_eq!(rows.len(), 6);
    for row in rows {
        // Average object size within 8% of the paper's value.
        let rel =
            (row.avg_object_bytes - row.paper_avg_bytes as f64).abs() / row.paper_avg_bytes as f64;
        assert!(
            rel < 0.08,
            "{}: avg {} vs paper {}",
            row.dataset,
            row.avg_object_bytes,
            row.paper_avg_bytes
        );
        // Scaled total volume proportional to the paper's total.
        let expected_mb = row.paper_total_mb * 0.03;
        assert!(
            (row.total_mb - expected_mb).abs() / expected_mb < 0.1,
            "{}: {} MB vs scaled paper {} MB",
            row.dataset,
            row.total_mb,
            expected_mb
        );
    }
}

#[test]
fn every_organization_builds_consistently() {
    let scale = smoke();
    let map = scale.map(a1());
    let records = records_of(&map.objects);
    let smax = a1().spec().smax_bytes as u64;
    for kind in [
        OrganizationKind::Secondary,
        OrganizationKind::Primary,
        OrganizationKind::Cluster,
    ] {
        let (org, stats) = build_organization(kind, &records, smax, ClusterSizing::Plain, 64);
        assert_eq!(org.num_objects(), records.len(), "{kind:?}");
        assert_eq!(org.tree().len(), records.len(), "{kind:?}");
        check_invariants(org.tree()).unwrap();
        assert!(stats.io_ms > 0.0);
        assert!(org.occupied_pages() > 0);
        if let spatialdb::Organization::Cluster(c) = &org {
            c.check_consistency().unwrap();
        }
    }
}

#[test]
fn figure5_construction_shape() {
    // Cluster < secondary < primary, and primary grows with object size
    // while secondary/cluster stay nearly flat.
    let scale = smoke();
    let sets = [
        a1(),
        DataSet {
            series: SeriesId::C,
            map: MapId::Map1,
        },
    ];
    let rows = construction_suite(&scale, &sets);
    for row in &rows {
        let [sec, prim, clu] = row.io_seconds;
        assert!(
            clu < sec,
            "{}: cluster {clu} !< secondary {sec}",
            row.dataset
        );
        assert!(
            sec < prim,
            "{}: secondary {sec} !< primary {prim}",
            row.dataset
        );
    }
    // Primary grows with object size; secondary and cluster stay within 25%.
    assert!(rows[1].io_seconds[1] > rows[0].io_seconds[1] * 1.3);
    assert!(rows[1].io_seconds[0] < rows[0].io_seconds[0] * 1.25);
    assert!(rows[1].io_seconds[2] < rows[0].io_seconds[2] * 1.25);
}

#[test]
fn figure6_storage_utilization_shape() {
    // Secondary best (fewest pages), cluster worst (full-Smax units).
    let scale = smoke();
    let rows = construction_suite(&scale, &[a1()]);
    let [sec, prim, clu] = rows[0].occupied_pages;
    assert!(sec < prim, "secondary {sec} !< primary {prim}");
    assert!(prim < clu, "primary {prim} !< cluster {clu}");
}

#[test]
fn figure7_restricted_buddy_shape() {
    // The restricted buddy system brings the cluster organization's
    // occupied pages to about the primary organization's level, at only
    // slightly higher construction cost.
    let scale = smoke();
    let rows = construction_suite(&scale, &[a1()]);
    let row = &rows[0];
    assert!(row.buddy_pages < row.occupied_pages[2], "buddy must help");
    // Within 35% of the primary organization (paper: "about the same").
    let prim = row.occupied_pages[1] as f64;
    assert!(
        (row.buddy_pages as f64 - prim).abs() / prim < 0.35,
        "buddy {} vs primary {}",
        row.buddy_pages,
        prim
    );
    // Construction at most 15% more expensive than without the buddy.
    assert!(row.buddy_io_seconds < row.io_seconds[2] * 1.15);
}

#[test]
fn smax_rule_produces_paper_cluster_sizes() {
    // §4.2: Smax ≈ 1.5 · M · S_obj; Table 1's 80/160/320 KB follow.
    for ds in DataSet::all() {
        let spec = ds.spec();
        let rule = spec.smax_rule(89);
        let ratio = rule / spec.smax_bytes as f64;
        assert!(
            (0.75..=1.6).contains(&ratio),
            "{ds}: rule {rule} vs table {}",
            spec.smax_bytes
        );
    }
}

//! The maps and test series of Table 1.

use std::fmt;

/// Which of the paper's two maps.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MapId {
    /// Map 1: 131,461 streets.
    Map1,
    /// Map 2: 128,971 administrative boundaries, rivers, railway tracks.
    Map2,
}

impl MapId {
    /// Number of objects in the full map (Table 1).
    pub fn num_objects(&self) -> usize {
        match self {
            MapId::Map1 => 131_461,
            MapId::Map2 => 128_971,
        }
    }
}

impl fmt::Display for MapId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapId::Map1 => write!(f, "1"),
            MapId::Map2 => write!(f, "2"),
        }
    }
}

/// Which of the paper's three object-size test series.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SeriesId {
    /// Series A: smallest objects.
    A,
    /// Series B: medium objects (2× A).
    B,
    /// Series C: largest objects (4× A).
    C,
}

impl fmt::Display for SeriesId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeriesId::A => write!(f, "A"),
            SeriesId::B => write!(f, "B"),
            SeriesId::C => write!(f, "C"),
        }
    }
}

/// A combination of test series and map, e.g. `A-1` (Table 1 rows).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DataSet {
    /// The object-size series.
    pub series: SeriesId,
    /// The map.
    pub map: MapId,
}

impl fmt::Display for DataSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} - {}", self.series, self.map)
    }
}

impl DataSet {
    /// All six rows of Table 1, in the paper's order.
    pub fn all() -> [DataSet; 6] {
        [
            DataSet {
                series: SeriesId::A,
                map: MapId::Map1,
            },
            DataSet {
                series: SeriesId::B,
                map: MapId::Map1,
            },
            DataSet {
                series: SeriesId::C,
                map: MapId::Map1,
            },
            DataSet {
                series: SeriesId::A,
                map: MapId::Map2,
            },
            DataSet {
                series: SeriesId::B,
                map: MapId::Map2,
            },
            DataSet {
                series: SeriesId::C,
                map: MapId::Map2,
            },
        ]
    }

    /// The specification (Table 1 row) for this data set.
    pub fn spec(&self) -> SeriesSpec {
        let avg_object_bytes = match (self.series, self.map) {
            (SeriesId::A, MapId::Map1) => 625,
            (SeriesId::B, MapId::Map1) => 1_247,
            (SeriesId::C, MapId::Map1) => 2_490,
            (SeriesId::A, MapId::Map2) => 781,
            (SeriesId::B, MapId::Map2) => 1_558,
            (SeriesId::C, MapId::Map2) => 3_113,
        };
        let smax_kb = match self.series {
            SeriesId::A => 80,
            SeriesId::B => 160,
            SeriesId::C => 320,
        };
        SeriesSpec {
            dataset: *self,
            num_objects: self.map.num_objects(),
            avg_object_bytes,
            smax_bytes: smax_kb * 1024,
        }
    }
}

/// One row of Table 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SeriesSpec {
    /// Which series-map combination this describes.
    pub dataset: DataSet,
    /// Number of objects.
    pub num_objects: usize,
    /// Average object size in bytes.
    pub avg_object_bytes: usize,
    /// Maximum size of a cluster unit `Smax` in bytes.
    pub smax_bytes: usize,
}

impl SeriesSpec {
    /// Total data volume in megabytes (`num_objects · avg_object_bytes`).
    pub fn total_mb(&self) -> f64 {
        (self.num_objects * self.avg_object_bytes) as f64 / (1024.0 * 1024.0)
    }

    /// `Smax` in 4 KB pages.
    pub fn smax_pages(&self) -> u64 {
        (self.smax_bytes as u64).div_ceil(spatialdb_disk::PAGE_SIZE as u64)
    }

    /// The paper's `Smax ≈ 1.5 · M · S_obj` rule of §4.2, for checking the
    /// Table 1 values.
    pub fn smax_rule(&self, max_entries: usize) -> f64 {
        1.5 * max_entries as f64 * self.avg_object_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_object_counts() {
        assert_eq!(MapId::Map1.num_objects(), 131_461);
        assert_eq!(MapId::Map2.num_objects(), 128_971);
    }

    #[test]
    fn table1_total_sizes_match_paper() {
        // Paper: A-1 = 78.4 MB, B-1 = 156.3, C-1 = 312.1,
        //        A-2 = 96.1, B-2 = 191.7, C-2 = 382.9.
        let expect = [78.4, 156.3, 312.1, 96.1, 191.7, 382.9];
        for (ds, want) in DataSet::all().iter().zip(expect) {
            let got = ds.spec().total_mb();
            assert!(
                (got - want).abs() < 1.0,
                "{ds}: computed {got:.1} MB, paper says {want}"
            );
        }
    }

    #[test]
    fn smax_pages() {
        let a1 = DataSet {
            series: SeriesId::A,
            map: MapId::Map1,
        }
        .spec();
        assert_eq!(a1.smax_pages(), 20);
        let c2 = DataSet {
            series: SeriesId::C,
            map: MapId::Map2,
        }
        .spec();
        assert_eq!(c2.smax_pages(), 80);
    }

    #[test]
    fn smax_rule_approximates_table1() {
        // §4.2: Smax ≈ 1.5 · M · S_obj with M = 89.
        // For A-1: 1.5 · 89 · 625 = 83,437 B ≈ 80 KB. The paper rounds to
        // the series' power-of-two-ish KB values.
        let a1 = DataSet {
            series: SeriesId::A,
            map: MapId::Map1,
        }
        .spec();
        let rule = a1.smax_rule(89);
        let table = a1.smax_bytes as f64;
        assert!(
            (rule - table).abs() / table < 0.10,
            "rule {rule} vs {table}"
        );
    }

    #[test]
    fn display_format_matches_paper() {
        let ds = DataSet {
            series: SeriesId::C,
            map: MapId::Map1,
        };
        assert_eq!(ds.to_string(), "C - 1");
    }

    #[test]
    fn all_covers_six_rows() {
        let all = DataSet::all();
        assert_eq!(all.len(), 6);
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), 6);
    }
}

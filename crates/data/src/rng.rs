//! Minimal deterministic PRNG used by the data and workload generators.
//!
//! The generators only need `seed_from_u64`, `gen_range` and `gen_bool`,
//! so instead of depending on the external `rand` crate (unavailable in
//! this offline build) we ship a small xoshiro256++ generator with a
//! splitmix64 seeding routine — the same construction `rand`'s `SmallRng`
//! uses on 64-bit platforms. Determinism is what matters here: identical
//! seeds must yield identical maps and workloads across runs and
//! platforms.

use std::ops::{Range, RangeInclusive};

/// A small, fast, deterministic random-number generator (xoshiro256++).
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Seed the generator from a single `u64` via splitmix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from `range` (see [`SampleRange`]).
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// Ranges [`SmallRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample.
    fn sample(self, rng: &mut SmallRng) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample(self, rng: &mut SmallRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SmallRng) -> usize {
        assert!(self.start < self.end, "empty range");
        let span = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % span) as usize
    }
}

impl SampleRange for Range<u8> {
    type Output = u8;
    fn sample(self, rng: &mut SmallRng) -> u8 {
        assert!(self.start < self.end, "empty range");
        let span = u64::from(self.end - self.start);
        self.start + (rng.next_u64() % span) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_samples_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let x = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let y = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&y));
            let i = rng.gen_range(3..9usize);
            assert!((3..9).contains(&i));
            let b = rng.gen_range(0..3u8);
            assert!(b < 3);
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_800..3_200).contains(&hits), "{hits} hits");
    }
}

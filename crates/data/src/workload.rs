//! Query workloads and join calibration (§5.4, §5.5, §6.1).

use crate::maps::SpatialMap;
use crate::rng::SmallRng;
use spatialdb_geom::{Point, Rect};

/// Number of queries per experiment in the paper (§5.4: *"For each test,
/// 678 queries were started"*).
pub const PAPER_QUERY_COUNT: usize = 678;

/// The window-area fractions of the data space used in Figures 8 and 10:
/// 0.001 %, 0.01 %, 0.1 %, 1 %, 10 %.
pub const PAPER_WINDOW_AREAS: [f64; 5] = [1e-5, 1e-4, 1e-3, 1e-2, 1e-1];

/// A set of window queries of one area class.
#[derive(Clone, Debug)]
pub struct WindowQuerySet {
    /// Fraction of the data-space area each window covers.
    pub area_fraction: f64,
    /// The query windows.
    pub windows: Vec<Rect>,
}

impl WindowQuerySet {
    /// Generate `count` square windows of the given area fraction whose
    /// centres follow the MBR distribution: *"each window center was
    /// contained in the MBR of a stored object"* (§5.4) — a random point
    /// inside the MBR of a randomly chosen object.
    pub fn generate(map: &SpatialMap, area_fraction: f64, count: usize, seed: u64) -> Self {
        assert!(area_fraction > 0.0 && area_fraction <= 1.0);
        assert!(!map.is_empty(), "cannot place queries on an empty map");
        let side = area_fraction.sqrt(); // data space is the unit square
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5ca1ab1e);
        let mut windows = Vec::with_capacity(count);
        for _ in 0..count {
            let obj = &map.objects[rng.gen_range(0..map.objects.len())];
            let m = obj.mbr;
            let cx = if m.width() > 0.0 {
                rng.gen_range(m.xmin..=m.xmax)
            } else {
                m.xmin
            };
            let cy = if m.height() > 0.0 {
                rng.gen_range(m.ymin..=m.ymax)
            } else {
                m.ymin
            };
            windows.push(Rect::centered(Point::new(cx, cy), side, side));
        }
        WindowQuerySet {
            area_fraction,
            windows,
        }
    }

    /// The paper-standard set: 678 windows.
    pub fn paper_standard(map: &SpatialMap, area_fraction: f64, seed: u64) -> Self {
        Self::generate(map, area_fraction, PAPER_QUERY_COUNT, seed)
    }

    /// The centres of the windows (the paper's point-query workload,
    /// §5.5: *"the query points being the centers of the window
    /// queries"*).
    pub fn centers(&self) -> PointQuerySet {
        PointQuerySet {
            points: self.windows.iter().map(|w| w.center()).collect(),
        }
    }
}

/// A set of point queries.
#[derive(Clone, Debug)]
pub struct PointQuerySet {
    /// The query points.
    pub points: Vec<Point>,
}

/// Scale every MBR around its centre by `factor` (§6.1: the join versions
/// *a* and *b* are *"derived … by using MBRs with different extensions"*).
pub fn inflate_mbrs(mbrs: &[Rect], factor: f64) -> Vec<Rect> {
    mbrs.iter().map(|r| r.scale(factor)).collect()
}

/// Average number of rectangles of `b` each rectangle of `a` intersects,
/// computed with a uniform grid in `O(n + k)`.
///
/// This is the join selectivity measure of §6.1 (version a: ≈ 0.65
/// intersections per MBR; version b: ≈ 9).
pub fn pairs_per_mbr(a: &[Rect], b: &[Rect]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    let pairs = count_intersections(a, b);
    pairs as f64 / a.len() as f64
}

/// Count intersecting pairs between two rectangle sets with a uniform
/// grid; each pair is counted exactly once (reported only in the grid
/// cell containing the top-left corner of the pair's intersection).
pub fn count_intersections(a: &[Rect], b: &[Rect]) -> u64 {
    let n = (a.len() + b.len()).max(1);
    let cells_per_side = ((n as f64).sqrt().ceil() as usize).clamp(1, 2048);
    let cell = 1.0 / cells_per_side as f64;
    let clamp_idx = |v: f64| -> usize {
        ((v / cell).floor() as isize).clamp(0, cells_per_side as isize - 1) as usize
    };
    // Bucket the rectangles of b by every cell they overlap.
    let mut grid: Vec<Vec<u32>> = vec![Vec::new(); cells_per_side * cells_per_side];
    for (i, r) in b.iter().enumerate() {
        let (x0, x1) = (clamp_idx(r.xmin), clamp_idx(r.xmax));
        let (y0, y1) = (clamp_idx(r.ymin), clamp_idx(r.ymax));
        for y in y0..=y1 {
            for x in x0..=x1 {
                grid[y * cells_per_side + x].push(i as u32);
            }
        }
    }
    let mut count = 0u64;
    for ra in a {
        let (x0, x1) = (clamp_idx(ra.xmin), clamp_idx(ra.xmax));
        let (y0, y1) = (clamp_idx(ra.ymin), clamp_idx(ra.ymax));
        for y in y0..=y1 {
            for x in x0..=x1 {
                for &bi in &grid[y * cells_per_side + x] {
                    let rb = &b[bi as usize];
                    if !ra.intersects(rb) {
                        continue;
                    }
                    // Home-cell test: count only where the intersection's
                    // lower-left corner lives.
                    let ix = ra.xmin.max(rb.xmin);
                    let iy = ra.ymin.max(rb.ymin);
                    if clamp_idx(ix) == x && clamp_idx(iy) == y {
                        count += 1;
                    }
                }
            }
        }
    }
    count
}

/// Find the MBR inflation factor that makes `pairs_per_mbr` hit `target`
/// within `tol` (relative), by bisection over `[lo, hi]`.
///
/// Both maps' MBRs are inflated by the same factor, matching the paper's
/// setup of deriving both join versions from the same geometry.
pub fn calibrate_inflation(a: &[Rect], b: &[Rect], target: f64, tol: f64) -> f64 {
    let (mut lo, mut hi) = (0.05f64, 64.0f64);
    let selectivity = |f: f64| {
        let ia = inflate_mbrs(a, f);
        let ib = inflate_mbrs(b, f);
        pairs_per_mbr(&ia, &ib)
    };
    for _ in 0..48 {
        let mid = (lo * hi).sqrt(); // geometric bisection: scale-free
        let s = selectivity(mid);
        if (s - target).abs() / target < tol {
            return mid;
        }
        if s < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo * hi).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maps::GeometryMode;
    use crate::series::{DataSet, MapId, SeriesId};

    fn small_map() -> SpatialMap {
        SpatialMap::generate(
            DataSet {
                series: SeriesId::A,
                map: MapId::Map1,
            },
            0.01,
            GeometryMode::MbrOnly,
            42,
        )
    }

    #[test]
    fn windows_have_requested_area() {
        let map = small_map();
        let ws = WindowQuerySet::generate(&map, 1e-3, 50, 7);
        for w in &ws.windows {
            assert!((w.area() - 1e-3).abs() < 1e-12);
            assert!((w.width() - w.height()).abs() < 1e-12, "square windows");
        }
    }

    #[test]
    fn window_centers_inside_some_mbr() {
        let map = small_map();
        let ws = WindowQuerySet::generate(&map, 1e-4, 100, 3);
        for w in &ws.windows {
            let c = w.center();
            assert!(
                map.objects.iter().any(|o| o.mbr.contains_point(&c)),
                "window centre {c} outside every MBR"
            );
        }
    }

    #[test]
    fn paper_standard_count() {
        let map = small_map();
        let ws = WindowQuerySet::paper_standard(&map, 1e-5, 1);
        assert_eq!(ws.windows.len(), PAPER_QUERY_COUNT);
    }

    #[test]
    fn centers_are_window_centers() {
        let map = small_map();
        let ws = WindowQuerySet::generate(&map, 1e-3, 20, 9);
        let ps = ws.centers();
        assert_eq!(ps.points.len(), 20);
        for (p, w) in ps.points.iter().zip(&ws.windows) {
            assert_eq!(*p, w.center());
        }
    }

    #[test]
    fn workload_deterministic() {
        let map = small_map();
        let w1 = WindowQuerySet::generate(&map, 1e-3, 30, 5);
        let w2 = WindowQuerySet::generate(&map, 1e-3, 30, 5);
        assert_eq!(w1.windows, w2.windows);
    }

    #[test]
    fn count_intersections_matches_brute_force() {
        let map = small_map();
        let a: Vec<Rect> = map.mbrs().into_iter().take(300).collect();
        let b: Vec<Rect> = map.mbrs().into_iter().skip(300).take(300).collect();
        let brute = a
            .iter()
            .map(|ra| b.iter().filter(|rb| ra.intersects(rb)).count() as u64)
            .sum::<u64>();
        assert_eq!(count_intersections(&a, &b), brute);
    }

    #[test]
    fn inflate_preserves_center_scales_area() {
        let r = Rect::new(0.2, 0.2, 0.4, 0.6);
        let out = inflate_mbrs(&[r], 2.0);
        assert_eq!(out[0].center(), r.center());
        assert!((out[0].area() - 4.0 * r.area()).abs() < 1e-12);
    }

    #[test]
    fn inflation_increases_selectivity() {
        let map = small_map();
        let a = map.mbrs();
        let small = pairs_per_mbr(&inflate_mbrs(&a, 0.5), &inflate_mbrs(&a, 0.5));
        let large = pairs_per_mbr(&inflate_mbrs(&a, 4.0), &inflate_mbrs(&a, 4.0));
        assert!(large > small);
    }

    #[test]
    fn calibration_hits_target() {
        let m1 = small_map();
        let m2 = SpatialMap::generate(
            DataSet {
                series: SeriesId::A,
                map: MapId::Map2,
            },
            0.01,
            GeometryMode::MbrOnly,
            42,
        );
        let a = m1.mbrs();
        let b = m2.mbrs();
        let target = 2.0;
        let f = calibrate_inflation(&a, &b, target, 0.05);
        let got = pairs_per_mbr(&inflate_mbrs(&a, f), &inflate_mbrs(&b, f));
        assert!(
            (got - target).abs() / target < 0.15,
            "calibrated {f}: selectivity {got} target {target}"
        );
    }
}

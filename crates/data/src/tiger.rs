//! TIGER/Line-flavoured record model.
//!
//! The paper's data source is the 1990 TIGER/Line Percensus files
//! \[Bur89\]. TIGER classifies line features with *Census Feature Class
//! Codes* (CFCC): `A*` for roads, `B*` for railroads, `F*` for
//! non-visible boundaries, `H*` for hydrography. This module provides a
//! minimal record type carrying that classification so examples can
//! present generated data the way a TIGER extract would look.

use crate::maps::MapObject;

/// Feature classification, mirroring the top-level TIGER CFCC classes
/// used by the paper's two maps.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FeatureClass {
    /// A CFCC `A4x` neighborhood street (map 1).
    Street,
    /// A CFCC `H1x` naturally flowing watercourse (map 2).
    River,
    /// A CFCC `B1x` railroad main line (map 2).
    RailwayTrack,
    /// A CFCC `F1x` legal or administrative boundary (map 2).
    AdminBoundary,
}

impl FeatureClass {
    /// The representative CFCC code of the class.
    pub fn cfcc(&self) -> &'static str {
        match self {
            FeatureClass::Street => "A41",
            FeatureClass::River => "H11",
            FeatureClass::RailwayTrack => "B11",
            FeatureClass::AdminBoundary => "F10",
        }
    }
}

impl std::fmt::Display for FeatureClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FeatureClass::Street => "street",
            FeatureClass::River => "river",
            FeatureClass::RailwayTrack => "railway track",
            FeatureClass::AdminBoundary => "administrative boundary",
        };
        write!(f, "{name}")
    }
}

/// A TIGER-like record: the identifier scheme of TIGER/Line complete
/// chains plus the object's classification and geometry statistics.
#[derive(Clone, Debug)]
pub struct TigerRecord {
    /// TIGER/Line record id (TLID).
    pub tlid: u64,
    /// Census feature class code.
    pub cfcc: &'static str,
    /// Classification.
    pub class: FeatureClass,
    /// Number of shape points (vertices).
    pub shape_points: usize,
    /// Serialized record size in bytes.
    pub record_bytes: u32,
}

impl TigerRecord {
    /// Build the record view of a generated map object.
    pub fn from_object(obj: &MapObject) -> TigerRecord {
        let shape_points = (obj.size_bytes as usize
            - spatialdb_geom::polyline::POLYLINE_HEADER_BYTES)
            / spatialdb_geom::polyline::BYTES_PER_VERTEX;
        TigerRecord {
            tlid: 100_000_000 + obj.id,
            cfcc: obj.class.cfcc(),
            class: obj.class,
            shape_points,
            record_bytes: obj.size_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maps::{GeometryMode, SpatialMap};
    use crate::series::{DataSet, MapId, SeriesId};

    #[test]
    fn cfcc_codes_have_tiger_prefixes() {
        assert!(FeatureClass::Street.cfcc().starts_with('A'));
        assert!(FeatureClass::RailwayTrack.cfcc().starts_with('B'));
        assert!(FeatureClass::AdminBoundary.cfcc().starts_with('F'));
        assert!(FeatureClass::River.cfcc().starts_with('H'));
    }

    #[test]
    fn record_from_object_round_trips_size() {
        let ds = DataSet {
            series: SeriesId::A,
            map: MapId::Map1,
        };
        let m = SpatialMap::generate(ds, 0.001, GeometryMode::Full, 3);
        for o in &m.objects {
            let rec = TigerRecord::from_object(o);
            assert_eq!(rec.record_bytes, o.size_bytes);
            assert_eq!(
                rec.shape_points,
                o.geometry.as_ref().unwrap().num_vertices()
            );
            assert!(rec.tlid >= 100_000_000);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(FeatureClass::River.to_string(), "river");
        assert_eq!(FeatureClass::Street.to_string(), "street");
    }
}

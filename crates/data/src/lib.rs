//! # spatialdb-data
//!
//! Synthetic geographic data and workload generator reproducing the test
//! environment of Brinkhoff & Kriegel, VLDB 1994 (§5.1).
//!
//! The paper's experiments use US Bureau of the Census TIGER/Line data for
//! several Californian counties:
//!
//! * **map 1** — 131,461 streets;
//! * **map 2** — 128,971 administrative boundaries, rivers and railway
//!   tracks;
//! * three **test series** A/B/C per map with average object sizes of
//!   625/1,247/2,490 bytes (map 1) and 781/1,558/3,113 bytes (map 2),
//!   and maximum cluster sizes `Smax` of 80/160/320 KB (Table 1).
//!
//! The original TIGER extracts are not available, so this crate generates
//! a *statistically equivalent* stand-in (see DESIGN.md §2): the same
//! object counts, the same size distributions relative to the 4 KB page,
//! a strongly clustered spatial distribution (county-like blobs with
//! road-grid streak patterns), and polyline geometry whose serialized
//! size matches the per-series averages. Everything is derived
//! deterministically from an explicit seed.
//!
//! The [`workload`] module generates the paper's query mixes: 678 window
//! queries per window area (0.001 % … 10 % of the data space) whose
//! centres follow the MBR distribution, the point queries at the window
//! centres (§5.5), and the MBR inflation calibration used to derive the
//! spatial-join versions *a* and *b* (§6.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod maps;
pub mod rng;
pub mod series;
pub mod tiger;
pub mod workload;

pub use maps::{GeometryMode, MapObject, SpatialMap};
pub use series::{DataSet, MapId, SeriesId, SeriesSpec};
pub use tiger::{FeatureClass, TigerRecord};
pub use workload::{inflate_mbrs, pairs_per_mbr, PointQuerySet, WindowQuerySet};

//! Generation of the two synthetic maps.
//!
//! The generator reproduces the statistical properties the experiments
//! depend on (see DESIGN.md §2):
//!
//! * **spatial clustering** — objects concentrate in county-like blobs of
//!   varying density, as census geography does; the data space is the
//!   unit square;
//! * **object shape** — map 1 objects are short, axis-aligned-ish street
//!   segments (grid-of-roads pattern); map 2 objects are longer meandering
//!   polylines (rivers, boundaries, railway tracks);
//! * **object size** — the serialized byte size follows a clamped
//!   log-normal around the series average of Table 1, so some objects of
//!   the larger series exceed a 4 KB page (exercising the primary
//!   organization's overflow path and internal clustering).
//!
//! Everything is a pure function of `(dataset, scale, seed)`.

use crate::rng::SmallRng;
use crate::series::{DataSet, MapId};
use crate::tiger::FeatureClass;
use spatialdb_geom::{Point, Polyline, Rect};

/// Whether to retain full vertex geometry or only MBRs.
///
/// The full-scale experiments only need MBRs and byte sizes (the exact
/// geometry test is charged at the paper's constant CPU cost), so
/// [`GeometryMode::MbrOnly`] avoids holding ~20 M vertices in memory for
/// the C series. The MBR of an object is **identical** in both modes: the
/// vertex walk is always generated; only its retention differs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GeometryMode {
    /// Keep the polylines (examples, refinement tests, small scales).
    Full,
    /// Keep only MBR and size (full-scale I/O experiments).
    MbrOnly,
}

/// One generated map object.
#[derive(Clone, Debug)]
pub struct MapObject {
    /// Object id, unique within the map.
    pub id: u64,
    /// Minimum bounding rectangle.
    pub mbr: Rect,
    /// Size of the exact representation in bytes.
    pub size_bytes: u32,
    /// Feature classification (TIGER CFCC-like).
    pub class: FeatureClass,
    /// Exact geometry, present in [`GeometryMode::Full`].
    pub geometry: Option<Polyline>,
}

/// A generated map: the unit-square data space plus its objects.
#[derive(Clone, Debug)]
pub struct SpatialMap {
    /// Which Table 1 row this map realizes.
    pub dataset: DataSet,
    /// The objects, in generation (insertion) order — the paper inserts
    /// unsorted input (§5.2).
    pub objects: Vec<MapObject>,
}

/// A county-like cluster of the synthetic geography.
struct County {
    center: Point,
    sigma: f64,
    weight: f64,
    /// Rotation of the local road grid.
    grid_angle: f64,
}

fn sample_counties(rng: &mut SmallRng, n: usize) -> Vec<County> {
    let mut counties = Vec::with_capacity(n);
    for _ in 0..n {
        counties.push(County {
            center: Point::new(rng.gen_range(0.08..0.92), rng.gen_range(0.08..0.92)),
            sigma: rng.gen_range(0.015..0.07),
            weight: -f64::ln(rng.gen_range(1e-6..1.0f64)), // Exp(1)
            grid_angle: rng.gen_range(0.0..std::f64::consts::FRAC_PI_2),
        });
    }
    let total: f64 = counties.iter().map(|c| c.weight).sum();
    for c in &mut counties {
        c.weight /= total;
    }
    counties
}

fn pick_county<'a>(rng: &mut SmallRng, counties: &'a [County]) -> &'a County {
    let mut u: f64 = rng.gen_range(0.0..1.0);
    for c in counties {
        if u < c.weight {
            return c;
        }
        u -= c.weight;
    }
    counties.last().expect("counties non-empty")
}

/// Box–Muller standard normal sample.
fn gauss(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn clamp01(v: f64) -> f64 {
    v.clamp(0.0, 1.0)
}

/// Log-normal size factor with mean ≈ 1, clamped to `[0.25, 4.0]`.
fn size_factor(rng: &mut SmallRng) -> f64 {
    const SIGMA: f64 = 0.45;
    let ln_mean_correction = (SIGMA * SIGMA / 2.0).exp();
    ((SIGMA * gauss(rng)).exp() / ln_mean_correction).clamp(0.25, 4.0)
}

impl SpatialMap {
    /// Generate a map.
    ///
    /// * `scale` — fraction of the full Table 1 object count (1.0 for the
    ///   paper-scale experiments, small values for tests);
    /// * `mode` — geometry retention;
    /// * `seed` — RNG seed; the same `(dataset, scale, seed)` always
    ///   yields the same map.
    pub fn generate(dataset: DataSet, scale: f64, mode: GeometryMode, seed: u64) -> SpatialMap {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let spec = dataset.spec();
        let n = ((spec.num_objects as f64 * scale).round() as usize).max(1);
        let mut rng = SmallRng::seed_from_u64(seed ^ (dataset.map.num_objects() as u64));
        let counties = sample_counties(&mut rng, 24);
        let mut objects = Vec::with_capacity(n);
        for id in 0..n as u64 {
            let county = pick_county(&mut rng, &counties);
            let target = (spec.avg_object_bytes as f64 * size_factor(&mut rng)).round() as usize;
            let num_vertices = Polyline::vertices_for_size(target);
            let obj = match dataset.map {
                MapId::Map1 => gen_street(&mut rng, county, num_vertices, id, mode),
                MapId::Map2 => gen_linear_feature(&mut rng, county, num_vertices, id, mode),
            };
            objects.push(obj);
        }
        SpatialMap { dataset, objects }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` if the map holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Average serialized object size in bytes.
    pub fn avg_object_bytes(&self) -> f64 {
        if self.objects.is_empty() {
            return 0.0;
        }
        self.total_bytes() as f64 / self.objects.len() as f64
    }

    /// Total serialized size of all objects in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.objects.iter().map(|o| o.size_bytes as u64).sum()
    }

    /// The MBRs of all objects, in order.
    pub fn mbrs(&self) -> Vec<Rect> {
        self.objects.iter().map(|o| o.mbr).collect()
    }
}

/// Generate the vertex walk of one object, returning its MBR, exact size
/// and (optionally) the polyline.
fn walk_to_object(
    id: u64,
    class: FeatureClass,
    vertices: Vec<Point>,
    mode: GeometryMode,
) -> MapObject {
    debug_assert!(vertices.len() >= 2);
    let mut mbr = Rect::empty();
    for v in &vertices {
        mbr = mbr.union(&Rect::new(v.x, v.y, v.x, v.y));
    }
    let size_bytes = (spatialdb_geom::polyline::POLYLINE_HEADER_BYTES
        + spatialdb_geom::polyline::BYTES_PER_VERTEX * vertices.len()) as u32;
    let geometry = match mode {
        GeometryMode::Full => Some(Polyline::new(vertices)),
        GeometryMode::MbrOnly => None,
    };
    MapObject {
        id,
        mbr,
        size_bytes,
        class,
        geometry,
    }
}

/// Map 1: a street — a short, nearly straight segment chain aligned with
/// the county's road grid, with small perpendicular jitter.
fn gen_street(
    rng: &mut SmallRng,
    county: &County,
    num_vertices: usize,
    id: u64,
    mode: GeometryMode,
) -> MapObject {
    let cx = clamp01(county.center.x + gauss(rng) * county.sigma);
    let cy = clamp01(county.center.y + gauss(rng) * county.sigma);
    // Streets follow the county grid: one of the two grid directions.
    let along = if rng.gen_bool(0.5) {
        county.grid_angle
    } else {
        county.grid_angle + std::f64::consts::FRAC_PI_2
    };
    let length: f64 = rng.gen_range(0.0005..0.004);
    let (dx, dy) = (along.cos(), along.sin());
    let step = length / (num_vertices - 1) as f64;
    let jitter = length * 0.06;
    let mut vertices = Vec::with_capacity(num_vertices);
    for i in 0..num_vertices {
        let t = i as f64 * step;
        let j = gauss(rng) * jitter;
        vertices.push(Point::new(
            clamp01(cx + dx * t - dy * j),
            clamp01(cy + dy * t + dx * j),
        ));
    }
    walk_to_object(id, FeatureClass::Street, vertices, mode)
}

/// Map 2: a river / boundary / railway track — a longer meandering walk
/// whose heading drifts randomly.
fn gen_linear_feature(
    rng: &mut SmallRng,
    county: &County,
    num_vertices: usize,
    id: u64,
    mode: GeometryMode,
) -> MapObject {
    let class = match rng.gen_range(0..3u8) {
        0 => FeatureClass::River,
        1 => FeatureClass::AdminBoundary,
        _ => FeatureClass::RailwayTrack,
    };
    let mut x = clamp01(county.center.x + gauss(rng) * county.sigma * 1.5);
    let mut y = clamp01(county.center.y + gauss(rng) * county.sigma * 1.5);
    let mut heading: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let length: f64 = rng.gen_range(0.002..0.015);
    let step = length / (num_vertices - 1) as f64;
    let mut vertices = Vec::with_capacity(num_vertices);
    vertices.push(Point::new(x, y));
    for _ in 1..num_vertices {
        heading += gauss(rng) * 0.25;
        x = clamp01(x + heading.cos() * step);
        y = clamp01(y + heading.sin() * step);
        vertices.push(Point::new(x, y));
    }
    walk_to_object(id, class, vertices, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::SeriesId;

    fn a1() -> DataSet {
        DataSet {
            series: SeriesId::A,
            map: MapId::Map1,
        }
    }

    fn a2() -> DataSet {
        DataSet {
            series: SeriesId::A,
            map: MapId::Map2,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let m1 = SpatialMap::generate(a1(), 0.005, GeometryMode::MbrOnly, 42);
        let m2 = SpatialMap::generate(a1(), 0.005, GeometryMode::MbrOnly, 42);
        assert_eq!(m1.len(), m2.len());
        for (a, b) in m1.objects.iter().zip(&m2.objects) {
            assert_eq!(a.mbr, b.mbr);
            assert_eq!(a.size_bytes, b.size_bytes);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let m1 = SpatialMap::generate(a1(), 0.005, GeometryMode::MbrOnly, 1);
        let m2 = SpatialMap::generate(a1(), 0.005, GeometryMode::MbrOnly, 2);
        let same = m1
            .objects
            .iter()
            .zip(&m2.objects)
            .filter(|(a, b)| a.mbr == b.mbr)
            .count();
        assert!(same < m1.len() / 10);
    }

    #[test]
    fn scale_controls_count() {
        let m = SpatialMap::generate(a1(), 0.01, GeometryMode::MbrOnly, 7);
        assert_eq!(m.len(), 1315); // round(131461 * 0.01)
        let full_spec = a1().spec();
        assert_eq!(full_spec.num_objects, 131_461);
    }

    #[test]
    fn average_size_matches_series_spec() {
        for ds in [a1(), a2()] {
            let m = SpatialMap::generate(ds, 0.05, GeometryMode::MbrOnly, 3);
            let want = ds.spec().avg_object_bytes as f64;
            let got = m.avg_object_bytes();
            assert!(
                (got - want).abs() / want < 0.06,
                "{ds}: avg {got:.0} B vs spec {want} B"
            );
        }
    }

    #[test]
    fn size_distribution_has_a_tail() {
        // Some C-series objects exceed one 4 KB page (needed by the
        // primary organization's overflow path).
        let ds = DataSet {
            series: SeriesId::C,
            map: MapId::Map1,
        };
        let m = SpatialMap::generate(ds, 0.02, GeometryMode::MbrOnly, 11);
        let over_page = m.objects.iter().filter(|o| o.size_bytes > 4096).count();
        assert!(over_page > 0, "no objects over a page");
        assert!(over_page < m.len() / 4, "too many oversized objects");
    }

    #[test]
    fn objects_inside_unit_square() {
        let space = Rect::new(0.0, 0.0, 1.0, 1.0);
        for ds in [a1(), a2()] {
            let m = SpatialMap::generate(ds, 0.01, GeometryMode::MbrOnly, 5);
            for o in &m.objects {
                assert!(space.contains_rect(&o.mbr), "object {} escapes", o.id);
            }
        }
    }

    #[test]
    fn geometry_mode_full_keeps_polylines_with_matching_mbr() {
        let m = SpatialMap::generate(a2(), 0.003, GeometryMode::Full, 9);
        for o in &m.objects {
            let line = o.geometry.as_ref().expect("geometry retained");
            assert_eq!(spatialdb_geom::HasMbr::mbr(line), o.mbr);
            assert_eq!(line.serialized_size() as u32, o.size_bytes);
        }
    }

    #[test]
    fn mbr_identical_across_modes() {
        let full = SpatialMap::generate(a1(), 0.003, GeometryMode::Full, 13);
        let slim = SpatialMap::generate(a1(), 0.003, GeometryMode::MbrOnly, 13);
        for (a, b) in full.objects.iter().zip(&slim.objects) {
            assert_eq!(a.mbr, b.mbr);
            assert_eq!(a.size_bytes, b.size_bytes);
        }
    }

    #[test]
    fn data_is_spatially_clustered() {
        // Compare the fraction of objects in the densest 10x10 grid cell
        // against the uniform expectation: clustered data concentrates.
        let m = SpatialMap::generate(a1(), 0.02, GeometryMode::MbrOnly, 21);
        let mut cells = [0usize; 100];
        for o in &m.objects {
            let c = o.mbr.center();
            let i = ((c.x * 10.0) as usize).min(9) + 10 * ((c.y * 10.0) as usize).min(9);
            cells[i] += 1;
        }
        let max = *cells.iter().max().unwrap();
        let uniform = m.len() / 100;
        assert!(
            max > uniform * 3,
            "densest cell {max} vs uniform {uniform}: not clustered"
        );
    }

    #[test]
    fn map2_objects_are_larger_extent_than_map1() {
        let m1 = SpatialMap::generate(a1(), 0.01, GeometryMode::MbrOnly, 17);
        let m2 = SpatialMap::generate(a2(), 0.01, GeometryMode::MbrOnly, 17);
        let avg_margin =
            |m: &SpatialMap| m.objects.iter().map(|o| o.mbr.margin()).sum::<f64>() / m.len() as f64;
        assert!(avg_margin(&m2) > avg_margin(&m1));
    }

    #[test]
    fn classes_match_map() {
        let m1 = SpatialMap::generate(a1(), 0.002, GeometryMode::MbrOnly, 19);
        assert!(m1.objects.iter().all(|o| o.class == FeatureClass::Street));
        let m2 = SpatialMap::generate(a2(), 0.002, GeometryMode::MbrOnly, 19);
        assert!(m2.objects.iter().all(|o| o.class != FeatureClass::Street));
    }
}

// Gated: requires the external `proptest` crate (not vendored in this
// offline build). Enable with `--features proptest` after adding the
// dev-dependency.
#![cfg(feature = "proptest")]

//! Property-based tests for the geometry kernel invariants.

use proptest::prelude::*;
use spatialdb_geom::{DecomposedPolyline, HasMbr, Point, Polyline, Rect, Segment};

fn arb_point() -> impl Strategy<Value = Point> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Rect::from_corners(a, b))
}

fn arb_polyline() -> impl Strategy<Value = Polyline> {
    prop::collection::vec(arb_point(), 2..40).prop_map(Polyline::new)
}

proptest! {
    #[test]
    fn union_is_commutative(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
    }

    #[test]
    fn union_contains_operands(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    #[test]
    fn union_is_associative(a in arb_rect(), b in arb_rect(), c in arb_rect()) {
        let l = a.union(&b).union(&c);
        let r = a.union(&b.union(&c));
        prop_assert_eq!(l, r);
    }

    #[test]
    fn intersection_is_commutative(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
    }

    #[test]
    fn intersection_inside_both(a in arb_rect(), b in arb_rect()) {
        let i = a.intersection(&b);
        if !i.is_empty() {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
        }
    }

    #[test]
    fn intersects_iff_nonempty_intersection(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersects(&b), !a.intersection(&b).is_empty());
    }

    #[test]
    fn overlap_area_matches_intersection_area(a in arb_rect(), b in arb_rect()) {
        let via_rect = a.intersection(&b).area();
        prop_assert!((a.overlap_area(&b) - via_rect).abs() <= 1e-9 * (1.0 + via_rect));
    }

    #[test]
    fn enlargement_nonnegative(a in arb_rect(), b in arb_rect()) {
        prop_assert!(a.enlargement(&b) >= 0.0);
        prop_assert!(b.enlargement(&a) >= 0.0);
    }

    #[test]
    fn enlargement_zero_iff_contained(a in arb_rect(), b in arb_rect()) {
        if a.contains_rect(&b) {
            prop_assert_eq!(a.enlargement(&b), 0.0);
        }
    }

    #[test]
    fn overlap_fraction_in_unit_interval(a in arb_rect(), w in arb_rect()) {
        let f = a.overlap_fraction(&w);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&f), "fraction {f}");
    }

    #[test]
    fn contains_point_implies_intersects_point_rect(r in arb_rect(), p in arb_point()) {
        if r.contains_point(&p) {
            let pr = Rect::new(p.x, p.y, p.x, p.y);
            prop_assert!(r.intersects(&pr));
        }
    }

    #[test]
    fn segment_intersection_symmetric(a in arb_point(), b in arb_point(),
                                      c in arb_point(), d in arb_point()) {
        let s = Segment::new(a, b);
        let t = Segment::new(c, d);
        prop_assert_eq!(s.intersects(&t), t.intersects(&s));
    }

    #[test]
    fn segment_self_intersection(a in arb_point(), b in arb_point()) {
        let s = Segment::new(a, b);
        prop_assert!(s.intersects(&s));
    }

    #[test]
    fn segment_shares_endpoint_intersects(a in arb_point(), b in arb_point(), c in arb_point()) {
        let s = Segment::new(a, b);
        let t = Segment::new(b, c);
        prop_assert!(s.intersects(&t));
    }

    #[test]
    fn segment_intersect_rect_implies_mbr_overlap(a in arb_point(), b in arb_point(), r in arb_rect()) {
        let s = Segment::new(a, b);
        if s.intersects_rect(&r) {
            prop_assert!(s.mbr().intersects(&r));
        }
    }

    #[test]
    fn polyline_mbr_contains_vertices(line in arb_polyline()) {
        let mbr = line.mbr();
        for v in line.vertices() {
            prop_assert!(mbr.contains_point(v));
        }
    }

    #[test]
    fn polyline_rect_test_consistent_with_mbr(line in arb_polyline(), r in arb_rect()) {
        if line.intersects_rect(&r) {
            prop_assert!(line.mbr().intersects(&r));
        }
    }

    #[test]
    fn decomposed_matches_naive_rect(line in arb_polyline(), r in arb_rect()) {
        let d = DecomposedPolyline::new(line.clone());
        prop_assert_eq!(d.intersects_rect(&r), line.intersects_rect(&r));
    }

    #[test]
    fn decomposed_matches_naive_pair(a in arb_polyline(), b in arb_polyline()) {
        let da = DecomposedPolyline::new(a.clone());
        let db = DecomposedPolyline::new(b.clone());
        prop_assert_eq!(da.intersects(&db), a.intersects_polyline(&b));
    }

    #[test]
    fn polyline_intersection_symmetric(a in arb_polyline(), b in arb_polyline()) {
        prop_assert_eq!(a.intersects_polyline(&b), b.intersects_polyline(&a));
    }

    #[test]
    fn polyline_window_hit_when_vertex_inside(line in arb_polyline(), r in arb_rect()) {
        if line.vertices().iter().any(|v| r.contains_point(v)) {
            prop_assert!(line.intersects_rect(&r));
        }
    }

    #[test]
    fn scale_preserves_center(r in arb_rect(), f in 0.01f64..4.0) {
        if r.area() > 0.0 {
            let s = r.scale(f);
            let c0 = r.center();
            let c1 = s.center();
            prop_assert!((c0.x - c1.x).abs() < 1e-9);
            prop_assert!((c0.y - c1.y).abs() < 1e-9);
        }
    }
}

//! Line segments with robust intersection predicates.

use crate::point::Point;
use crate::rect::Rect;

/// A closed line segment between two points.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

/// Orientation of the ordered point triple `(p, q, r)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Orientation {
    /// Counter-clockwise turn.
    Ccw,
    /// Clockwise turn.
    Cw,
    /// The three points are collinear.
    Collinear,
}

/// Compute the orientation of the ordered triple `(p, q, r)` from the sign
/// of the cross product `(q - p) × (r - p)`.
#[inline]
pub fn orientation(p: &Point, q: &Point, r: &Point) -> Orientation {
    let v = (q.x - p.x) * (r.y - p.y) - (q.y - p.y) * (r.x - p.x);
    if v > 0.0 {
        Orientation::Ccw
    } else if v < 0.0 {
        Orientation::Cw
    } else {
        Orientation::Collinear
    }
}

impl Segment {
    /// Create a segment between two points.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Length of the segment.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.distance(&self.b)
    }

    /// Minimum bounding rectangle of the segment.
    #[inline]
    pub fn mbr(&self) -> Rect {
        Rect::from_corners(self.a, self.b)
    }

    /// `true` if point `p` lies on the closed segment.
    pub fn contains_point(&self, p: &Point) -> bool {
        if orientation(&self.a, &self.b, p) != Orientation::Collinear {
            return false;
        }
        self.mbr().contains_point(p)
    }

    /// `true` if the two closed segments share at least one point.
    ///
    /// Uses the standard orientation test with collinear special cases;
    /// exact for the inputs representable in `f64` that our generator
    /// produces (no coordinate is the result of a rounded computation).
    pub fn intersects(&self, other: &Segment) -> bool {
        let o1 = orientation(&self.a, &self.b, &other.a);
        let o2 = orientation(&self.a, &self.b, &other.b);
        let o3 = orientation(&other.a, &other.b, &self.a);
        let o4 = orientation(&other.a, &other.b, &self.b);

        if o1 != o2 && o3 != o4 && o1 != Orientation::Collinear && o2 != Orientation::Collinear {
            return true;
        }
        // General case where an endpoint is exactly on the other segment
        // (covers proper crossings through endpoints too).
        if o1 == Orientation::Collinear && self.mbr().contains_point(&other.a) {
            return true;
        }
        if o2 == Orientation::Collinear && self.mbr().contains_point(&other.b) {
            return true;
        }
        if o3 == Orientation::Collinear && other.mbr().contains_point(&self.a) {
            return true;
        }
        if o4 == Orientation::Collinear && other.mbr().contains_point(&self.b) {
            return true;
        }
        // Proper crossing with no collinearity.
        o1 != o2 && o3 != o4
    }

    /// `true` if the closed segment shares at least one point with the
    /// closed rectangle.
    ///
    /// This is the predicate needed by the refinement step of window
    /// queries on polyline objects: a polyline intersects a window iff one
    /// of its segments does.
    pub fn intersects_rect(&self, rect: &Rect) -> bool {
        // Cheap rejection: if the segment MBR misses the rectangle there
        // can be no intersection.
        if !self.mbr().intersects(rect) {
            return false;
        }
        // If either endpoint is inside, done.
        if rect.contains_point(&self.a) || rect.contains_point(&self.b) {
            return true;
        }
        // Otherwise the segment must cross one of the four edges.
        let c1 = Point::new(rect.xmin, rect.ymin);
        let c2 = Point::new(rect.xmax, rect.ymin);
        let c3 = Point::new(rect.xmax, rect.ymax);
        let c4 = Point::new(rect.xmin, rect.ymax);
        self.intersects(&Segment::new(c1, c2))
            || self.intersects(&Segment::new(c2, c3))
            || self.intersects(&Segment::new(c3, c4))
            || self.intersects(&Segment::new(c4, c1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn proper_crossing() {
        assert!(s(0.0, 0.0, 2.0, 2.0).intersects(&s(0.0, 2.0, 2.0, 0.0)));
    }

    #[test]
    fn disjoint_parallel() {
        assert!(!s(0.0, 0.0, 1.0, 0.0).intersects(&s(0.0, 1.0, 1.0, 1.0)));
    }

    #[test]
    fn shared_endpoint() {
        assert!(s(0.0, 0.0, 1.0, 1.0).intersects(&s(1.0, 1.0, 2.0, 0.0)));
    }

    #[test]
    fn t_junction() {
        // Endpoint of one segment in the interior of the other.
        assert!(s(0.0, 0.0, 2.0, 0.0).intersects(&s(1.0, 0.0, 1.0, 1.0)));
    }

    #[test]
    fn collinear_overlapping() {
        assert!(s(0.0, 0.0, 2.0, 0.0).intersects(&s(1.0, 0.0, 3.0, 0.0)));
    }

    #[test]
    fn collinear_disjoint() {
        assert!(!s(0.0, 0.0, 1.0, 0.0).intersects(&s(2.0, 0.0, 3.0, 0.0)));
    }

    #[test]
    fn intersection_is_symmetric() {
        let a = s(0.0, 0.0, 2.0, 2.0);
        let b = s(0.0, 2.0, 2.0, 0.0);
        assert_eq!(a.intersects(&b), b.intersects(&a));
        let c = s(5.0, 5.0, 6.0, 6.0);
        assert_eq!(a.intersects(&c), c.intersects(&a));
    }

    #[test]
    fn contains_point_on_segment() {
        let seg = s(0.0, 0.0, 2.0, 2.0);
        assert!(seg.contains_point(&Point::new(1.0, 1.0)));
        assert!(seg.contains_point(&Point::new(0.0, 0.0)));
        assert!(!seg.contains_point(&Point::new(1.0, 1.5)));
        assert!(!seg.contains_point(&Point::new(3.0, 3.0)));
    }

    #[test]
    fn rect_intersection_endpoint_inside() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert!(s(0.5, 0.5, 5.0, 5.0).intersects_rect(&r));
    }

    #[test]
    fn rect_intersection_crossing_through() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        // Both endpoints outside, segment passes through the rectangle.
        assert!(s(-1.0, 0.5, 2.0, 0.5).intersects_rect(&r));
    }

    #[test]
    fn rect_intersection_touching_corner() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert!(s(1.0, 1.0, 2.0, 2.0).intersects_rect(&r));
        // Diagonal grazing the corner point exactly.
        assert!(s(0.0, 2.0, 2.0, 0.0).intersects_rect(&r));
    }

    #[test]
    fn rect_no_intersection() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert!(!s(2.0, 2.0, 3.0, 3.0).intersects_rect(&r));
        // MBRs overlap but the segment misses the rect.
        assert!(!s(1.5, 0.0, 0.0, 1.5).intersects_rect(&Rect::new(0.0, 0.0, 0.2, 0.2)));
    }

    #[test]
    fn orientation_cases() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(1.0, 0.0);
        assert_eq!(orientation(&p, &q, &Point::new(1.0, 1.0)), Orientation::Ccw);
        assert_eq!(orientation(&p, &q, &Point::new(1.0, -1.0)), Orientation::Cw);
        assert_eq!(
            orientation(&p, &q, &Point::new(2.0, 0.0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn mbr_covers_segment() {
        let seg = s(2.0, -1.0, 0.0, 3.0);
        assert_eq!(seg.mbr(), Rect::new(0.0, -1.0, 2.0, 3.0));
    }

    #[test]
    fn length() {
        assert_eq!(s(0.0, 0.0, 3.0, 4.0).length(), 5.0);
    }
}

//! The generic [`Geometry`] of a stored object.
//!
//! The paper's test data are polylines, but a spatial database stores
//! more than streets: the public API accepts points (wells, landmarks),
//! polylines (streets, rivers, tracks) and simple polygons
//! (administrative regions). `Geometry` is the closed enum over those
//! exact representations; the query layer refines every candidate with
//! the predicates below, and the storage layer only ever sees the MBR
//! and the serialized size.
//!
//! Polylines are carried in their *decomposed* representation
//! ([`DecomposedPolyline`], \[SK91\]) so that the join's exact geometry
//! test runs on component bounding boxes rather than the naive
//! segment-pair sweep.

use crate::decomposed::DecomposedPolyline;
use crate::point::Point;
use crate::polygon::Polygon;
use crate::polyline::{Polyline, BYTES_PER_VERTEX, POLYLINE_HEADER_BYTES};
use crate::rect::Rect;
use crate::HasMbr;

/// The exact representation of a stored spatial object.
#[derive(Clone, Debug)]
pub enum Geometry {
    /// A point object (zero-dimensional features).
    Point(Point),
    /// A polyline in decomposed representation (linear features).
    Polyline(DecomposedPolyline),
    /// A simple polygon (region features).
    Polygon(Polygon),
}

impl Geometry {
    /// Size of the serialized representation in bytes — what the storage
    /// layer charges when placing the object into pages or cluster
    /// units. Points use the fixed object header plus one vertex.
    pub fn serialized_size(&self) -> usize {
        match self {
            Geometry::Point(_) => POLYLINE_HEADER_BYTES + BYTES_PER_VERTEX,
            Geometry::Polyline(l) => l.polyline().serialized_size(),
            Geometry::Polygon(p) => p.serialized_size(),
        }
    }

    /// `true` if the object shares at least one point with the closed
    /// rectangle (the exact window-query predicate).
    pub fn intersects_rect(&self, rect: &Rect) -> bool {
        match self {
            Geometry::Point(p) => rect.contains_point(p),
            Geometry::Polyline(l) => l.intersects_rect(rect),
            Geometry::Polygon(p) => p.intersects_rect(rect),
        }
    }

    /// `true` if the object contains `p` (the exact point-query
    /// predicate; closed-set semantics).
    pub fn contains_point(&self, p: &Point) -> bool {
        match self {
            Geometry::Point(q) => q == p,
            Geometry::Polyline(l) => l.polyline().contains_point(p),
            Geometry::Polygon(poly) => poly.contains_point(p),
        }
    }

    /// `true` if two objects share at least one point (the exact
    /// intersection-join predicate). Symmetric across all variant
    /// combinations.
    pub fn intersects(&self, other: &Geometry) -> bool {
        match (self, other) {
            (Geometry::Point(a), Geometry::Point(b)) => a == b,
            (Geometry::Point(p), g) | (g, Geometry::Point(p)) => g.contains_point(p),
            (Geometry::Polyline(a), Geometry::Polyline(b)) => a.intersects(b),
            (Geometry::Polyline(l), Geometry::Polygon(p))
            | (Geometry::Polygon(p), Geometry::Polyline(l)) => p.intersects_polyline(l.polyline()),
            (Geometry::Polygon(a), Geometry::Polygon(b)) => a.intersects_polygon(b),
        }
    }

    /// The decomposed polyline, if this is a polyline object.
    pub fn as_polyline(&self) -> Option<&DecomposedPolyline> {
        match self {
            Geometry::Polyline(l) => Some(l),
            _ => None,
        }
    }

    /// The polygon, if this is a region object.
    pub fn as_polygon(&self) -> Option<&Polygon> {
        match self {
            Geometry::Polygon(p) => Some(p),
            _ => None,
        }
    }
}

impl HasMbr for Geometry {
    fn mbr(&self) -> Rect {
        match self {
            Geometry::Point(p) => p.mbr(),
            Geometry::Polyline(l) => l.mbr(),
            Geometry::Polygon(p) => p.mbr(),
        }
    }
}

impl From<Point> for Geometry {
    fn from(p: Point) -> Self {
        Geometry::Point(p)
    }
}

impl From<Polyline> for Geometry {
    fn from(l: Polyline) -> Self {
        Geometry::Polyline(DecomposedPolyline::new(l))
    }
}

impl From<DecomposedPolyline> for Geometry {
    fn from(l: DecomposedPolyline) -> Self {
        Geometry::Polyline(l)
    }
}

impl From<Polygon> for Geometry {
    fn from(p: Polygon) -> Self {
        Geometry::Polygon(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> Geometry {
        Geometry::from(Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 0.0),
        ]))
    }

    fn square() -> Geometry {
        Geometry::from(Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ]))
    }

    #[test]
    fn mbr_per_variant() {
        assert_eq!(
            Geometry::from(Point::new(0.3, 0.7)).mbr(),
            Rect::new(0.3, 0.7, 0.3, 0.7)
        );
        assert_eq!(line().mbr(), Rect::new(0.0, 0.0, 2.0, 1.0));
        assert_eq!(square().mbr(), Rect::new(0.0, 0.0, 1.0, 1.0));
    }

    #[test]
    fn serialized_sizes() {
        assert_eq!(
            Geometry::from(Point::new(0.0, 0.0)).serialized_size(),
            POLYLINE_HEADER_BYTES + BYTES_PER_VERTEX
        );
        assert_eq!(
            line().serialized_size(),
            POLYLINE_HEADER_BYTES + 3 * BYTES_PER_VERTEX
        );
        assert_eq!(
            square().serialized_size(),
            POLYLINE_HEADER_BYTES + 4 * BYTES_PER_VERTEX
        );
    }

    #[test]
    fn window_predicate_per_variant() {
        let w = Rect::new(0.4, 0.2, 0.6, 0.8);
        assert!(Geometry::from(Point::new(0.5, 0.5)).intersects_rect(&w));
        assert!(!Geometry::from(Point::new(0.9, 0.5)).intersects_rect(&w));
        assert!(line().intersects_rect(&w));
        assert!(square().intersects_rect(&w));
        assert!(!line().intersects_rect(&Rect::new(0.0, 2.0, 1.0, 3.0)));
    }

    #[test]
    fn point_predicate_per_variant() {
        assert!(Geometry::from(Point::new(0.5, 0.5)).contains_point(&Point::new(0.5, 0.5)));
        assert!(line().contains_point(&Point::new(0.5, 0.5)));
        assert!(!line().contains_point(&Point::new(0.5, 0.6)));
        assert!(square().contains_point(&Point::new(0.5, 0.5)));
    }

    #[test]
    fn join_predicate_is_symmetric_across_variants() {
        let pt_on = Geometry::from(Point::new(0.5, 0.5));
        let pt_off = Geometry::from(Point::new(5.0, 5.0));
        let combos = [
            (pt_on.clone(), line(), true),
            (pt_on.clone(), square(), true),
            (pt_off.clone(), line(), false),
            (line(), square(), true),
            (pt_on.clone(), pt_on.clone(), true),
            (pt_on, pt_off, false),
        ];
        for (a, b, want) in combos {
            assert_eq!(a.intersects(&b), want, "{a:?} vs {b:?}");
            assert_eq!(b.intersects(&a), want, "symmetry {a:?} vs {b:?}");
        }
    }

    #[test]
    fn polygon_polygon_intersection() {
        let a = square();
        let shifted = Geometry::from(Polygon::new(vec![
            Point::new(0.5, 0.5),
            Point::new(1.5, 0.5),
            Point::new(1.5, 1.5),
            Point::new(0.5, 1.5),
        ]));
        let far = Geometry::from(Polygon::new(vec![
            Point::new(5.0, 5.0),
            Point::new(6.0, 5.0),
            Point::new(5.0, 6.0),
        ]));
        assert!(a.intersects(&shifted));
        assert!(!a.intersects(&far));
        // Containment without boundary crossing.
        let inner = Geometry::from(Polygon::new(vec![
            Point::new(0.4, 0.4),
            Point::new(0.6, 0.4),
            Point::new(0.5, 0.6),
        ]));
        assert!(a.intersects(&inner));
        assert!(inner.intersects(&a));
    }

    #[test]
    fn accessors() {
        assert!(line().as_polyline().is_some());
        assert!(line().as_polygon().is_none());
        assert!(square().as_polygon().is_some());
    }
}

//! # spatialdb-geom
//!
//! Geometry kernel for the spatial-database reproduction of
//! Brinkhoff & Kriegel, *"The Impact of Global Clustering on Spatial
//! Database Systems"*, VLDB 1994.
//!
//! The kernel provides exactly the primitives the paper's system needs:
//!
//! * [`Point`] — 2-d query points (point queries, §2);
//! * [`Rect`] — axis-parallel rectangles used both as *minimum bounding
//!   rectangles* (MBRs, the spatial keys of the R\*-tree) and as *query
//!   windows* (window queries, §2). The full MBR algebra required by the
//!   R\*-tree insertion and split heuristics of \[BKSS90\] lives here:
//!   area, margin, enlargement, overlap, union, intersection;
//! * [`Segment`] — line segments with a robust orientation-based
//!   intersection predicate;
//! * [`Polyline`] — the exact representation of map objects (streets,
//!   rivers, boundaries, railway tracks — the TIGER data of §5.1);
//! * [`Polygon`] — simple polygons for region objects, with
//!   point-in-polygon and rectangle-intersection predicates;
//! * [`Geometry`] — the closed enum over the exact representations
//!   (point / polyline / polygon) stored by the database layer, with the
//!   window-, point- and join-predicates dispatching per variant;
//! * [`decomposed`] — a decomposed object representation in the spirit of
//!   the TR\*-tree \[SK91\], used by the paper for the *exact geometry test*
//!   of the spatial join's refinement step (§6.3).
//!
//! All coordinates are `f64` in an abstract data space; the paper's
//! experiments normalise the data space to the unit square, and so do we.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decomposed;
pub mod geometry;
pub mod point;
pub mod polygon;
pub mod polyline;
pub mod rect;
pub mod segment;

pub use decomposed::DecomposedPolyline;
pub use geometry::Geometry;
pub use point::Point;
pub use polygon::Polygon;
pub use polyline::Polyline;
pub use rect::Rect;
pub use segment::Segment;

/// Geometric objects that have a minimum bounding rectangle.
///
/// Every spatial object stored by an organization model exposes its MBR;
/// the MBR is the (only) spatial key seen by the R\*-tree.
pub trait HasMbr {
    /// The minimum bounding rectangle of the object.
    fn mbr(&self) -> Rect;
}

impl HasMbr for Rect {
    #[inline]
    fn mbr(&self) -> Rect {
        *self
    }
}

impl HasMbr for Point {
    #[inline]
    fn mbr(&self) -> Rect {
        Rect::new(self.x, self.y, self.x, self.y)
    }
}

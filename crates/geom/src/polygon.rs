//! Simple polygons for region objects (administrative areas).
//!
//! Map 2 of the paper contains administrative boundaries; when those
//! boundaries close into rings, point queries ("which county contains P?")
//! need a point-in-polygon test. The polygon type below supports the three
//! predicates used by the query layer: point containment, rectangle
//! intersection, and polygon/polyline intersection.

use crate::point::Point;
use crate::polyline::{Polyline, BYTES_PER_VERTEX, POLYLINE_HEADER_BYTES};
use crate::rect::Rect;
use crate::segment::Segment;
use crate::HasMbr;

/// A simple polygon given by its outer ring (implicitly closed: the last
/// vertex connects back to the first).
#[derive(Clone, PartialEq, Debug)]
pub struct Polygon {
    ring: Vec<Point>,
    mbr: Rect,
}

impl Polygon {
    /// Create a polygon from its ring vertices (not repeating the first
    /// vertex at the end).
    ///
    /// # Panics
    ///
    /// Panics if fewer than three vertices are supplied or any coordinate
    /// is non-finite.
    pub fn new(ring: Vec<Point>) -> Self {
        assert!(
            ring.len() >= 3,
            "a polygon needs at least 3 vertices, got {}",
            ring.len()
        );
        let mut mbr = Rect::empty();
        for v in &ring {
            assert!(v.is_finite(), "non-finite polygon vertex {v}");
            mbr = mbr.union(&Rect::new(v.x, v.y, v.x, v.y));
        }
        Polygon { ring, mbr }
    }

    /// The ring vertices.
    #[inline]
    pub fn ring(&self) -> &[Point] {
        &self.ring
    }

    /// Number of ring vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.ring.len()
    }

    /// Iterate over the boundary segments (including the closing edge).
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.ring.len();
        (0..n).map(move |i| Segment::new(self.ring[i], self.ring[(i + 1) % n]))
    }

    /// Signed area (positive for counter-clockwise rings).
    pub fn signed_area(&self) -> f64 {
        let n = self.ring.len();
        let mut acc = 0.0;
        for i in 0..n {
            let p = self.ring[i];
            let q = self.ring[(i + 1) % n];
            acc += p.x * q.y - q.x * p.y;
        }
        acc * 0.5
    }

    /// Absolute area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Size of the serialized representation in bytes (same layout as
    /// [`Polyline::serialized_size`]).
    #[inline]
    pub fn serialized_size(&self) -> usize {
        POLYLINE_HEADER_BYTES + BYTES_PER_VERTEX * self.ring.len()
    }

    /// `true` if `p` lies in the closed polygon (boundary included).
    ///
    /// Even-odd ray casting with an explicit boundary test so that points
    /// exactly on an edge are reported as contained, matching the closed
    /// set semantics of the paper's point query.
    pub fn contains_point(&self, p: &Point) -> bool {
        if !self.mbr.contains_point(p) {
            return false;
        }
        if self.edges().any(|e| e.contains_point(p)) {
            return true;
        }
        let mut inside = false;
        let n = self.ring.len();
        let mut j = n - 1;
        for i in 0..n {
            let vi = self.ring[i];
            let vj = self.ring[j];
            if (vi.y > p.y) != (vj.y > p.y) {
                let x_cross = vj.x + (p.y - vj.y) / (vi.y - vj.y) * (vi.x - vj.x);
                if p.x < x_cross {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// `true` if the polygon (interior or boundary) shares a point with the
    /// closed rectangle.
    pub fn intersects_rect(&self, rect: &Rect) -> bool {
        if !self.mbr.intersects(rect) {
            return false;
        }
        // Any boundary edge crossing the rectangle?
        if self.edges().any(|e| e.intersects_rect(rect)) {
            return true;
        }
        // Rectangle fully inside the polygon?
        if self.contains_point(&rect.center()) {
            return true;
        }
        // Polygon fully inside the rectangle?
        rect.contains_point(&self.ring[0])
    }

    /// `true` if the two polygons share at least one point: boundaries
    /// cross, or one polygon lies inside the other.
    pub fn intersects_polygon(&self, other: &Polygon) -> bool {
        if !self.mbr.intersects(&other.mbr) {
            return false;
        }
        for e in self.edges() {
            let embr = e.mbr();
            if !embr.intersects(&other.mbr) {
                continue;
            }
            for f in other.edges() {
                if embr.intersects(&f.mbr()) && e.intersects(&f) {
                    return true;
                }
            }
        }
        self.contains_point(&other.ring[0]) || other.contains_point(&self.ring[0])
    }

    /// `true` if the polygon intersects the polyline (boundary crossing or
    /// polyline contained in the interior).
    pub fn intersects_polyline(&self, line: &Polyline) -> bool {
        if !self.mbr.intersects(&line.mbr()) {
            return false;
        }
        for e in self.edges() {
            for s in line.segments() {
                if e.mbr().intersects(&s.mbr()) && e.intersects(&s) {
                    return true;
                }
            }
        }
        self.contains_point(&line.vertices()[0])
    }
}

impl HasMbr for Polygon {
    #[inline]
    fn mbr(&self) -> Rect {
        self.mbr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ])
    }

    fn triangle() -> Polygon {
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 4.0),
        ])
    }

    #[test]
    #[should_panic(expected = "at least 3 vertices")]
    fn rejects_two_vertices() {
        let _ = Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
    }

    #[test]
    fn signed_area_ccw_positive() {
        assert_eq!(unit_square().signed_area(), 1.0);
        let cw = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 0.0),
        ]);
        assert_eq!(cw.signed_area(), -1.0);
        assert_eq!(cw.area(), 1.0);
    }

    #[test]
    fn contains_interior_point() {
        assert!(unit_square().contains_point(&Point::new(0.5, 0.5)));
        assert!(triangle().contains_point(&Point::new(1.0, 1.0)));
    }

    #[test]
    fn excludes_exterior_point() {
        assert!(!unit_square().contains_point(&Point::new(1.5, 0.5)));
        assert!(!triangle().contains_point(&Point::new(3.0, 3.0)));
    }

    #[test]
    fn boundary_points_contained() {
        let sq = unit_square();
        assert!(sq.contains_point(&Point::new(0.0, 0.5)));
        assert!(sq.contains_point(&Point::new(1.0, 1.0)));
        assert!(sq.contains_point(&Point::new(0.5, 0.0)));
    }

    #[test]
    fn rect_intersection_cases() {
        let sq = unit_square();
        // Overlapping.
        assert!(sq.intersects_rect(&Rect::new(0.5, 0.5, 2.0, 2.0)));
        // Rect inside polygon.
        assert!(sq.intersects_rect(&Rect::new(0.25, 0.25, 0.75, 0.75)));
        // Polygon inside rect.
        assert!(sq.intersects_rect(&Rect::new(-1.0, -1.0, 2.0, 2.0)));
        // Disjoint.
        assert!(!sq.intersects_rect(&Rect::new(2.0, 2.0, 3.0, 3.0)));
    }

    #[test]
    fn polyline_intersection_cases() {
        let sq = unit_square();
        // Crossing the boundary.
        let crossing = Polyline::new(vec![Point::new(-1.0, 0.5), Point::new(2.0, 0.5)]);
        assert!(sq.intersects_polyline(&crossing));
        // Fully inside.
        let inside = Polyline::new(vec![Point::new(0.2, 0.2), Point::new(0.8, 0.8)]);
        assert!(sq.intersects_polyline(&inside));
        // Fully outside.
        let outside = Polyline::new(vec![Point::new(2.0, 2.0), Point::new(3.0, 3.0)]);
        assert!(!sq.intersects_polyline(&outside));
    }

    #[test]
    fn serialized_size_counts_ring() {
        assert_eq!(
            unit_square().serialized_size(),
            POLYLINE_HEADER_BYTES + 4 * BYTES_PER_VERTEX
        );
    }

    #[test]
    fn mbr_covers_ring() {
        assert_eq!(triangle().mbr(), Rect::new(0.0, 0.0, 4.0, 4.0));
    }

    #[test]
    fn concave_polygon_containment() {
        // A "U" shape: points in the notch are outside.
        let u = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(3.0, 3.0),
            Point::new(2.0, 3.0),
            Point::new(2.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 3.0),
            Point::new(0.0, 3.0),
        ]);
        assert!(u.contains_point(&Point::new(0.5, 2.0)));
        assert!(u.contains_point(&Point::new(2.5, 2.0)));
        assert!(!u.contains_point(&Point::new(1.5, 2.0))); // in the notch
        assert!(u.contains_point(&Point::new(1.5, 0.5)));
    }
}

//! 2-dimensional points.

use std::fmt;

/// A point in the 2-d data space.
///
/// Points are the arguments of *point queries* (§2 of the paper): given a
/// query point `P` and a set of objects `M`, the point query yields all
/// objects of `M` geometrically containing `P`.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Point {
    /// x-coordinate.
    pub x: f64,
    /// y-coordinate.
    pub y: f64,
}

impl Point {
    /// Create a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to another point.
    ///
    /// Cheaper than [`Point::distance`]; use it whenever only the ordering
    /// of distances matters (as in the R\*-tree forced-reinsert entry
    /// selection, which sorts entries by distance from the node centre).
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Component-wise translation.
    #[inline]
    pub fn translate(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// `true` if both coordinates are finite (neither NaN nor infinite).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(-0.5, 7.25);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 6.0);
        assert_eq!(a.midpoint(&b), Point::new(1.0, 3.0));
    }

    #[test]
    fn translate_moves_point() {
        let p = Point::new(1.0, 1.0).translate(-0.5, 2.0);
        assert_eq!(p, Point::new(0.5, 3.0));
    }

    #[test]
    fn finiteness_check() {
        assert!(Point::new(0.0, 0.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn from_tuple() {
        let p: Point = (2.0, 3.0).into();
        assert_eq!(p, Point::new(2.0, 3.0));
    }
}

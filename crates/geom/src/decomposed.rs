//! Decomposed object representation for fast exact geometry tests.
//!
//! §6.3 of the paper: *"The exact geometry test for intersection is
//! supported by a decomposed representation of the objects \[SK91\] where one
//! test needs roughly 0.75 msec."* \[SK91\] is the TR\*-tree — a small
//! internal tree over the components of a single object.
//!
//! We reproduce the *behavioural* essence: a polyline is decomposed into
//! short runs of segments, each with a precomputed bounding rectangle. An
//! intersection test walks the two component lists and only compares
//! segments from component pairs with intersecting boxes, which turns the
//! naive `O(n·m)` segment sweep into a near-linear test for realistic map
//! objects. The CPU cost charged in the experiment harness is the paper's
//! constant 0.75 msec per candidate pair regardless (see
//! `spatialdb-join::pipeline`), so this module only affects wall-clock
//! time, not the reproduced figures.

use crate::polyline::Polyline;
use crate::rect::Rect;
use crate::segment::Segment;
use crate::HasMbr;

/// Number of segments grouped into one decomposition component.
///
/// Components of 8 segments keep component boxes tight for typical map
/// polylines while bounding the per-component work.
pub const SEGMENTS_PER_COMPONENT: usize = 8;

/// One component of a decomposed polyline: a contiguous run of segments
/// plus its bounding rectangle.
#[derive(Clone, Debug)]
pub struct Component {
    /// Bounding rectangle of the run.
    pub bbox: Rect,
    /// Index of the first vertex of the run in the owning polyline.
    pub first_vertex: usize,
    /// Number of segments in the run.
    pub num_segments: usize,
}

/// A polyline together with its decomposition into segment runs.
///
/// The decomposition is immutable and computed once when the object is
/// first needed for refinement — mirroring the paper's assumption that the
/// decomposed representation is stored with the object.
#[derive(Clone, Debug)]
pub struct DecomposedPolyline {
    line: Polyline,
    components: Vec<Component>,
}

impl DecomposedPolyline {
    /// Decompose `line` into runs of at most [`SEGMENTS_PER_COMPONENT`]
    /// segments.
    pub fn new(line: Polyline) -> Self {
        let n_segments = line.num_vertices() - 1;
        let mut components = Vec::with_capacity(n_segments.div_ceil(SEGMENTS_PER_COMPONENT));
        let verts = line.vertices();
        let mut start = 0usize;
        while start < n_segments {
            let len = SEGMENTS_PER_COMPONENT.min(n_segments - start);
            let mut bbox = Rect::empty();
            for v in &verts[start..=start + len] {
                bbox = bbox.union(&Rect::new(v.x, v.y, v.x, v.y));
            }
            components.push(Component {
                bbox,
                first_vertex: start,
                num_segments: len,
            });
            start += len;
        }
        DecomposedPolyline { line, components }
    }

    /// The underlying polyline.
    #[inline]
    pub fn polyline(&self) -> &Polyline {
        &self.line
    }

    /// The decomposition components.
    #[inline]
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    fn component_segments(&self, c: &Component) -> impl Iterator<Item = Segment> + '_ {
        let verts = self.line.vertices();
        (c.first_vertex..c.first_vertex + c.num_segments)
            .map(move |i| Segment::new(verts[i], verts[i + 1]))
    }

    /// Exact intersection test against another decomposed polyline.
    ///
    /// Component boxes prune segment pairs; the result is identical to
    /// [`Polyline::intersects_polyline`].
    pub fn intersects(&self, other: &DecomposedPolyline) -> bool {
        if !self.line.mbr().intersects(&other.line.mbr()) {
            return false;
        }
        for ca in &self.components {
            if !ca.bbox.intersects(&other.line.mbr()) {
                continue;
            }
            for cb in &other.components {
                if !ca.bbox.intersects(&cb.bbox) {
                    continue;
                }
                for s in self.component_segments(ca) {
                    let smbr = s.mbr();
                    if !smbr.intersects(&cb.bbox) {
                        continue;
                    }
                    for t in other.component_segments(cb) {
                        if smbr.intersects(&t.mbr()) && s.intersects(&t) {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    /// Exact window-intersection test using the component boxes as a
    /// prefilter.
    pub fn intersects_rect(&self, rect: &Rect) -> bool {
        if !self.line.mbr().intersects(rect) {
            return false;
        }
        for c in &self.components {
            if !c.bbox.intersects(rect) {
                continue;
            }
            if self.component_segments(c).any(|s| s.intersects_rect(rect)) {
                return true;
            }
        }
        false
    }
}

impl HasMbr for DecomposedPolyline {
    #[inline]
    fn mbr(&self) -> Rect {
        self.line.mbr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn long_zigzag(n: usize) -> Polyline {
        let mut v = Vec::with_capacity(n);
        for i in 0..n {
            v.push(Point::new(i as f64, if i % 2 == 0 { 0.0 } else { 1.0 }));
        }
        Polyline::new(v)
    }

    #[test]
    fn decomposition_covers_all_segments() {
        let line = long_zigzag(30); // 29 segments
        let d = DecomposedPolyline::new(line);
        let total: usize = d.components().iter().map(|c| c.num_segments).sum();
        assert_eq!(total, 29);
        assert_eq!(d.components().len(), 4); // ceil(29/8)
    }

    #[test]
    fn component_boxes_inside_mbr() {
        let d = DecomposedPolyline::new(long_zigzag(50));
        let mbr = d.mbr();
        for c in d.components() {
            assert!(mbr.contains_rect(&c.bbox));
        }
    }

    #[test]
    fn agrees_with_naive_polyline_intersection() {
        let a = long_zigzag(40);
        let b = Polyline::new(vec![Point::new(-1.0, 0.5), Point::new(40.0, 0.5)]);
        let c = Polyline::new(vec![Point::new(-1.0, 5.0), Point::new(40.0, 5.0)]);
        let da = DecomposedPolyline::new(a.clone());
        let db = DecomposedPolyline::new(b.clone());
        let dc = DecomposedPolyline::new(c.clone());
        assert_eq!(da.intersects(&db), a.intersects_polyline(&b));
        assert!(da.intersects(&db));
        assert_eq!(da.intersects(&dc), a.intersects_polyline(&c));
        assert!(!da.intersects(&dc));
    }

    #[test]
    fn agrees_with_naive_rect_intersection() {
        let a = long_zigzag(40);
        let da = DecomposedPolyline::new(a.clone());
        let hit = Rect::new(10.2, 0.4, 10.8, 0.6);
        let miss = Rect::new(10.4, 1.2, 10.6, 1.4);
        assert_eq!(da.intersects_rect(&hit), a.intersects_rect(&hit));
        assert_eq!(da.intersects_rect(&miss), a.intersects_rect(&miss));
    }

    #[test]
    fn two_segment_line() {
        let a = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]);
        let d = DecomposedPolyline::new(a);
        assert_eq!(d.components().len(), 1);
        assert_eq!(d.components()[0].num_segments, 1);
    }
}

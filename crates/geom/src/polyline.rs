//! Polylines: the exact representation of map objects.
//!
//! The paper's test data (§5.1) are TIGER/Line records — streets, rivers,
//! administrative boundaries, railway tracks — i.e. *polylines*. An object's
//! storage footprint is dominated by its vertex list; the per-series
//! average object sizes of Table 1 (625 B … 3,113 B) correspond to vertex
//! counts which our data generator controls via
//! [`Polyline::vertices_for_size`].

use crate::point::Point;
use crate::rect::Rect;
use crate::segment::Segment;
use crate::HasMbr;

/// Fixed per-object header: object id (8 B), vertex count (4 B),
/// attribute payload reference (4 B), MBR (32 B).
///
/// The exact breakdown is immaterial to the experiments; what matters is
/// that `serialized_size` grows linearly in the number of vertices with
/// 16 B per vertex (two `f64`s), so that the generator can hit the paper's
/// average object sizes exactly.
pub const POLYLINE_HEADER_BYTES: usize = 48;

/// Bytes per stored vertex (two little-endian `f64` coordinates).
pub const BYTES_PER_VERTEX: usize = 16;

/// A polyline — an ordered chain of at least two vertices.
#[derive(Clone, PartialEq, Debug)]
pub struct Polyline {
    vertices: Vec<Point>,
    mbr: Rect,
}

impl Polyline {
    /// Create a polyline from its vertices.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two vertices are supplied or any coordinate is
    /// non-finite.
    pub fn new(vertices: Vec<Point>) -> Self {
        assert!(
            vertices.len() >= 2,
            "a polyline needs at least 2 vertices, got {}",
            vertices.len()
        );
        let mut mbr = Rect::empty();
        for v in &vertices {
            assert!(v.is_finite(), "non-finite polyline vertex {v}");
            mbr = mbr.union(&Rect::new(v.x, v.y, v.x, v.y));
        }
        Polyline { vertices, mbr }
    }

    /// The vertices of the polyline.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Iterate over the segments of the polyline.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.vertices.windows(2).map(|w| Segment::new(w[0], w[1]))
    }

    /// Total polygonal length.
    pub fn length(&self) -> f64 {
        self.segments().map(|s| s.length()).sum()
    }

    /// Size of the serialized representation in bytes.
    ///
    /// `POLYLINE_HEADER_BYTES + 16 · num_vertices`. This is the size the
    /// storage layer charges when placing the object into pages or cluster
    /// units.
    #[inline]
    pub fn serialized_size(&self) -> usize {
        POLYLINE_HEADER_BYTES + BYTES_PER_VERTEX * self.vertices.len()
    }

    /// Number of vertices needed so that `serialized_size` equals (or
    /// minimally exceeds) `target_bytes`.
    ///
    /// Used by the data generator to match the average object sizes of
    /// Table 1 of the paper.
    #[inline]
    pub fn vertices_for_size(target_bytes: usize) -> usize {
        let payload = target_bytes.saturating_sub(POLYLINE_HEADER_BYTES);
        (payload.div_ceil(BYTES_PER_VERTEX)).max(2)
    }

    /// `true` if the polyline shares at least one point with the closed
    /// rectangle (exact window-query predicate).
    pub fn intersects_rect(&self, rect: &Rect) -> bool {
        if !self.mbr.intersects(rect) {
            return false;
        }
        self.segments().any(|s| s.intersects_rect(rect))
    }

    /// `true` if some segment of `self` intersects some segment of `other`
    /// (exact intersection-join predicate for line objects).
    pub fn intersects_polyline(&self, other: &Polyline) -> bool {
        if !self.mbr.intersects(&other.mbr) {
            return false;
        }
        // Quadratic sweep with MBR prefilter per segment; object vertex
        // counts are modest (tens to low hundreds), and the decomposed
        // representation in `decomposed` is the fast path used by the join.
        for s in self.segments() {
            let smbr = s.mbr();
            if !smbr.intersects(&other.mbr) {
                continue;
            }
            for t in other.segments() {
                if smbr.intersects(&t.mbr()) && s.intersects(&t) {
                    return true;
                }
            }
        }
        false
    }

    /// `true` if `p` lies on the polyline.
    pub fn contains_point(&self, p: &Point) -> bool {
        self.mbr.contains_point(p) && self.segments().any(|s| s.contains_point(p))
    }
}

impl HasMbr for Polyline {
    #[inline]
    fn mbr(&self) -> Rect {
        self.mbr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zigzag() -> Polyline {
        Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 0.0),
            Point::new(3.0, 1.0),
        ])
    }

    #[test]
    #[should_panic(expected = "at least 2 vertices")]
    fn rejects_single_vertex() {
        let _ = Polyline::new(vec![Point::new(0.0, 0.0)]);
    }

    #[test]
    fn mbr_covers_all_vertices() {
        let p = zigzag();
        assert_eq!(p.mbr(), Rect::new(0.0, 0.0, 3.0, 1.0));
    }

    #[test]
    fn segment_count() {
        assert_eq!(zigzag().segments().count(), 3);
    }

    #[test]
    fn length_sums_segments() {
        let p = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 4.0),
            Point::new(3.0, 10.0),
        ]);
        assert_eq!(p.length(), 11.0);
    }

    #[test]
    fn serialized_size_formula() {
        let p = zigzag();
        assert_eq!(p.serialized_size(), POLYLINE_HEADER_BYTES + 4 * 16);
    }

    #[test]
    fn vertices_for_size_round_trip() {
        for target in [200usize, 625, 781, 1247, 2490, 3113] {
            let n = Polyline::vertices_for_size(target);
            let size = POLYLINE_HEADER_BYTES + BYTES_PER_VERTEX * n;
            assert!(size >= target);
            assert!(size < target + BYTES_PER_VERTEX);
        }
    }

    #[test]
    fn vertices_for_size_minimum_two() {
        assert_eq!(Polyline::vertices_for_size(0), 2);
        assert_eq!(Polyline::vertices_for_size(40), 2);
    }

    #[test]
    fn window_intersection_exact_vs_mbr() {
        let p = zigzag();
        // Window overlapping the MBR but missing every segment: the zigzag
        // dips to y=0 at x=2, so a window hovering above the dip misses it.
        let w = Rect::new(1.8, 0.0, 2.2, 0.1);
        assert!(p.mbr().intersects(&w));
        assert!(p.intersects_rect(&w)); // dip point (2,0) is inside
        let w2 = Rect::new(1.9, 0.55, 2.1, 0.65);
        assert!(p.mbr().intersects(&w2));
        assert!(!p.intersects_rect(&w2)); // hovers between the two slopes
    }

    #[test]
    fn polyline_intersection() {
        let a = zigzag();
        let b = Polyline::new(vec![Point::new(0.0, 1.0), Point::new(3.0, 0.0)]);
        assert!(a.intersects_polyline(&b));
        let c = Polyline::new(vec![Point::new(0.0, 5.0), Point::new(3.0, 5.0)]);
        assert!(!a.intersects_polyline(&c));
    }

    #[test]
    fn polyline_intersection_symmetric() {
        let a = zigzag();
        let b = Polyline::new(vec![Point::new(1.0, -1.0), Point::new(1.0, 2.0)]);
        assert_eq!(a.intersects_polyline(&b), b.intersects_polyline(&a));
    }

    #[test]
    fn contains_point_on_vertex_and_edge() {
        let p = zigzag();
        assert!(p.contains_point(&Point::new(1.0, 1.0)));
        assert!(p.contains_point(&Point::new(0.5, 0.5)));
        assert!(!p.contains_point(&Point::new(0.5, 0.6)));
    }
}

//! Axis-parallel rectangles: MBRs and query windows.
//!
//! The rectangle algebra below is the complete set of measures used by the
//! R\*-tree heuristics of \[BKSS90\]:
//!
//! * **area** — minimised by the classic R-tree ChooseSubtree and by split
//!   tie-breaking;
//! * **margin** (perimeter) — minimised when the R\*-tree split picks the
//!   split *axis*;
//! * **overlap** — minimised when choosing a leaf subtree and when picking
//!   the split *distribution*;
//! * **enlargement** — the area increase needed to include a new entry.
//!
//! The same type doubles as the *query window* of window queries; the
//! *degree of overlap* used by the geometric-threshold technique (§5.4.1)
//! is computed with [`Rect::overlap_fraction`].

use crate::point::Point;
use std::fmt;

/// An axis-parallel rectangle `[xmin, xmax] × [ymin, ymax]`.
///
/// Degenerate rectangles (zero width and/or height) are valid: a point MBR
/// has `xmin == xmax && ymin == ymax`. An *empty* rectangle (used as the
/// identity of [`Rect::union`]) has inverted bounds; construct it with
/// [`Rect::empty`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Rect {
    /// Minimum x-coordinate.
    pub xmin: f64,
    /// Minimum y-coordinate.
    pub ymin: f64,
    /// Maximum x-coordinate.
    pub xmax: f64,
    /// Maximum y-coordinate.
    pub ymax: f64,
}

impl Rect {
    /// Create a rectangle from its bounds.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `xmin > xmax` or `ymin > ymax` (use
    /// [`Rect::empty`] for the empty rectangle).
    #[inline]
    pub fn new(xmin: f64, ymin: f64, xmax: f64, ymax: f64) -> Self {
        debug_assert!(
            xmin <= xmax && ymin <= ymax,
            "invalid rect: [{xmin},{xmax}]x[{ymin},{ymax}]"
        );
        Rect {
            xmin,
            ymin,
            xmax,
            ymax,
        }
    }

    /// The empty rectangle: the identity of [`Rect::union`].
    ///
    /// It intersects nothing and contains nothing.
    #[inline]
    pub const fn empty() -> Self {
        Rect {
            xmin: f64::INFINITY,
            ymin: f64::INFINITY,
            xmax: f64::NEG_INFINITY,
            ymax: f64::NEG_INFINITY,
        }
    }

    /// `true` if this is the empty rectangle (inverted bounds).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xmin > self.xmax || self.ymin > self.ymax
    }

    /// Rectangle spanning two corner points (in any order).
    #[inline]
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect {
            xmin: a.x.min(b.x),
            ymin: a.y.min(b.y),
            xmax: a.x.max(b.x),
            ymax: a.y.max(b.y),
        }
    }

    /// Rectangle centred at `c` with the given width and height.
    #[inline]
    pub fn centered(c: Point, width: f64, height: f64) -> Self {
        Rect::new(
            c.x - width * 0.5,
            c.y - height * 0.5,
            c.x + width * 0.5,
            c.y + height * 0.5,
        )
    }

    /// Width (x-extension) of the rectangle; `0.0` when empty.
    #[inline]
    pub fn width(&self) -> f64 {
        (self.xmax - self.xmin).max(0.0)
    }

    /// Height (y-extension) of the rectangle; `0.0` when empty.
    #[inline]
    pub fn height(&self) -> f64 {
        (self.ymax - self.ymin).max(0.0)
    }

    /// Area of the rectangle; `0.0` when empty or degenerate.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Margin (half-perimeter, i.e. `width + height`).
    ///
    /// The R\*-tree split algorithm chooses the split axis with the minimum
    /// sum of margins over all candidate distributions (\[BKSS90\], §4.2).
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Centre point of the rectangle.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.xmin + self.xmax) * 0.5, (self.ymin + self.ymax) * 0.5)
    }

    /// `true` if the rectangles share at least one point (closed-set
    /// semantics: touching boundaries intersect).
    ///
    /// This is the *window query* predicate of §2: the window query yields
    /// all objects *sharing points* with the window.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.xmin <= other.xmax
            && other.xmin <= self.xmax
            && self.ymin <= other.ymax
            && other.ymin <= self.ymax
    }

    /// `true` if `p` lies in the closed rectangle.
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        self.xmin <= p.x && p.x <= self.xmax && self.ymin <= p.y && p.y <= self.ymax
    }

    /// `true` if `other` lies completely inside `self` (closed semantics).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        !other.is_empty()
            && self.xmin <= other.xmin
            && self.ymin <= other.ymin
            && other.xmax <= self.xmax
            && other.ymax <= self.ymax
    }

    /// Smallest rectangle containing both operands.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            xmin: self.xmin.min(other.xmin),
            ymin: self.ymin.min(other.ymin),
            xmax: self.xmax.max(other.xmax),
            ymax: self.ymax.max(other.ymax),
        }
    }

    /// Intersection of the two rectangles, or the empty rectangle when they
    /// do not intersect.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Rect {
        let r = Rect {
            xmin: self.xmin.max(other.xmin),
            ymin: self.ymin.max(other.ymin),
            xmax: self.xmax.min(other.xmax),
            ymax: self.ymax.min(other.ymax),
        };
        if r.xmin > r.xmax || r.ymin > r.ymax {
            Rect::empty()
        } else {
            r
        }
    }

    /// Area of the intersection with `other` (`0.0` when disjoint).
    ///
    /// This is the *overlap* measure minimised by the R\*-tree split
    /// distribution choice and leaf-level ChooseSubtree.
    #[inline]
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        let w = (self.xmax.min(other.xmax) - self.xmin.max(other.xmin)).max(0.0);
        let h = (self.ymax.min(other.ymax) - self.ymin.max(other.ymin)).max(0.0);
        w * h
    }

    /// Degree of overlap between `self` (a cluster-unit region) and a query
    /// window: `area(self ∩ window) / area(self)`, in `[0, 1]`.
    ///
    /// This is the measure of the *geometric threshold* technique (§5.4.1):
    /// a cluster unit is transferred completely iff the degree of overlap
    /// exceeds the threshold `T(c)`. For a degenerate (zero-area) region
    /// the fraction is defined as `1.0` when the region intersects the
    /// window and `0.0` otherwise — a zero-area region intersecting the
    /// window is "fully covered" by it.
    #[inline]
    pub fn overlap_fraction(&self, window: &Rect) -> f64 {
        let a = self.area();
        if a > 0.0 {
            self.overlap_area(window) / a
        } else if self.intersects(window) {
            1.0
        } else {
            0.0
        }
    }

    /// Area increase needed to enlarge `self` to include `other`.
    ///
    /// The classic R-tree ChooseSubtree descends into the child whose
    /// rectangle needs the least enlargement.
    #[inline]
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Rectangle grown by `dx`/`dy` on each side (negative values shrink;
    /// the result is clamped to remain valid).
    #[inline]
    pub fn inflate(&self, dx: f64, dy: f64) -> Rect {
        let xmin = self.xmin - dx;
        let xmax = self.xmax + dx;
        let ymin = self.ymin - dy;
        let ymax = self.ymax + dy;
        if xmin > xmax || ymin > ymax {
            let c = self.center();
            Rect::new(c.x, c.y, c.x, c.y)
        } else {
            Rect::new(xmin, ymin, xmax, ymax)
        }
    }

    /// Rectangle scaled around its centre by `factor` (in each dimension).
    #[inline]
    pub fn scale(&self, factor: f64) -> Rect {
        let c = self.center();
        Rect::new(
            c.x - self.width() * 0.5 * factor,
            c.y - self.height() * 0.5 * factor,
            c.x + self.width() * 0.5 * factor,
            c.y + self.height() * 0.5 * factor,
        )
    }

    /// `true` if all bounds are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.xmin.is_finite()
            && self.ymin.is_finite()
            && self.xmax.is_finite()
            && self.ymax.is_finite()
    }

    /// Minimum distance from `p` to the rectangle (0 when inside).
    #[inline]
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        let dx = (self.xmin - p.x).max(0.0).max(p.x - self.xmax);
        let dy = (self.ymin - p.y).max(0.0).max(p.y - self.ymax);
        (dx * dx + dy * dy).sqrt()
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}, {}]x[{}, {}]",
            self.xmin, self.xmax, self.ymin, self.ymax
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: f64, b: f64, c: f64, d: f64) -> Rect {
        Rect::new(a, b, c, d)
    }

    #[test]
    fn area_and_margin() {
        let x = r(0.0, 0.0, 2.0, 3.0);
        assert_eq!(x.area(), 6.0);
        assert_eq!(x.margin(), 5.0);
        assert_eq!(x.width(), 2.0);
        assert_eq!(x.height(), 3.0);
    }

    #[test]
    fn empty_rect_behaviour() {
        let e = Rect::empty();
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        let x = r(0.0, 0.0, 1.0, 1.0);
        assert_eq!(e.union(&x), x);
        assert!(!e.intersects(&x));
        assert!(!x.contains_rect(&e));
    }

    #[test]
    fn intersection_basic() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), r(1.0, 1.0, 2.0, 2.0));
        assert_eq!(a.overlap_area(&b), 1.0);
    }

    #[test]
    fn touching_rects_intersect() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        assert_eq!(a.overlap_area(&b), 0.0);
    }

    #[test]
    fn disjoint_rects() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, 2.0, 3.0, 3.0);
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_empty());
        assert_eq!(a.overlap_area(&b), 0.0);
    }

    #[test]
    fn union_contains_both() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, -1.0, 3.0, 0.5);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, r(0.0, -1.0, 3.0, 1.0));
    }

    #[test]
    fn enlargement_zero_when_contained() {
        let a = r(0.0, 0.0, 4.0, 4.0);
        let b = r(1.0, 1.0, 2.0, 2.0);
        assert_eq!(a.enlargement(&b), 0.0);
        assert!(b.enlargement(&a) > 0.0);
    }

    #[test]
    fn contains_point_closed() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        assert!(a.contains_point(&Point::new(0.0, 0.0)));
        assert!(a.contains_point(&Point::new(1.0, 1.0)));
        assert!(a.contains_point(&Point::new(0.5, 0.5)));
        assert!(!a.contains_point(&Point::new(1.0001, 0.5)));
    }

    #[test]
    fn overlap_fraction_bounds() {
        let region = r(0.0, 0.0, 2.0, 2.0);
        let inside = r(0.0, 0.0, 1.0, 1.0);
        assert_eq!(region.overlap_fraction(&inside), 0.25);
        let cover = r(-1.0, -1.0, 3.0, 3.0);
        assert_eq!(region.overlap_fraction(&cover), 1.0);
        let out = r(5.0, 5.0, 6.0, 6.0);
        assert_eq!(region.overlap_fraction(&out), 0.0);
    }

    #[test]
    fn overlap_fraction_degenerate_region() {
        let point_region = r(1.0, 1.0, 1.0, 1.0);
        let w = r(0.0, 0.0, 2.0, 2.0);
        assert_eq!(point_region.overlap_fraction(&w), 1.0);
        let far = r(5.0, 5.0, 6.0, 6.0);
        assert_eq!(point_region.overlap_fraction(&far), 0.0);
    }

    #[test]
    fn centered_and_scale() {
        let c = Point::new(1.0, 1.0);
        let x = Rect::centered(c, 2.0, 4.0);
        assert_eq!(x, r(0.0, -1.0, 2.0, 3.0));
        let y = x.scale(0.5);
        assert_eq!(y.center(), c);
        assert_eq!(y.width(), 1.0);
        assert_eq!(y.height(), 2.0);
    }

    #[test]
    fn inflate_clamps() {
        let x = r(0.0, 0.0, 1.0, 1.0);
        let shrunk = x.inflate(-2.0, -2.0);
        assert!(shrunk.area() == 0.0);
        let grown = x.inflate(1.0, 2.0);
        assert_eq!(grown, r(-1.0, -2.0, 2.0, 3.0));
    }

    #[test]
    fn distance_to_point() {
        let x = r(0.0, 0.0, 1.0, 1.0);
        assert_eq!(x.distance_to_point(&Point::new(0.5, 0.5)), 0.0);
        assert_eq!(x.distance_to_point(&Point::new(2.0, 0.5)), 1.0);
        assert!((x.distance_to_point(&Point::new(4.0, 5.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn from_corners_any_order() {
        let a = Point::new(2.0, 0.0);
        let b = Point::new(0.0, 3.0);
        assert_eq!(Rect::from_corners(a, b), r(0.0, 0.0, 2.0, 3.0));
    }
}

//! Randomized property tests of the disk array (plain deterministic
//! xorshift, no external dependency — see `proptests.rs` for why the
//! `proptest` suite is feature-gated off):
//!
//! * **Elevator never increases charged seek time**: for the same
//!   request set on the same array shape, draining under the elevator
//!   charges at most as many seeks as FCFS (the §5.4.3 same-cylinder
//!   merge only ever *drops* a seek), with every other charge component
//!   byte-identical.
//! * **Striping is a partition**: every region maps to exactly one
//!   in-range arm, distinct regions never collide on an `(arm, band)`
//!   slot, and the mapping is a pure function — stable across array
//!   rebuilds.

use spatialdb_disk::{Disk, IoKind, PageId, PageRequest, PageRun, RegionId, StripePolicy};

/// Tiny deterministic xorshift (the crate-internal test RNG is not
/// visible to integration tests).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const ALL_POLICIES: [StripePolicy; 3] = [
    StripePolicy::RoundRobin,
    StripePolicy::RegionHash,
    StripePolicy::MbrLocality,
];

fn random_requests(rng: &mut Rng, regions: u16, count: usize) -> Vec<PageRequest> {
    (0..count)
        .map(|_| {
            let region = RegionId(rng.below(regions as u64) as u16);
            // Offsets cluster so same-cylinder adjacency occurs often —
            // that's where the elevator's merge (and the property's
            // interesting case) lives.
            let offset = rng.below(96);
            let len = 1 + rng.below(4);
            let kind = if rng.below(4) == 0 {
                IoKind::Write
            } else {
                IoKind::Read
            };
            PageRequest {
                kind,
                run: PageRun::new(PageId::new(region, offset), len),
                skip_seek: rng.below(5) == 0,
            }
        })
        .collect()
}

#[test]
fn elevator_never_charges_more_seek_time_than_fcfs() {
    use spatialdb_disk::ArmPolicy;
    let mut rng = Rng(0xA11E_7A70_1994_0001);
    for trial in 0..40 {
        let arms = [1usize, 2, 3, 4, 8][(trial % 5) as usize];
        let stripe = ALL_POLICIES[(trial % 3) as usize];
        let regions = 1 + (trial % 7) as u16;
        let requests = random_requests(&mut rng, regions, 60);

        let run = |policy: ArmPolicy| {
            let disk = Disk::with_defaults();
            for _ in 0..regions {
                disk.create_region("r");
            }
            disk.set_arm_policy(policy);
            disk.configure_arms(arms, stripe);
            for r in &requests {
                disk.submit(*r).expect("non-empty run");
            }
            let done = disk.drain_arm();
            assert_eq!(done.len(), requests.len());
            disk.stats()
        };

        let fcfs = run(ArmPolicy::Fcfs);
        let elevator = run(ArmPolicy::Elevator);
        assert!(
            elevator.seeks <= fcfs.seeks,
            "trial {trial} ({arms} arms, {stripe:?}): elevator charged \
             {} seeks > fcfs {}",
            elevator.seeks,
            fcfs.seeks
        );
        assert!(elevator.io_ms <= fcfs.io_ms, "trial {trial}");
        // Everything but the merged seeks is conserved.
        assert_eq!(elevator.read_requests, fcfs.read_requests);
        assert_eq!(elevator.write_requests, fcfs.write_requests);
        assert_eq!(elevator.pages_read, fcfs.pages_read);
        assert_eq!(elevator.pages_written, fcfs.pages_written);
        assert_eq!(elevator.latencies, fcfs.latencies);
        // FCFS never merges: its charge is exactly the synchronous one.
        let unskipped = requests.iter().filter(|r| !r.skip_seek).count() as u64;
        assert_eq!(fcfs.seeks, unskipped);
    }
}

#[test]
fn striping_is_a_partition_of_regions() {
    for arms in [1usize, 2, 3, 4, 5, 8, 16] {
        for stripe in ALL_POLICIES {
            let mut slots = std::collections::HashSet::new();
            for r in 0..512u16 {
                let region = RegionId(r);
                let arm = stripe.arm_of(region, arms);
                assert!(arm < arms, "{stripe:?}: arm {arm} out of range");
                let band = stripe.local_band(region, arms);
                assert!(
                    slots.insert((arm, band)),
                    "{stripe:?}/{arms} arms: region {r} collides on \
                     arm {arm} band {band}"
                );
                // Pure function of (region, arms): re-evaluation (and
                // therefore any array rebuild) yields the same slot.
                assert_eq!(stripe.arm_of(region, arms), arm);
                assert_eq!(stripe.local_band(region, arms), band);
            }
        }
    }
}

#[test]
fn rebuilt_arrays_route_identically() {
    // The partition is stable across rebuilds: two disks configured the
    // same way service the same submissions with identical completions.
    let mut rng = Rng(0x5EED_5EED_0000_0007);
    for stripe in ALL_POLICIES {
        let requests = random_requests(&mut rng, 6, 40);
        let drain = |_: usize| {
            let disk = Disk::with_defaults();
            for _ in 0..6 {
                disk.create_region("r");
            }
            disk.configure_arms(4, stripe);
            for r in &requests {
                disk.submit(*r);
            }
            disk.drain_arm()
        };
        let a = drain(0);
        let b = drain(1);
        assert_eq!(a, b, "{stripe:?}: rebuild changed the schedule");
    }
}

// Gated: requires the external `proptest` crate (not vendored in this
// offline build). Enable with `--features proptest` after adding the
// dev-dependency.
#![cfg(feature = "proptest")]

//! Property-based tests for the disk simulator invariants.

use proptest::prelude::*;
use spatialdb_disk::model::runs_of;
use spatialdb_disk::{
    slm_schedule, BuddyConfig, Disk, DiskParams, ExtentAllocator, LruBuffer, PageId, PageRun,
    RegionId,
};

fn sorted_unique(v: Vec<u64>) -> Vec<u64> {
    let mut v = v;
    v.sort_unstable();
    v.dedup();
    v
}

proptest! {
    #[test]
    fn runs_cover_exactly_the_input(offsets in prop::collection::vec(0u64..500, 0..60)) {
        let offsets = sorted_unique(offsets);
        let r = RegionId(3);
        let pages: Vec<PageId> = offsets.iter().map(|&o| PageId::new(r, o)).collect();
        let runs = runs_of(&pages);
        let covered: Vec<PageId> = runs.iter().flat_map(|run| run.pages()).collect();
        prop_assert_eq!(covered, pages);
        // Runs are maximal: consecutive runs are separated by a gap.
        for w in runs.windows(2) {
            prop_assert!(w[0].end_offset() < w[1].start.offset);
        }
    }

    #[test]
    fn slm_schedule_covers_requested(offsets in prop::collection::vec(0u64..400, 0..50),
                                     max_gap in 0u64..10) {
        let offsets = sorted_unique(offsets);
        let runs = slm_schedule(&offsets, max_gap);
        // Every requested offset is inside exactly one run.
        for &o in &offsets {
            let n = runs.iter()
                .filter(|r| o >= r.start && o < r.start + r.len)
                .count();
            prop_assert_eq!(n, 1);
        }
        // Requested counts sum to the number of offsets.
        let total: u64 = runs.iter().map(|r| r.requested).sum();
        prop_assert_eq!(total, offsets.len() as u64);
        // First and last page of each run are requested; internal gaps ≤ max_gap.
        for r in &runs {
            prop_assert!(offsets.binary_search(&r.start).is_ok());
            prop_assert!(offsets.binary_search(&(r.start + r.len - 1)).is_ok());
        }
        // Runs are separated by gaps > max_gap.
        for w in runs.windows(2) {
            let gap = w[1].start - (w[0].start + w[0].len);
            prop_assert!(gap > max_gap);
        }
    }

    #[test]
    fn slm_larger_gap_never_more_requests(offsets in prop::collection::vec(0u64..400, 1..50)) {
        let offsets = sorted_unique(offsets);
        let mut prev = u64::MAX;
        for gap in 0..8u64 {
            let n = slm_schedule(&offsets, gap).len() as u64;
            prop_assert!(n <= prev);
            prev = n;
        }
    }

    #[test]
    fn extent_allocator_never_double_allocates(ops in prop::collection::vec((1u64..20, any::<bool>()), 1..80)) {
        let disk = Disk::with_defaults();
        let mut alloc = ExtentAllocator::new(disk.create_region("x"));
        let mut live: Vec<PageRun> = Vec::new();
        for (n, free_one) in ops {
            if free_one && !live.is_empty() {
                let run = live.swap_remove(0);
                alloc.free(run);
            } else {
                let run = alloc.alloc(n);
                // No overlap with any live extent.
                for l in &live {
                    let disjoint = run.end_offset() <= l.start.offset
                        || l.end_offset() <= run.start.offset;
                    prop_assert!(disjoint, "overlap {run:?} vs {l:?}");
                }
                live.push(run);
            }
            let live_pages: u64 = live.iter().map(|r| r.len).sum();
            prop_assert_eq!(alloc.allocated_pages(), live_pages);
        }
    }

    #[test]
    fn buddy_class_at_least_need(smax in 1u64..200, need in 1u64..200) {
        let c = BuddyConfig::full(smax);
        if let Some(class) = c.class_for(need) {
            prop_assert!(class >= need);
            prop_assert!(c.sizes().contains(&class));
            // Minimality: no smaller allowed size fits.
            for &s in c.sizes() {
                if s < class {
                    prop_assert!(s < need);
                }
            }
        } else {
            prop_assert!(need > smax);
        }
    }

    #[test]
    fn lru_never_exceeds_capacity(cap in 1usize..32,
                                  accesses in prop::collection::vec(0u64..64, 0..200)) {
        let mut b = LruBuffer::new(cap);
        let r = RegionId(0);
        for o in accesses {
            b.insert(PageId::new(r, o), o % 3 == 0);
            prop_assert!(b.len() <= cap);
        }
    }

    #[test]
    fn lru_most_recent_always_present(cap in 1usize..16,
                                      accesses in prop::collection::vec(0u64..64, 1..100)) {
        let mut b = LruBuffer::new(cap);
        let r = RegionId(0);
        for &o in &accesses {
            b.insert(PageId::new(r, o), false);
            prop_assert!(b.contains(&PageId::new(r, o)));
        }
        // The cap most recent distinct pages are exactly the buffer content.
        let mut recent: Vec<u64> = Vec::new();
        for &o in accesses.iter().rev() {
            if !recent.contains(&o) {
                recent.push(o);
            }
            if recent.len() == cap {
                break;
            }
        }
        for &o in &recent {
            prop_assert!(b.contains(&PageId::new(r, o)));
        }
    }

    #[test]
    fn request_cost_monotone_in_pages(pages in 1u64..200) {
        let p = DiskParams::default();
        prop_assert!(p.request_ms(pages + 1, false) > p.request_ms(pages, false));
        prop_assert!(p.request_ms(pages, true) < p.request_ms(pages, false));
    }

    #[test]
    fn one_big_request_cheaper_than_two(a in 1u64..100, b in 1u64..100) {
        let p = DiskParams::default();
        // Merging two requests into one (same total pages + gap of g pages)
        // is cheaper whenever g < latency/transfer.
        let merged = p.request_ms(a + b + 3, false);
        let split = p.request_ms(a, false) + p.request_ms(b, true);
        prop_assert!(merged < split);
    }
}

//! Debug-build lock-order checking ("lockdep") for the disk crate.
//!
//! The crate's deadlock-freedom argument is a documented hierarchy
//! (which also covers the engine layers built on top of this crate —
//! they register their locks here so one checker sees every class):
//!
//! 1. [`LockClass::DbWriter`] — a database's writer gate (the
//!    commit serialization lock of the shadow-paging write path in
//!    `spatialdb-core`); held across whole commits, so it must rank
//!    before every lock a store operation can take;
//! 2. [`LockClass::Shard`]`(i)` — the sharded pool's per-shard buffer
//!    locks, ordered **ascending by index** within the class (the
//!    stop-the-world `lock_all` takes them 0, 1, 2, …);
//! 3. [`LockClass::ArmQueue`] — the disk's array mutex (arm request
//!    queues and timelines);
//! 4. [`LockClass::DiskCounters`] — the disk's statistics/region state;
//! 5. [`LockClass::Geometry`] — a database's exact-geometry arena
//!    (leaf lock: nothing else is acquired while it is held);
//! 6. [`LockClass::Epoch`] — the epoch collector's retired-garbage
//!    list (`spatialdb-epoch`; leaf lock).
//!
//! A *blocking* acquisition must never take a class that ranks at or
//! below something already held (equal rank is allowed only for a
//! strictly higher shard index). `try_*` acquisitions are **exempt from
//! the hierarchy as acquirers** — a try-lock never waits, so it can
//! never close a deadlock cycle (this is what makes the adaptive-quota
//! steal/decay probing safe) — but the locks they *hold* still count
//! against later blocking acquisitions on the same thread: blocking on
//! a lower rank while holding a try-taken higher lock is a real
//! inversion and is flagged.
//!
//! In debug builds every [`DepMutex::acquire`] checks the calling
//! thread's held-stack against the hierarchy and records the cross-class
//! acquisition edge — together with the source location that first
//! created it — in a global wait graph; the first hierarchy violation
//! or graph cycle panics with both classes named **and the accumulated
//! wait graph dumped**, so the report shows not just the bad pair but
//! every nesting the run had established and where ([`wait_graph`]).
//! In release builds the whole checker compiles away: [`DepMutex`] is a
//! plain [`Mutex`] plus a unit class tag, and [`DepGuard`] is a plain
//! guard.

use std::fmt;
use std::sync::{Mutex, MutexGuard, TryLockError};

/// The lock classes of the engine, in hierarchy order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockClass {
    /// A database's writer gate (shadow-paging commit serialization).
    DbWriter,
    /// A sharded-pool buffer shard (intra-class order: ascending index).
    Shard(usize),
    /// The disk's arm-array mutex (request queues, timelines).
    ArmQueue,
    /// The disk's counter/region state mutex.
    DiskCounters,
    /// A database's exact-geometry arena (leaf lock).
    Geometry,
    /// The epoch collector's retired-garbage list (leaf lock).
    Epoch,
}

impl LockClass {
    /// Rank in the hierarchy (lower acquires first).
    pub fn rank(self) -> u8 {
        match self {
            LockClass::DbWriter => 0,
            LockClass::Shard(_) => 1,
            LockClass::ArmQueue => 2,
            LockClass::DiskCounters => 3,
            LockClass::Geometry => 4,
            LockClass::Epoch => 5,
        }
    }

    /// Whether blocking on `self` while already holding `held` violates
    /// the hierarchy. Equal-rank shard acquisitions are ordered by
    /// index; re-acquiring the same non-shard class is self-deadlock.
    #[cfg(debug_assertions)]
    fn conflicts_with(self, held: LockClass) -> bool {
        match (held, self) {
            (LockClass::Shard(i), LockClass::Shard(j)) => j <= i,
            _ => self.rank() <= held.rank(),
        }
    }
}

impl fmt::Display for LockClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockClass::DbWriter => f.write_str("DbWriter"),
            LockClass::Shard(i) => write!(f, "Shard({i})"),
            LockClass::ArmQueue => f.write_str("ArmQueue"),
            LockClass::DiskCounters => f.write_str("DiskCounters"),
            LockClass::Geometry => f.write_str("Geometry"),
            LockClass::Epoch => f.write_str("Epoch"),
        }
    }
}

#[cfg(debug_assertions)]
mod checker {
    use super::LockClass;
    use std::cell::RefCell;
    use std::panic::Location;
    use std::sync::Mutex;

    /// Number of lock-class kinds (one per hierarchy rank).
    const KINDS: usize = 6;

    /// One lock the current thread holds.
    struct Held {
        class: LockClass,
        /// Identity of the acquisition (guards drop in arbitrary order).
        token: u64,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
        static NEXT_TOKEN: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }

    /// Cross-class *blocking* acquisition graph: `edges[a][b]` records
    /// that some thread blocking-acquired rank-kind `b` while holding
    /// rank-kind `a`, stamped with the source location of the
    /// acquisition that first created the edge. Six kinds, so the
    /// graph is a tiny adjacency matrix; a cycle in it means the
    /// documented hierarchy itself is inconsistent with the code.
    static GRAPH: Mutex<[[Option<&'static Location<'static>>; KINDS]; KINDS]> =
        Mutex::new([[None; KINDS]; KINDS]);

    fn kind(class: LockClass) -> usize {
        class.rank() as usize
    }

    fn kind_name(kind: usize) -> &'static str {
        [
            "DbWriter",
            "Shard",
            "ArmQueue",
            "DiskCounters",
            "Geometry",
            "Epoch",
        ][kind]
    }

    /// Render the accumulated wait graph: one `A -> B @ site` line per
    /// recorded edge, in rank order. Empty when no cross-class nesting
    /// happened yet.
    pub(super) fn wait_graph_dump() -> String {
        let graph = GRAPH.lock().expect("lockdep graph poisoned");
        let mut out = String::new();
        for (a, row) in graph.iter().enumerate() {
            for (b, site) in row.iter().enumerate() {
                if let Some(site) = site {
                    out.push_str(&format!(
                        "  {} -> {} @ {}:{}\n",
                        kind_name(a),
                        kind_name(b),
                        site.file(),
                        site.line()
                    ));
                }
            }
        }
        out
    }

    /// Depth-first reachability of `to` from `from` over recorded edges.
    fn reaches(
        edges: &[[Option<&'static Location<'static>>; KINDS]; KINDS],
        from: usize,
        to: usize,
        seen: &mut [bool; KINDS],
    ) -> bool {
        if from == to {
            return true;
        }
        seen[from] = true;
        (0..KINDS).any(|n| edges[from][n].is_some() && !seen[n] && reaches(edges, n, to, seen))
    }

    /// Check a **blocking** acquisition of `class` against everything
    /// the thread holds, record the acquisition edges, and push the
    /// lock onto the held-stack. Panics (debug builds only — the whole
    /// module is compiled out in release) on the first hierarchy
    /// violation or acquisition-graph cycle, dumping the accumulated
    /// wait graph with the site that created each edge.
    pub(super) fn acquire_blocking(class: LockClass, site: &'static Location<'static>) -> u64 {
        HELD.with(|held| {
            let held = held.borrow();
            for h in held.iter() {
                if class.conflicts_with(h.class) {
                    panic!(
                        "lock hierarchy violation: blocking acquisition of {class} at {site} \
                         while holding {held} (declared order: DbWriter -> Shard(asc) -> \
                         ArmQueue -> DiskCounters -> Geometry -> Epoch; see \
                         crates/disk/src/lockdep.rs)\nwait graph so far:\n{dump}",
                        held = h.class,
                        dump = wait_graph_dump(),
                    );
                }
            }
            let mut graph = GRAPH.lock().expect("lockdep graph poisoned");
            for h in held.iter() {
                let (a, b) = (kind(h.class), kind(class));
                if a == b || graph[a][b].is_some() {
                    continue;
                }
                graph[a][b] = Some(site);
                let mut seen = [false; KINDS];
                if reaches(&graph, b, a, &mut seen) {
                    let dump = wait_graph_dump();
                    panic!(
                        "lock acquisition graph cycle: {held} -> {class} at {site} closes \
                         a cycle\nwait graph so far:\n{dump}",
                        held = h.class,
                    );
                }
            }
        });
        push(class)
    }

    /// Track a `try_*` acquisition that succeeded. Exempt from the
    /// hierarchy check (a try-lock never waits, so it cannot close a
    /// deadlock cycle) but pushed onto the held-stack: blocking on a
    /// lower rank while holding this lock is still flagged.
    pub(super) fn acquire_try(class: LockClass) -> u64 {
        push(class)
    }

    fn push(class: LockClass) -> u64 {
        let token = NEXT_TOKEN.with(|t| {
            let v = t.get();
            t.set(v + 1);
            v
        });
        HELD.with(|held| held.borrow_mut().push(Held { class, token }));
        token
    }

    /// Pop the acquisition identified by `token` (guards may drop in
    /// any order, so search from the top).
    pub(super) fn release(token: u64) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            let idx = held
                .iter()
                .rposition(|h| h.token == token)
                .expect("released a lock this thread does not hold");
            held.remove(idx);
        });
    }
}

/// The accumulated cross-class wait graph as text: one
/// `Holder -> Acquired @ file:line` line per blocking-acquisition edge
/// recorded so far, in rank order. Debug builds only — in release the
/// checker is compiled out and this returns an empty string. The same
/// dump is appended to every hierarchy-violation panic.
pub fn wait_graph() -> String {
    #[cfg(debug_assertions)]
    {
        checker::wait_graph_dump()
    }
    #[cfg(not(debug_assertions))]
    {
        String::new()
    }
}

/// A [`Mutex`] tagged with a [`LockClass`], hierarchy-checked in debug
/// builds (see the [module docs](self)); a plain mutex in release.
pub struct DepMutex<T> {
    class: LockClass,
    inner: Mutex<T>,
}

impl<T> DepMutex<T> {
    /// Wrap `value` in a mutex of the given class.
    pub fn new(class: LockClass, value: T) -> Self {
        DepMutex {
            class,
            inner: Mutex::new(value),
        }
    }

    /// This mutex's class.
    pub fn class(&self) -> LockClass {
        self.class
    }

    /// Blocking acquisition, checked against the hierarchy in debug
    /// builds (the caller's source location is recorded as the wait
    /// graph edge site). Panics if a holder panicked (poisoning), like
    /// the `expect` calls it replaces.
    #[track_caller]
    pub fn acquire(&self) -> DepGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = checker::acquire_blocking(self.class, std::panic::Location::caller());
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(|_| panic!("lock poisoned: {}", self.class));
        DepGuard {
            guard,
            #[cfg(debug_assertions)]
            token,
        }
    }

    /// Direct access to the data under exclusive borrow — no locking
    /// and no hierarchy check (an exclusive borrow can never wait, so
    /// it can never deadlock).
    pub fn get_mut(&mut self) -> &mut T {
        let class = self.class;
        self.inner
            .get_mut()
            .unwrap_or_else(|_| panic!("lock poisoned: {class}"))
    }

    /// Non-blocking acquisition: `None` if the lock is held elsewhere.
    /// Exempt from the hierarchy check (can never wait, so can never
    /// deadlock) but the held lock still counts against later blocking
    /// acquisitions on this thread.
    pub fn try_acquire(&self) -> Option<DepGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(DepGuard {
                guard,
                #[cfg(debug_assertions)]
                token: checker::acquire_try(self.class),
            }),
            Err(TryLockError::WouldBlock) => None,
            Err(TryLockError::Poisoned(_)) => panic!("lock poisoned: {}", self.class),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for DepMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("DepMutex");
        s.field("class", &self.class);
        match self.inner.try_lock() {
            Ok(guard) => s.field("data", &&*guard).finish(),
            Err(_) => s.field("data", &"<locked>").finish(),
        }
    }
}

/// Guard returned by [`DepMutex::acquire`]/[`DepMutex::try_acquire`];
/// releases the hierarchy tracking (debug builds) on drop.
pub struct DepGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    token: u64,
}

impl<T> std::ops::Deref for DepGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for DepGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for DepGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        checker::release(self.token);
    }
}

impl<T: fmt::Debug> fmt::Debug for DepGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panics(f: impl FnOnce() + Send + 'static) -> bool {
        // Violations panic; run them on a scratch thread so this test's
        // own held-stack and the shared mutexes stay clean.
        std::thread::spawn(f).join().is_err()
    }

    #[test]
    fn guard_derefs_to_the_value() {
        let m = DepMutex::new(LockClass::DiskCounters, 7u32);
        {
            let mut g = m.acquire();
            *g += 1;
        }
        assert_eq!(*m.acquire(), 8);
    }

    #[test]
    fn in_order_acquisitions_pass() {
        let a = DepMutex::new(LockClass::Shard(0), ());
        let b = DepMutex::new(LockClass::Shard(1), ());
        let c = DepMutex::new(LockClass::ArmQueue, ());
        let d = DepMutex::new(LockClass::DiskCounters, ());
        let _ga = a.acquire();
        let _gb = b.acquire();
        let _gc = c.acquire();
        let _gd = d.acquire();
    }

    #[test]
    fn guards_may_drop_out_of_order() {
        let a = DepMutex::new(LockClass::Shard(0), ());
        let b = DepMutex::new(LockClass::ArmQueue, ());
        let ga = a.acquire();
        let gb = b.acquire();
        drop(ga);
        drop(gb);
        // The held-stack is clean: a fresh in-order chain still works.
        let _ga = a.acquire();
        let _gb = b.acquire();
    }

    #[cfg(debug_assertions)]
    #[test]
    fn rank_regression_is_caught() {
        assert!(panics(|| {
            let d = DepMutex::new(LockClass::DiskCounters, ());
            let s = DepMutex::new(LockClass::Shard(3), ());
            let _gd = d.acquire();
            let _gs = s.acquire(); // counters -> shard: inversion
        }));
        assert!(panics(|| {
            let q = DepMutex::new(LockClass::ArmQueue, ());
            let s = DepMutex::new(LockClass::Shard(0), ());
            let _gq = q.acquire();
            let _gs = s.acquire(); // arm queue -> shard: inversion
        }));
    }

    #[cfg(debug_assertions)]
    #[test]
    fn shard_index_order_is_enforced() {
        assert!(panics(|| {
            let hi = DepMutex::new(LockClass::Shard(5), ());
            let lo = DepMutex::new(LockClass::Shard(2), ());
            let _ghi = hi.acquire();
            let _glo = lo.acquire(); // descending shard order
        }));
        assert!(panics(|| {
            let a = DepMutex::new(LockClass::Shard(4), ());
            let b = DepMutex::new(LockClass::Shard(4), ());
            let _ga = a.acquire();
            let _gb = b.acquire(); // same index: self-deadlock shape
        }));
    }

    #[cfg(debug_assertions)]
    #[test]
    fn reacquiring_a_nonshard_class_is_caught() {
        assert!(panics(|| {
            let a = DepMutex::new(LockClass::DiskCounters, ());
            let b = DepMutex::new(LockClass::DiskCounters, ());
            let _ga = a.acquire();
            let _gb = b.acquire();
        }));
    }

    #[test]
    fn try_acquire_is_exempt_as_acquirer() {
        // The adaptive-quota paths probe *lower-or-equal* classes with
        // try_lock while holding a shard; a try acquisition never waits,
        // so this must pass.
        let s5 = DepMutex::new(LockClass::Shard(5), ());
        let s2 = DepMutex::new(LockClass::Shard(2), ());
        let _g5 = s5.acquire();
        let g2 = s2.try_acquire();
        assert!(g2.is_some());
    }

    #[test]
    fn try_acquire_reports_contention_as_none() {
        let m = std::sync::Arc::new(DepMutex::new(LockClass::ArmQueue, ()));
        let g = m.acquire();
        let m2 = std::sync::Arc::clone(&m);
        std::thread::scope(|s| {
            s.spawn(move || {
                assert!(m2.try_acquire().is_none());
            });
        });
        drop(g);
        assert!(m.try_acquire().is_some());
    }

    #[cfg(debug_assertions)]
    #[test]
    fn try_held_locks_count_against_blocking_acquisitions() {
        assert!(panics(|| {
            let d = DepMutex::new(LockClass::DiskCounters, ());
            let s = DepMutex::new(LockClass::Shard(0), ());
            let _gd = d.try_acquire().expect("uncontended");
            let _gs = s.acquire(); // blocking below a try-held lock
        }));
    }

    #[test]
    fn blocking_up_from_a_try_held_lock_passes() {
        let s = DepMutex::new(LockClass::Shard(1), ());
        let d = DepMutex::new(LockClass::DiskCounters, ());
        let _gs = s.try_acquire().expect("uncontended");
        let _gd = d.acquire();
    }

    #[test]
    fn debug_formatting_shows_class_and_state() {
        let m = DepMutex::new(LockClass::Shard(2), 42u8);
        let text = format!("{m:?}");
        assert!(text.contains("Shard(2)"));
        assert!(text.contains("42"));
        let g = m.acquire();
        let text = format!("{m:?}");
        assert!(text.contains("<locked>"));
        assert_eq!(format!("{g:?}"), "42");
    }

    #[test]
    fn class_display_names() {
        assert_eq!(LockClass::Shard(3).to_string(), "Shard(3)");
        assert_eq!(LockClass::ArmQueue.to_string(), "ArmQueue");
        assert_eq!(LockClass::DiskCounters.to_string(), "DiskCounters");
        assert_eq!(LockClass::DbWriter.to_string(), "DbWriter");
        assert_eq!(LockClass::Geometry.to_string(), "Geometry");
        assert_eq!(LockClass::Epoch.to_string(), "Epoch");
        assert!(LockClass::DbWriter.rank() < LockClass::Shard(0).rank());
        assert!(LockClass::Shard(9).rank() < LockClass::ArmQueue.rank());
        assert!(LockClass::ArmQueue.rank() < LockClass::DiskCounters.rank());
        assert!(LockClass::DiskCounters.rank() < LockClass::Geometry.rank());
        assert!(LockClass::Geometry.rank() < LockClass::Epoch.rank());
    }

    #[test]
    fn engine_order_writer_first_epoch_last() {
        let w = DepMutex::new(LockClass::DbWriter, ());
        let s = DepMutex::new(LockClass::Shard(0), ());
        let g = DepMutex::new(LockClass::Geometry, ());
        let e = DepMutex::new(LockClass::Epoch, ());
        let _gw = w.acquire();
        let _gs = s.acquire();
        let _gg = g.acquire();
        let _ge = e.acquire();
    }

    #[cfg(debug_assertions)]
    #[test]
    fn epoch_is_a_leaf_class() {
        assert!(panics(|| {
            let e = DepMutex::new(LockClass::Epoch, ());
            let g = DepMutex::new(LockClass::Geometry, ());
            let _ge = e.acquire();
            let _gg = g.acquire(); // epoch -> geometry: inversion
        }));
    }

    #[cfg(debug_assertions)]
    #[test]
    fn wait_graph_records_sites_and_epoch_class() {
        // Record a DbWriter -> Epoch edge, then check the dump names
        // both classes and the acquisition site that created the edge.
        let w = DepMutex::new(LockClass::DbWriter, ());
        let e = DepMutex::new(LockClass::Epoch, ());
        let _gw = w.acquire();
        let _ge = e.acquire();
        let dump = super::wait_graph();
        assert!(
            dump.contains("DbWriter -> Epoch @ "),
            "missing edge in dump:\n{dump}"
        );
        assert!(
            dump.contains("lockdep.rs"),
            "edge site should point at the acquisition: \n{dump}"
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    fn violation_panic_carries_the_wait_graph() {
        let err = std::thread::spawn(|| {
            let d = DepMutex::new(LockClass::DiskCounters, ());
            let s = DepMutex::new(LockClass::Shard(3), ());
            let _gd = d.acquire();
            let _gs = s.acquire();
        })
        .join()
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(msg.contains("lock hierarchy violation"), "{msg}");
        assert!(msg.contains("wait graph so far"), "{msg}");
    }
}

//! The buddy system for cluster units (§5.3.1).
//!
//! Every cluster unit corresponds to a physical unit of limited size. The
//! buddy system works with a limited number of physical unit sizes
//! `Smax · 2^-i (i ≥ 0)`; each cluster unit uses the buddy of the smallest
//! possible size. When a cluster unit outgrows its buddy it is moved into
//! the next larger buddy (costing I/O — this is the construction-cost
//! increase visible in Figure 7); buddies no longer used are given back to
//! the file management system.
//!
//! Two configurations from the paper:
//!
//! * the **full** buddy system with `log2(Smax)` sizes guarantees ≥ 50 %
//!   and averages ≈ 66.7 % utilization;
//! * the **restricted** buddy system of Figure 7 uses only three sizes
//!   (`Smax`, `Smax/2`, `Smax/4`) and already recovers
//!   primary-organization-level storage utilization.
//!
//! The degenerate single-size configuration ([`BuddyConfig::fixed`])
//! models the plain cluster organization of Figure 6, where every cluster
//! unit occupies the full `Smax` because *"the non-occupied pages of a
//! cluster unit cannot be used for other purposes"*.
//!
//! Implementation note: the paper's `Smax` values (20/40/80 pages) are not
//! powers of two, so block sizes are derived by repeated integer halving
//! rather than strict binary splitting. Blocks are carved from a
//! free-list extent allocator with coalescing, which is functionally
//! equivalent for everything the experiments measure (occupied pages and
//! unit-move I/O).

use crate::alloc::ExtentAllocator;
use crate::model::{PageRun, RegionId};

/// The set of physical unit sizes a [`BuddyAllocator`] may hand out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BuddyConfig {
    /// Allowed unit sizes in pages, descending, deduplicated, all ≥ 1.
    sizes: Vec<u64>,
}

impl BuddyConfig {
    /// Build a configuration from explicit sizes (any order, duplicates
    /// removed).
    ///
    /// # Panics
    ///
    /// Panics if no size is given or any size is zero.
    pub fn from_sizes(mut sizes: Vec<u64>) -> Self {
        assert!(!sizes.is_empty(), "buddy config needs at least one size");
        assert!(sizes.iter().all(|&s| s > 0), "zero-sized buddy");
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes.dedup();
        BuddyConfig { sizes }
    }

    /// Single size `smax_pages`: the plain cluster organization without a
    /// buddy system (every unit occupies the full `Smax`).
    pub fn fixed(smax_pages: u64) -> Self {
        Self::from_sizes(vec![smax_pages])
    }

    /// Full buddy system: sizes `Smax, ⌈Smax/2⌉, ⌈Smax/4⌉, …, 1`.
    pub fn full(smax_pages: u64) -> Self {
        let mut sizes = Vec::new();
        let mut s = smax_pages;
        loop {
            sizes.push(s);
            if s == 1 {
                break;
            }
            s = s.div_ceil(2);
        }
        Self::from_sizes(sizes)
    }

    /// Restricted buddy system of Figure 7: exactly the three sizes
    /// `Smax`, `⌈Smax/2⌉`, `⌈Smax/4⌉`.
    pub fn restricted(smax_pages: u64) -> Self {
        Self::from_sizes(vec![
            smax_pages,
            smax_pages.div_ceil(2),
            smax_pages.div_ceil(4),
        ])
    }

    /// Allowed sizes, descending.
    #[inline]
    pub fn sizes(&self) -> &[u64] {
        &self.sizes
    }

    /// Maximum unit size (`Smax` in pages).
    #[inline]
    pub fn max_size(&self) -> u64 {
        self.sizes[0]
    }

    /// Smallest allowed size that fits `pages`, or `None` if `pages`
    /// exceeds the maximum unit size.
    pub fn class_for(&self, pages: u64) -> Option<u64> {
        self.sizes.iter().rev().copied().find(|&s| s >= pages)
    }
}

/// Allocator handing out physical units of the configured sizes.
#[derive(Clone, Debug)]
pub struct BuddyAllocator {
    config: BuddyConfig,
    inner: ExtentAllocator,
    units_live: u64,
}

impl BuddyAllocator {
    /// Create an allocator over a fresh region.
    pub fn new(region: RegionId, config: BuddyConfig) -> Self {
        BuddyAllocator {
            config,
            inner: ExtentAllocator::new(region),
            units_live: 0,
        }
    }

    /// The configuration in use.
    #[inline]
    pub fn config(&self) -> &BuddyConfig {
        &self.config
    }

    /// Allocate the smallest buddy that can hold `pages_needed` pages.
    ///
    /// Returns `None` if `pages_needed` exceeds the maximum unit size
    /// (the storage layer must then split the cluster unit first).
    pub fn alloc_for(&mut self, pages_needed: u64) -> Option<PageRun> {
        let class = self.config.class_for(pages_needed.max(1))?;
        self.units_live += 1;
        Some(self.inner.alloc(class))
    }

    /// Return a previously allocated buddy.
    pub fn free(&mut self, run: PageRun) {
        self.units_live -= 1;
        self.inner.free(run);
    }

    /// Total pages currently occupied by live buddies.
    ///
    /// This is the storage-utilization measure of Figures 6 and 7: a
    /// cluster unit occupies its *whole* buddy, used or not.
    #[inline]
    pub fn occupied_pages(&self) -> u64 {
        self.inner.allocated_pages()
    }

    /// Number of live units.
    #[inline]
    pub fn units_live(&self) -> u64 {
        self.units_live
    }

    /// Region the buddies are carved from.
    #[inline]
    pub fn region(&self) -> RegionId {
        self.inner.region()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::Disk;

    fn alloc(config: BuddyConfig) -> BuddyAllocator {
        let disk = Disk::with_defaults();
        BuddyAllocator::new(disk.create_region("clusters"), config)
    }

    #[test]
    fn fixed_config_single_class() {
        let c = BuddyConfig::fixed(20);
        assert_eq!(c.sizes(), &[20]);
        assert_eq!(c.class_for(1), Some(20));
        assert_eq!(c.class_for(20), Some(20));
        assert_eq!(c.class_for(21), None);
    }

    #[test]
    fn full_config_halves_down_to_one() {
        let c = BuddyConfig::full(20);
        assert_eq!(c.sizes(), &[20, 10, 5, 3, 2, 1]);
        assert_eq!(c.class_for(4), Some(5));
        assert_eq!(c.class_for(6), Some(10));
        assert_eq!(c.class_for(11), Some(20));
    }

    #[test]
    fn restricted_config_three_sizes() {
        let c = BuddyConfig::restricted(20);
        assert_eq!(c.sizes(), &[20, 10, 5]);
        assert_eq!(c.class_for(1), Some(5));
        assert_eq!(c.class_for(7), Some(10));
        let c80 = BuddyConfig::restricted(80);
        assert_eq!(c80.sizes(), &[80, 40, 20]);
    }

    #[test]
    fn alloc_picks_smallest_class() {
        let mut a = alloc(BuddyConfig::restricted(20));
        let u = a.alloc_for(3).unwrap();
        assert_eq!(u.len, 5);
        assert_eq!(a.occupied_pages(), 5);
        let v = a.alloc_for(12).unwrap();
        assert_eq!(v.len, 20);
        assert_eq!(a.occupied_pages(), 25);
        assert_eq!(a.units_live(), 2);
    }

    #[test]
    fn oversized_request_rejected() {
        let mut a = alloc(BuddyConfig::fixed(20));
        assert!(a.alloc_for(25).is_none());
    }

    #[test]
    fn free_reclaims_pages() {
        let mut a = alloc(BuddyConfig::full(16));
        let u = a.alloc_for(10).unwrap();
        assert_eq!(u.len, 16);
        a.free(u);
        assert_eq!(a.occupied_pages(), 0);
        assert_eq!(a.units_live(), 0);
        // Reuses the freed space.
        let v = a.alloc_for(16).unwrap();
        assert_eq!(v.start, u.start);
    }

    #[test]
    fn grow_move_pattern() {
        // A unit growing 3 → 6 → 12 pages moves through classes 4, 8, 16.
        let mut a = alloc(BuddyConfig::full(16));
        let u1 = a.alloc_for(3).unwrap();
        assert_eq!(u1.len, 4);
        let u2 = a.alloc_for(6).unwrap();
        a.free(u1);
        assert_eq!(u2.len, 8);
        let u3 = a.alloc_for(12).unwrap();
        a.free(u2);
        assert_eq!(u3.len, 16);
        assert_eq!(a.units_live(), 1);
        assert_eq!(a.occupied_pages(), 16);
    }

    #[test]
    fn utilization_guarantee_of_full_system() {
        // With power-of-two Smax, every unit is at least half full once it
        // holds more than half of the next-smaller class.
        let c = BuddyConfig::full(64);
        for need in 1..=64u64 {
            let class = c.class_for(need).unwrap();
            assert!(class >= need);
            // Classes are at most 2x the need (the ≥50% guarantee),
            // except at the smallest class where need==1 → class 1.
            assert!(
                class < 2 * need.max(1) || class == 1,
                "need {need} class {class}"
            );
        }
    }
}

//! SLM read schedules (\[SLM93\], §5.4.2 of the paper).
//!
//! When several pages of one cluster unit are requested, it can be cheaper
//! to read requested *and* non-requested pages with one request than to
//! pay a rotational delay for every requested run: transferring a
//! non-requested page costs `t_t` (1 ms) whereas interrupting and
//! re-starting the request costs at least `t_l` (6 ms).
//!
//! Seeger, Larson and McFadyen derived the close-to-optimal rule: a read
//! request is interrupted exactly when a gap of at least
//! `l = t_l / t_t − 1/2` consecutive non-requested pages occurs. With the
//! paper's parameters `l = 5.5`, i.e. gaps of up to 5 pages are bridged.

use crate::model::DiskParams;

/// One scheduled read request within a cluster unit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ScheduledRun {
    /// Offset (within the cluster extent) of the first transferred page.
    pub start: u64,
    /// Total number of pages transferred (requested + bridged).
    pub len: u64,
    /// Number of *requested* pages within the run.
    pub requested: u64,
}

impl ScheduledRun {
    /// Pages transferred although not requested (bridged gap pages).
    #[inline]
    pub fn bridged(&self) -> u64 {
        self.len - self.requested
    }
}

/// The largest gap of non-requested pages that one read request bridges:
/// `⌊t_l / t_t − 1/2⌋`.
///
/// A gap strictly longer than `l = t_l/t_t − 1/2` interrupts the request
/// (the trailing `(…)` term of the paper's formula is ignored, as the
/// paper itself does).
pub fn slm_gap_limit(params: &DiskParams) -> u64 {
    let l = params.latency_ms / params.transfer_ms - 0.5;
    if l <= 0.0 {
        0
    } else {
        l.floor() as u64
    }
}

/// Compute the SLM read schedule for the sorted, deduplicated `offsets`
/// of requested pages, bridging gaps of at most `max_gap` pages.
///
/// Returns one [`ScheduledRun`] per resulting read request, in order.
pub fn slm_schedule(offsets: &[u64], max_gap: u64) -> Vec<ScheduledRun> {
    let mut runs = Vec::new();
    let mut it = offsets.iter().copied();
    let Some(first) = it.next() else {
        return runs;
    };
    let mut run_start = first;
    let mut run_end = first; // inclusive, last requested page so far
    let mut requested = 1u64;
    for o in it {
        debug_assert!(o > run_end, "offsets must be sorted and deduplicated");
        let gap = o - run_end - 1;
        if gap <= max_gap {
            run_end = o;
            requested += 1;
        } else {
            runs.push(ScheduledRun {
                start: run_start,
                len: run_end - run_start + 1,
                requested,
            });
            run_start = o;
            run_end = o;
            requested = 1;
        }
    }
    runs.push(ScheduledRun {
        start: run_start,
        len: run_end - run_start + 1,
        requested,
    });
    runs
}

/// Cost in milliseconds of executing a schedule inside one cluster unit:
/// the first request pays seek + latency + transfers, subsequent requests
/// pay latency + transfers (§5.4.3's one-seek-per-cluster assumption).
pub fn schedule_cost_ms(params: &DiskParams, runs: &[ScheduledRun]) -> f64 {
    runs.iter()
        .enumerate()
        .map(|(i, r)| params.request_ms(r.len, i > 0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_limit_default_params() {
        // l = 6/1 - 0.5 = 5.5 → bridge gaps up to 5 pages.
        assert_eq!(slm_gap_limit(&DiskParams::default()), 5);
    }

    #[test]
    fn gap_limit_fast_seek_disk() {
        let p = DiskParams {
            seek_ms: 1.0,
            latency_ms: 0.4,
            transfer_ms: 1.0,
        };
        assert_eq!(slm_gap_limit(&p), 0);
    }

    #[test]
    fn single_offset_single_run() {
        let runs = slm_schedule(&[7], 5);
        assert_eq!(
            runs,
            vec![ScheduledRun {
                start: 7,
                len: 1,
                requested: 1
            }]
        );
    }

    #[test]
    fn small_gaps_bridged() {
        // Paper's Figure 9 example: requested pattern y n y y n n n y y n y y
        // (offsets 0,2,3,7,8,10,11), l = 3 → the 3-page gap (4,5,6) splits.
        let runs = slm_schedule(&[0, 2, 3, 7, 8, 10, 11], 2);
        assert_eq!(runs.len(), 2);
        assert_eq!(
            runs[0],
            ScheduledRun {
                start: 0,
                len: 4,
                requested: 3
            }
        );
        assert_eq!(
            runs[1],
            ScheduledRun {
                start: 7,
                len: 5,
                requested: 4
            }
        );
    }

    #[test]
    fn figure9_cost_comparison() {
        // Reading also non-required pages: 2 requests instead of 4.
        // Paper: 4 tl + 7 tt = 31 ms page-runs vs 2 tl + 9 tt = 21 ms SLM
        // (costs without the initial seek, which both variants share).
        let p = DiskParams::default();
        let naive = slm_schedule(&[0, 2, 3, 7, 8, 10, 11], 0);
        assert_eq!(naive.len(), 4);
        let naive_cost: f64 = naive
            .iter()
            .map(|r| p.latency_ms + r.len as f64 * p.transfer_ms)
            .sum();
        assert_eq!(naive_cost, 4.0 * 6.0 + 7.0);
        let slm = slm_schedule(&[0, 2, 3, 7, 8, 10, 11], 2);
        let slm_cost: f64 = slm
            .iter()
            .map(|r| p.latency_ms + r.len as f64 * p.transfer_ms)
            .sum();
        assert_eq!(slm_cost, 2.0 * 6.0 + 9.0);
        assert!(slm_cost < naive_cost);
    }

    #[test]
    fn all_pages_requested_one_run() {
        let runs = slm_schedule(&[0, 1, 2, 3], 5);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].requested, 4);
        assert_eq!(runs[0].bridged(), 0);
    }

    #[test]
    fn zero_gap_limit_splits_everything() {
        let runs = slm_schedule(&[0, 2, 4], 0);
        assert_eq!(runs.len(), 3);
        assert!(runs.iter().all(|r| r.len == 1 && r.requested == 1));
    }

    #[test]
    fn empty_offsets() {
        assert!(slm_schedule(&[], 5).is_empty());
    }

    #[test]
    fn bridged_counts() {
        let runs = slm_schedule(&[0, 3], 3);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].len, 4);
        assert_eq!(runs[0].bridged(), 2);
    }

    #[test]
    fn schedule_cost_skips_seek_after_first() {
        let p = DiskParams::default();
        let runs = slm_schedule(&[0, 10], 5);
        assert_eq!(runs.len(), 2);
        // First: 9 + 6 + 1; second: 6 + 1.
        assert_eq!(schedule_cost_ms(&p, &runs), 16.0 + 7.0);
    }
}

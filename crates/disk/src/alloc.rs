//! Page allocators.
//!
//! Two flavours are needed by the organization models:
//!
//! * [`SequentialAllocator`] — an append-only bump allocator modelling a
//!   sequential file. The secondary organization stores exact object
//!   representations this way (§3.2.1: *"the objects themselves were
//!   stored in a sequential file according to the order of insertion"*).
//! * [`ExtentAllocator`] — alloc/free of arbitrary extents with a
//!   coalescing first-fit free list. The R\*-tree page files and the
//!   primary organization's overflow file use single-page or multi-page
//!   extents from it. In a dynamic environment this is exactly why pages
//!   that are spatially adjacent end up physically scattered — freed
//!   extents are reused in address order, not in spatial order.

use crate::model::{PageId, PageRun, RegionId};
use std::collections::BTreeMap;

/// Append-only allocator: models a sequential file.
#[derive(Clone, Debug)]
pub struct SequentialAllocator {
    region: RegionId,
    next: u64,
}

impl SequentialAllocator {
    /// Create an allocator over a fresh region.
    pub fn new(region: RegionId) -> Self {
        SequentialAllocator { region, next: 0 }
    }

    /// The region this allocator owns.
    #[inline]
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Append `n` pages, returning the run.
    pub fn append(&mut self, n: u64) -> PageRun {
        let run = PageRun::new(PageId::new(self.region, self.next), n);
        self.next += n;
        run
    }

    /// Number of pages allocated so far.
    #[inline]
    pub fn len(&self) -> u64 {
        self.next
    }

    /// `true` if nothing was allocated yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.next == 0
    }

    /// The last allocated page, if any (the file's tail page).
    pub fn tail(&self) -> Option<PageId> {
        (self.next > 0).then(|| PageId::new(self.region, self.next - 1))
    }
}

/// First-fit extent allocator with free-list coalescing.
#[derive(Clone, Debug)]
pub struct ExtentAllocator {
    region: RegionId,
    next: u64,
    /// Free extents keyed by start offset → length. Adjacent extents are
    /// coalesced on free.
    free: BTreeMap<u64, u64>,
    allocated_pages: u64,
}

impl ExtentAllocator {
    /// Create an allocator over a fresh region.
    pub fn new(region: RegionId) -> Self {
        ExtentAllocator {
            region,
            next: 0,
            free: BTreeMap::new(),
            allocated_pages: 0,
        }
    }

    /// The region this allocator owns.
    #[inline]
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Allocate an extent of exactly `n` pages (first fit, splitting a
    /// larger free extent if needed; otherwise grow the region).
    pub fn alloc(&mut self, n: u64) -> PageRun {
        assert!(n > 0, "cannot allocate an empty extent");
        let found = self
            .free
            .iter()
            .find(|(_, &len)| len >= n)
            .map(|(&start, &len)| (start, len));
        self.allocated_pages += n;
        if let Some((start, len)) = found {
            self.free.remove(&start);
            if len > n {
                self.free.insert(start + n, len - n);
            }
            PageRun::new(PageId::new(self.region, start), n)
        } else {
            let run = PageRun::new(PageId::new(self.region, self.next), n);
            self.next += n;
            run
        }
    }

    /// Allocate a single page.
    pub fn alloc_page(&mut self) -> PageId {
        self.alloc(1).start
    }

    /// Return an extent to the free list, coalescing with neighbours.
    ///
    /// # Panics
    ///
    /// Panics if the extent belongs to a different region, extends past
    /// the allocation frontier, or overlaps a free extent (double free).
    pub fn free(&mut self, run: PageRun) {
        assert_eq!(run.start.region, self.region, "foreign extent");
        if run.is_empty() {
            return;
        }
        assert!(run.end_offset() <= self.next, "extent beyond frontier");
        let start = run.start.offset;
        let mut new_start = start;
        let mut new_len = run.len;
        // Coalesce with the predecessor.
        if let Some((&ps, &pl)) = self.free.range(..start).next_back() {
            assert!(ps + pl <= start, "double free (overlaps predecessor)");
            if ps + pl == start {
                self.free.remove(&ps);
                new_start = ps;
                new_len += pl;
            }
        }
        // Coalesce with the successor.
        if let Some((&ss, &sl)) = self.free.range(start..).next() {
            assert!(start + run.len <= ss, "double free (overlaps successor)");
            if start + run.len == ss {
                self.free.remove(&ss);
                new_len += sl;
            }
        }
        self.allocated_pages -= run.len;
        self.free.insert(new_start, new_len);
    }

    /// Free a single page.
    pub fn free_page(&mut self, page: PageId) {
        self.free(PageRun::new(page, 1));
    }

    /// Pages currently allocated (not on the free list).
    #[inline]
    pub fn allocated_pages(&self) -> u64 {
        self.allocated_pages
    }

    /// Total pages the region has grown to (allocation frontier).
    #[inline]
    pub fn frontier(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::Disk;

    fn region() -> RegionId {
        Disk::with_defaults().create_region("t")
    }

    #[test]
    fn sequential_appends_are_consecutive() {
        let mut f = SequentialAllocator::new(region());
        let a = f.append(3);
        let b = f.append(2);
        assert_eq!(a.start.offset, 0);
        assert_eq!(b.start.offset, 3);
        assert_eq!(f.len(), 5);
        assert_eq!(f.tail().unwrap().offset, 4);
    }

    #[test]
    fn sequential_empty() {
        let f = SequentialAllocator::new(region());
        assert!(f.is_empty());
        assert!(f.tail().is_none());
    }

    #[test]
    fn extent_alloc_grows_frontier() {
        let mut a = ExtentAllocator::new(region());
        let x = a.alloc(4);
        let y = a.alloc(2);
        assert_eq!(x.start.offset, 0);
        assert_eq!(y.start.offset, 4);
        assert_eq!(a.allocated_pages(), 6);
        assert_eq!(a.frontier(), 6);
    }

    #[test]
    fn extent_reuse_first_fit() {
        let mut a = ExtentAllocator::new(region());
        let x = a.alloc(4);
        let _y = a.alloc(4);
        a.free(x);
        let z = a.alloc(2);
        // Reuses the freed hole at offset 0.
        assert_eq!(z.start.offset, 0);
        let w = a.alloc(2);
        assert_eq!(w.start.offset, 2);
        assert_eq!(a.frontier(), 8);
    }

    #[test]
    fn extent_coalescing() {
        let mut a = ExtentAllocator::new(region());
        let x = a.alloc(2);
        let y = a.alloc(2);
        let z = a.alloc(2);
        a.free(x);
        a.free(z);
        a.free(y); // merges all three into one extent of 6
        let big = a.alloc(6);
        assert_eq!(big.start.offset, 0);
        assert_eq!(a.frontier(), 6);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn extent_double_free_detected() {
        let mut a = ExtentAllocator::new(region());
        let x = a.alloc(2);
        a.free(x);
        a.free(x);
    }

    #[test]
    fn extent_single_page_helpers() {
        let mut a = ExtentAllocator::new(region());
        let p = a.alloc_page();
        assert_eq!(a.allocated_pages(), 1);
        a.free_page(p);
        assert_eq!(a.allocated_pages(), 0);
        let q = a.alloc_page();
        assert_eq!(q, p); // hole reused
    }

    #[test]
    fn fragmentation_skips_small_holes() {
        let mut a = ExtentAllocator::new(region());
        let x = a.alloc(1);
        let _y = a.alloc(1);
        a.free(x);
        let big = a.alloc(3); // hole of 1 page does not fit
        assert_eq!(big.start.offset, 2);
    }
}

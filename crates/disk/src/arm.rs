//! The disk-arm request scheduler: overlapped I/O for the simulated disk.
//!
//! The synchronous cost model charges every request at its call site with
//! the paper's *average* figures (§5.1): `t_s` = 9 ms seek, `t_l` = 6 ms
//! latency, `t_t` = 1 ms per page. That is the right model for
//! *throughput* figures, but it cannot speak to *latency*: a server
//! running many queries at once keeps several requests outstanding, and
//! what each query observes depends on how the single disk arm schedules
//! them. This module adds that missing dimension:
//!
//! * [`ArmGeometry`] maps page addresses to **cylinders**. Each region
//!   (file) occupies its own band of cylinders, so requests within one
//!   file are short seeks and cross-file jumps are long ones.
//! * [`SeekCurve`] is a distance-dependent seek-time curve
//!   `t(d) = t_min + (t_max − t_min) · √(d/D)` **calibrated so that the
//!   mean over uniformly distributed distances equals the paper's
//!   `seek_ms`** (9.0 ms by default) — the average-cost model is the
//!   expectation of this curve, so the two models describe the same
//!   disk.
//! * [`DiskArm`] holds a queue of outstanding [`PageRequest`]s and
//!   services them under an [`ArmPolicy`]: FCFS (arrival order) or
//!   **elevator** (SCAN: sweep the cylinders in one direction, servicing
//!   requests on the way, flip at the last outstanding cylinder).
//! * [`simulate_queries`] replays per-query request traces through one
//!   arm under an open-arrival workload with a bounded per-query
//!   submission window (queue depth *k*), producing per-query
//!   [`LatencyStats`].
//!
//! ## Two measures, one contract
//!
//! The arm computes **simulated time** (queue wait, service, completion
//! in ms on the arm's clock) with the distance-dependent curve. The
//! **charged accounting** ([`crate::stats::IoStats`]) stays on the
//! paper's flat per-request model, and flows through the very same
//! [`Disk::charge`](crate::disk::Disk::charge) code path — which is what
//! makes depth-1 submission **byte-identical** to the synchronous charge
//! path (the mirror test in `disk.rs` pins this). At depth > 1 under the
//! elevator policy, a request dispatched on the cylinder where the arm
//! already stands *and* co-scheduled with the previous request (it was
//! queued before the previous dispatch began) is charged without its
//! seek — the same-cylinder rule of §5.4.3 extended across queued
//! requests. Requests whose `skip_seek` flag was already set by the
//! cost model (SLM follow-up runs inside one cluster unit, §5.4.2/§5.4.3)
//! keep it: the scheduler never turns a skipped seek back into a charged
//! one, so elevator-merged adjacent runs cannot double-charge seeks.

use crate::model::{DiskParams, PageId, PageRun};
use crate::stats::IoKind;

/// One I/O request submitted to the arm: a transfer of one physically
/// consecutive [`PageRun`], as produced by the existing request-forming
/// layers (`runs_of`, SLM schedules, extent reads).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PageRequest {
    /// Read or write.
    pub kind: IoKind,
    /// The consecutive pages the request transfers (never empty).
    pub run: PageRun,
    /// `true` if the synchronous cost model would skip the seek for this
    /// request (subsequent requests within one cluster unit, §5.4.3).
    /// The scheduler preserves this flag when charging — see the module
    /// docs.
    pub skip_seek: bool,
}

impl PageRequest {
    /// A read request for `run` paying a full seek.
    pub fn read(run: PageRun) -> Self {
        PageRequest {
            kind: IoKind::Read,
            run,
            skip_seek: false,
        }
    }

    /// A write request for `run` paying a full seek.
    pub fn write(run: PageRun) -> Self {
        PageRequest {
            kind: IoKind::Write,
            run,
            skip_seek: false,
        }
    }
}

/// How the arm orders outstanding requests.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ArmPolicy {
    /// First come, first served: requests are serviced in arrival order.
    /// Models a naive queue in front of today's synchronous path.
    Fcfs,
    /// Elevator (SCAN): the arm sweeps the cylinders in one direction,
    /// servicing outstanding requests as it passes them, and reverses at
    /// the outermost outstanding cylinder. Minimizes total head travel
    /// across queued requests; starvation-free because every sweep
    /// reaches both ends of the pending set.
    #[default]
    Elevator,
}

/// Maps page addresses to cylinders.
///
/// Pages of one region are laid out consecutively,
/// `pages_per_cylinder` to a cylinder; each region starts at its own
/// `cylinders_per_region` band, so different files live in different
/// areas of the disk (per [`crate::model`], pages of different regions
/// are never physically consecutive). A region that outgrows its band
/// stays clamped to the band's last cylinder — the mapping only shapes
/// seek distances, not capacity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ArmGeometry {
    /// 4 KB pages per cylinder.
    pub pages_per_cylinder: u64,
    /// Cylinder band reserved per region.
    pub cylinders_per_region: u64,
}

impl Default for ArmGeometry {
    fn default() -> Self {
        ArmGeometry {
            pages_per_cylinder: 32,
            cylinders_per_region: 1024,
        }
    }
}

impl ArmGeometry {
    /// Cylinder of a page. Zero field values are treated as 1 — the
    /// fields are public, and a degenerate geometry should collapse the
    /// mapping, not panic or underflow.
    pub fn cylinder(&self, page: &PageId) -> u64 {
        self.cylinder_in_band(u64::from(page.region.0), page)
    }

    /// Cylinder of a page placed in an explicit band instead of the
    /// region-indexed one — the [`DiskArray`](crate::array::DiskArray)
    /// places each region in an **arm-local** band so every arm's
    /// cylinder space stays compact. `cylinder_in_band(region.0, page)`
    /// is exactly [`cylinder`](ArmGeometry::cylinder), the single-disk
    /// identity mapping.
    pub fn cylinder_in_band(&self, band: u64, page: &PageId) -> u64 {
        let pages = self.pages_per_cylinder.max(1);
        let width = self.cylinders_per_region.max(1);
        let within = (page.offset / pages).min(width - 1);
        band * width + within
    }

    /// Cylinder of the last page of a run.
    pub fn end_cylinder(&self, run: &PageRun) -> u64 {
        let last = PageId::new(run.start.region, run.end_offset().saturating_sub(1));
        self.cylinder(&last)
    }

    /// Cylinder of the last page of a run placed in an explicit band
    /// (see [`cylinder_in_band`](ArmGeometry::cylinder_in_band)).
    pub fn end_cylinder_in_band(&self, band: u64, run: &PageRun) -> u64 {
        let last = PageId::new(run.start.region, run.end_offset().saturating_sub(1));
        self.cylinder_in_band(band, &last)
    }

    /// Starting angular position of a page's first sector within its
    /// cylinder, as a fraction of one revolution in `[0, 1)` — the
    /// target phase of the [`RotationModel::Sectored`] latency model.
    pub fn sector_phase(&self, page: &PageId) -> f64 {
        let pages = self.pages_per_cylinder.max(1);
        (page.offset % pages) as f64 / pages as f64
    }
}

/// How the arm's timeline charges rotational latency.
///
/// The **charged accounting** always stays on the paper's flat
/// `t_l = 6 ms` average (§5.1) — the rotation model shapes only the
/// simulated timeline, exactly like the distance-dependent
/// [`SeekCurve`] does for seeks.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RotationModel {
    /// Every request waits the average rotational latency
    /// (`params.latency_ms`). The default; keeps the timeline identical
    /// to the PR-4 single-arm scheduler.
    #[default]
    FlatAverage,
    /// The platter spins continuously at `period = 2 · latency_ms` per
    /// revolution (so the *mean* delay over uniformly distributed
    /// arrival angles is the paper's `latency_ms` — calibration is
    /// built in). A request's rotational delay is the time until its
    /// first sector ([`ArmGeometry::sector_phase`]) next passes under
    /// the head after the seek completes: sequential same-cylinder
    /// requests that land just behind the head pay almost a full
    /// revolution, requests that arrive just ahead of their sector pay
    /// almost nothing — the interaction \[SLM93\] assumes between SLM
    /// bridging and the elevator.
    Sectored,
}

/// Cumulative service statistics of one arm — the utilization /
/// queue-depth side of the array that
/// [`LatencyStats`] (per-query) cannot see.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct ArmStats {
    /// Index of the arm within its array (0 for a lone arm).
    pub arm: usize,
    /// Requests serviced so far.
    pub serviced: u64,
    /// Total time spent servicing (seek + latency + transfer on the
    /// timeline).
    pub busy_ms: f64,
    /// Total time completed requests spent waiting in this arm's queue.
    /// By Little's law, `queue_wait_ms / clock_ms` is the time-average
    /// queue depth.
    pub queue_wait_ms: f64,
    /// The arm's simulated clock (end of its last service).
    pub clock_ms: f64,
    /// Requests still outstanding in the queue.
    pub pending: usize,
}

impl ArmStats {
    /// Fraction of the arm's timeline spent servicing requests
    /// (`busy_ms / clock_ms`; 0 for an arm that never served).
    pub fn utilization(&self) -> f64 {
        if self.clock_ms > 0.0 {
            self.busy_ms / self.clock_ms
        } else {
            0.0
        }
    }

    /// Time-average queue depth over the arm's timeline
    /// (`queue_wait_ms / clock_ms`, Little's law; 0 for an idle arm).
    pub fn mean_queue_depth(&self) -> f64 {
        if self.clock_ms > 0.0 {
            self.queue_wait_ms / self.clock_ms
        } else {
            0.0
        }
    }
}

/// Distance-dependent seek time `t(d) = t_min + (t_max − t_min)·√(d/D)`
/// for `0 < d ≤ D` (clamped at the full stroke `D`); `t(0) = 0`.
///
/// With `d` uniform on `(0, D]` the mean of `√(d/D)` is `2/3`, so
/// [`SeekCurve::calibrated`] chooses `t_min = seek_ms/3` and
/// `t_max = t_min + 3/2·(seek_ms − t_min)` — making the **expected seek
/// equal the paper's average `seek_ms`** (9 ms ⇒ 3 ms track-to-track,
/// 12 ms full stroke). The average-cost model and the arm's timeline are
/// therefore two views of the same disk.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SeekCurve {
    /// Seek time at distance 1 (track-to-track), ms.
    pub min_ms: f64,
    /// Seek time at the full stroke, ms.
    pub max_ms: f64,
    /// Full-stroke distance in cylinders.
    pub full_stroke: u64,
}

impl SeekCurve {
    /// Calibrate the curve so its mean over uniform distances equals
    /// `params.seek_ms` (see the type docs).
    pub fn calibrated(params: &DiskParams, full_stroke: u64) -> Self {
        let min_ms = params.seek_ms / 3.0;
        let max_ms = min_ms + 1.5 * (params.seek_ms - min_ms);
        SeekCurve {
            min_ms,
            max_ms,
            full_stroke: full_stroke.max(1),
        }
    }

    /// The default calibration: paper parameters over a 4096-cylinder
    /// stroke (four default region bands).
    pub fn paper_default() -> Self {
        Self::calibrated(&DiskParams::default(), 4096)
    }

    /// Seek time for a head movement of `distance` cylinders.
    pub fn seek_ms(&self, distance: u64) -> f64 {
        if distance == 0 {
            return 0.0;
        }
        let d = distance.min(self.full_stroke) as f64 / self.full_stroke as f64;
        self.min_ms + (self.max_ms - self.min_ms) * d.sqrt()
    }
}

/// A serviced request: what happened to it on the arm's timeline, plus
/// what the accounting layer should charge for it.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Completion {
    /// Id assigned at submission.
    pub id: u64,
    /// The request as submitted.
    pub request: PageRequest,
    /// When the request entered the queue (simulated ms).
    pub submitted_ms: f64,
    /// When the arm began servicing it.
    pub started_ms: f64,
    /// When the transfer finished.
    pub finished_ms: f64,
    /// Seek component of the service time (distance-dependent curve).
    pub seek_ms: f64,
    /// `true` if the charged cost should skip the seek: either the
    /// request's own `skip_seek`, or an elevator same-cylinder merge
    /// (§5.4.3 across queued requests — see the module docs).
    pub effective_skip_seek: bool,
}

impl Completion {
    /// Time the request waited in the queue before service.
    pub fn queue_ms(&self) -> f64 {
        self.started_ms - self.submitted_ms
    }

    /// Time the arm spent servicing the request (seek + latency +
    /// transfer on the timeline).
    pub fn service_ms(&self) -> f64 {
        self.finished_ms - self.started_ms
    }
}

/// Per-query latency accounting over the arm's simulated clock — the
/// latency-side companion of [`crate::stats::IoStats`].
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct LatencyStats {
    /// Requests serviced for this query.
    pub requests: u64,
    /// Total time its requests waited in the arm queue.
    pub queue_ms: f64,
    /// Total time the arm spent servicing its requests.
    pub service_ms: f64,
    /// When the query arrived (simulated ms).
    pub arrival_ms: f64,
    /// When its last request completed (equals `arrival_ms` for a query
    /// that issued no I/O).
    pub completed_ms: f64,
}

impl LatencyStats {
    /// A fresh record for a query arriving at `arrival_ms`.
    pub fn arriving_at(arrival_ms: f64) -> Self {
        LatencyStats {
            arrival_ms,
            completed_ms: arrival_ms,
            ..Self::default()
        }
    }

    /// Fold one completion into the record.
    pub fn absorb(&mut self, c: &Completion) {
        self.requests += 1;
        self.queue_ms += c.queue_ms();
        self.service_ms += c.service_ms();
        if c.finished_ms > self.completed_ms {
            self.completed_ms = c.finished_ms;
        }
    }

    /// End-to-end latency the query observed: last completion minus
    /// arrival.
    #[must_use = "the latency delta is the measurement; dropping it loses it"]
    pub fn latency_ms(&self) -> f64 {
        self.completed_ms - self.arrival_ms
    }

    /// Mean queue wait per request (0 for a query without I/O).
    #[must_use = "the mean queue wait is the measurement; dropping it loses it"]
    pub fn mean_queue_ms(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.queue_ms / self.requests as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Pending {
    id: u64,
    request: PageRequest,
    arrival_ms: f64,
    cylinder: u64,
    end_cylinder: u64,
}

/// One disk arm: a queue of outstanding requests, a head position, and a
/// simulated clock.
///
/// The arm is a pure scheduler — it computes the timeline and the
/// effective charge flags, but charges nothing itself. The accounting
/// front-end is [`Disk::submit`](crate::disk::Disk::submit) /
/// [`Disk::complete_next`](crate::disk::Disk::complete_next); the
/// open-arrival multi-query harness is [`simulate_queries`].
#[derive(Clone, Debug)]
pub struct DiskArm {
    params: DiskParams,
    geometry: ArmGeometry,
    curve: SeekCurve,
    policy: ArmPolicy,
    clock_ms: f64,
    head: u64,
    sweep_up: bool,
    pending: Vec<Pending>,
    next_id: u64,
    /// Start time of the most recent dispatch: a request that arrived
    /// before this instant was co-scheduled with the previous request
    /// (the elevator saw both at once), which is what licenses the
    /// same-cylinder charge merge.
    last_dispatch_start_ms: f64,
    rotation: RotationModel,
    serviced: u64,
    busy_ms: f64,
    queue_wait_ms: f64,
}

impl DiskArm {
    /// Create an idle arm at cylinder 0.
    pub fn new(params: DiskParams, geometry: ArmGeometry, policy: ArmPolicy) -> Self {
        let curve = SeekCurve::calibrated(&params, 4 * geometry.cylinders_per_region);
        DiskArm {
            params,
            geometry,
            curve,
            policy,
            clock_ms: 0.0,
            head: 0,
            sweep_up: true,
            pending: Vec::new(),
            next_id: 0,
            last_dispatch_start_ms: f64::NEG_INFINITY,
            rotation: RotationModel::default(),
            serviced: 0,
            busy_ms: 0.0,
            queue_wait_ms: 0.0,
        }
    }

    /// The scheduling policy.
    pub fn policy(&self) -> ArmPolicy {
        self.policy
    }

    /// Change the policy. Affects only requests not yet serviced.
    pub fn set_policy(&mut self, policy: ArmPolicy) {
        self.policy = policy;
    }

    /// The rotational-latency model of the timeline.
    pub fn rotation(&self) -> RotationModel {
        self.rotation
    }

    /// Change the rotational model. Affects only future services; the
    /// charged accounting always stays on the flat §5.1 average.
    pub fn set_rotation(&mut self, rotation: RotationModel) {
        self.rotation = rotation;
    }

    /// Cumulative service statistics (utilization, mean queue depth).
    pub fn stats(&self) -> ArmStats {
        ArmStats {
            arm: 0,
            serviced: self.serviced,
            busy_ms: self.busy_ms,
            queue_wait_ms: self.queue_wait_ms,
            clock_ms: self.clock_ms,
            pending: self.pending.len(),
        }
    }

    /// The seek-time curve.
    pub fn curve(&self) -> SeekCurve {
        self.curve
    }

    /// The cylinder mapping.
    pub fn geometry(&self) -> ArmGeometry {
        self.geometry
    }

    /// Current simulated time in ms.
    pub fn clock_ms(&self) -> f64 {
        self.clock_ms
    }

    /// Current head cylinder.
    pub fn head_cylinder(&self) -> u64 {
        self.head
    }

    /// Number of outstanding requests.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Submit a request arriving now (at the arm's clock).
    ///
    /// # Panics
    ///
    /// Panics on an empty run — empty runs are free in the synchronous
    /// model and must not be submitted.
    pub fn submit(&mut self, request: PageRequest) -> u64 {
        self.submit_at(request, self.clock_ms)
    }

    /// Submit a request with an explicit arrival time (which may lie in
    /// the arm's future; it becomes eligible once the clock reaches it).
    pub fn submit_at(&mut self, request: PageRequest, arrival_ms: f64) -> u64 {
        let id = self.next_id;
        let cylinder = self.geometry.cylinder(&request.run.start);
        let end_cylinder = self.geometry.end_cylinder(&request.run);
        self.submit_routed(id, request, arrival_ms, cylinder, end_cylinder);
        id
    }

    /// Submit with an externally assigned id and pre-mapped cylinders —
    /// the [`DiskArray`](crate::array::DiskArray) entry point, which
    /// keeps one id sequence across arms and maps regions to arm-local
    /// cylinder bands itself.
    pub fn submit_routed(
        &mut self,
        id: u64,
        request: PageRequest,
        arrival_ms: f64,
        cylinder: u64,
        end_cylinder: u64,
    ) {
        assert!(!request.run.is_empty(), "cannot submit an empty run");
        self.next_id = self.next_id.max(id + 1);
        self.pending.push(Pending {
            id,
            request,
            arrival_ms,
            cylinder,
            end_cylinder,
        });
    }

    /// Pick the index of the next request to service among `eligible`
    /// indices into `self.pending`.
    fn pick(&self, eligible: &[usize]) -> usize {
        match self.policy {
            ArmPolicy::Fcfs => *eligible
                .iter()
                .min_by(|&&a, &&b| {
                    let (pa, pb) = (&self.pending[a], &self.pending[b]);
                    pa.arrival_ms
                        .total_cmp(&pb.arrival_ms)
                        .then(pa.id.cmp(&pb.id))
                })
                .expect("eligible set is non-empty"),
            ArmPolicy::Elevator => {
                // SCAN: nearest outstanding cylinder in the sweep
                // direction; if the direction is exhausted, reverse.
                let pos = |i: &&usize| self.pending[**i].cylinder;
                let ahead_up = |i: &&usize| pos(i) >= self.head;
                let ahead_down = |i: &&usize| pos(i) <= self.head;
                let key_up = |&&i: &&usize| {
                    let p = &self.pending[i];
                    (p.cylinder, p.id)
                };
                let key_down = |&&i: &&usize| {
                    let p = &self.pending[i];
                    (std::cmp::Reverse(p.cylinder), p.id)
                };
                let chosen = if self.sweep_up {
                    eligible
                        .iter()
                        .filter(ahead_up)
                        .min_by_key(key_up)
                        .or_else(|| eligible.iter().filter(ahead_down).min_by_key(key_down))
                } else {
                    eligible
                        .iter()
                        .filter(ahead_down)
                        .min_by_key(key_down)
                        .or_else(|| eligible.iter().filter(ahead_up).min_by_key(key_up))
                };
                *chosen.expect("eligible set is non-empty")
            }
        }
    }

    /// Service one outstanding request, advancing the clock. Returns
    /// `None` when the queue is empty. If no queued request has arrived
    /// yet, the clock jumps to the earliest arrival (idle wait).
    pub fn service_next(&mut self) -> Option<Completion> {
        if self.pending.is_empty() {
            return None;
        }
        let earliest = self
            .pending
            .iter()
            .map(|p| p.arrival_ms)
            .fold(f64::INFINITY, f64::min);
        if earliest > self.clock_ms {
            self.clock_ms = earliest;
        }
        let eligible: Vec<usize> = (0..self.pending.len())
            .filter(|&i| self.pending[i].arrival_ms <= self.clock_ms)
            .collect();
        let p = self.pending.remove(self.pick(&eligible));

        let distance = self.head.abs_diff(p.cylinder);
        // Timeline: purely physical head movement. A skip_seek request
        // serviced right after its cluster leader sits on the head's
        // cylinder, so distance — and seek time — is 0 there naturally;
        // if the scheduler moved the arm elsewhere in between, the
        // comeback travel is real and is charged to the timeline (the
        // *accounting* flag below is a separate, §5.4.3 matter).
        let seek_ms = self.curve.seek_ms(distance);
        // Charging: the request's own flag, or the §5.4.3 same-cylinder
        // rule extended to co-scheduled queued requests. At depth 1 a
        // request is only ever submitted after the previous one
        // completed, so no merge fires and the charge equals the
        // synchronous path's, byte for byte.
        let co_scheduled = p.arrival_ms <= self.last_dispatch_start_ms;
        let merged = self.policy == ArmPolicy::Elevator && distance == 0 && co_scheduled;
        let effective_skip_seek = p.request.skip_seek || merged;

        let started_ms = self.clock_ms;
        let latency_ms = match self.rotation {
            RotationModel::FlatAverage => self.params.latency_ms,
            RotationModel::Sectored => {
                self.rotational_delay(started_ms + seek_ms, &p.request.run.start)
            }
        };
        let service = seek_ms + latency_ms + self.params.transfer_ms * p.request.run.len as f64;
        let finished_ms = started_ms + service;
        if p.cylinder > self.head {
            self.sweep_up = true;
        } else if p.cylinder < self.head {
            self.sweep_up = false;
        }
        self.head = p.end_cylinder;
        self.clock_ms = finished_ms;
        self.last_dispatch_start_ms = started_ms;
        self.serviced += 1;
        self.busy_ms += service;
        self.queue_wait_ms += started_ms - p.arrival_ms;
        Some(Completion {
            id: p.id,
            request: p.request,
            submitted_ms: p.arrival_ms,
            started_ms,
            finished_ms,
            seek_ms,
            effective_skip_seek,
        })
    }

    /// Rotational delay of a request whose seek finishes at `ready_ms`:
    /// the time until the request's first sector next passes under the
    /// head, on a platter spinning one revolution per
    /// `2 · latency_ms` (see [`RotationModel::Sectored`]).
    fn rotational_delay(&self, ready_ms: f64, start: &PageId) -> f64 {
        let period = 2.0 * self.params.latency_ms;
        if period <= 0.0 {
            return 0.0;
        }
        let target = self.geometry.sector_phase(start) * period;
        (target - ready_ms.rem_euclid(period)).rem_euclid(period)
    }

    /// Finish time of the completion the next [`service_next`]
    /// (DiskArm::service_next) call would return, without mutating the
    /// arm — what the [`DiskArray`](crate::array::DiskArray) compares
    /// across arms to pop the globally-earliest completion.
    pub fn peek_next_finish(&self) -> Option<f64> {
        self.clone().service_next().map(|c| c.finished_ms)
    }

    /// Service everything outstanding, in policy order.
    pub fn drain(&mut self) -> Vec<Completion> {
        let mut out = Vec::with_capacity(self.pending.len());
        while let Some(c) = self.service_next() {
            out.push(c);
        }
        out
    }
}

/// The recorded I/O of one query, to be replayed through an arm.
#[derive(Clone, Debug)]
pub struct QueryTrace {
    /// When the query arrives (simulated ms).
    pub arrival_ms: f64,
    /// Its disk requests, in issue order (as captured by
    /// [`Disk::trace_begin`](crate::disk::Disk::trace_begin)).
    pub requests: Vec<PageRequest>,
}

/// Replay per-query request traces through one arm under an open-arrival
/// workload, returning one [`LatencyStats`] per query (same order).
///
/// Each query keeps at most `depth` requests outstanding: its first
/// `depth` requests are submitted at arrival, and each completion
/// releases the next (the submission window of the overlapped executor).
/// The arm services the union of all queries' outstanding requests under
/// `policy` — with `depth == 1` and a single query this degenerates to
/// the synchronous request order.
///
/// The simulation is deterministic: no wall-clock time, no randomness.
pub fn simulate_queries(
    params: DiskParams,
    geometry: ArmGeometry,
    policy: ArmPolicy,
    depth: usize,
    queries: &[QueryTrace],
) -> Vec<LatencyStats> {
    // The 1-arm special case of the striped harness (every stripe
    // policy is the identity mapping at one arm).
    crate::array::simulate_queries_striped(
        params,
        geometry,
        crate::array::ArrayConfig {
            policy,
            ..Default::default()
        },
        depth,
        queries,
    )
    .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RegionId;

    fn pg(r: u16, o: u64) -> PageId {
        PageId::new(RegionId(r), o)
    }

    fn read1(r: u16, o: u64) -> PageRequest {
        PageRequest::read(PageRun::new(pg(r, o), 1))
    }

    #[test]
    fn seek_curve_mean_matches_paper_seek() {
        let curve = SeekCurve::paper_default();
        assert_eq!(curve.seek_ms(0), 0.0);
        assert!((curve.seek_ms(curve.full_stroke) - 12.0).abs() < 1e-9);
        assert!((curve.seek_ms(1) - curve.min_ms).abs() < 0.2);
        // Mean over uniform distances 1..=D equals seek_ms within 0.5%.
        let d = curve.full_stroke;
        let mean: f64 = (1..=d).map(|x| curve.seek_ms(x)).sum::<f64>() / d as f64;
        assert!(
            (mean - 9.0).abs() < 0.045,
            "mean seek {mean} != 9.0 (calibration drifted)"
        );
    }

    #[test]
    fn seek_curve_monotone_and_clamped() {
        let curve = SeekCurve::paper_default();
        let mut last = 0.0;
        for d in [1, 2, 16, 256, 1024, 4096] {
            let s = curve.seek_ms(d);
            assert!(s > last, "curve must increase");
            last = s;
        }
        assert_eq!(curve.seek_ms(100_000), curve.seek_ms(curve.full_stroke));
    }

    #[test]
    fn geometry_maps_regions_to_bands() {
        let g = ArmGeometry::default();
        assert_eq!(g.cylinder(&pg(0, 0)), 0);
        assert_eq!(g.cylinder(&pg(0, 31)), 0);
        assert_eq!(g.cylinder(&pg(0, 32)), 1);
        assert_eq!(g.cylinder(&pg(1, 0)), 1024);
        // Overflow clamps to the band's last cylinder.
        assert_eq!(g.cylinder(&pg(0, 32 * 5000)), 1023);
        let run = PageRun::new(pg(1, 30), 4); // crosses a cylinder edge
        assert_eq!(g.end_cylinder(&run), 1025);
    }

    #[test]
    fn fcfs_services_in_arrival_order() {
        let mut arm = DiskArm::new(
            DiskParams::default(),
            ArmGeometry::default(),
            ArmPolicy::Fcfs,
        );
        let a = arm.submit(read1(0, 32 * 100));
        let b = arm.submit(read1(0, 0));
        let c = arm.submit(read1(0, 32 * 50));
        let order: Vec<u64> = arm.drain().iter().map(|x| x.id).collect();
        assert_eq!(order, vec![a, b, c]);
    }

    #[test]
    fn elevator_sweeps_monotonically() {
        let mut arm = DiskArm::new(
            DiskParams::default(),
            ArmGeometry::default(),
            ArmPolicy::Elevator,
        );
        // Scattered cylinders (head starts at 0): one ascending sweep.
        for cyl in [500u64, 20, 900, 5, 300] {
            arm.submit(read1(0, cyl * 32));
        }
        let cylinders: Vec<u64> = arm
            .drain()
            .iter()
            .map(|c| ArmGeometry::default().cylinder(&c.request.run.start))
            .collect();
        assert_eq!(cylinders, vec![5, 20, 300, 500, 900]);
    }

    #[test]
    fn elevator_reverses_at_sweep_end_and_never_starves() {
        let mut arm = DiskArm::new(
            DiskParams::default(),
            ArmGeometry::default(),
            ArmPolicy::Elevator,
        );
        // A far request plus a cluster near the head. The far request is
        // reached on the same sweep; requests behind the head (arriving
        // while the arm sweeps up) are serviced on the way back down.
        let far = arm.submit(read1(0, 32 * 1000));
        for i in 0..8u64 {
            arm.submit(read1(0, 32 * (10 + i)));
        }
        let first = arm.service_next().unwrap();
        let behind = arm.submit(read1(0, 0)); // behind the head now
        let mut completed = vec![first.id];
        completed.extend(arm.drain().iter().map(|c| c.id));
        assert!(completed.contains(&far), "far request starved");
        assert!(completed.contains(&behind), "reverse-sweep request starved");
        assert_eq!(completed.len(), 10);
        // The sweep is bitonic: cylinders rise to the turn-around, then
        // fall. (behind=cyl 0 is serviced after far=cyl 1000.)
        assert_eq!(*completed.last().unwrap(), behind);
    }

    #[test]
    fn depth_one_never_merges_charges() {
        // Submitting one request at a time (wait for each completion)
        // must keep every request's own skip_seek flag — the
        // depth-1-degenerates-to-sync contract.
        let mut arm = DiskArm::new(
            DiskParams::default(),
            ArmGeometry::default(),
            ArmPolicy::Elevator,
        );
        let mut completions = Vec::new();
        for o in [0u64, 1, 2, 3] {
            arm.submit(read1(0, o)); // same cylinder every time
            completions.push(arm.service_next().unwrap());
        }
        assert!(completions.iter().all(|c| !c.effective_skip_seek));
        // Timeline still sees the same-cylinder adjacency (no seek time
        // after the first) — that is the latency model, not the charge.
        assert!(completions[1..].iter().all(|c| c.seek_ms == 0.0));
    }

    #[test]
    fn co_scheduled_same_cylinder_requests_merge_charges_under_elevator() {
        let mut arm = DiskArm::new(
            DiskParams::default(),
            ArmGeometry::default(),
            ArmPolicy::Elevator,
        );
        arm.submit(read1(0, 0));
        arm.submit(read1(0, 1)); // same cylinder, queued together
        let first = arm.service_next().unwrap();
        let second = arm.service_next().unwrap();
        assert!(!first.effective_skip_seek);
        assert!(second.effective_skip_seek, "co-scheduled merge must fire");
        // FCFS never merges.
        let mut fcfs = DiskArm::new(
            DiskParams::default(),
            ArmGeometry::default(),
            ArmPolicy::Fcfs,
        );
        fcfs.submit(read1(0, 0));
        fcfs.submit(read1(0, 1));
        assert!(fcfs.drain().iter().all(|c| !c.effective_skip_seek));
    }

    #[test]
    fn skip_seek_requests_stay_skipped_under_any_policy() {
        for policy in [ArmPolicy::Fcfs, ArmPolicy::Elevator] {
            let mut arm = DiskArm::new(DiskParams::default(), ArmGeometry::default(), policy);
            arm.submit(PageRequest {
                kind: IoKind::Read,
                run: PageRun::new(pg(0, 0), 2),
                skip_seek: false,
            });
            arm.submit(PageRequest {
                kind: IoKind::Read,
                run: PageRun::new(pg(0, 8), 2),
                skip_seek: true, // SLM follow-up run within the cluster
            });
            let done = arm.drain();
            assert!(!done[0].effective_skip_seek);
            assert!(done[1].effective_skip_seek);
            assert_eq!(done[1].seek_ms, 0.0, "skipped seek must cost no time");
        }
    }

    #[test]
    fn elevator_total_time_beats_fcfs_on_scattered_queue() {
        let requests: Vec<PageRequest> = [900u64, 10, 850, 40, 700, 90, 500, 200]
            .iter()
            .map(|&cyl| read1(0, cyl * 32))
            .collect();
        let run = |policy| {
            let mut arm = DiskArm::new(DiskParams::default(), ArmGeometry::default(), policy);
            for r in &requests {
                arm.submit(*r);
            }
            arm.drain();
            arm.clock_ms()
        };
        let fcfs = run(ArmPolicy::Fcfs);
        let elevator = run(ArmPolicy::Elevator);
        assert!(
            elevator < fcfs,
            "elevator {elevator} ms not faster than fcfs {fcfs} ms"
        );
    }

    #[test]
    fn idle_arm_waits_for_future_arrivals() {
        let mut arm = DiskArm::new(
            DiskParams::default(),
            ArmGeometry::default(),
            ArmPolicy::Fcfs,
        );
        arm.submit_at(read1(0, 0), 100.0);
        let c = arm.service_next().unwrap();
        assert_eq!(c.started_ms, 100.0);
        assert_eq!(c.queue_ms(), 0.0);
        assert!(arm.clock_ms() > 100.0);
    }

    #[test]
    fn latency_stats_absorb_and_report() {
        let mut arm = DiskArm::new(
            DiskParams::default(),
            ArmGeometry::default(),
            ArmPolicy::Fcfs,
        );
        arm.submit(read1(0, 0));
        arm.submit(read1(0, 32 * 200));
        let mut stats = LatencyStats::arriving_at(0.0);
        for c in arm.drain() {
            stats.absorb(&c);
        }
        assert_eq!(stats.requests, 2);
        assert!(stats.queue_ms > 0.0, "second request waited");
        assert!(stats.service_ms > 0.0);
        assert!((stats.latency_ms() - arm.clock_ms()).abs() < 1e-9);
        assert!(stats.mean_queue_ms() > 0.0);
        let empty = LatencyStats::arriving_at(5.0);
        assert_eq!(empty.latency_ms(), 0.0);
        assert_eq!(empty.mean_queue_ms(), 0.0);
    }

    #[test]
    fn sectored_rotation_mean_calibrates_to_flat_latency() {
        // The same sector read at arrival phases sampling one full
        // revolution (midpoint sampling, so the discrete mean equals
        // the continuum mean exactly): the delays sweep the revolution
        // and average to the paper's flat 6 ms — the calibration
        // contract of the sectored model.
        let params = DiskParams::default();
        let geometry = ArmGeometry::default();
        let period = 2.0 * params.latency_ms;
        let samples = 32;
        let mut total = 0.0;
        for k in 0..samples {
            let mut arm = DiskArm::new(params, geometry, ArmPolicy::Fcfs);
            arm.set_rotation(RotationModel::Sectored);
            let arrival = (k as f64 + 0.5) / samples as f64 * period;
            arm.submit_at(read1(0, 0), arrival);
            let c = arm.drain().pop().expect("one completion");
            // service = seek(0) + rotation + transfer(1 page); the idle
            // arm starts at the arrival instant, so the head's phase at
            // readiness is exactly `arrival`.
            let rotation = c.finished_ms - c.started_ms - params.transfer_ms;
            assert!(
                (0.0..period).contains(&rotation),
                "rotation {rotation} outside one revolution"
            );
            total += rotation;
        }
        let mean = total / samples as f64;
        assert!(
            (mean - params.latency_ms).abs() < 1e-9,
            "mean rotational delay {mean} != {} (calibration drifted)",
            params.latency_ms
        );
    }

    #[test]
    fn sectored_rotation_depends_on_arrival_angle() {
        // The same target sector reached at two different clock phases
        // pays two different delays — and a request landing exactly on
        // its sector pays zero.
        let params = DiskParams::default();
        let geometry = ArmGeometry::default();
        let period = 2.0 * params.latency_ms;
        let mut arm = DiskArm::new(params, geometry, ArmPolicy::Fcfs);
        arm.set_rotation(RotationModel::Sectored);
        // Offset 0 → target phase 0; ready at clock 0 → zero delay.
        arm.submit_at(read1(0, 0), 0.0);
        let first = arm.service_next().expect("completion");
        assert_eq!(first.finished_ms - first.started_ms, params.transfer_ms);
        // Same sector again: the head is mid-revolution now, so the
        // arm waits for the platter to come around — a positive delay
        // shorter than one revolution.
        arm.submit_at(read1(0, 0), first.finished_ms);
        let second = arm.service_next().expect("completion");
        let delay = second.finished_ms - second.started_ms - params.transfer_ms;
        assert!(delay > 0.0 && delay < period, "delay {delay}");
        // And the flat default stays flat.
        let mut flat = DiskArm::new(params, geometry, ArmPolicy::Fcfs);
        flat.submit(read1(0, 0));
        let c = flat.service_next().expect("completion");
        assert_eq!(
            c.finished_ms - c.started_ms,
            params.latency_ms + params.transfer_ms
        );
    }

    #[test]
    fn simulate_queries_tracks_per_query_latency() {
        let q = |arrival: f64, cyls: &[u64]| QueryTrace {
            arrival_ms: arrival,
            requests: cyls.iter().map(|&c| read1(0, c * 32)).collect(),
        };
        let queries = vec![
            q(0.0, &[100, 101, 102]),
            q(5.0, &[500, 501]),
            q(10.0, &[]), // no I/O: completes at arrival
        ];
        let stats = simulate_queries(
            DiskParams::default(),
            ArmGeometry::default(),
            ArmPolicy::Elevator,
            2,
            &queries,
        );
        assert_eq!(stats.len(), 3);
        assert_eq!(stats[0].requests, 3);
        assert_eq!(stats[1].requests, 2);
        assert_eq!(stats[2].requests, 0);
        assert_eq!(stats[2].latency_ms(), 0.0);
        assert!(stats[0].latency_ms() > 0.0);
        assert!(stats[1].latency_ms() > 0.0);
        // Conservation: every request serviced exactly once.
        let total: u64 = stats.iter().map(|s| s.requests).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn simulate_depth_bounds_outstanding_requests() {
        // One query, many same-cost requests: at depth 1 each request is
        // submitted only after the previous completed, so no queue wait
        // accrues at all.
        let queries = vec![QueryTrace {
            arrival_ms: 0.0,
            requests: (0..16).map(|i| read1(0, i * 64)).collect(),
        }];
        let d1 = simulate_queries(
            DiskParams::default(),
            ArmGeometry::default(),
            ArmPolicy::Elevator,
            1,
            &queries,
        );
        assert_eq!(d1[0].queue_ms, 0.0, "depth-1 has no queueing");
        let d4 = simulate_queries(
            DiskParams::default(),
            ArmGeometry::default(),
            ArmPolicy::Elevator,
            4,
            &queries,
        );
        assert!(d4[0].queue_ms > 0.0, "depth-4 overlaps requests");
        // Elevator reordering can only shorten the busy span.
        assert!(d4[0].completed_ms <= d1[0].completed_ms + 1e-9);
    }

    #[test]
    fn elevator_beats_fcfs_mean_latency_at_depth() {
        // 8 queries arriving back-to-back, each touching a different
        // region band: lots of cross-file head travel for FCFS to waste.
        let queries: Vec<QueryTrace> = (0..8u16)
            .map(|r| QueryTrace {
                arrival_ms: r as f64 * 10.0,
                requests: (0..6u64).map(|o| read1(r % 4, o * 96)).collect(),
            })
            .collect();
        let mean = |policy| {
            let stats = simulate_queries(
                DiskParams::default(),
                ArmGeometry::default(),
                policy,
                4,
                &queries,
            );
            stats.iter().map(|s| s.latency_ms()).sum::<f64>() / stats.len() as f64
        };
        let fcfs = mean(ArmPolicy::Fcfs);
        let elevator = mean(ArmPolicy::Elevator);
        assert!(
            elevator < fcfs,
            "elevator mean {elevator} not below fcfs mean {fcfs}"
        );
    }
}

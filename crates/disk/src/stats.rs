//! I/O statistics accounting.

use std::fmt;

/// Kind of a disk request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IoKind {
    /// A read request.
    Read,
    /// A write request.
    Write,
}

/// Accumulated I/O statistics of a [`crate::Disk`].
///
/// The experiments report *I/O time* — the sum of seek, latency and
/// transfer components over all requests — exactly as the paper does.
#[derive(Clone, Copy, Default, Debug, PartialEq)]
pub struct IoStats {
    /// Number of read requests issued.
    pub read_requests: u64,
    /// Total pages transferred by read requests.
    pub pages_read: u64,
    /// Number of write requests issued.
    pub write_requests: u64,
    /// Total pages transferred by write requests.
    pub pages_written: u64,
    /// Number of seek operations performed.
    pub seeks: u64,
    /// Number of rotational delays paid.
    pub latencies: u64,
    /// Total simulated I/O time in milliseconds.
    pub io_ms: f64,
}

impl IoStats {
    /// A fresh, all-zero statistics record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one request of `pages` pages costing `cost_ms`,
    /// with `seeked` seeks (0 or 1) and one rotational delay.
    pub fn record(&mut self, kind: IoKind, pages: u64, cost_ms: f64, seeked: bool) {
        match kind {
            IoKind::Read => {
                self.read_requests += 1;
                self.pages_read += pages;
            }
            IoKind::Write => {
                self.write_requests += 1;
                self.pages_written += pages;
            }
        }
        if seeked {
            self.seeks += 1;
        }
        self.latencies += 1;
        self.io_ms += cost_ms;
    }

    /// Total number of requests of both kinds.
    #[inline]
    pub fn requests(&self) -> u64 {
        self.read_requests + self.write_requests
    }

    /// Total pages transferred in both directions.
    #[inline]
    pub fn pages(&self) -> u64 {
        self.pages_read + self.pages_written
    }

    /// Total simulated I/O time in seconds.
    #[inline]
    pub fn io_seconds(&self) -> f64 {
        self.io_ms / 1000.0
    }

    /// Difference `self - earlier`: the I/O performed since `earlier` was
    /// captured. All counters of `earlier` must be ≤ those of `self`.
    #[must_use = "the delta is the query's accounting; dropping it loses the measurement"]
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            read_requests: self.read_requests - earlier.read_requests,
            pages_read: self.pages_read - earlier.pages_read,
            write_requests: self.write_requests - earlier.write_requests,
            pages_written: self.pages_written - earlier.pages_written,
            seeks: self.seeks - earlier.seeks,
            latencies: self.latencies - earlier.latencies,
            io_ms: self.io_ms - earlier.io_ms,
        }
    }

    /// Component-wise sum.
    #[must_use = "plus returns the sum without modifying self"]
    pub fn plus(&self, other: &IoStats) -> IoStats {
        IoStats {
            read_requests: self.read_requests + other.read_requests,
            pages_read: self.pages_read + other.pages_read,
            write_requests: self.write_requests + other.write_requests,
            pages_written: self.pages_written + other.pages_written,
            seeks: self.seeks + other.seeks,
            latencies: self.latencies + other.latencies,
            io_ms: self.io_ms + other.io_ms,
        }
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} reads ({} pages), {} writes ({} pages), {} seeks, {:.1} ms",
            self.read_requests,
            self.pages_read,
            self.write_requests,
            self.pages_written,
            self.seeks,
            self.io_ms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut s = IoStats::new();
        s.record(IoKind::Read, 20, 35.0, true);
        s.record(IoKind::Read, 5, 11.0, false);
        s.record(IoKind::Write, 1, 16.0, true);
        assert_eq!(s.read_requests, 2);
        assert_eq!(s.pages_read, 25);
        assert_eq!(s.write_requests, 1);
        assert_eq!(s.pages_written, 1);
        assert_eq!(s.seeks, 2);
        assert_eq!(s.latencies, 3);
        assert_eq!(s.io_ms, 62.0);
        assert_eq!(s.requests(), 3);
        assert_eq!(s.pages(), 26);
    }

    #[test]
    fn since_subtracts() {
        let mut s = IoStats::new();
        s.record(IoKind::Read, 10, 25.0, true);
        let snapshot = s;
        s.record(IoKind::Write, 2, 17.0, true);
        let d = s.since(&snapshot);
        assert_eq!(d.read_requests, 0);
        assert_eq!(d.write_requests, 1);
        assert_eq!(d.pages_written, 2);
        assert_eq!(d.io_ms, 17.0);
    }

    #[test]
    fn plus_adds() {
        let mut a = IoStats::new();
        a.record(IoKind::Read, 1, 16.0, true);
        let mut b = IoStats::new();
        b.record(IoKind::Write, 3, 18.0, true);
        let c = a.plus(&b);
        assert_eq!(c.requests(), 2);
        assert_eq!(c.io_ms, 34.0);
    }

    #[test]
    fn io_seconds_scales() {
        let mut s = IoStats::new();
        s.record(IoKind::Read, 1, 1500.0, true);
        assert_eq!(s.io_seconds(), 1.5);
    }
}

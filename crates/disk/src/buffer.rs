//! LRU page buffer and the buffered I/O front-end.
//!
//! Every experiment of the paper runs with an LRU buffer in front of the
//! disk (§6.1 sweeps buffer sizes from 200 to 6,400 pages for the spatial
//! join). The buffer determines which page accesses become disk requests;
//! Figure 15 distinguishes the *read* operation (all transferred pages are
//! allocated in the buffer, including bridged non-requested pages) from
//! the *vector read* (only requested pages are kept).

use crate::disk::DiskHandle;
use crate::model::{runs_of, PageId, PageRun};
use crate::schedule::{slm_schedule, ScheduledRun};
use crate::stats::IoKind;
use std::collections::HashMap;

/// How transferred pages enter the buffer (Figure 15).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReadMode {
    /// Normal read: every transferred page — requested or bridged — is
    /// allocated in the buffer.
    Normal,
    /// Vector read: only requested pages are stored; bridged pages are
    /// transferred but dropped.
    Vector,
}

/// Seek accounting for multi-request reads.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SeekPolicy {
    /// Every request pays a seek: the target runs are scattered across the
    /// disk (e.g. candidate objects in the secondary organization's
    /// sequential file).
    PerRequest,
    /// All requests stay within one cluster unit (§5.4.3): only the first
    /// pays a seek — and not even that one if `initial_seek` is false
    /// because an earlier access already positioned the arm on the unit.
    WithinCluster {
        /// Whether the first issued request pays the seek.
        initial_seek: bool,
    },
}

impl SeekPolicy {
    pub(crate) fn skip_seek(&self, request_index: u64) -> bool {
        match self {
            SeekPolicy::PerRequest => false,
            SeekPolicy::WithinCluster { initial_seek } => !(*initial_seek && request_index == 0),
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Node {
    page: PageId,
    dirty: bool,
    pinned: bool,
    prev: Option<usize>,
    next: Option<usize>,
}

/// A page-granular LRU buffer with dirty flags and pinning.
///
/// Pure replacement logic — it never talks to the disk. [`BufferPool`]
/// pairs it with a [`DiskHandle`] and charges the misses and dirty
/// evictions.
#[derive(Debug)]
pub struct LruBuffer {
    capacity: usize,
    map: HashMap<PageId, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    /// Most recently used node.
    head: Option<usize>,
    /// Least recently used node.
    tail: Option<usize>,
}

impl LruBuffer {
    /// Create a buffer holding at most `capacity` pages.
    ///
    /// A capacity of zero disables buffering: every access misses and
    /// nothing is retained.
    pub fn new(capacity: usize) -> Self {
        LruBuffer {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            nodes: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: None,
            tail: None,
        }
    }

    /// Buffer capacity in pages.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Change the capacity in place, evicting LRU-first down to the new
    /// bound if it shrank below the current occupancy. Returns the
    /// evicted `(page, dirty)` pairs (empty when growing). The adaptive
    /// quota ledger of [`crate::shard::ShardedPool`] moves headroom
    /// between shards with this — donors shrink only within their free
    /// headroom, so their evictions stay empty.
    pub fn set_capacity(&mut self, capacity: usize) -> Vec<(PageId, bool)> {
        self.capacity = capacity;
        let mut evicted = Vec::new();
        while self.map.len() > self.capacity {
            match self.evict_one() {
                Some(e) => evicted.push(e),
                None => break, // everything left is pinned
            }
        }
        evicted
    }

    /// Number of buffered pages.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if no page is buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `true` if `page` is buffered.
    #[inline]
    pub fn contains(&self, page: &PageId) -> bool {
        self.map.contains_key(page)
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        match prev {
            Some(p) => self.nodes[p].next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.nodes[n].prev = prev,
            None => self.tail = prev,
        }
        self.nodes[idx].prev = None;
        self.nodes[idx].next = None;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = None;
        self.nodes[idx].next = self.head;
        if let Some(h) = self.head {
            self.nodes[h].prev = Some(idx);
        }
        self.head = Some(idx);
        if self.tail.is_none() {
            self.tail = Some(idx);
        }
    }

    /// Touch `page` (move to MRU). Returns `true` if it was buffered.
    pub fn touch(&mut self, page: &PageId) -> bool {
        if let Some(&idx) = self.map.get(page) {
            self.unlink(idx);
            self.push_front(idx);
            true
        } else {
            false
        }
    }

    /// Insert `page` (as MRU) with the given dirty flag, evicting LRU
    /// pages as needed. If the page is already buffered it is touched and
    /// its dirty flag is OR-ed. Returns the evicted `(page, was_dirty)`
    /// pairs (empty for capacity-0 buffers, where nothing is retained and
    /// nothing evicted).
    pub fn insert(&mut self, page: PageId, dirty: bool) -> Vec<(PageId, bool)> {
        if self.capacity == 0 {
            return Vec::new();
        }
        if let Some(&idx) = self.map.get(&page) {
            self.unlink(idx);
            self.push_front(idx);
            self.nodes[idx].dirty |= dirty;
            return Vec::new();
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Node {
                    page,
                    dirty,
                    pinned: false,
                    prev: None,
                    next: None,
                };
                i
            }
            None => {
                self.nodes.push(Node {
                    page,
                    dirty,
                    pinned: false,
                    prev: None,
                    next: None,
                });
                self.nodes.len() - 1
            }
        };
        self.map.insert(page, idx);
        self.push_front(idx);
        let mut evicted = Vec::new();
        while self.map.len() > self.capacity {
            match self.evict_one() {
                Some(e) => evicted.push(e),
                None => break, // everything pinned; allow temporary overflow
            }
        }
        evicted
    }

    fn evict_one(&mut self) -> Option<(PageId, bool)> {
        let mut cur = self.tail;
        while let Some(idx) = cur {
            if self.nodes[idx].pinned {
                cur = self.nodes[idx].prev;
                continue;
            }
            let node = self.nodes[idx];
            self.unlink(idx);
            self.map.remove(&node.page);
            self.free.push(idx);
            return Some((node.page, node.dirty));
        }
        None
    }

    /// Mark a buffered page dirty. Returns `true` if the page was present.
    pub fn mark_dirty(&mut self, page: &PageId) -> bool {
        if let Some(&idx) = self.map.get(page) {
            self.nodes[idx].dirty = true;
            true
        } else {
            false
        }
    }

    /// Pin a buffered page (exempt from eviction). Returns `true` if
    /// present.
    pub fn pin(&mut self, page: &PageId) -> bool {
        if let Some(&idx) = self.map.get(page) {
            self.nodes[idx].pinned = true;
            true
        } else {
            false
        }
    }

    /// Unpin a buffered page. Returns `true` if present.
    pub fn unpin(&mut self, page: &PageId) -> bool {
        if let Some(&idx) = self.map.get(page) {
            self.nodes[idx].pinned = false;
            true
        } else {
            false
        }
    }

    /// Remove a page from the buffer, returning its dirty flag.
    pub fn remove(&mut self, page: &PageId) -> Option<bool> {
        let idx = self.map.remove(page)?;
        let dirty = self.nodes[idx].dirty;
        self.unlink(idx);
        self.free.push(idx);
        Some(dirty)
    }

    /// Iterate over all buffered pages (arbitrary order).
    pub fn pages(&self) -> impl Iterator<Item = PageId> + '_ {
        // lint: order-insensitive — callers filter/collect and sort (or
        // remove per page); the arbitrary order never reaches any stats.
        self.map.keys().copied()
    }

    /// All dirty pages, sorted by address (ready for run formation).
    pub fn dirty_pages(&self) -> Vec<PageId> {
        let mut v: Vec<_> = self
            .map
            .iter()
            .filter(|(_, &i)| self.nodes[i].dirty)
            .map(|(p, _)| *p)
            .collect();
        v.sort_unstable();
        v
    }

    /// Clear the dirty flag of a page (after it was written back).
    pub fn clear_dirty(&mut self, page: &PageId) {
        if let Some(&idx) = self.map.get(page) {
            self.nodes[idx].dirty = false;
        }
    }
}

/// Outcome of a buffered multi-page read.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Number of disk requests issued.
    pub requests: u64,
    /// Pages transferred from disk (misses, incl. bridged pages).
    pub pages_transferred: u64,
    /// Pages served from the buffer.
    pub buffer_hits: u64,
}

impl ReadOutcome {
    /// `true` if at least one disk request was issued.
    #[inline]
    pub fn issued_io(&self) -> bool {
        self.requests > 0
    }
}

/// LRU buffer bound to a disk: the component every organization model
/// reads and writes through.
#[derive(Debug)]
pub struct BufferPool {
    disk: DiskHandle,
    buf: LruBuffer,
    write_through: bool,
}

impl BufferPool {
    /// Create a pool with `capacity` pages over `disk`.
    pub fn new(disk: DiskHandle, capacity: usize) -> Self {
        BufferPool {
            disk,
            buf: LruBuffer::new(capacity),
            write_through: false,
        }
    }

    /// Switch between write-back (default) and write-through page
    /// updates.
    ///
    /// In write-through mode every [`BufferPool::write_page`] /
    /// [`BufferPool::update_page`] charges its write request immediately
    /// and the buffered copy stays clean — the update discipline of the
    /// systems the paper measured, and the mode the construction
    /// experiments (Figure 5) run under. Write-back defers the write to
    /// eviction or [`BufferPool::flush`].
    pub fn set_write_through(&mut self, on: bool) {
        self.write_through = on;
    }

    /// Whether write-through mode is active.
    pub fn write_through(&self) -> bool {
        self.write_through
    }

    /// The underlying disk handle.
    #[inline]
    pub fn disk(&self) -> &DiskHandle {
        &self.disk
    }

    /// Direct access to the replacement state (tests, pin management).
    #[inline]
    pub fn buffer_mut(&mut self) -> &mut LruBuffer {
        &mut self.buf
    }

    /// Immutable access to the replacement state.
    #[inline]
    pub fn buffer(&self) -> &LruBuffer {
        &self.buf
    }

    fn charge_evictions(&mut self, evicted: Vec<(PageId, bool)>) {
        for (page, dirty) in evicted {
            if dirty {
                self.disk
                    .charge(IoKind::Write, PageRun::new(page, 1), false);
            }
        }
    }

    /// Read a single page. Returns `true` on a buffer hit.
    pub fn read_page(&mut self, page: PageId) -> bool {
        if self.buf.touch(&page) {
            return true;
        }
        self.disk.charge(IoKind::Read, PageRun::new(page, 1), false);
        let ev = self.buf.insert(page, false);
        self.charge_evictions(ev);
        false
    }

    /// Blind single-page write: the page is (re)written without being
    /// read first — e.g. appending records to a fresh page. In
    /// write-back mode the page is buffered dirty and the physical write
    /// happens on eviction or flush; in write-through mode the write is
    /// charged immediately.
    pub fn write_page(&mut self, page: PageId) {
        if self.buf.capacity() == 0 || self.write_through {
            self.disk
                .charge(IoKind::Write, PageRun::new(page, 1), false);
            if self.buf.capacity() > 0 {
                let ev = self.buf.insert(page, false);
                self.charge_evictions(ev);
            }
            return;
        }
        let ev = self.buf.insert(page, true);
        self.charge_evictions(ev);
    }

    /// Read-modify-write of a single page: charged read on miss, then
    /// marked dirty (write-back) or written immediately (write-through).
    pub fn update_page(&mut self, page: PageId) -> bool {
        if self.buf.capacity() == 0 {
            self.disk.charge(IoKind::Read, PageRun::new(page, 1), false);
            self.disk
                .charge(IoKind::Write, PageRun::new(page, 1), false);
            return false;
        }
        let hit = self.buf.touch(&page);
        if !hit {
            self.disk.charge(IoKind::Read, PageRun::new(page, 1), false);
            let ev = self.buf.insert(page, false);
            self.charge_evictions(ev);
        }
        if self.write_through {
            self.disk
                .charge(IoKind::Write, PageRun::new(page, 1), false);
        } else {
            self.buf.mark_dirty(&page);
        }
        hit
    }

    /// Read a set of pages (sorted, deduplicated). Missing pages are
    /// grouped into maximal consecutive runs, each one request, charged
    /// according to the [`SeekPolicy`].
    pub fn read_set(&mut self, pages: &[PageId], seek: SeekPolicy) -> ReadOutcome {
        debug_assert!(
            pages.windows(2).all(|w| w[0] < w[1]),
            "pages must be sorted"
        );
        let mut out = ReadOutcome::default();
        let mut missing = Vec::new();
        for p in pages {
            if self.buf.touch(p) {
                out.buffer_hits += 1;
            } else {
                missing.push(*p);
            }
        }
        for run in runs_of(&missing) {
            self.disk
                .charge(IoKind::Read, run, seek.skip_seek(out.requests));
            out.requests += 1;
            out.pages_transferred += run.len;
        }
        for p in missing {
            let ev = self.buf.insert(p, false);
            self.charge_evictions(ev);
        }
        out
    }

    /// Insert pages into the buffer without charging any I/O, pinning
    /// them against eviction.
    ///
    /// Models the standard assumption that the index directory is
    /// memory-resident during query processing; the experiments warm the
    /// directory pages this way so that only data-page and object I/O is
    /// measured, as the paper does.
    pub fn warm_pinned(&mut self, pages: impl IntoIterator<Item = PageId>) {
        for p in pages {
            let ev = self.buf.insert(p, false);
            self.charge_evictions(ev);
            self.buf.pin(&p);
        }
    }

    /// Drop all buffered pages of the given regions without writing
    /// anything (per-query cold-start for object pages while the tree
    /// stays warm). Pinned pages are dropped too.
    pub fn invalidate_regions(&mut self, regions: &[crate::model::RegionId]) {
        let victims: Vec<PageId> = self
            .buf
            .pages()
            .filter(|p| regions.contains(&p.region))
            .collect();
        for p in victims {
            self.buf.remove(&p);
        }
    }

    /// Read a complete extent (cluster unit) with one request, regardless
    /// of how many of its pages are already buffered — the *complete*
    /// technique of §5.4. All pages enter the buffer.
    ///
    /// The caller should skip the call entirely when every *needed* page
    /// is buffered; once any disk access is required, the whole unit is
    /// transferred in one request.
    pub fn read_full_extent(&mut self, extent: PageRun) -> ReadOutcome {
        self.disk.charge(IoKind::Read, extent, false);
        let mut out = ReadOutcome {
            requests: 1,
            pages_transferred: extent.len,
            buffer_hits: 0,
        };
        if self.buf.capacity() == 0 {
            return out;
        }
        for p in extent.pages() {
            if self.buf.contains(&p) {
                out.buffer_hits += 1;
                self.buf.touch(&p);
            } else {
                let ev = self.buf.insert(p, false);
                self.charge_evictions(ev);
            }
        }
        out
    }

    /// Read the requested page offsets of `extent` with an SLM schedule
    /// bridging gaps of up to `max_gap` pages (§5.4.2). Already-buffered
    /// pages are excluded from the schedule. `mode` decides whether
    /// bridged pages enter the buffer (Figure 15). The first issued
    /// request pays the seek iff `initial_seek`.
    pub fn read_extent_slm(
        &mut self,
        extent: PageRun,
        requested_offsets: &[u64],
        max_gap: u64,
        mode: ReadMode,
        initial_seek: bool,
    ) -> ReadOutcome {
        let mut out = ReadOutcome::default();
        let mut missing = Vec::with_capacity(requested_offsets.len());
        for &o in requested_offsets {
            debug_assert!(o < extent.len, "offset {o} outside extent");
            let p = extent.page(o);
            if self.buf.touch(&p) {
                out.buffer_hits += 1;
            } else {
                missing.push(o);
            }
        }
        let schedule: Vec<ScheduledRun> = slm_schedule(&missing, max_gap);
        for (i, run) in schedule.iter().enumerate() {
            let skip = !(initial_seek && i == 0);
            let page_run = PageRun::new(extent.page(run.start), run.len);
            self.disk.charge(IoKind::Read, page_run, skip);
            out.requests += 1;
            out.pages_transferred += run.len;
            if self.buf.capacity() == 0 {
                continue;
            }
            for off in run.start..run.start + run.len {
                let requested = missing.binary_search(&off).is_ok();
                if mode == ReadMode::Vector && !requested {
                    continue;
                }
                let p = extent.page(off);
                if !self.buf.contains(&p) {
                    let ev = self.buf.insert(p, false);
                    self.charge_evictions(ev);
                } else {
                    self.buf.touch(&p);
                }
            }
        }
        out
    }

    /// Bulk sequential write of a fresh extent (e.g. a cluster split
    /// writing a new cluster unit): one request, bypassing the buffer.
    ///
    /// Buffered copies of the extent's pages are **evicted**: the write
    /// replaced their contents on disk, so keeping them (even clean)
    /// would let later reads hit on stale data. Their dirty flags are
    /// dropped without a writeback — the extent write itself supersedes
    /// whatever the buffered copy would have written back.
    pub fn write_extent(&mut self, extent: PageRun) {
        self.disk.charge(IoKind::Write, extent, false);
        for p in extent.pages() {
            self.buf.remove(&p);
        }
    }

    /// Write back all dirty pages, grouped into maximal consecutive runs.
    pub fn flush(&mut self) {
        let dirty = self.buf.dirty_pages();
        for run in runs_of(&dirty) {
            self.disk.charge(IoKind::Write, run, false);
        }
        for p in dirty {
            self.buf.clear_dirty(&p);
        }
    }

    /// Drop every buffered page (experiment boundary where the buffer
    /// must start cold), **writing back dirty pages first** — dropping
    /// them silently would deflate the experiment's write counts by the
    /// deferred writebacks the workload actually incurred.
    pub fn invalidate_all(&mut self) {
        self.flush();
        let cap = self.buf.capacity();
        self.buf = LruBuffer::new(cap);
    }

    /// Replace the buffer with an empty one of `capacity` pages (the
    /// buffer-size sweeps of Figures 14 and 16 resize between runs).
    /// Dirty pages are written back first, like
    /// [`invalidate_all`](BufferPool::invalidate_all).
    pub fn reset(&mut self, capacity: usize) {
        self.flush();
        self.buf = LruBuffer::new(capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::Disk;
    use crate::model::RegionId;

    fn pool(cap: usize) -> (DiskHandle, BufferPool, RegionId) {
        let disk = Disk::with_defaults();
        let r = disk.create_region("data");
        let pool = BufferPool::new(disk.clone(), cap);
        (disk, pool, r)
    }

    fn pg(r: RegionId, o: u64) -> PageId {
        PageId::new(r, o)
    }

    #[test]
    fn lru_eviction_order() {
        let mut b = LruBuffer::new(2);
        let r = RegionId(0);
        assert!(b.insert(pg(r, 1), false).is_empty());
        assert!(b.insert(pg(r, 2), false).is_empty());
        let ev = b.insert(pg(r, 3), false);
        assert_eq!(ev, vec![(pg(r, 1), false)]);
        // Touch 2, insert 4 → 3 evicted.
        assert!(b.touch(&pg(r, 2)));
        let ev = b.insert(pg(r, 4), false);
        assert_eq!(ev, vec![(pg(r, 3), false)]);
    }

    #[test]
    fn lru_pinned_pages_survive() {
        let mut b = LruBuffer::new(2);
        let r = RegionId(0);
        b.insert(pg(r, 1), false);
        b.pin(&pg(r, 1));
        b.insert(pg(r, 2), false);
        let ev = b.insert(pg(r, 3), false);
        // Page 1 is pinned; page 2 is evicted instead.
        assert_eq!(ev, vec![(pg(r, 2), false)]);
        assert!(b.contains(&pg(r, 1)));
        b.unpin(&pg(r, 1));
        let ev = b.insert(pg(r, 4), false);
        assert_eq!(ev, vec![(pg(r, 1), false)]);
    }

    #[test]
    fn lru_dirty_flag_propagates() {
        let mut b = LruBuffer::new(1);
        let r = RegionId(0);
        b.insert(pg(r, 1), false);
        b.mark_dirty(&pg(r, 1));
        let ev = b.insert(pg(r, 2), false);
        assert_eq!(ev, vec![(pg(r, 1), true)]);
    }

    #[test]
    fn lru_zero_capacity_retains_nothing() {
        let mut b = LruBuffer::new(0);
        let r = RegionId(0);
        assert!(b.insert(pg(r, 1), true).is_empty());
        assert!(!b.contains(&pg(r, 1)));
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn read_page_hit_and_miss() {
        let (disk, mut pool, r) = pool(4);
        assert!(!pool.read_page(pg(r, 0))); // miss: 16 ms
        assert!(pool.read_page(pg(r, 0))); // hit: free
        let s = disk.stats();
        assert_eq!(s.read_requests, 1);
        assert_eq!(s.io_ms, 16.0);
    }

    #[test]
    fn dirty_eviction_charges_write() {
        let (disk, mut pool, r) = pool(1);
        pool.write_page(pg(r, 0)); // buffered dirty, no I/O yet
        assert_eq!(disk.stats().requests(), 0);
        pool.read_page(pg(r, 1)); // evicts dirty page 0 → 1 write + 1 read
        let s = disk.stats();
        assert_eq!(s.write_requests, 1);
        assert_eq!(s.read_requests, 1);
    }

    #[test]
    fn read_set_groups_runs() {
        let (disk, mut pool, r) = pool(16);
        let pages = vec![pg(r, 0), pg(r, 1), pg(r, 2), pg(r, 8)];
        let out = pool.read_set(&pages, SeekPolicy::WithinCluster { initial_seek: true });
        assert_eq!(out.requests, 2);
        assert_eq!(out.pages_transferred, 4);
        // First request seeks (9+6+3), second one skips the seek (6+1).
        assert_eq!(disk.stats().io_ms, 18.0 + 7.0);
        assert_eq!(disk.stats().seeks, 1);
    }

    #[test]
    fn read_set_hits_reduce_transfers() {
        let (disk, mut pool, r) = pool(16);
        pool.read_page(pg(r, 1));
        disk.reset_stats();
        let out = pool.read_set(
            &[pg(r, 0), pg(r, 1), pg(r, 2)],
            SeekPolicy::WithinCluster { initial_seek: true },
        );
        assert_eq!(out.buffer_hits, 1);
        assert_eq!(out.requests, 2); // runs [0] and [2]
        assert_eq!(out.pages_transferred, 2);
    }

    #[test]
    fn full_extent_read_is_one_request() {
        let (disk, mut pool, r) = pool(64);
        let extent = PageRun::new(pg(r, 100), 20);
        let out = pool.read_full_extent(extent);
        assert_eq!(out.requests, 1);
        assert_eq!(out.pages_transferred, 20);
        assert_eq!(disk.stats().io_ms, 35.0); // 9 + 6 + 20
        assert!(pool.buffer().contains(&pg(r, 119)));
    }

    #[test]
    fn slm_read_bridges_gaps_and_modes_differ() {
        let (disk, mut pool, r) = pool(64);
        let extent = PageRun::new(pg(r, 0), 12);
        // Requested offsets 0, 2, 3 with gap 1 bridged.
        let out = pool.read_extent_slm(extent, &[0, 2, 3], 1, ReadMode::Normal, true);
        assert_eq!(out.requests, 1);
        assert_eq!(out.pages_transferred, 4);
        assert!(pool.buffer().contains(&pg(r, 1))); // bridged page kept
        pool.invalidate_all();
        disk.reset_stats();
        let out = pool.read_extent_slm(extent, &[0, 2, 3], 1, ReadMode::Vector, true);
        assert_eq!(out.pages_transferred, 4);
        assert!(!pool.buffer().contains(&pg(r, 1))); // bridged page dropped
        assert!(pool.buffer().contains(&pg(r, 3)));
    }

    #[test]
    fn slm_read_excludes_buffered_pages() {
        let (disk, mut pool, r) = pool(64);
        let extent = PageRun::new(pg(r, 0), 12);
        pool.read_page(pg(r, 2));
        disk.reset_stats();
        let out = pool.read_extent_slm(extent, &[0, 2, 4], 1, ReadMode::Normal, true);
        assert_eq!(out.buffer_hits, 1);
        // Missing offsets 0 and 4: gap of 3 > 1 → two requests.
        assert_eq!(out.requests, 2);
        assert_eq!(out.pages_transferred, 2);
    }

    #[test]
    fn flush_groups_consecutive_dirty_pages() {
        let (disk, mut pool, r) = pool(16);
        pool.write_page(pg(r, 0));
        pool.write_page(pg(r, 1));
        pool.write_page(pg(r, 5));
        pool.flush();
        let s = disk.stats();
        assert_eq!(s.write_requests, 2); // runs [0,1] and [5]
        assert_eq!(s.pages_written, 3);
        // Second flush writes nothing.
        disk.reset_stats();
        pool.flush();
        assert_eq!(disk.stats().requests(), 0);
    }

    #[test]
    fn write_extent_bypasses_buffer() {
        let (disk, mut pool, r) = pool(4);
        let extent = PageRun::new(pg(r, 0), 10);
        pool.write_extent(extent);
        let s = disk.stats();
        assert_eq!(s.write_requests, 1);
        assert_eq!(s.pages_written, 10);
        assert_eq!(s.io_ms, 25.0); // 9 + 6 + 10
        assert_eq!(pool.buffer().len(), 0);
    }

    #[test]
    fn write_extent_evicts_stale_buffered_copies() {
        let (disk, mut pool, r) = pool(8);
        pool.read_page(pg(r, 2));
        pool.update_page(pg(r, 3)); // buffered dirty
        disk.reset_stats();
        pool.write_extent(PageRun::new(pg(r, 0), 6));
        // The replaced copies are gone: a subsequent read is a miss on
        // the rewritten data, not a hit on the stale copy.
        assert!(!pool.buffer().contains(&pg(r, 2)));
        assert!(!pool.buffer().contains(&pg(r, 3)));
        assert!(!pool.read_page(pg(r, 2)), "stale page must not hit");
        // The dirty flag was superseded by the extent write: exactly one
        // write request (the extent), no writeback of page 3.
        assert_eq!(disk.stats().write_requests, 1);
        assert_eq!(disk.stats().pages_written, 6);
    }

    #[test]
    fn invalidate_all_writes_back_dirty_pages() {
        let (disk, mut pool, r) = pool(8);
        pool.write_page(pg(r, 0));
        pool.write_page(pg(r, 1));
        pool.read_page(pg(r, 5));
        disk.reset_stats();
        pool.invalidate_all();
        // Experiment boundary: the deferred writebacks are charged (one
        // run for the consecutive dirty pages), clean pages just drop.
        let s = disk.stats();
        assert_eq!(s.write_requests, 1);
        assert_eq!(s.pages_written, 2);
        assert_eq!(pool.buffer().len(), 0);
    }

    #[test]
    fn reset_writes_back_dirty_pages_before_resizing() {
        let (disk, mut pool, r) = pool(8);
        pool.write_page(pg(r, 4));
        disk.reset_stats();
        pool.reset(16);
        assert_eq!(disk.stats().write_requests, 1);
        assert_eq!(disk.stats().pages_written, 1);
        assert_eq!(pool.buffer().capacity(), 16);
        assert_eq!(pool.buffer().len(), 0);
        // A clean pool resets for free.
        disk.reset_stats();
        pool.reset(8);
        assert_eq!(disk.stats().requests(), 0);
    }

    #[test]
    fn update_page_charges_read_once() {
        let (disk, mut pool, r) = pool(4);
        assert!(!pool.update_page(pg(r, 0)));
        assert!(pool.update_page(pg(r, 0)));
        assert_eq!(disk.stats().read_requests, 1);
        // The page is dirty: evicting it later writes it.
        assert_eq!(pool.buffer().dirty_pages(), vec![pg(r, 0)]);
    }

    #[test]
    fn zero_capacity_pool_write_through() {
        let (disk, mut pool, r) = pool(0);
        pool.write_page(pg(r, 0));
        assert_eq!(disk.stats().write_requests, 1);
        pool.update_page(pg(r, 1));
        let s = disk.stats();
        assert_eq!(s.read_requests, 1);
        assert_eq!(s.write_requests, 2);
    }
}

//! Pages, page runs, regions and the disk cost parameters.

use std::fmt;

/// Page size in bytes. The paper's experiments use 4 KB pages (§5.1).
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a disk *region*.
///
/// A region models one file / storage area on the disk: the R\*-tree page
/// file, the sequential object file of the secondary organization, the
/// cluster-unit area, the overflow file of the primary organization, …
/// Pages of *different* regions are never physically consecutive, so a
/// request can never span two regions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RegionId(pub u16);

/// A physical page address: a region plus a page offset within it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PageId {
    /// Region (file) this page belongs to.
    pub region: RegionId,
    /// Page offset within the region.
    pub offset: u64,
}

impl PageId {
    /// Create a page id.
    #[inline]
    pub const fn new(region: RegionId, offset: u64) -> Self {
        PageId { region, offset }
    }

    /// `true` if `other` is the page physically following `self`
    /// (same region, adjacent offset).
    ///
    /// Per §3.1 the time to switch tracks within a cylinder is neglected,
    /// so adjacency in the linear region address space is the only
    /// requirement for two pages to be readable in one request.
    #[inline]
    pub fn is_followed_by(&self, other: &PageId) -> bool {
        self.region == other.region && other.offset == self.offset + 1
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}:{}", self.region.0, self.offset)
    }
}

/// A run of physically consecutive pages within one region.
///
/// A `PageRun` is exactly the unit of one disk request: all its pages can
/// be transferred after a single seek and rotational delay.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PageRun {
    /// First page of the run.
    pub start: PageId,
    /// Number of pages in the run (may be zero for an empty run).
    pub len: u64,
}

impl PageRun {
    /// Create a run.
    #[inline]
    pub const fn new(start: PageId, len: u64) -> Self {
        PageRun { start, len }
    }

    /// The empty run at `start`.
    #[inline]
    pub const fn empty(start: PageId) -> Self {
        PageRun { start, len: 0 }
    }

    /// `true` if the run contains no pages.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Page offset one past the last page.
    #[inline]
    pub fn end_offset(&self) -> u64 {
        self.start.offset + self.len
    }

    /// `true` if `page` lies inside the run.
    #[inline]
    pub fn contains(&self, page: &PageId) -> bool {
        page.region == self.start.region
            && page.offset >= self.start.offset
            && page.offset < self.end_offset()
    }

    /// Iterate over the pages of the run.
    pub fn pages(&self) -> impl Iterator<Item = PageId> + '_ {
        let region = self.start.region;
        (self.start.offset..self.end_offset()).map(move |o| PageId::new(region, o))
    }

    /// The `i`-th page of the run.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn page(&self, i: u64) -> PageId {
        assert!(
            i < self.len,
            "page index {i} out of run of {} pages",
            self.len
        );
        PageId::new(self.start.region, self.start.offset + i)
    }

    /// Split the run in two at `at` pages ( `0 <= at <= len` ).
    pub fn split_at(&self, at: u64) -> (PageRun, PageRun) {
        assert!(at <= self.len);
        (
            PageRun::new(self.start, at),
            PageRun::new(
                PageId::new(self.start.region, self.start.offset + at),
                self.len - at,
            ),
        )
    }
}

impl fmt::Display for PageRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}", self.start, self.len)
    }
}

/// Disk timing parameters (§5.1 of the paper, average values for 1994
/// disks per \[HS94\]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskParams {
    /// Average seek time in milliseconds.
    pub seek_ms: f64,
    /// Average rotational latency in milliseconds.
    pub latency_ms: f64,
    /// Transfer time for one page in milliseconds.
    pub transfer_ms: f64,
}

impl Default for DiskParams {
    fn default() -> Self {
        DiskParams {
            seek_ms: 9.0,
            latency_ms: 6.0,
            transfer_ms: 1.0,
        }
    }
}

impl DiskParams {
    /// Cost in milliseconds of one request transferring `pages` consecutive
    /// pages, optionally skipping the seek.
    ///
    /// The `skip_seek` case implements the assumption of §5.4.3: when a
    /// cluster unit is read with several requests (threshold / SLM /
    /// page-by-page techniques), the requests after the first stay on the
    /// same cylinder — *"one seek operation is sufficient for reading one
    /// cluster unit"* — and pay only latency plus transfer.
    #[inline]
    pub fn request_ms(&self, pages: u64, skip_seek: bool) -> f64 {
        if pages == 0 {
            return 0.0;
        }
        let seek = if skip_seek { 0.0 } else { self.seek_ms };
        seek + self.latency_ms + self.transfer_ms * pages as f64
    }

    /// The paper's `t_compl(c)` (§5.4.1): cost of reading a complete
    /// cluster of `size_pages` pages at once.
    #[inline]
    pub fn t_compl(&self, size_pages: u64) -> f64 {
        self.seek_ms + self.latency_ms + self.transfer_ms * size_pages as f64
    }

    /// The paper's `t_page` (§5.4.1): estimated cost of answering a window
    /// query on one cluster page-by-page, with `avg_entries` entries per
    /// data page and `avg_pages_per_object` pages occupied per object:
    /// `t_s + noe∅ · (t_l + nop∅ · t_t)`.
    #[inline]
    pub fn t_page(&self, avg_entries: f64, avg_pages_per_object: f64) -> f64 {
        self.seek_ms + avg_entries * (self.latency_ms + avg_pages_per_object * self.transfer_ms)
    }

    /// The geometric threshold `T(c) = t_compl(c) / t_page` of §5.4.1.
    ///
    /// A cluster unit whose degree of overlap with the query window exceeds
    /// `T(c)` is transferred completely; below the threshold the objects
    /// are read page-by-page.
    #[inline]
    pub fn geometric_threshold(
        &self,
        cluster_pages: u64,
        avg_entries: f64,
        avg_pages_per_object: f64,
    ) -> f64 {
        self.t_compl(cluster_pages) / self.t_page(avg_entries, avg_pages_per_object)
    }
}

/// Group a sorted, deduplicated slice of pages into maximal physically
/// consecutive runs.
///
/// This is the basic request-forming operation: the cost of accessing the
/// set is the sum of the per-run request costs.
pub fn runs_of(pages: &[PageId]) -> Vec<PageRun> {
    let mut runs = Vec::new();
    let mut it = pages.iter();
    let Some(first) = it.next() else {
        return runs;
    };
    let mut cur = PageRun::new(*first, 1);
    let mut last = *first;
    for p in it {
        debug_assert!(last < *p, "pages must be sorted and deduplicated");
        if last.is_followed_by(p) {
            cur.len += 1;
        } else {
            runs.push(cur);
            cur = PageRun::new(*p, 1);
        }
        last = *p;
    }
    runs.push(cur);
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: RegionId = RegionId(1);
    const S: RegionId = RegionId(2);

    fn p(o: u64) -> PageId {
        PageId::new(R, o)
    }

    #[test]
    fn adjacency_within_region() {
        assert!(p(4).is_followed_by(&p(5)));
        assert!(!p(4).is_followed_by(&p(6)));
        assert!(!p(4).is_followed_by(&p(4)));
        assert!(!p(4).is_followed_by(&PageId::new(S, 5)));
    }

    #[test]
    fn run_contains_and_pages() {
        let run = PageRun::new(p(10), 3);
        assert!(run.contains(&p(10)));
        assert!(run.contains(&p(12)));
        assert!(!run.contains(&p(13)));
        assert!(!run.contains(&PageId::new(S, 11)));
        let pages: Vec<_> = run.pages().collect();
        assert_eq!(pages, vec![p(10), p(11), p(12)]);
        assert_eq!(run.page(2), p(12));
    }

    #[test]
    fn run_split() {
        let run = PageRun::new(p(0), 5);
        let (a, b) = run.split_at(2);
        assert_eq!(a, PageRun::new(p(0), 2));
        assert_eq!(b, PageRun::new(p(2), 3));
        let (c, d) = run.split_at(0);
        assert!(c.is_empty());
        assert_eq!(d, run);
    }

    #[test]
    fn request_cost_formula() {
        let d = DiskParams::default();
        assert_eq!(d.request_ms(1, false), 16.0);
        assert_eq!(d.request_ms(20, false), 35.0);
        assert_eq!(d.request_ms(20, true), 26.0);
        assert_eq!(d.request_ms(0, false), 0.0);
    }

    #[test]
    fn paper_threshold_formulas() {
        let d = DiskParams::default();
        // t_compl for a 20-page cluster: 9 + 6 + 20 = 35 ms.
        assert_eq!(d.t_compl(20), 35.0);
        // t_page with 58 entries each occupying ~0.16 pages:
        // 9 + 58*(6 + 0.16*1) = 9 + 357.28
        assert!((d.t_page(58.0, 0.16) - 366.28).abs() < 1e-9);
        let t = d.geometric_threshold(20, 58.0, 0.16);
        assert!((t - 35.0 / 366.28).abs() < 1e-9);
    }

    #[test]
    fn runs_grouping() {
        let pages = vec![p(1), p(2), p(3), p(7), p(9), p(10)];
        let runs = runs_of(&pages);
        assert_eq!(
            runs,
            vec![
                PageRun::new(p(1), 3),
                PageRun::new(p(7), 1),
                PageRun::new(p(9), 2)
            ]
        );
    }

    #[test]
    fn runs_respect_region_boundaries() {
        let pages = vec![p(1), p(2), PageId::new(S, 3), PageId::new(S, 4)];
        let runs = runs_of(&pages);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].len, 2);
        assert_eq!(runs[1].start, PageId::new(S, 3));
    }

    #[test]
    fn runs_empty_input() {
        assert!(runs_of(&[]).is_empty());
    }
}

//! Multi-arm declustered storage: a disk array striping regions across
//! N independent arms.
//!
//! The paper's cost model (§5.1) — and the PR-4 [`DiskArm`] built on it
//! — assume a single arm, so every page request funnels through one
//! queue. The [`DiskArray`] generalizes that to N arms, each with its
//! own request queue, FCFS/elevator ordering and seek state, behind a
//! [`StripePolicy`] that maps region ids to `(arm, local cylinder
//! band)`. Regions stay physically contiguous on exactly one arm (this
//! is *declustering across regions*, not page-level striping — the
//! §5.1 contiguity that makes vector reads and the one-seek-per-cluster
//! rule meaningful is preserved per region), and independent regions on
//! different arms are serviced in parallel.
//!
//! The two-views contract of the single arm carries over unchanged:
//! charged accounting (`IoStats`) is the flat per-request model and is
//! **identical for any arm count** under FCFS — striping shapes the
//! simulated timeline ([`LatencyStats`], [`ArmStats`]), not the charge.
//! A 1-arm array with any stripe policy is byte-identical to the plain
//! [`DiskArm`]: every policy degenerates to the identity mapping
//! `(arm 0, band = region id)` at N = 1.

use std::collections::HashMap;

use crate::arm::{
    ArmGeometry, ArmPolicy, ArmStats, Completion, DiskArm, LatencyStats, PageRequest, QueryTrace,
    RotationModel,
};
use crate::model::{DiskParams, RegionId};

/// How region ids are declustered across the arms of a [`DiskArray`].
///
/// Every policy is a *partition*: each region maps to exactly one arm
/// and one arm-local cylinder band, deterministically (stable across
/// array rebuilds). With a single arm every policy is the identity
/// mapping, which is what keeps N = 1 byte-identical to the plain
/// [`DiskArm`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum StripePolicy {
    /// Region `r` on arm `r mod N`, band `r / N`. Spreads consecutively
    /// created regions — and therefore the tree/objects region pair of
    /// each database — across different arms: maximal spread.
    #[default]
    RoundRobin,
    /// Region `r` on arm `hash(r) mod N` (Fibonacci multiplicative
    /// hash), band `r` (the hashed placement has no compact inverse, so
    /// each arm keeps the global band layout and simply owns a sparse
    /// subset of it). Decorrelates placement from creation order.
    RegionHash,
    /// Co-locate spatially near regions: every storage organization
    /// creates its regions as one consecutive group per database (tree +
    /// objects / overflow / cluster units), all covering the same data
    /// MBR — so region-id adjacency is the locality proxy. Groups of
    /// [`StripePolicy::LOCALITY_GROUP`] consecutive regions land on the
    /// same arm (`(r / G) mod N`) in consecutive bands, trading
    /// intra-query parallelism for shorter seeks between a query's tree
    /// and object requests.
    MbrLocality,
}

impl StripePolicy {
    /// Regions per locality group of [`StripePolicy::MbrLocality`] —
    /// every disk-backed organization creates exactly two regions per
    /// database (tree + objects/overflow/units), in one consecutive
    /// id pair.
    pub const LOCALITY_GROUP: u64 = 2;

    /// The arm owning `region` in an array of `arms` arms.
    pub fn arm_of(&self, region: RegionId, arms: usize) -> usize {
        let n = arms.max(1) as u64;
        let r = u64::from(region.0);
        let arm = match self {
            StripePolicy::RoundRobin => r % n,
            StripePolicy::RegionHash => (r.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % n,
            StripePolicy::MbrLocality => (r / Self::LOCALITY_GROUP) % n,
        };
        arm as usize
    }

    /// The arm-local cylinder band of `region` (dense per arm for the
    /// closed-form policies, global for [`StripePolicy::RegionHash`]).
    pub fn local_band(&self, region: RegionId, arms: usize) -> u64 {
        let n = arms.max(1) as u64;
        let r = u64::from(region.0);
        match self {
            StripePolicy::RoundRobin => r / n,
            StripePolicy::RegionHash => r,
            StripePolicy::MbrLocality => {
                let g = Self::LOCALITY_GROUP;
                (r / (g * n)) * g + r % g
            }
        }
    }
}

/// Shape of a [`DiskArray`]: arm count, stripe policy, per-arm queue
/// ordering and rotational model. The default is a single elevator arm
/// with the flat rotational average — exactly the PR-4 scheduler.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ArrayConfig {
    /// Number of independent arms (0 is treated as 1).
    pub arms: usize,
    /// Region → arm mapping.
    pub stripe: StripePolicy,
    /// Queue ordering of every arm.
    pub policy: ArmPolicy,
    /// Rotational-latency model of every arm's timeline.
    pub rotation: RotationModel,
}

impl Default for ArrayConfig {
    fn default() -> Self {
        ArrayConfig {
            arms: 1,
            stripe: StripePolicy::default(),
            policy: ArmPolicy::default(),
            rotation: RotationModel::default(),
        }
    }
}

/// N independent disk arms with declustered region placement and a
/// global completion order.
///
/// Submission routes each request to the arm owning its region
/// ([`StripePolicy::arm_of`]) at that region's arm-local cylinder band;
/// [`DiskArray::service_next`] pops the globally-earliest completion
/// across arms (deterministic tie-break by arm index). Request ids form
/// one sequence across the array, so the `Disk` front-end and the
/// executor cannot tell how many arms serve them.
#[derive(Clone, Debug)]
pub struct DiskArray {
    geometry: ArmGeometry,
    stripe: StripePolicy,
    arms: Vec<DiskArm>,
    next_id: u64,
}

impl DiskArray {
    /// Create an idle array per `config`, all heads at cylinder 0.
    pub fn new(params: DiskParams, geometry: ArmGeometry, config: ArrayConfig) -> Self {
        let arms = (0..config.arms.max(1))
            .map(|_| {
                let mut arm = DiskArm::new(params, geometry, config.policy);
                arm.set_rotation(config.rotation);
                arm
            })
            .collect();
        DiskArray {
            geometry,
            stripe: config.stripe,
            arms,
            next_id: 0,
        }
    }

    /// Number of arms.
    pub fn num_arms(&self) -> usize {
        self.arms.len()
    }

    /// The stripe policy.
    pub fn stripe(&self) -> StripePolicy {
        self.stripe
    }

    /// The queue-ordering policy (uniform across arms).
    pub fn policy(&self) -> ArmPolicy {
        self.arms[0].policy()
    }

    /// Change the queue ordering of every arm. Affects only requests
    /// not yet serviced.
    pub fn set_policy(&mut self, policy: ArmPolicy) {
        for arm in &mut self.arms {
            arm.set_policy(policy);
        }
    }

    /// The rotational model (uniform across arms).
    pub fn rotation(&self) -> RotationModel {
        self.arms[0].rotation()
    }

    /// Change the rotational model of every arm's timeline.
    pub fn set_rotation(&mut self, rotation: RotationModel) {
        for arm in &mut self.arms {
            arm.set_rotation(rotation);
        }
    }

    /// The cylinder mapping shared by the arms.
    pub fn geometry(&self) -> ArmGeometry {
        self.geometry
    }

    /// The arm owning `region` under this array's stripe policy.
    pub fn arm_of(&self, region: RegionId) -> usize {
        self.stripe.arm_of(region, self.arms.len())
    }

    /// Read access to the arms (index = arm id).
    pub fn arms(&self) -> &[DiskArm] {
        &self.arms
    }

    /// Total outstanding requests across all arms.
    pub fn pending(&self) -> usize {
        self.arms.iter().map(|a| a.pending()).sum()
    }

    /// Per-arm cumulative statistics, indexed by arm.
    pub fn arm_stats(&self) -> Vec<ArmStats> {
        self.arms
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let mut s = a.stats();
                s.arm = i;
                s
            })
            .collect()
    }

    /// Submit a request arriving now (at the owning arm's clock).
    ///
    /// # Panics
    ///
    /// Panics on an empty run — empty runs are free in the synchronous
    /// model and must not be submitted.
    pub fn submit(&mut self, request: PageRequest) -> u64 {
        let arrival = self.arms[self.arm_of(request.run.start.region)].clock_ms();
        self.submit_at(request, arrival)
    }

    /// Submit a request with an explicit arrival time, routed to the
    /// arm owning its region at the region's arm-local cylinder band.
    pub fn submit_at(&mut self, request: PageRequest, arrival_ms: f64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let region = request.run.start.region;
        let arm = self.arm_of(region);
        let band = self.stripe.local_band(region, self.arms.len());
        let cylinder = self.geometry.cylinder_in_band(band, &request.run.start);
        let end_cylinder = self.geometry.end_cylinder_in_band(band, &request.run);
        self.arms[arm].submit_routed(id, request, arrival_ms, cylinder, end_cylinder);
        id
    }

    /// Service the request that finishes earliest across all arms — the
    /// parallel drain. Ties break deterministically by arm index.
    /// Returns `None` when every queue is empty.
    pub fn service_next(&mut self) -> Option<Completion> {
        if self.arms.len() == 1 {
            // Fast path; also keeps the 1-arm array trivially identical
            // to the plain arm.
            return self.arms[0].service_next();
        }
        let mut best: Option<(f64, usize)> = None;
        for (i, arm) in self.arms.iter().enumerate() {
            if let Some(finish) = arm.peek_next_finish() {
                let better = match best {
                    None => true,
                    Some((bf, _)) => finish < bf,
                };
                if better {
                    best = Some((finish, i));
                }
            }
        }
        let (_, i) = best?;
        self.arms[i].service_next()
    }

    /// Service everything outstanding, in global completion order.
    pub fn drain(&mut self) -> Vec<Completion> {
        let mut out = Vec::with_capacity(self.pending());
        while let Some(c) = self.service_next() {
            out.push(c);
        }
        out
    }
}

/// Replay per-query request traces through a [`DiskArray`] under an
/// open-arrival workload, returning one [`LatencyStats`] per query
/// (same order) plus the final per-arm [`ArmStats`].
///
/// The submission-window discipline is the single-arm
/// [`simulate_queries`](crate::arm::simulate_queries): each query keeps
/// at most `depth` requests outstanding, and each completion releases
/// the query's next request — which may land on a different arm, so a
/// query's own requests overlap across arms even at depth 1's
/// one-at-a-time issue order. Deterministic: no wall clock, no
/// randomness.
pub fn simulate_queries_striped(
    params: DiskParams,
    geometry: ArmGeometry,
    config: ArrayConfig,
    depth: usize,
    queries: &[QueryTrace],
) -> (Vec<LatencyStats>, Vec<ArmStats>) {
    let depth = depth.max(1);
    let mut array = DiskArray::new(params, geometry, config);
    let mut stats: Vec<LatencyStats> = queries
        .iter()
        .map(|q| LatencyStats::arriving_at(q.arrival_ms))
        .collect();
    // Per-query submission cursor and id → query ownership.
    let mut next_req: Vec<usize> = vec![0; queries.len()];
    let mut owner: HashMap<u64, usize> = HashMap::new();
    for (qi, q) in queries.iter().enumerate() {
        for _ in 0..depth.min(q.requests.len()) {
            let r = q.requests[next_req[qi]];
            next_req[qi] += 1;
            owner.insert(array.submit_at(r, q.arrival_ms), qi);
        }
    }
    while let Some(c) = array.service_next() {
        let qi = owner.remove(&c.id).expect("completion for unknown request");
        stats[qi].absorb(&c);
        let q = &queries[qi];
        if next_req[qi] < q.requests.len() {
            // The query observes the completion and issues its next
            // request immediately.
            let r = q.requests[next_req[qi]];
            next_req[qi] += 1;
            owner.insert(array.submit_at(r, c.finished_ms), qi);
        }
    }
    (stats, array.arm_stats())
}

/// Replay per-query request traces through a [`DiskArray`] under a
/// **closed-loop** workload of `clients` concurrent clients with a
/// fixed think time, returning one [`LatencyStats`] per query (same
/// order) plus the final per-arm [`ArmStats`].
///
/// Client `c` issues queries `c, c + clients, c + 2·clients, …` in
/// order: the first `clients` queries arrive at time 0, and each
/// query's **completion** (its last request finishing) activates the
/// same client's next query `think_ms` later — the arrival process is
/// driven by the system's own response times, which is what produces
/// the classic response-time-vs-clients curve (arrivals self-throttle
/// under load instead of piling up like [`simulate_queries_striped`]'s
/// open process). The traces' own `arrival_ms` stamps are ignored.
///
/// Within a query the submission window is the usual depth-`depth`
/// discipline. A query with an empty trace completes instantly at its
/// arrival. Deterministic: no wall clock, no randomness.
pub fn simulate_queries_closed(
    params: DiskParams,
    geometry: ArmGeometry,
    config: ArrayConfig,
    depth: usize,
    clients: usize,
    think_ms: f64,
    queries: &[QueryTrace],
) -> (Vec<LatencyStats>, Vec<ArmStats>) {
    let depth = depth.max(1);
    let clients = clients.max(1);
    let mut array = DiskArray::new(params, geometry, config);
    let n = queries.len();
    let mut stats: Vec<LatencyStats> = queries
        .iter()
        .map(|_| LatencyStats::arriving_at(0.0))
        .collect();
    let mut next_req: Vec<usize> = vec![0; n];
    let mut outstanding: Vec<usize> = vec![0; n];
    let mut owner: HashMap<u64, usize> = HashMap::new();
    // Queries whose client just became ready: (query, arrival time).
    let mut activations: std::collections::VecDeque<(usize, f64)> =
        (0..clients.min(n)).map(|q| (q, 0.0)).collect();
    loop {
        while let Some((qi, at)) = activations.pop_front() {
            stats[qi] = LatencyStats::arriving_at(at);
            if queries[qi].requests.is_empty() {
                // Nothing to serve: the query completes at arrival and
                // its client immediately starts thinking.
                if qi + clients < n {
                    activations.push_back((qi + clients, at + think_ms));
                }
                continue;
            }
            for _ in 0..depth.min(queries[qi].requests.len()) {
                let r = queries[qi].requests[next_req[qi]];
                next_req[qi] += 1;
                outstanding[qi] += 1;
                owner.insert(array.submit_at(r, at), qi);
            }
        }
        let Some(c) = array.service_next() else { break };
        let qi = owner.remove(&c.id).expect("completion for unknown request");
        stats[qi].absorb(&c);
        outstanding[qi] -= 1;
        if next_req[qi] < queries[qi].requests.len() {
            let r = queries[qi].requests[next_req[qi]];
            next_req[qi] += 1;
            outstanding[qi] += 1;
            owner.insert(array.submit_at(r, c.finished_ms), qi);
        } else if outstanding[qi] == 0 && qi + clients < n {
            // Query complete: its client thinks, then issues its next.
            activations.push_back((qi + clients, c.finished_ms + think_ms));
        }
    }
    (stats, array.arm_stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arm::PageRequest;
    use crate::model::{PageId, PageRun};

    fn pg(r: u16, o: u64) -> PageId {
        PageId::new(RegionId(r), o)
    }

    fn read1(r: u16, o: u64) -> PageRequest {
        PageRequest::read(PageRun::new(pg(r, o), 1))
    }

    const ALL_POLICIES: [StripePolicy; 3] = [
        StripePolicy::RoundRobin,
        StripePolicy::RegionHash,
        StripePolicy::MbrLocality,
    ];

    #[test]
    fn every_policy_is_identity_at_one_arm() {
        for policy in ALL_POLICIES {
            for r in 0..200u16 {
                assert_eq!(policy.arm_of(RegionId(r), 1), 0);
                assert_eq!(policy.local_band(RegionId(r), 1), u64::from(r));
            }
        }
    }

    #[test]
    fn round_robin_spreads_consecutive_regions() {
        let p = StripePolicy::RoundRobin;
        assert_eq!(p.arm_of(RegionId(0), 4), 0);
        assert_eq!(p.arm_of(RegionId(1), 4), 1);
        assert_eq!(p.arm_of(RegionId(5), 4), 1);
        assert_eq!(p.local_band(RegionId(5), 4), 1);
    }

    #[test]
    fn mbr_locality_keeps_region_pairs_together() {
        let p = StripePolicy::MbrLocality;
        for base in (0..40u16).step_by(2) {
            let a = p.arm_of(RegionId(base), 4);
            let b = p.arm_of(RegionId(base + 1), 4);
            assert_eq!(a, b, "group {base} split across arms");
            // And the pair occupies consecutive local bands.
            assert_eq!(
                p.local_band(RegionId(base + 1), 4),
                p.local_band(RegionId(base), 4) + 1
            );
        }
    }

    #[test]
    fn one_arm_array_matches_plain_arm() {
        // Same submissions through a 1-arm array (each stripe policy)
        // and a bare DiskArm: identical completions, byte for byte.
        let params = DiskParams::default();
        let geometry = ArmGeometry::default();
        for stripe in ALL_POLICIES {
            let mut arm = DiskArm::new(params, geometry, ArmPolicy::Elevator);
            let mut array = DiskArray::new(
                params,
                geometry,
                ArrayConfig {
                    arms: 1,
                    stripe,
                    policy: ArmPolicy::Elevator,
                    rotation: RotationModel::FlatAverage,
                },
            );
            let reqs = [
                read1(0, 0),
                read1(3, 32 * 7),
                read1(1, 32 * 2),
                read1(2, 0),
                read1(0, 32 * 9),
            ];
            for r in reqs {
                arm.submit_at(r, 0.0);
                array.submit_at(r, 0.0);
            }
            let a = arm.drain();
            let b = array.drain();
            assert_eq!(a, b, "1-arm array diverged under {stripe:?}");
        }
    }

    #[test]
    fn parallel_drain_pops_globally_earliest() {
        // Two arms, one request each: completions come back ordered by
        // finish time regardless of submission order.
        let mut array = DiskArray::new(
            DiskParams::default(),
            ArmGeometry::default(),
            ArrayConfig {
                arms: 2,
                stripe: StripePolicy::RoundRobin,
                policy: ArmPolicy::Fcfs,
                rotation: RotationModel::FlatAverage,
            },
        );
        // Region 1 (arm 1): far cylinder → long seek. Region 0 (arm 0):
        // cylinder 0 → no seek, finishes first despite later submission.
        let far = array.submit_at(read1(1, 32 * 900), 0.0);
        let near = array.submit_at(read1(0, 0), 0.0);
        let done = array.drain();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].id, near);
        assert_eq!(done[1].id, far);
        assert!(done[0].finished_ms < done[1].finished_ms);
        // Both arms started at their own clock 0 — true overlap.
        assert_eq!(done[0].started_ms, 0.0);
        assert_eq!(done[1].started_ms, 0.0);
    }

    #[test]
    fn tie_breaks_by_arm_index() {
        // Identical offsets in two different regions on two arms:
        // identical finish times, arm 0's completion pops first.
        let mut array = DiskArray::new(
            DiskParams::default(),
            ArmGeometry::default(),
            ArrayConfig {
                arms: 2,
                stripe: StripePolicy::RoundRobin,
                policy: ArmPolicy::Fcfs,
                rotation: RotationModel::FlatAverage,
            },
        );
        let a1 = array.submit_at(read1(1, 0), 0.0); // arm 1, submitted first
        let a0 = array.submit_at(read1(0, 0), 0.0); // arm 0
        let done = array.drain();
        assert_eq!(done[0].finished_ms, done[1].finished_ms);
        assert_eq!(done[0].id, a0, "tie must break toward arm 0");
        assert_eq!(done[1].id, a1);
    }

    #[test]
    fn arm_stats_account_for_all_services() {
        let mut array = DiskArray::new(
            DiskParams::default(),
            ArmGeometry::default(),
            ArrayConfig {
                arms: 4,
                stripe: StripePolicy::RoundRobin,
                policy: ArmPolicy::Elevator,
                rotation: RotationModel::FlatAverage,
            },
        );
        for r in 0..8u16 {
            for o in 0..5u64 {
                array.submit_at(read1(r, 32 * o), 0.0);
            }
        }
        let done = array.drain();
        let stats = array.arm_stats();
        assert_eq!(stats.len(), 4);
        assert_eq!(
            stats.iter().map(|s| s.serviced).sum::<u64>() as usize,
            done.len()
        );
        for (i, s) in stats.iter().enumerate() {
            assert_eq!(s.arm, i);
            assert_eq!(s.pending, 0);
            // Every arm got 2 regions × 5 requests under round-robin.
            assert_eq!(s.serviced, 10);
            assert!(s.utilization() > 0.0 && s.utilization() <= 1.0);
            assert!(s.mean_queue_depth() > 0.0);
        }
    }

    #[test]
    fn striped_simulation_with_one_arm_matches_single_arm_harness() {
        let traces = vec![
            QueryTrace {
                arrival_ms: 0.0,
                requests: vec![read1(0, 0), read1(1, 32 * 3), read1(0, 32 * 5)],
            },
            QueryTrace {
                arrival_ms: 4.0,
                requests: vec![read1(2, 0), read1(3, 32 * 2)],
            },
        ];
        let single = crate::arm::simulate_queries(
            DiskParams::default(),
            ArmGeometry::default(),
            ArmPolicy::Elevator,
            4,
            &traces,
        );
        for stripe in ALL_POLICIES {
            let (striped, arms) = simulate_queries_striped(
                DiskParams::default(),
                ArmGeometry::default(),
                ArrayConfig {
                    arms: 1,
                    stripe,
                    policy: ArmPolicy::Elevator,
                    rotation: RotationModel::FlatAverage,
                },
                4,
                &traces,
            );
            assert_eq!(single, striped, "1-arm striped sim diverged ({stripe:?})");
            assert_eq!(arms.len(), 1);
            assert_eq!(arms[0].serviced, 5);
        }
    }

    #[test]
    fn closed_loop_with_enough_clients_is_the_open_burst() {
        // With one client per query and zero think time every query
        // arrives at 0 — exactly the open burst, byte for byte.
        let traces: Vec<QueryTrace> = (0..6u16)
            .map(|q| QueryTrace {
                arrival_ms: 0.0,
                requests: vec![read1(q % 4, 32 * u64::from(q) * 3), read1(q % 4, 0)],
            })
            .collect();
        let config = ArrayConfig {
            arms: 2,
            stripe: StripePolicy::RoundRobin,
            policy: ArmPolicy::Elevator,
            rotation: RotationModel::FlatAverage,
        };
        let (open, open_arms) = simulate_queries_striped(
            DiskParams::default(),
            ArmGeometry::default(),
            config,
            3,
            &traces,
        );
        let (closed, closed_arms) = simulate_queries_closed(
            DiskParams::default(),
            ArmGeometry::default(),
            config,
            3,
            traces.len(),
            0.0,
            &traces,
        );
        assert_eq!(open, closed);
        assert_eq!(open_arms, closed_arms);
    }

    #[test]
    fn one_client_serializes_the_stream() {
        // A single client issues query q+1 only after q completes (plus
        // think): arrivals chain off completions, and no query ever
        // queues behind another.
        let traces: Vec<QueryTrace> = (0..5u16)
            .map(|q| QueryTrace {
                arrival_ms: 0.0,
                requests: vec![read1(q % 2, 32 * u64::from(q) * 5)],
            })
            .collect();
        let think = 2.5;
        let (stats, _) = simulate_queries_closed(
            DiskParams::default(),
            ArmGeometry::default(),
            ArrayConfig::default(),
            4,
            1,
            think,
            &traces,
        );
        for w in stats.windows(2) {
            assert_eq!(
                w[1].arrival_ms,
                w[0].completed_ms + think,
                "next arrival must be previous completion plus think time"
            );
            assert_eq!(w[1].queue_ms, 0.0, "a lone client never queues");
        }
    }

    #[test]
    fn fewer_clients_never_worsen_latency() {
        // The same stream under 1, 2, 4 and 8 clients: per-query mean
        // latency is monotonically non-decreasing in the client count
        // (more concurrency = more queueing), while an empty trace
        // still completes instantly and keeps its client's chain alive.
        let mut traces: Vec<QueryTrace> = (0..16u16)
            .map(|q| QueryTrace {
                arrival_ms: 0.0,
                requests: vec![
                    read1(q % 4, 32 * u64::from(q) * 2),
                    read1(q % 4, 32 * u64::from(q % 3) * 7),
                ],
            })
            .collect();
        traces[5].requests.clear(); // a buffer-hit query: no I/O at all
        let mean = |clients: usize| {
            let (stats, _) = simulate_queries_closed(
                DiskParams::default(),
                ArmGeometry::default(),
                ArrayConfig::default(),
                4,
                clients,
                1.0,
                &traces,
            );
            assert_eq!(stats.len(), traces.len());
            assert_eq!(stats[5].requests, 0);
            assert_eq!(stats[5].completed_ms, stats[5].arrival_ms);
            stats.iter().map(|s| s.latency_ms()).sum::<f64>() / stats.len() as f64
        };
        let curve: Vec<f64> = [1, 2, 4, 8].into_iter().map(mean).collect();
        for w in curve.windows(2) {
            assert!(
                w[1] >= w[0],
                "mean latency must not improve with more clients: {curve:?}"
            );
        }
        assert!(
            curve[3] > curve[0],
            "saturation must show between 1 and 8 clients: {curve:?}"
        );
    }

    #[test]
    fn more_arms_never_lengthen_the_fcfs_makespan() {
        // A closed burst over 8 regions: the array's makespan (last
        // completion) shrinks as arms are added, and aggregate
        // throughput rises.
        let mut makespans = Vec::new();
        for arms in [1usize, 2, 4, 8] {
            let mut array = DiskArray::new(
                DiskParams::default(),
                ArmGeometry::default(),
                ArrayConfig {
                    arms,
                    stripe: StripePolicy::RoundRobin,
                    policy: ArmPolicy::Fcfs,
                    rotation: RotationModel::FlatAverage,
                },
            );
            for o in 0..6u64 {
                for r in 0..8u16 {
                    array.submit_at(read1(r, 32 * o * 3), 0.0);
                }
            }
            let done = array.drain();
            let makespan = done
                .iter()
                .map(|c| c.finished_ms)
                .fold(f64::NEG_INFINITY, f64::max);
            makespans.push(makespan);
        }
        for w in makespans.windows(2) {
            assert!(
                w[1] < w[0],
                "makespan must shrink with more arms: {makespans:?}"
            );
        }
    }
}

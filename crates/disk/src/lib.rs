//! # spatialdb-disk
//!
//! Magnetic-disk I/O cost simulator for the reproduction of Brinkhoff &
//! Kriegel, VLDB 1994.
//!
//! The paper evaluates every organization model with an analytical disk
//! cost model (§3.1, §5.1): the access time of a request decomposes into
//! *seek time* `t_s` (9 ms), *latency / rotational delay* `t_l` (6 ms) and
//! *transfer time* `t_t` (1 ms per 4 KB page); physically consecutive pages
//! can be read with a single request that pays the seek and latency once.
//! This crate implements that model together with everything the storage
//! layer needs to talk to it:
//!
//! * [`model`] — pages, page runs, regions, and the [`model::DiskParams`]
//!   cost constants;
//! * [`disk::Disk`] — the shared accounting object every request is
//!   charged against, with per-category [`stats::IoStats`];
//! * [`alloc`] — sequential (append-only) and extent (free-list) page
//!   allocators; pages of different *regions* are never physically
//!   consecutive, modelling separate files on the disk;
//! * [`buddy`] — the buddy system of §5.3.1, including the *restricted*
//!   variant with three buddy sizes used in Figure 7;
//! * [`buffer`] — an LRU page buffer with write-back semantics and the
//!   *vector read* / *normal read* distinction of Figure 15;
//! * [`schedule`] — the SLM read schedules of \[SLM93\] (§5.4.2): one read
//!   request bridges gaps of non-requested pages shorter than
//!   `l = t_l/t_t − 1/2`;
//! * [`arm`] — the overlapped-I/O subsystem: a disk-arm request
//!   scheduler with FCFS / elevator (SCAN) ordering over cylinder-mapped
//!   region offsets, a distance-dependent seek curve calibrated so its
//!   mean equals the paper's average `seek_ms`, and per-query
//!   [`arm::LatencyStats`]. Requests are submitted via
//!   [`disk::Disk::submit`] and charged at service time through the same
//!   `charge` path — depth-1 submission is byte-identical to the
//!   synchronous model;
//! * [`array`] — multi-arm declustered storage: a [`array::DiskArray`]
//!   of N independent arms behind a [`array::StripePolicy`] mapping
//!   each region to one arm's local cylinder band, with a parallel
//!   drain popping the globally-earliest completion across arms and
//!   per-arm [`arm::ArmStats`] (utilization, mean queue depth). A
//!   1-arm array is byte-identical to the single [`arm::DiskArm`]
//!   under every stripe policy.
//!
//! The simulator is deterministic: identical request sequences produce
//! identical I/O counts, which is what makes the reproduced figures
//! meaningful. Since the thread-safety refactor every type here is
//! `Send + Sync` — the disk's counters live behind a mutex (with a
//! thread-local tally for per-query deltas, see
//! [`disk::Disk::local_stats`]), and the buffer shared between threads
//! is the [`shard::ShardedPool`] (the storage layer's `SharedPool`):
//! N page-hash shards, each its own lock and LRU list, under one
//! capacity budget. With one shard it is byte-identical to the
//! single-lock [`buffer::BufferPool`], which remains the reference
//! implementation (and the private scratch pool of the parallel join).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(test)]
pub(crate) mod test_util {
    /// Tiny deterministic xorshift for the randomized mirror tests (no
    /// external rand dependency) — one definition shared by the disk
    /// and shard test modules.
    pub(crate) struct Rng(pub u64);

    impl Rng {
        pub(crate) fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        pub(crate) fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }
}

pub mod alloc;
pub mod arm;
pub mod array;
pub mod buddy;
pub mod buffer;
pub mod disk;
pub mod lockdep;
pub mod model;
pub mod schedule;
pub mod shard;
pub mod stats;

pub use alloc::{ExtentAllocator, SequentialAllocator};
pub use arm::{
    simulate_queries, ArmGeometry, ArmPolicy, ArmStats, Completion, DiskArm, LatencyStats,
    PageRequest, QueryTrace, RotationModel, SeekCurve,
};
pub use array::{
    simulate_queries_closed, simulate_queries_striped, ArrayConfig, DiskArray, StripePolicy,
};
pub use buddy::{BuddyAllocator, BuddyConfig};
pub use buffer::{BufferPool, LruBuffer, ReadMode, SeekPolicy};
pub use disk::{Disk, DiskHandle, ScratchTally};
pub use lockdep::{wait_graph, DepGuard, DepMutex, LockClass};
pub use model::{DiskParams, PageId, PageRun, RegionId, PAGE_SIZE};
pub use schedule::{slm_gap_limit, slm_schedule, ScheduledRun};
pub use shard::{Routing, ShardedPool};
pub use stats::{IoKind, IoStats};

//! The shared disk accounting object.

use crate::model::{DiskParams, PageRun, RegionId};
use crate::stats::{IoKind, IoStats};
use std::cell::Cell;
use std::sync::{Arc, Mutex};

/// A shared handle to a [`Disk`].
///
/// All components of one experiment (organization models, buffers,
/// allocators, the join) share a single disk so that the reported I/O time
/// is the total the paper reports. `Arc` because the storage stack is
/// `Send + Sync`: queries may run on several threads, all charging the
/// same disk.
pub type DiskHandle = Arc<Disk>;

thread_local! {
    /// Per-thread I/O tally: every charge on *this* thread is mirrored
    /// here, whichever disk it hits. A query snapshots the tally before
    /// and after its I/O and reports the difference — a delta that stays
    /// correct when other threads charge the same disk concurrently
    /// (a global-counter delta would attribute their requests to us).
    static THREAD_TALLY: Cell<IoStats> = Cell::new(IoStats::new());
}

/// The simulated disk: cost parameters plus accumulated statistics.
///
/// The disk does not store page *contents* — all experiments are driven by
/// I/O cost, and the storage layer keeps its own in-memory state. What the
/// disk provides is (a) region id allocation and (b) request cost
/// accounting via [`Disk::charge`].
///
/// The cumulative counters live behind a [`Mutex`], so a `Disk` can be
/// charged from any thread. Per-query deltas should be taken against
/// [`Disk::local_stats`] (the calling thread's tally), not against the
/// global [`Disk::stats`].
#[derive(Debug)]
pub struct Disk {
    params: DiskParams,
    state: Mutex<DiskState>,
}

#[derive(Debug, Default)]
struct DiskState {
    stats: IoStats,
    next_region: u16,
    region_names: Vec<String>,
}

impl Disk {
    /// Create a disk with the given parameters.
    pub fn new(params: DiskParams) -> DiskHandle {
        Arc::new(Disk {
            params,
            state: Mutex::new(DiskState::default()),
        })
    }

    /// Create a disk with the paper's default parameters
    /// (`t_s` = 9 ms, `t_l` = 6 ms, `t_t` = 1 ms / 4 KB page).
    pub fn with_defaults() -> DiskHandle {
        Self::new(DiskParams::default())
    }

    /// The cost parameters.
    #[inline]
    pub fn params(&self) -> DiskParams {
        self.params
    }

    /// Allocate a fresh region (an independent file / storage area).
    pub fn create_region(&self, name: &str) -> RegionId {
        let mut st = self.state.lock().expect("disk state poisoned");
        let id = RegionId(st.next_region);
        st.next_region = st
            .next_region
            .checked_add(1)
            .expect("region id space exhausted");
        st.region_names.push(name.to_string());
        id
    }

    /// Name a region was created with (for diagnostics).
    pub fn region_name(&self, region: RegionId) -> String {
        self.state.lock().expect("disk state poisoned").region_names[region.0 as usize].clone()
    }

    fn record(&self, kind: IoKind, pages: u64, cost_ms: f64, seeked: bool) {
        self.state
            .lock()
            .expect("disk state poisoned")
            .stats
            .record(kind, pages, cost_ms, seeked);
        THREAD_TALLY.with(|t| {
            let mut local = t.get();
            local.record(kind, pages, cost_ms, seeked);
            t.set(local);
        });
    }

    /// Charge one request transferring the `run`, paying seek + latency +
    /// per-page transfer; `skip_seek` drops the seek component (subsequent
    /// requests within one cluster unit, §5.4.3). Returns the cost in
    /// milliseconds. Empty runs are free and not recorded.
    pub fn charge(&self, kind: IoKind, run: PageRun, skip_seek: bool) -> f64 {
        if run.is_empty() {
            return 0.0;
        }
        let cost = self.params.request_ms(run.len, skip_seek);
        self.record(kind, run.len, cost, !skip_seek);
        cost
    }

    /// Charge an already-computed cost for a request of `pages` pages.
    ///
    /// Used by the *optimum* baselines of Figures 10 and 16, which charge
    /// exactly one seek and one latency per cluster unit plus the minimum
    /// number of transfers — a cost that does not correspond to a real
    /// run of consecutive pages.
    pub fn charge_raw(&self, kind: IoKind, pages: u64, cost_ms: f64, seeked: bool) {
        self.record(kind, pages, cost_ms, seeked);
    }

    /// Merge an externally accumulated statistics block into this disk
    /// (and into the calling thread's tally).
    ///
    /// The parallel MBR join accounts each partition on a private scratch
    /// disk and then absorbs the deterministic sum into the real disk, so
    /// cumulative workspace accounting still covers the join.
    pub fn absorb(&self, stats: &IoStats) {
        {
            let mut st = self.state.lock().expect("disk state poisoned");
            st.stats = st.stats.plus(stats);
        }
        THREAD_TALLY.with(|t| t.set(t.get().plus(stats)));
    }

    /// Snapshot of the accumulated statistics (all threads).
    pub fn stats(&self) -> IoStats {
        self.state.lock().expect("disk state poisoned").stats
    }

    /// Snapshot of the calling thread's I/O tally.
    ///
    /// The tally is monotone and thread-local: take it before and after a
    /// query and subtract ([`IoStats::since`]) to get the cost of exactly
    /// that query, immune to concurrent charges from other threads.
    pub fn local_stats(&self) -> IoStats {
        THREAD_TALLY.with(|t| t.get())
    }

    /// Reset the statistics to zero (region allocations are kept).
    ///
    /// Only the global counters are reset; thread tallies are monotone
    /// (deltas against them are unaffected by resets).
    pub fn reset_stats(&self) {
        self.state.lock().expect("disk state poisoned").stats = IoStats::new();
    }
}

/// Panic-safety guard for worker threads that account I/O on a private
/// *scratch* disk and hand the stats back for deterministic merging
/// (the parallel MBR join's partitions).
///
/// On the normal path the worker calls [`finish`](ScratchTally::finish)
/// and the caller absorbs the merged per-partition stats once, in
/// partition order — byte-identical accounting to the pre-guard code.
/// If the worker **unwinds** before finishing, the guard's `Drop`
/// absorbs the scratch disk's outstanding tally into the real disk, so
/// a panicking worker cannot leak its charges out of the workspace's
/// cumulative counters.
#[derive(Debug)]
pub struct ScratchTally {
    real: DiskHandle,
    scratch: DiskHandle,
    armed: bool,
}

impl ScratchTally {
    /// Create a scratch disk with `real`'s parameters, guarded so its
    /// charges reach `real` even on unwind.
    pub fn new(real: DiskHandle) -> Self {
        let scratch = Disk::new(real.params());
        ScratchTally {
            real,
            scratch,
            armed: true,
        }
    }

    /// The guarded scratch disk to charge against.
    pub fn scratch(&self) -> &DiskHandle {
        &self.scratch
    }

    /// Disarm the guard and return the scratch stats for deterministic
    /// merging by the caller (who is then responsible for absorbing
    /// them into the real disk).
    pub fn finish(mut self) -> IoStats {
        self.armed = false;
        self.scratch.stats()
    }
}

impl Drop for ScratchTally {
    fn drop(&mut self) {
        if self.armed {
            // Unwinding (or the caller dropped the guard without
            // finishing): don't lose the partial charges.
            self.real.absorb(&self.scratch.stats());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PageId;

    #[test]
    fn charge_records_cost() {
        let disk = Disk::with_defaults();
        let r = disk.create_region("tree");
        let run = PageRun::new(PageId::new(r, 0), 20);
        let c = disk.charge(IoKind::Read, run, false);
        assert_eq!(c, 35.0);
        let s = disk.stats();
        assert_eq!(s.read_requests, 1);
        assert_eq!(s.pages_read, 20);
        assert_eq!(s.io_ms, 35.0);
    }

    #[test]
    fn skip_seek_drops_seek_component() {
        let disk = Disk::with_defaults();
        let r = disk.create_region("cluster");
        let run = PageRun::new(PageId::new(r, 5), 4);
        let c = disk.charge(IoKind::Read, run, true);
        assert_eq!(c, 10.0); // 6 + 4*1
        assert_eq!(disk.stats().seeks, 0);
        assert_eq!(disk.stats().latencies, 1);
    }

    #[test]
    fn empty_run_free() {
        let disk = Disk::with_defaults();
        let r = disk.create_region("x");
        let c = disk.charge(IoKind::Write, PageRun::empty(PageId::new(r, 0)), false);
        assert_eq!(c, 0.0);
        assert_eq!(disk.stats().requests(), 0);
    }

    #[test]
    fn regions_are_distinct_and_named() {
        let disk = Disk::with_defaults();
        let a = disk.create_region("tree");
        let b = disk.create_region("objects");
        assert_ne!(a, b);
        assert_eq!(disk.region_name(a), "tree");
        assert_eq!(disk.region_name(b), "objects");
    }

    #[test]
    fn reset_clears_stats() {
        let disk = Disk::with_defaults();
        let r = disk.create_region("x");
        disk.charge(IoKind::Read, PageRun::new(PageId::new(r, 0), 1), false);
        disk.reset_stats();
        assert_eq!(disk.stats(), IoStats::new());
    }

    #[test]
    fn charge_raw_for_optimum_baselines() {
        let disk = Disk::with_defaults();
        disk.charge_raw(IoKind::Read, 7, 9.0 + 6.0 + 7.0, true);
        let s = disk.stats();
        assert_eq!(s.pages_read, 7);
        assert_eq!(s.io_ms, 22.0);
    }

    #[test]
    fn local_tally_isolated_per_thread() {
        let disk = Disk::with_defaults();
        let r = disk.create_region("x");
        let before = disk.local_stats();
        disk.charge(IoKind::Read, PageRun::new(PageId::new(r, 0), 2), false);
        // A charge from another thread grows the global counters but not
        // this thread's tally.
        let d2 = disk.clone();
        std::thread::spawn(move || {
            d2.charge(IoKind::Read, PageRun::new(PageId::new(r, 10), 5), false);
        })
        .join()
        .unwrap();
        let local = disk.local_stats().since(&before);
        assert_eq!(local.pages_read, 2);
        assert_eq!(disk.stats().pages_read, 7);
    }

    #[test]
    fn absorb_merges_scratch_stats() {
        let disk = Disk::with_defaults();
        let mut scratch = IoStats::new();
        scratch.record(IoKind::Read, 3, 18.0, true);
        let before = disk.local_stats();
        disk.absorb(&scratch);
        assert_eq!(disk.stats().pages_read, 3);
        assert_eq!(disk.local_stats().since(&before).io_ms, 18.0);
    }

    #[test]
    fn scratch_tally_absorbs_on_unwind() {
        let real = Disk::with_defaults();
        let r = real.create_region("x");
        // A worker that panics mid-partition: its scratch charges must
        // land in the real disk's cumulative counters anyway.
        let handle = real.clone();
        let worker = std::thread::spawn(move || {
            let guard = ScratchTally::new(handle);
            guard
                .scratch()
                .charge(IoKind::Read, PageRun::new(PageId::new(r, 0), 4), false);
            panic!("worker dies mid-partition");
        });
        assert!(worker.join().is_err());
        let s = real.stats();
        assert_eq!(s.pages_read, 4);
        assert_eq!(s.read_requests, 1);
    }

    #[test]
    fn scratch_tally_finish_leaves_absorption_to_caller() {
        let real = Disk::with_defaults();
        let r = real.create_region("x");
        let guard = ScratchTally::new(real.clone());
        guard
            .scratch()
            .charge(IoKind::Write, PageRun::new(PageId::new(r, 0), 2), false);
        let stats = guard.finish();
        // Disarmed: nothing reached the real disk yet.
        assert_eq!(real.stats().requests(), 0);
        real.absorb(&stats);
        assert_eq!(real.stats().pages_written, 2);
    }

    #[test]
    fn disk_handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DiskHandle>();
        assert_send_sync::<Disk>();
    }
}

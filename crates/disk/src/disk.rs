//! The shared disk accounting object.

use crate::model::{DiskParams, PageRun, RegionId};
use crate::stats::{IoKind, IoStats};
use std::cell::RefCell;
use std::rc::Rc;

/// A shared handle to a [`Disk`].
///
/// All components of one experiment (organization models, buffers,
/// allocators, the join) share a single disk so that the reported I/O time
/// is the total the paper reports. `Rc` because the simulator is
/// deliberately single-threaded (determinism — see the crate docs).
pub type DiskHandle = Rc<Disk>;

/// The simulated disk: cost parameters plus accumulated statistics.
///
/// The disk does not store page *contents* — all experiments are driven by
/// I/O cost, and the storage layer keeps its own in-memory state. What the
/// disk provides is (a) region id allocation and (b) request cost
/// accounting via [`Disk::charge`].
#[derive(Debug)]
pub struct Disk {
    params: DiskParams,
    state: RefCell<DiskState>,
}

#[derive(Debug, Default)]
struct DiskState {
    stats: IoStats,
    next_region: u16,
    region_names: Vec<String>,
}

impl Disk {
    /// Create a disk with the given parameters.
    pub fn new(params: DiskParams) -> DiskHandle {
        Rc::new(Disk {
            params,
            state: RefCell::new(DiskState::default()),
        })
    }

    /// Create a disk with the paper's default parameters
    /// (`t_s` = 9 ms, `t_l` = 6 ms, `t_t` = 1 ms / 4 KB page).
    pub fn with_defaults() -> DiskHandle {
        Self::new(DiskParams::default())
    }

    /// The cost parameters.
    #[inline]
    pub fn params(&self) -> DiskParams {
        self.params
    }

    /// Allocate a fresh region (an independent file / storage area).
    pub fn create_region(&self, name: &str) -> RegionId {
        let mut st = self.state.borrow_mut();
        let id = RegionId(st.next_region);
        st.next_region = st
            .next_region
            .checked_add(1)
            .expect("region id space exhausted");
        st.region_names.push(name.to_string());
        id
    }

    /// Name a region was created with (for diagnostics).
    pub fn region_name(&self, region: RegionId) -> String {
        self.state.borrow().region_names[region.0 as usize].clone()
    }

    /// Charge one request transferring the `run`, paying seek + latency +
    /// per-page transfer; `skip_seek` drops the seek component (subsequent
    /// requests within one cluster unit, §5.4.3). Returns the cost in
    /// milliseconds. Empty runs are free and not recorded.
    pub fn charge(&self, kind: IoKind, run: PageRun, skip_seek: bool) -> f64 {
        if run.is_empty() {
            return 0.0;
        }
        let cost = self.params.request_ms(run.len, skip_seek);
        self.state
            .borrow_mut()
            .stats
            .record(kind, run.len, cost, !skip_seek);
        cost
    }

    /// Charge an already-computed cost for a request of `pages` pages.
    ///
    /// Used by the *optimum* baselines of Figures 10 and 16, which charge
    /// exactly one seek and one latency per cluster unit plus the minimum
    /// number of transfers — a cost that does not correspond to a real
    /// run of consecutive pages.
    pub fn charge_raw(&self, kind: IoKind, pages: u64, cost_ms: f64, seeked: bool) {
        self.state
            .borrow_mut()
            .stats
            .record(kind, pages, cost_ms, seeked);
    }

    /// Snapshot of the accumulated statistics.
    pub fn stats(&self) -> IoStats {
        self.state.borrow().stats
    }

    /// Reset the statistics to zero (region allocations are kept).
    pub fn reset_stats(&self) {
        self.state.borrow_mut().stats = IoStats::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PageId;

    #[test]
    fn charge_records_cost() {
        let disk = Disk::with_defaults();
        let r = disk.create_region("tree");
        let run = PageRun::new(PageId::new(r, 0), 20);
        let c = disk.charge(IoKind::Read, run, false);
        assert_eq!(c, 35.0);
        let s = disk.stats();
        assert_eq!(s.read_requests, 1);
        assert_eq!(s.pages_read, 20);
        assert_eq!(s.io_ms, 35.0);
    }

    #[test]
    fn skip_seek_drops_seek_component() {
        let disk = Disk::with_defaults();
        let r = disk.create_region("cluster");
        let run = PageRun::new(PageId::new(r, 5), 4);
        let c = disk.charge(IoKind::Read, run, true);
        assert_eq!(c, 10.0); // 6 + 4*1
        assert_eq!(disk.stats().seeks, 0);
        assert_eq!(disk.stats().latencies, 1);
    }

    #[test]
    fn empty_run_free() {
        let disk = Disk::with_defaults();
        let r = disk.create_region("x");
        let c = disk.charge(IoKind::Write, PageRun::empty(PageId::new(r, 0)), false);
        assert_eq!(c, 0.0);
        assert_eq!(disk.stats().requests(), 0);
    }

    #[test]
    fn regions_are_distinct_and_named() {
        let disk = Disk::with_defaults();
        let a = disk.create_region("tree");
        let b = disk.create_region("objects");
        assert_ne!(a, b);
        assert_eq!(disk.region_name(a), "tree");
        assert_eq!(disk.region_name(b), "objects");
    }

    #[test]
    fn reset_clears_stats() {
        let disk = Disk::with_defaults();
        let r = disk.create_region("x");
        disk.charge(IoKind::Read, PageRun::new(PageId::new(r, 0), 1), false);
        disk.reset_stats();
        assert_eq!(disk.stats(), IoStats::new());
    }

    #[test]
    fn charge_raw_for_optimum_baselines() {
        let disk = Disk::with_defaults();
        disk.charge_raw(IoKind::Read, 7, 9.0 + 6.0 + 7.0, true);
        let s = disk.stats();
        assert_eq!(s.pages_read, 7);
        assert_eq!(s.io_ms, 22.0);
    }
}

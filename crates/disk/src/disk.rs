//! The shared disk accounting object.

use crate::arm::{ArmGeometry, ArmPolicy, ArmStats, Completion, PageRequest, RotationModel};
use crate::array::{ArrayConfig, DiskArray, StripePolicy};
use crate::lockdep::{DepMutex, LockClass};
use crate::model::{DiskParams, PageRun, RegionId};
use crate::stats::{IoKind, IoStats};
use std::cell::{Cell, RefCell};
use std::sync::Arc;

/// A shared handle to a [`Disk`].
///
/// All components of one experiment (organization models, buffers,
/// allocators, the join) share a single disk so that the reported I/O time
/// is the total the paper reports. `Arc` because the storage stack is
/// `Send + Sync`: queries may run on several threads, all charging the
/// same disk.
pub type DiskHandle = Arc<Disk>;

thread_local! {
    /// Per-thread I/O tally: every charge on *this* thread is mirrored
    /// here, whichever disk it hits. A query snapshots the tally before
    /// and after its I/O and reports the difference — a delta that stays
    /// correct when other threads charge the same disk concurrently
    /// (a global-counter delta would attribute their requests to us).
    static THREAD_TALLY: Cell<IoStats> = Cell::new(IoStats::new());

    /// Per-thread request trace: while armed (between [`Disk::trace_begin`]
    /// and [`Disk::trace_take`]), every `charge` on this thread is also
    /// recorded as a [`PageRequest`]. Like the tally, the trace is
    /// thread-local — it captures exactly the requests the current
    /// thread issues, which is what turns any synchronous filter step
    /// into a replayable trace for the arm scheduler.
    static THREAD_TRACE: RefCell<Option<Vec<PageRequest>>> = const { RefCell::new(None) };
}

/// The simulated disk: cost parameters plus accumulated statistics.
///
/// The disk does not store page *contents* — all experiments are driven by
/// I/O cost, and the storage layer keeps its own in-memory state. What the
/// disk provides is (a) region id allocation and (b) request cost
/// accounting via [`Disk::charge`].
///
/// The cumulative counters live behind a mutex, so a `Disk` can be
/// charged from any thread. Per-query deltas should be taken against
/// [`Disk::local_stats`] (the calling thread's tally), not against the
/// global [`Disk::stats`].
///
/// Lock order: the array mutex ([`LockClass::ArmQueue`]) is only ever
/// taken *before* the state mutex ([`LockClass::DiskCounters`]) —
/// completions charge the disk while the array is locked — never the
/// reverse. The order is machine-checked in debug builds by the
/// [`lockdep`](crate::lockdep) classes on both mutexes.
#[derive(Debug)]
pub struct Disk {
    params: DiskParams,
    state: DepMutex<DiskState>,
    array: DepMutex<DiskArray>,
}

#[derive(Debug, Default)]
struct DiskState {
    stats: IoStats,
    next_region: u16,
    region_names: Vec<String>,
}

impl Disk {
    /// Create a disk with the given parameters.
    pub fn new(params: DiskParams) -> DiskHandle {
        Arc::new(Disk {
            params,
            state: DepMutex::new(LockClass::DiskCounters, DiskState::default()),
            // A 1-arm array is byte-identical to the single DiskArm.
            array: DepMutex::new(
                LockClass::ArmQueue,
                DiskArray::new(params, ArmGeometry::default(), ArrayConfig::default()),
            ),
        })
    }

    /// Create a disk with the paper's default parameters
    /// (`t_s` = 9 ms, `t_l` = 6 ms, `t_t` = 1 ms / 4 KB page).
    pub fn with_defaults() -> DiskHandle {
        Self::new(DiskParams::default())
    }

    /// The cost parameters.
    #[inline]
    pub fn params(&self) -> DiskParams {
        self.params
    }

    /// Allocate a fresh region (an independent file / storage area).
    pub fn create_region(&self, name: &str) -> RegionId {
        let mut st = self.state.acquire();
        let id = RegionId(st.next_region);
        st.next_region = st
            .next_region
            .checked_add(1)
            .expect("region id space exhausted");
        st.region_names.push(name.to_string());
        id
    }

    /// Name a region was created with (for diagnostics).
    pub fn region_name(&self, region: RegionId) -> String {
        self.state.acquire().region_names[region.0 as usize].clone()
    }

    fn record(&self, kind: IoKind, pages: u64, cost_ms: f64, seeked: bool) {
        self.state
            .acquire()
            .stats
            .record(kind, pages, cost_ms, seeked);
        THREAD_TALLY.with(|t| {
            let mut local = t.get();
            local.record(kind, pages, cost_ms, seeked);
            t.set(local);
        });
    }

    /// Charge one request transferring the `run`, paying seek + latency +
    /// per-page transfer; `skip_seek` drops the seek component (subsequent
    /// requests within one cluster unit, §5.4.3). Returns the cost in
    /// milliseconds. Empty runs are free and not recorded.
    pub fn charge(&self, kind: IoKind, run: PageRun, skip_seek: bool) -> f64 {
        if run.is_empty() {
            return 0.0;
        }
        let cost = self.params.request_ms(run.len, skip_seek);
        self.record(kind, run.len, cost, !skip_seek);
        THREAD_TRACE.with(|t| {
            if let Some(trace) = t.borrow_mut().as_mut() {
                trace.push(PageRequest {
                    kind,
                    run,
                    skip_seek,
                });
            }
        });
        cost
    }

    /// Start capturing this thread's requests: until
    /// [`trace_take`](Disk::trace_take), every non-empty [`charge`](Disk::charge)
    /// on the calling thread is also recorded as a [`PageRequest`]
    /// (whichever disk it hits, like the thread tally). Any trace already
    /// being captured on this thread is discarded.
    ///
    /// [`charge_raw`](Disk::charge_raw) is *not* traced: the optimum
    /// baselines it serves charge analytical lower-bound costs that do
    /// not correspond to physical page runs, so they cannot be scheduled
    /// on an arm.
    pub fn trace_begin(&self) {
        THREAD_TRACE.with(|t| *t.borrow_mut() = Some(Vec::new()));
    }

    /// Stop capturing and return the requests charged on this thread
    /// since [`trace_begin`](Disk::trace_begin) (empty if tracing was
    /// never started).
    pub fn trace_take(&self) -> Vec<PageRequest> {
        THREAD_TRACE.with(|t| t.borrow_mut().take().unwrap_or_default())
    }

    /// Set the arm scheduling policy for [`submit`](Disk::submit) /
    /// [`complete_next`](Disk::complete_next) (uniform across the
    /// array's arms). Affects only requests not yet serviced.
    pub fn set_arm_policy(&self, policy: ArmPolicy) {
        self.array.acquire().set_policy(policy);
    }

    /// Set the rotational-latency model of every arm's timeline. The
    /// charged accounting always stays on the flat §5.1 average.
    pub fn set_rotation_model(&self, rotation: RotationModel) {
        self.array.acquire().set_rotation(rotation);
    }

    /// Rebuild the disk's array with `arms` arms under `stripe`,
    /// keeping the current queue-ordering policy and rotational model.
    /// Timelines restart from idle (all heads at cylinder 0, clocks 0);
    /// the charged accounting ([`stats`](Disk::stats)) is untouched.
    ///
    /// # Panics
    ///
    /// Panics if requests are still outstanding — reconfiguring with a
    /// non-empty queue would drop their completions.
    pub fn configure_arms(&self, arms: usize, stripe: StripePolicy) {
        let mut array = self.array.acquire();
        assert_eq!(
            array.pending(),
            0,
            "cannot reconfigure the array with requests outstanding"
        );
        let config = ArrayConfig {
            arms,
            stripe,
            policy: array.policy(),
            rotation: array.rotation(),
        };
        *array = DiskArray::new(self.params, array.geometry(), config);
    }

    /// Number of arms in the disk's array.
    pub fn num_arms(&self) -> usize {
        self.array.acquire().num_arms()
    }

    /// The array's stripe policy.
    pub fn stripe_policy(&self) -> StripePolicy {
        self.array.acquire().stripe()
    }

    /// Per-arm cumulative statistics (utilization, queue depth),
    /// indexed by arm.
    pub fn arm_stats(&self) -> Vec<ArmStats> {
        self.array.acquire().arm_stats()
    }

    /// Submit a request to the owning arm's queue without charging it
    /// yet; the charge happens when the arm services it
    /// ([`complete_next`](Disk::complete_next)). Returns the request id,
    /// or `None` for an empty run (free and not recorded, exactly like
    /// the synchronous path).
    pub fn submit(&self, request: PageRequest) -> Option<u64> {
        if request.run.is_empty() {
            return None;
        }
        Some(self.array.acquire().submit(request))
    }

    /// Service the globally-earliest outstanding completion across the
    /// array's arms (deterministic tie-break by arm index), charging it
    /// through the same code path as the synchronous
    /// [`charge`](Disk::charge) — with the completion's effective seek
    /// flag, so depth-1 submission (one request outstanding at a time)
    /// is **byte-identical** to calling `charge` directly, and
    /// elevator-merged same-cylinder requests are not double-charged
    /// (§5.4.3 across queued requests).
    pub fn complete_next(&self) -> Option<Completion> {
        let mut array = self.array.acquire();
        let completion = array.service_next()?;
        // Charged while the array is locked so the accounting order
        // equals the timeline order (lock order array → state, see the
        // type docs).
        self.charge(
            completion.request.kind,
            completion.request.run,
            completion.effective_skip_seek,
        );
        Some(completion)
    }

    /// Service everything outstanding on the array, charging each
    /// request in global completion order.
    pub fn drain_arm(&self) -> Vec<Completion> {
        let mut out = Vec::new();
        while let Some(c) = self.complete_next() {
            out.push(c);
        }
        out
    }

    /// Number of submitted requests the array has not yet serviced.
    pub fn arm_pending(&self) -> usize {
        self.array.acquire().pending()
    }

    /// Charge an already-computed cost for a request of `pages` pages.
    ///
    /// Used by the *optimum* baselines of Figures 10 and 16, which charge
    /// exactly one seek and one latency per cluster unit plus the minimum
    /// number of transfers — a cost that does not correspond to a real
    /// run of consecutive pages.
    pub fn charge_raw(&self, kind: IoKind, pages: u64, cost_ms: f64, seeked: bool) {
        self.record(kind, pages, cost_ms, seeked);
    }

    /// Merge an externally accumulated statistics block into this disk
    /// (and into the calling thread's tally).
    ///
    /// The parallel MBR join accounts each partition on a private scratch
    /// disk and then absorbs the deterministic sum into the real disk, so
    /// cumulative workspace accounting still covers the join.
    pub fn absorb(&self, stats: &IoStats) {
        {
            let mut st = self.state.acquire();
            st.stats = st.stats.plus(stats);
        }
        THREAD_TALLY.with(|t| t.set(t.get().plus(stats)));
    }

    /// Snapshot of the accumulated statistics (all threads).
    pub fn stats(&self) -> IoStats {
        self.state.acquire().stats
    }

    /// Snapshot of the calling thread's I/O tally.
    ///
    /// The tally is monotone and thread-local: take it before and after a
    /// query and subtract ([`IoStats::since`]) to get the cost of exactly
    /// that query, immune to concurrent charges from other threads.
    pub fn local_stats(&self) -> IoStats {
        THREAD_TALLY.with(|t| t.get())
    }

    /// Reset the statistics to zero (region allocations are kept).
    ///
    /// Only the global counters are reset; thread tallies are monotone
    /// (deltas against them are unaffected by resets).
    pub fn reset_stats(&self) {
        self.state.acquire().stats = IoStats::new();
    }
}

/// Panic-safety guard for worker threads that account I/O on a private
/// *scratch* disk and hand the stats back for deterministic merging
/// (the parallel MBR join's partitions).
///
/// On the normal path the worker calls [`finish`](ScratchTally::finish)
/// and the caller absorbs the merged per-partition stats once, in
/// partition order — byte-identical accounting to the pre-guard code.
/// If the worker **unwinds** before finishing, the guard's `Drop`
/// absorbs the scratch disk's outstanding tally into the real disk, so
/// a panicking worker cannot leak its charges out of the workspace's
/// cumulative counters.
#[derive(Debug)]
pub struct ScratchTally {
    real: DiskHandle,
    scratch: DiskHandle,
    armed: bool,
}

impl ScratchTally {
    /// Create a scratch disk with `real`'s parameters, guarded so its
    /// charges reach `real` even on unwind.
    pub fn new(real: DiskHandle) -> Self {
        let scratch = Disk::new(real.params());
        ScratchTally {
            real,
            scratch,
            armed: true,
        }
    }

    /// The guarded scratch disk to charge against.
    pub fn scratch(&self) -> &DiskHandle {
        &self.scratch
    }

    /// Disarm the guard and return the scratch stats for deterministic
    /// merging by the caller (who is then responsible for absorbing
    /// them into the real disk).
    pub fn finish(mut self) -> IoStats {
        self.armed = false;
        self.scratch.stats()
    }
}

impl Drop for ScratchTally {
    fn drop(&mut self) {
        if self.armed {
            // Unwinding (or the caller dropped the guard without
            // finishing): don't lose the partial charges.
            self.real.absorb(&self.scratch.stats());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PageId;

    #[test]
    fn charge_records_cost() {
        let disk = Disk::with_defaults();
        let r = disk.create_region("tree");
        let run = PageRun::new(PageId::new(r, 0), 20);
        let c = disk.charge(IoKind::Read, run, false);
        assert_eq!(c, 35.0);
        let s = disk.stats();
        assert_eq!(s.read_requests, 1);
        assert_eq!(s.pages_read, 20);
        assert_eq!(s.io_ms, 35.0);
    }

    #[test]
    fn skip_seek_drops_seek_component() {
        let disk = Disk::with_defaults();
        let r = disk.create_region("cluster");
        let run = PageRun::new(PageId::new(r, 5), 4);
        let c = disk.charge(IoKind::Read, run, true);
        assert_eq!(c, 10.0); // 6 + 4*1
        assert_eq!(disk.stats().seeks, 0);
        assert_eq!(disk.stats().latencies, 1);
    }

    #[test]
    fn empty_run_free() {
        let disk = Disk::with_defaults();
        let r = disk.create_region("x");
        let c = disk.charge(IoKind::Write, PageRun::empty(PageId::new(r, 0)), false);
        assert_eq!(c, 0.0);
        assert_eq!(disk.stats().requests(), 0);
    }

    #[test]
    fn regions_are_distinct_and_named() {
        let disk = Disk::with_defaults();
        let a = disk.create_region("tree");
        let b = disk.create_region("objects");
        assert_ne!(a, b);
        assert_eq!(disk.region_name(a), "tree");
        assert_eq!(disk.region_name(b), "objects");
    }

    #[test]
    fn reset_clears_stats() {
        let disk = Disk::with_defaults();
        let r = disk.create_region("x");
        disk.charge(IoKind::Read, PageRun::new(PageId::new(r, 0), 1), false);
        disk.reset_stats();
        assert_eq!(disk.stats(), IoStats::new());
    }

    #[test]
    fn charge_raw_for_optimum_baselines() {
        let disk = Disk::with_defaults();
        disk.charge_raw(IoKind::Read, 7, 9.0 + 6.0 + 7.0, true);
        let s = disk.stats();
        assert_eq!(s.pages_read, 7);
        assert_eq!(s.io_ms, 22.0);
    }

    #[test]
    fn local_tally_isolated_per_thread() {
        let disk = Disk::with_defaults();
        let r = disk.create_region("x");
        let before = disk.local_stats();
        disk.charge(IoKind::Read, PageRun::new(PageId::new(r, 0), 2), false);
        // A charge from another thread grows the global counters but not
        // this thread's tally.
        let d2 = disk.clone();
        std::thread::spawn(move || {
            d2.charge(IoKind::Read, PageRun::new(PageId::new(r, 10), 5), false);
        })
        .join()
        .unwrap();
        let local = disk.local_stats().since(&before);
        assert_eq!(local.pages_read, 2);
        assert_eq!(disk.stats().pages_read, 7);
    }

    #[test]
    fn absorb_merges_scratch_stats() {
        let disk = Disk::with_defaults();
        let mut scratch = IoStats::new();
        scratch.record(IoKind::Read, 3, 18.0, true);
        let before = disk.local_stats();
        disk.absorb(&scratch);
        assert_eq!(disk.stats().pages_read, 3);
        assert_eq!(disk.local_stats().since(&before).io_ms, 18.0);
    }

    #[test]
    fn scratch_tally_absorbs_on_unwind() {
        let real = Disk::with_defaults();
        let r = real.create_region("x");
        // A worker that panics mid-partition: its scratch charges must
        // land in the real disk's cumulative counters anyway.
        let handle = real.clone();
        let worker = std::thread::spawn(move || {
            let guard = ScratchTally::new(handle);
            guard
                .scratch()
                .charge(IoKind::Read, PageRun::new(PageId::new(r, 0), 4), false);
            panic!("worker dies mid-partition");
        });
        assert!(worker.join().is_err());
        let s = real.stats();
        assert_eq!(s.pages_read, 4);
        assert_eq!(s.read_requests, 1);
    }

    #[test]
    fn scratch_tally_finish_leaves_absorption_to_caller() {
        let real = Disk::with_defaults();
        let r = real.create_region("x");
        let guard = ScratchTally::new(real.clone());
        guard
            .scratch()
            .charge(IoKind::Write, PageRun::new(PageId::new(r, 0), 2), false);
        let stats = guard.finish();
        // Disarmed: nothing reached the real disk yet.
        assert_eq!(real.stats().requests(), 0);
        real.absorb(&stats);
        assert_eq!(real.stats().pages_written, 2);
    }

    use crate::test_util::Rng;

    /// The correctness anchor of the overlapped-I/O subsystem: driving
    /// the arm at queue depth 1 (submit one request, complete it, submit
    /// the next) produces **byte-identical** [`IoStats`] to charging the
    /// same requests synchronously — for both policies, including
    /// `skip_seek` requests and same-cylinder adjacency.
    #[test]
    fn depth_one_submission_mirrors_synchronous_charge() {
        for policy in [ArmPolicy::Fcfs, ArmPolicy::Elevator] {
            let sync_disk = Disk::with_defaults();
            let arm_disk = Disk::with_defaults();
            arm_disk.set_arm_policy(policy);
            let rs = sync_disk.create_region("mirror");
            let ra = arm_disk.create_region("mirror");
            assert_eq!(rs, ra);
            let mut rng = Rng(0x9E37_79B9_1994_0001);
            for step in 0..2000u32 {
                let kind = if rng.below(4) == 0 {
                    IoKind::Write
                } else {
                    IoKind::Read
                };
                // Offsets cluster heavily so same-cylinder adjacency and
                // repeated pages occur constantly.
                let offset = rng.below(96);
                let len = 1 + rng.below(8);
                let skip_seek = rng.below(5) == 0;
                let run = PageRun::new(PageId::new(rs, offset), len);
                sync_disk.charge(kind, run, skip_seek);
                let req = PageRequest {
                    kind,
                    run,
                    skip_seek,
                };
                arm_disk.submit(req).expect("non-empty run submits");
                let c = arm_disk.complete_next().expect("one pending request");
                assert_eq!(c.effective_skip_seek, skip_seek, "step {step}");
                assert_eq!(arm_disk.arm_pending(), 0);
                assert_eq!(
                    sync_disk.stats(),
                    arm_disk.stats(),
                    "stats diverged at step {step} ({policy:?})"
                );
            }
            assert!(sync_disk.stats().requests() >= 2000);
        }
    }

    #[test]
    fn elevator_depth_merges_reduce_charged_seeks() {
        // The same request set charged synchronously vs. queued all at
        // once under the elevator: co-scheduled same-cylinder requests
        // drop their seek charge, everything else is conserved.
        let sync_disk = Disk::with_defaults();
        let arm_disk = Disk::with_defaults();
        let rs = sync_disk.create_region("x");
        let ra = arm_disk.create_region("x");
        assert_eq!(rs, ra);
        let requests: Vec<PageRequest> = (0..6u64)
            .map(|o| PageRequest::read(PageRun::new(PageId::new(rs, o), 1)))
            .collect();
        for r in &requests {
            sync_disk.charge(r.kind, r.run, r.skip_seek);
            arm_disk.submit(*r);
        }
        let done = arm_disk.drain_arm();
        assert_eq!(done.len(), 6);
        let (s, a) = (sync_disk.stats(), arm_disk.stats());
        assert_eq!(s.read_requests, a.read_requests);
        assert_eq!(s.pages_read, a.pages_read);
        assert_eq!(s.latencies, a.latencies);
        // All six pages share cylinder 0: one seek survives.
        assert_eq!(s.seeks, 6);
        assert_eq!(a.seeks, 1);
        assert!(a.io_ms < s.io_ms);
    }

    #[test]
    fn empty_runs_are_not_submitted() {
        let disk = Disk::with_defaults();
        let r = disk.create_region("x");
        let req = PageRequest::read(PageRun::empty(PageId::new(r, 0)));
        assert_eq!(disk.submit(req), None);
        assert_eq!(disk.arm_pending(), 0);
        assert!(disk.complete_next().is_none());
    }

    #[test]
    fn trace_captures_this_threads_charges() {
        let disk = Disk::with_defaults();
        let r = disk.create_region("x");
        disk.trace_begin();
        disk.charge(IoKind::Read, PageRun::new(PageId::new(r, 3), 2), false);
        disk.charge(IoKind::Write, PageRun::new(PageId::new(r, 9), 1), true);
        disk.charge(IoKind::Read, PageRun::empty(PageId::new(r, 0)), false); // free, untraced
        disk.charge_raw(IoKind::Read, 5, 20.0, true); // analytical, untraced
                                                      // Another thread's charges never enter this thread's trace.
        let d2 = disk.clone();
        std::thread::spawn(move || {
            d2.charge(IoKind::Read, PageRun::new(PageId::new(r, 50), 1), false);
        })
        .join()
        .unwrap();
        let trace = disk.trace_take();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].run.len, 2);
        assert_eq!(trace[0].kind, IoKind::Read);
        assert!(trace[1].skip_seek);
        // Taking again without beginning yields nothing.
        assert!(disk.trace_take().is_empty());
    }

    #[test]
    fn traced_replay_at_depth_one_reproduces_costs() {
        // Capture a trace, replay it through a second disk's arm at
        // depth 1: identical stats — the end-to-end contract behind the
        // overlapped executor's equivalence matrix.
        let disk = Disk::with_defaults();
        let r = disk.create_region("x");
        disk.trace_begin();
        disk.charge(IoKind::Read, PageRun::new(PageId::new(r, 0), 3), false);
        disk.charge(IoKind::Read, PageRun::new(PageId::new(r, 40), 1), false);
        disk.charge(IoKind::Read, PageRun::new(PageId::new(r, 44), 2), true);
        let trace = disk.trace_take();
        let replay = Disk::with_defaults();
        replay.create_region("x");
        for req in trace {
            replay.submit(req);
            replay.complete_next();
        }
        assert_eq!(replay.stats(), disk.stats());
    }

    #[test]
    fn disk_handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DiskHandle>();
        assert_send_sync::<Disk>();
    }
}

//! The sharded buffer pool: N page-hash shards, each with its own lock
//! and LRU state, under one global capacity budget.
//!
//! [`BufferPool`](crate::buffer::BufferPool) is the reference
//! single-lock implementation; behind an `Arc<Mutex<…>>` every
//! concurrent page access serializes on that one lock. [`ShardedPool`]
//! splits the *replacement state* by page hash so that readers touching
//! disjoint pages contend only on their shard's lock (cf. the
//! directory-per-region buffers of classic multi-user grid-file
//! systems), while the disk accounting stays global.
//!
//! ## The stats-determinism contract
//!
//! * **One shard** (the default of the storage layer): the single
//!   shard's LRU is the global LRU, and every operation charges the
//!   disk in exactly the order [`BufferPool`] would — a `ShardedPool`
//!   with `shards == 1` produces **byte-identical
//!   [`IoStats`](crate::stats::IoStats)** to the single-lock pool for
//!   any single-threaded operation sequence (asserted by the mirror
//!   test below). This is the configuration the paper's figures run
//!   under.
//! * **N shards**: the capacity budget is split into per-shard quotas
//!   (rebalanced on [`reset`](ShardedPool::reset)), so the total
//!   buffered pages never exceed the budget, and every page access is
//!   still classified hit-or-miss exactly once — but *which* accesses
//!   hit depends on the per-shard LRU horizon, so `io_ms` may differ
//!   from the 1-shard figure. Use N > 1 for concurrent-throughput
//!   workloads, 1 shard to reproduce the paper.
//!
//! Lock discipline: an operation holds at most one shard lock at a
//! time, except the stop-the-world operations ([`flush`](ShardedPool::flush),
//! [`invalidate_all`](ShardedPool::invalidate_all),
//! [`reset`](ShardedPool::reset), [`dirty_pages`](ShardedPool::dirty_pages)),
//! which acquire all shard locks in ascending index order. The disk's
//! counter mutex is only ever taken *under* shard locks, never the
//! reverse. This ordering is acyclic, so the pool cannot deadlock; it
//! is machine-checked in debug builds by [`lockdep`](crate::lockdep)
//! (each shard is [`LockClass::Shard`]`(i)`, and the adaptive-quota
//! steal/decay probes are `try_acquire`-only — never blocking with a
//! shard lock held, so they are exempt from the hierarchy as
//! acquirers).

use crate::arm::PageRequest;
use crate::array::StripePolicy;
use crate::buffer::{LruBuffer, ReadMode, ReadOutcome, SeekPolicy};
use crate::disk::DiskHandle;
use crate::lockdep::{DepGuard, DepMutex, LockClass};
use crate::model::{runs_of, PageId, PageRun, RegionId};
use crate::schedule::{slm_schedule, ScheduledRun};
use crate::stats::IoKind;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// How pages are routed to shards.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Routing {
    /// Hash the full page address (region, offset): spreads every
    /// region's pages across all shards — the finest spreading, the
    /// default.
    #[default]
    ByPage,
    /// Hash the region only: **all pages of one region share one
    /// shard**, giving each database file its own lock domain (the
    /// directory-per-region design of classic multi-user grid-file
    /// systems). Workloads partitioned by database/file never contend;
    /// the cost is coarser spreading — a single hot region serializes
    /// on its one shard lock.
    ByRegion,
}

/// An LRU page buffer sharded by page hash, safe to drive from `&self`
/// on any number of threads.
///
/// Mirrors the full [`BufferPool`](crate::buffer::BufferPool) front-end
/// API (reads, writes, extents, SLM schedules, flush/invalidate/reset)
/// with interior locking. See the [module docs](self) for the
/// determinism contract.
#[derive(Debug)]
pub struct ShardedPool {
    disk: DiskHandle,
    routing: Routing,
    shards: Box<[DepMutex<LruBuffer>]>,
    /// Total capacity budget in pages (sum of the per-shard quotas).
    capacity: AtomicUsize,
    write_through: AtomicBool,
    /// Page accesses served from the buffer (requested pages only).
    hits: AtomicU64,
    /// Page accesses that required a transfer (requested pages only).
    misses: AtomicU64,
    /// Shard-lock acquisitions that found the lock held by another
    /// thread (the contention the sharding exists to eliminate).
    contended: AtomicU64,
    /// Adaptive quotas: a shard about to evict may steal free headroom
    /// from another shard (see [`ShardedPool::set_adaptive`]).
    adaptive: AtomicBool,
    /// Per-arm affinity (see [`ShardedPool::set_arm_affinity`]),
    /// packed into one atomic so [`shard_of`](ShardedPool::shard_of)
    /// stays lock-free: 0 = off, else `arms << 8 | policy code + 1`.
    affinity: AtomicU64,
    /// Global eviction counter (pages evicted to make room); the clock
    /// of the adaptive-quota decay. One *eviction cycle* is
    /// `num_shards` ticks — on average every shard evicted once.
    evictions: AtomicU64,
    /// Per-shard: eviction-counter reading when the shard last needed
    /// its entire (possibly borrowed) capacity. A borrower whose stamp
    /// falls a full cycle behind has idle stolen quota and decays one
    /// page back to a lender (see
    /// [`grow_if_adaptive`](ShardedPool::grow_if_adaptive)).
    quota_used: Box<[AtomicU64]>,
}

/// Pack an arm-affinity configuration for the `affinity` atomic.
fn pack_affinity(arms: usize, stripe: StripePolicy) -> u64 {
    let code = match stripe {
        StripePolicy::RoundRobin => 1u64,
        StripePolicy::RegionHash => 2,
        StripePolicy::MbrLocality => 3,
    };
    ((arms as u64) << 8) | code
}

/// Unpack the `affinity` atomic (`None` when off).
fn unpack_affinity(packed: u64) -> Option<(usize, StripePolicy)> {
    let stripe = match packed & 0xFF {
        0 => return None,
        1 => StripePolicy::RoundRobin,
        2 => StripePolicy::RegionHash,
        _ => StripePolicy::MbrLocality,
    };
    Some(((packed >> 8) as usize, stripe))
}

/// Per-shard quota of a `capacity`-page budget split `n` ways: the
/// first `capacity % n` shards take the remainder pages.
fn quota(capacity: usize, n: usize, shard: usize) -> usize {
    capacity / n + usize::from(shard < capacity % n)
}

impl ShardedPool {
    /// Create a pool of `capacity` pages over `disk` with a **single
    /// shard** — the byte-compatible drop-in for the single-lock
    /// [`BufferPool`](crate::buffer::BufferPool).
    pub fn new(disk: DiskHandle, capacity: usize) -> Self {
        Self::with_shards(disk, capacity, 1)
    }

    /// Create a pool of `capacity` total pages split across `shards`
    /// page-hash shards (at least one).
    pub fn with_shards(disk: DiskHandle, capacity: usize, shards: usize) -> Self {
        Self::with_routing(disk, capacity, shards, Routing::ByPage)
    }

    /// Create a pool with an explicit shard [`Routing`] mode.
    pub fn with_routing(
        disk: DiskHandle,
        capacity: usize,
        shards: usize,
        routing: Routing,
    ) -> Self {
        let n = shards.max(1);
        let quota_used: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let shards: Vec<DepMutex<LruBuffer>> = (0..n)
            .map(|i| DepMutex::new(LockClass::Shard(i), LruBuffer::new(quota(capacity, n, i))))
            .collect();
        ShardedPool {
            disk,
            routing,
            shards: shards.into_boxed_slice(),
            capacity: AtomicUsize::new(capacity),
            write_through: AtomicBool::new(false),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            adaptive: AtomicBool::new(false),
            affinity: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            quota_used: quota_used.into_boxed_slice(),
        }
    }

    /// Number of shards (fixed at construction).
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total capacity budget in pages.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Acquire)
    }

    /// Current capacity quota of one shard. Equals the static split
    /// `quota(capacity, n, shard)` unless adaptive quotas have moved
    /// headroom between shards; the sum over all shards always equals
    /// [`capacity`](ShardedPool::capacity).
    pub fn shard_capacity(&self, shard: usize) -> usize {
        self.shards[shard].acquire().capacity()
    }

    /// Enable or disable **adaptive shard quotas** (default: off).
    ///
    /// When on, a shard that is full at insert time steals one page of
    /// *free* headroom (quota not backed by a resident page) from
    /// another shard instead of evicting — a hot shard grows at the
    /// expense of cold ones, LRU-horizon-wise approaching the
    /// single-lock pool while keeping per-shard locking. There is no
    /// global lock: the stealing shard probes donors with `try_lock`
    /// one at a time (skipping any it would have to wait for), and
    /// each transfer is a `-1` on the donor / `+1` on the thief, so
    /// the per-shard capacities always sum to the global budget (the
    /// conservation invariant; donors only shrink within their free
    /// headroom, so a steal never evicts anything).
    ///
    /// Borrowed headroom flows back on its own: stolen quota a
    /// borrower leaves unused for a full eviction cycle decays one
    /// page per cycle to a shard below its static split (see
    /// [`decay_idle_quota`](Self::decay_idle_quota)), and
    /// [`reset`](ShardedPool::reset) /
    /// [`invalidate_all`](ShardedPool::invalidate_all) restore the
    /// static split wholesale. With the feature off (the default) the
    /// pool is byte-identical to the fixed-quota pool.
    pub fn set_adaptive(&self, on: bool) {
        self.adaptive.store(on, Ordering::Release);
    }

    /// Whether adaptive shard quotas are active.
    pub fn adaptive(&self) -> bool {
        self.adaptive.load(Ordering::Acquire)
    }

    /// Align shard routing with the arm assignment of a declustered
    /// disk array: under [`Routing::ByRegion`] with more than one
    /// shard, a page of region `r` is buffered in shard
    /// `stripe.arm_of(r, arms) % num_shards` — so each pool shard's
    /// miss stream feeds exactly one arm (shard *i* ↔ arm *i* when the
    /// counts match), instead of every shard scattering misses over
    /// the whole array.
    ///
    /// Dormant (plain region hashing) under [`Routing::ByPage`] or
    /// with a single shard; `arms <= 1` clears the affinity — every
    /// region maps to arm 0, and funneling the whole pool through
    /// shard 0 would abandon the other quotas. The pool is flushed and
    /// invalidated on every change so no page stays resident in a
    /// shard the new mapping no longer routes it to. A configuration
    /// step, not a data-path operation: concurrent accesses during the
    /// switch may buffer under either mapping until the invalidation.
    pub fn set_arm_affinity(&self, arms: usize, stripe: StripePolicy) {
        let packed = if arms <= 1 {
            0
        } else {
            pack_affinity(arms, stripe)
        };
        if self.affinity.load(Ordering::Acquire) == packed {
            return;
        }
        // Write back dirty pages while `shard_of` still resolves under
        // the old mapping (flush clears dirty flags through it), then
        // switch and drop every resident.
        self.flush();
        self.affinity.store(packed, Ordering::Release);
        self.invalidate_all();
    }

    /// The arm affinity, if set (see
    /// [`set_arm_affinity`](ShardedPool::set_arm_affinity)).
    pub fn arm_affinity(&self) -> Option<(usize, StripePolicy)> {
        unpack_affinity(self.affinity.load(Ordering::Acquire))
    }

    /// The underlying disk handle.
    #[inline]
    pub fn disk(&self) -> &DiskHandle {
        &self.disk
    }

    /// Switch between write-back (default) and write-through page
    /// updates (see
    /// [`BufferPool::set_write_through`](crate::buffer::BufferPool::set_write_through)).
    pub fn set_write_through(&self, on: bool) {
        self.write_through.store(on, Ordering::Release);
    }

    /// Whether write-through mode is active.
    pub fn write_through(&self) -> bool {
        self.write_through.load(Ordering::Acquire)
    }

    /// Cumulative requested-page accesses served from the buffer.
    ///
    /// Together with [`misses`](ShardedPool::misses) this counts every
    /// requested-page access exactly once, whatever the shard count —
    /// the conservation invariant the shard-equivalence tests assert.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cumulative requested-page accesses that needed a transfer.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cumulative shard-lock acquisitions that found the lock already
    /// held by another thread and had to block.
    ///
    /// The hardware-independent contention measure of the
    /// `pool_contention` benchmark: more shards spread concurrent
    /// accesses over more locks, so this count drops as the shard
    /// count grows — even on machines whose core count hides the
    /// effect from wall-clock throughput.
    pub fn lock_contentions(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    /// The routing mode (fixed at construction).
    #[inline]
    pub fn routing(&self) -> Routing {
        self.routing
    }

    /// Shard index of a page (constant 0 for a 1-shard pool, so the
    /// single shard sees the exact global access order). Public for
    /// diagnostics and the routing benchmarks.
    #[inline]
    pub fn shard_of(&self, page: &PageId) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        let key = match self.routing {
            Routing::ByPage => ((page.region.0 as u64) << 48) ^ page.offset,
            Routing::ByRegion => {
                if let Some((arms, stripe)) = self.arm_affinity() {
                    return stripe.arm_of(page.region, arms) % self.shards.len();
                }
                page.region.0 as u64
            }
        };
        let mixed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((mixed >> 32) as usize) % self.shards.len()
    }

    #[inline]
    fn shard(&self, page: &PageId) -> DepGuard<'_, LruBuffer> {
        self.shard_at(self.shard_of(page))
    }

    #[inline]
    fn shard_at(&self, index: usize) -> DepGuard<'_, LruBuffer> {
        let mutex = &self.shards[index];
        match mutex.try_acquire() {
            Some(guard) => guard,
            None => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                mutex.acquire()
            }
        }
    }

    /// Steal one page of free headroom from some other shard for shard
    /// `thief` (whose lock the caller holds). Donors are probed with
    /// `try_lock` only — never blocking while a shard lock is held, so
    /// two concurrent thieves cannot deadlock — and a donor qualifies
    /// only if its quota exceeds the floor of one page *and* it has a
    /// free (unoccupied) quota page, so shrinking it evicts nothing.
    /// Returns `true` if a page of quota was transferred to the caller
    /// (who must grow its shard by one to conserve the budget).
    fn steal_quota(&self, thief: usize) -> bool {
        let n = self.shards.len();
        for step in 1..n {
            let candidate = (thief + step) % n;
            if let Some(mut donor) = self.shards[candidate].try_acquire() {
                let cap = donor.capacity();
                if cap > 1 && donor.len() < cap {
                    let ev = donor.set_capacity(cap - 1);
                    debug_assert!(ev.is_empty(), "donor shrink within free headroom");
                    return true;
                }
            }
        }
        false
    }

    /// Grow `shard` (index `index`, lock held by the caller) by stolen
    /// quota until it can take one more page without evicting, when
    /// adaptive quotas are on. Falls back to normal eviction when no
    /// donor has free headroom.
    ///
    /// A shard that arrives here full is *using* its whole capacity,
    /// borrowed headroom included, so its decay clock restarts.
    fn grow_if_adaptive(&self, index: usize, shard: &mut LruBuffer) {
        if !self.adaptive.load(Ordering::Acquire) {
            return;
        }
        if shard.len() >= shard.capacity() {
            self.quota_used[index].store(self.evictions.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        while shard.len() >= shard.capacity() && self.steal_quota(index) {
            let cap = shard.capacity();
            shard.set_capacity(cap + 1);
        }
    }

    /// **Adaptive-quota decay**: stolen quota that goes unused for a
    /// full eviction cycle flows back to the lenders.
    ///
    /// A borrower (capacity above its static split) whose decay clock
    /// ([`quota_used`](Self::quota_used)) has fallen at least
    /// `num_shards` global evictions behind — it never filled up for a
    /// whole cycle while the rest of the pool was under replacement
    /// pressure — returns one page of its *free* headroom per cycle to
    /// a shard below its static quota. Quota is fungible, so the page
    /// goes to the currently most-shorted lender reachable without
    /// blocking, not necessarily the original donor.
    ///
    /// Locking: the borrower and the lender are both probed with
    /// `try_lock` (never blocking, so this cannot deadlock with
    /// thieves or other decayers), and **both guards are held across
    /// the transfer** — any observer summing
    /// [`shard_capacity`](ShardedPool::shard_capacity) blocks on one
    /// of them until the `-1`/`+1` pair lands, so the per-shard
    /// capacities sum to the global budget at every observable point
    /// (the conservation invariant). The borrower shrinks within free
    /// headroom, so the decay never evicts anything.
    ///
    /// Called from the insert path with no shard lock held; at most one
    /// page moves per call.
    fn decay_idle_quota(&self) {
        if !self.adaptive.load(Ordering::Acquire) {
            return;
        }
        let n = self.shards.len();
        let capacity = self.capacity();
        let now = self.evictions.load(Ordering::Relaxed);
        let cycle = n as u64;
        for i in 0..n {
            // Cheap unsynchronized pre-check before touching any lock.
            if now.saturating_sub(self.quota_used[i].load(Ordering::Relaxed)) < cycle {
                continue;
            }
            let Some(mut borrower) = self.shards[i].try_acquire() else {
                continue;
            };
            let cap = borrower.capacity();
            if cap <= quota(capacity, n, i) || borrower.len() >= cap {
                continue; // not a borrower, or its headroom is in use
            }
            for step in 1..n {
                let j = (i + step) % n;
                let Some(mut lender) = self.shards[j].try_acquire() else {
                    continue;
                };
                if lender.capacity() >= quota(capacity, n, j) {
                    continue; // not short of its static split
                }
                let grown = lender.capacity() + 1;
                lender.set_capacity(grown);
                let ev = borrower.set_capacity(cap - 1);
                debug_assert!(ev.is_empty(), "borrower shrink within free headroom");
                // One page per cycle: restart the borrower's clock.
                self.quota_used[i].store(now, Ordering::Relaxed);
                return;
            }
        }
    }

    /// Lock every shard in ascending index order (stop-the-world ops;
    /// the one blocking multi-shard pattern the hierarchy allows).
    fn lock_all(&self) -> Vec<DepGuard<'_, LruBuffer>> {
        self.shards.iter().map(|s| s.acquire()).collect()
    }

    /// Charge the writebacks of dirty evictions (clean evictions are
    /// free), exactly like the single-lock pool. Every evicted page
    /// also ticks the global eviction counter driving the
    /// adaptive-quota decay clock.
    fn charge_evictions(&self, evicted: Vec<(PageId, bool)>) {
        if !evicted.is_empty() {
            self.evictions
                .fetch_add(evicted.len() as u64, Ordering::Relaxed);
        }
        for (page, dirty) in evicted {
            if dirty {
                self.disk
                    .charge(IoKind::Write, PageRun::new(page, 1), false);
            }
        }
    }

    /// Insert into the page's shard, charging dirty evictions. Under
    /// adaptive quotas a full shard first tries to steal headroom so
    /// the insert doesn't evict.
    fn insert_charged(&self, page: PageId, dirty: bool) {
        let index = self.shard_of(&page);
        let ev = {
            let mut shard = self.shard_at(index);
            if !shard.contains(&page) {
                self.grow_if_adaptive(index, &mut shard);
            }
            shard.insert(page, dirty)
        };
        self.charge_evictions(ev);
        self.decay_idle_quota();
    }

    /// Read a single page. Returns `true` on a buffer hit.
    pub fn read_page(&self, page: PageId) -> bool {
        if self.shard(&page).touch(&page) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.disk.charge(IoKind::Read, PageRun::new(page, 1), false);
        self.insert_charged(page, false);
        false
    }

    /// Blind single-page write (see
    /// [`BufferPool::write_page`](crate::buffer::BufferPool::write_page)).
    pub fn write_page(&self, page: PageId) {
        if self.capacity() == 0 || self.write_through() {
            self.disk
                .charge(IoKind::Write, PageRun::new(page, 1), false);
            if self.capacity() > 0 {
                self.insert_charged(page, false);
            }
            return;
        }
        self.insert_charged(page, true);
    }

    /// Read-modify-write of a single page (see
    /// [`BufferPool::update_page`](crate::buffer::BufferPool::update_page)).
    ///
    /// The whole read-modify-write holds the page's shard lock: were the
    /// dirty flag set under a second acquisition, a concurrent eviction
    /// in between would drop the page while still clean and the deferred
    /// writeback would never be charged.
    pub fn update_page(&self, page: PageId) -> bool {
        if self.capacity() == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.disk.charge(IoKind::Read, PageRun::new(page, 1), false);
            self.disk
                .charge(IoKind::Write, PageRun::new(page, 1), false);
            return false;
        }
        let index = self.shard_of(&page);
        let mut shard = self.shard_at(index);
        let hit = shard.touch(&page);
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.disk.charge(IoKind::Read, PageRun::new(page, 1), false);
            self.grow_if_adaptive(index, &mut shard);
            let ev = shard.insert(page, false);
            self.charge_evictions(ev);
        }
        if self.write_through() {
            self.disk
                .charge(IoKind::Write, PageRun::new(page, 1), false);
        } else {
            shard.mark_dirty(&page);
        }
        hit
    }

    /// Shared body of [`read_set`](ShardedPool::read_set) and
    /// [`read_set_submitted`](ShardedPool::read_set_submitted):
    /// classification, counters, run formation and buffer insertion are
    /// one implementation; `issue` decides what happens to each formed
    /// read request (synchronous charge vs. arm submission) — the two
    /// paths cannot drift.
    fn read_set_with(
        &self,
        pages: &[PageId],
        seek: SeekPolicy,
        mut issue: impl FnMut(PageRequest),
    ) -> ReadOutcome {
        debug_assert!(
            pages.windows(2).all(|w| w[0] < w[1]),
            "pages must be sorted"
        );
        let mut out = ReadOutcome::default();
        let mut missing = Vec::new();
        for p in pages {
            if self.shard(p).touch(p) {
                out.buffer_hits += 1;
            } else {
                missing.push(*p);
            }
        }
        self.hits.fetch_add(out.buffer_hits, Ordering::Relaxed);
        self.misses
            .fetch_add(missing.len() as u64, Ordering::Relaxed);
        for run in runs_of(&missing) {
            issue(PageRequest {
                kind: IoKind::Read,
                run,
                skip_seek: seek.skip_seek(out.requests),
            });
            out.requests += 1;
            out.pages_transferred += run.len;
        }
        for p in missing {
            self.insert_charged(p, false);
        }
        out
    }

    /// Read a set of pages (sorted, deduplicated); missing pages are
    /// grouped into maximal consecutive runs (see
    /// [`BufferPool::read_set`](crate::buffer::BufferPool::read_set)).
    pub fn read_set(&self, pages: &[PageId], seek: SeekPolicy) -> ReadOutcome {
        self.read_set_with(pages, seek, |req| {
            self.disk.charge(req.kind, req.run, req.skip_seek);
        })
    }

    /// Read a single page, submitting the miss to the disk arm instead
    /// of charging it synchronously. Returns `None` on a buffer hit,
    /// `Some(request id)` when a read request was submitted — the caller
    /// drives [`Disk::complete_next`](crate::disk::Disk::complete_next) /
    /// [`Disk::drain_arm`](crate::disk::Disk::drain_arm) to service (and
    /// charge) it. Hit/miss classification is identical to
    /// [`read_page`](ShardedPool::read_page).
    pub fn read_page_submitted(&self, page: PageId) -> Option<u64> {
        if self.shard(&page).touch(&page) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let id = self
            .disk
            .submit(PageRequest::read(PageRun::new(page, 1)))
            .expect("single-page run is never empty");
        self.insert_charged(page, false);
        Some(id)
    }

    /// Read a set of pages with the miss runs **submitted** to the disk
    /// arm rather than charged at the call site.
    ///
    /// Classification, run formation and the returned [`ReadOutcome`]
    /// are identical to [`read_set`](ShardedPool::read_set); the
    /// [`SeekPolicy`] flows into the submitted requests' `skip_seek`
    /// flags, so the arm charges exactly what the synchronous path
    /// would (under FCFS, byte-identically — the elevator may
    /// additionally merge co-scheduled same-cylinder seeks, never the
    /// reverse). Returns the outcome plus the submitted request ids.
    pub fn read_set_submitted(
        &self,
        pages: &[PageId],
        seek: SeekPolicy,
    ) -> (ReadOutcome, Vec<u64>) {
        let mut ids = Vec::new();
        let out = self.read_set_with(pages, seek, |req| {
            ids.push(self.disk.submit(req).expect("miss runs are never empty"));
        });
        (out, ids)
    }

    /// Insert pages without charging I/O, pinned against eviction (see
    /// [`BufferPool::warm_pinned`](crate::buffer::BufferPool::warm_pinned)).
    ///
    /// A shard never pins past its quota: when every resident page of
    /// the target shard is already pinned, inserting another pinned
    /// page would overflow the global capacity budget for the life of
    /// the warm set, so the page is dropped instead (it will be read on
    /// demand). Unreachable with one shard for warm sets within the
    /// budget — the single-lock pool's behaviour is unchanged.
    pub fn warm_pinned(&self, pages: impl IntoIterator<Item = PageId>) {
        for p in pages {
            let ev = {
                let mut shard = self.shard(&p);
                let quota = shard.capacity();
                let ev = shard.insert(p, false);
                if shard.len() > quota {
                    // Eviction failed (everything pinned): revert the
                    // insert rather than exceed the budget.
                    shard.remove(&p);
                } else {
                    shard.pin(&p);
                }
                ev
            };
            self.charge_evictions(ev);
        }
    }

    /// Drop all buffered pages of the given regions without writing
    /// anything (see
    /// [`BufferPool::invalidate_regions`](crate::buffer::BufferPool::invalidate_regions)).
    pub fn invalidate_regions(&self, regions: &[RegionId]) {
        for shard in self.shards.iter() {
            let mut buf = shard.acquire();
            let victims: Vec<PageId> = buf
                .pages()
                .filter(|p| regions.contains(&p.region))
                .collect();
            for p in victims {
                buf.remove(&p);
            }
        }
    }

    /// Read a complete extent with one request (see
    /// [`BufferPool::read_full_extent`](crate::buffer::BufferPool::read_full_extent)).
    pub fn read_full_extent(&self, extent: PageRun) -> ReadOutcome {
        self.disk.charge(IoKind::Read, extent, false);
        let mut out = ReadOutcome {
            requests: 1,
            pages_transferred: extent.len,
            buffer_hits: 0,
        };
        if self.capacity() == 0 {
            self.misses.fetch_add(extent.len, Ordering::Relaxed);
            return out;
        }
        for p in extent.pages() {
            let already = {
                let mut shard = self.shard(&p);
                shard.touch(&p)
            };
            if already {
                out.buffer_hits += 1;
            } else {
                self.insert_charged(p, false);
            }
        }
        self.hits.fetch_add(out.buffer_hits, Ordering::Relaxed);
        self.misses
            .fetch_add(extent.len - out.buffer_hits, Ordering::Relaxed);
        out
    }

    /// Read the requested page offsets of `extent` with an SLM schedule
    /// (see
    /// [`BufferPool::read_extent_slm`](crate::buffer::BufferPool::read_extent_slm)).
    pub fn read_extent_slm(
        &self,
        extent: PageRun,
        requested_offsets: &[u64],
        max_gap: u64,
        mode: ReadMode,
        initial_seek: bool,
    ) -> ReadOutcome {
        let mut out = ReadOutcome::default();
        let mut missing = Vec::with_capacity(requested_offsets.len());
        for &o in requested_offsets {
            debug_assert!(o < extent.len, "offset {o} outside extent");
            let p = extent.page(o);
            if self.shard(&p).touch(&p) {
                out.buffer_hits += 1;
            } else {
                missing.push(o);
            }
        }
        self.hits.fetch_add(out.buffer_hits, Ordering::Relaxed);
        self.misses
            .fetch_add(missing.len() as u64, Ordering::Relaxed);
        let schedule: Vec<ScheduledRun> = slm_schedule(&missing, max_gap);
        for (i, run) in schedule.iter().enumerate() {
            let skip = !(initial_seek && i == 0);
            let page_run = PageRun::new(extent.page(run.start), run.len);
            self.disk.charge(IoKind::Read, page_run, skip);
            out.requests += 1;
            out.pages_transferred += run.len;
            if self.capacity() == 0 {
                continue;
            }
            for off in run.start..run.start + run.len {
                let requested = missing.binary_search(&off).is_ok();
                if mode == ReadMode::Vector && !requested {
                    continue;
                }
                let p = extent.page(off);
                let index = self.shard_of(&p);
                let mut shard = self.shard_at(index);
                if !shard.contains(&p) {
                    self.grow_if_adaptive(index, &mut shard);
                    let ev = shard.insert(p, false);
                    drop(shard);
                    self.charge_evictions(ev);
                } else {
                    shard.touch(&p);
                }
            }
        }
        out
    }

    /// Bulk sequential write of a fresh extent, bypassing the buffer.
    /// Buffered copies of the extent's pages are evicted — the write
    /// replaced their contents, so keeping them would let later reads
    /// hit on stale data (their dirty flags are superseded by this
    /// write, not written back).
    pub fn write_extent(&self, extent: PageRun) {
        self.disk.charge(IoKind::Write, extent, false);
        for p in extent.pages() {
            self.shard(&p).remove(&p);
        }
    }

    /// Insert a page as clean without charging a read (the *optimum*
    /// baselines account their transfers via
    /// [`Disk::charge_raw`](crate::disk::Disk::charge_raw)); dirty
    /// evictions are still charged.
    pub fn insert_clean(&self, page: PageId) {
        self.insert_charged(page, false);
    }

    /// Touch a page (move to MRU) without any accounting. Returns
    /// `true` if it was buffered.
    pub fn touch_page(&self, page: &PageId) -> bool {
        self.shard(page).touch(page)
    }

    /// `true` if the page is currently buffered.
    pub fn contains_page(&self, page: &PageId) -> bool {
        self.shard(page).contains(page)
    }

    /// Remove a page from the buffer without any accounting (node
    /// releases, extents being freed), returning its dirty flag.
    pub fn remove_page(&self, page: &PageId) -> Option<bool> {
        self.shard(page).remove(page)
    }

    /// Unpin a buffered page. Returns `true` if present.
    pub fn unpin_page(&self, page: &PageId) -> bool {
        self.shard(page).unpin(page)
    }

    /// Number of buffered pages across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.acquire().len()).sum()
    }

    /// `true` if no page is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All dirty pages across all shards, sorted by address.
    pub fn dirty_pages(&self) -> Vec<PageId> {
        let guards = self.lock_all();
        let mut dirty: Vec<PageId> = guards.iter().flat_map(|g| g.dirty_pages()).collect();
        dirty.sort_unstable();
        dirty
    }

    /// Write back all dirty pages, grouped into maximal consecutive
    /// runs across the *global* sorted dirty set — byte-identical run
    /// formation to the single-lock pool at any shard count.
    pub fn flush(&self) {
        let mut guards = self.lock_all();
        self.flush_locked(&mut guards);
    }

    fn flush_locked(&self, guards: &mut [DepGuard<'_, LruBuffer>]) {
        let mut dirty: Vec<PageId> = guards.iter().flat_map(|g| g.dirty_pages()).collect();
        dirty.sort_unstable();
        for run in runs_of(&dirty) {
            self.disk.charge(IoKind::Write, run, false);
        }
        for p in dirty {
            guards[self.shard_of(&p)].clear_dirty(&p);
        }
    }

    /// Drop every buffered page (experiment boundary where the buffer
    /// must start cold), **writing back dirty pages first** — dropping
    /// them silently would deflate the experiment's write counts by the
    /// deferred writebacks the workload actually incurred.
    pub fn invalidate_all(&self) {
        let cap = self.capacity();
        let mut guards = self.lock_all();
        self.flush_locked(&mut guards);
        let n = guards.len();
        for (i, g) in guards.iter_mut().enumerate() {
            **g = LruBuffer::new(quota(cap, n, i));
        }
    }

    /// Replace the buffer with an empty one of `capacity` total pages,
    /// rebalancing the per-shard quotas (the buffer-size sweeps of
    /// Figures 14 and 16 resize between runs). Dirty pages are written
    /// back first, like [`invalidate_all`](ShardedPool::invalidate_all).
    pub fn reset(&self, capacity: usize) {
        let mut guards = self.lock_all();
        self.flush_locked(&mut guards);
        self.capacity.store(capacity, Ordering::Release);
        let n = guards.len();
        for (i, g) in guards.iter_mut().enumerate() {
            **g = LruBuffer::new(quota(capacity, n, i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::disk::Disk;

    fn pg(r: u16, o: u64) -> PageId {
        PageId::new(RegionId(r), o)
    }

    use crate::test_util::Rng;

    #[test]
    fn quotas_conserve_capacity() {
        for cap in [0usize, 1, 7, 64, 1000] {
            for n in [1usize, 2, 3, 4, 8, 16] {
                let total: usize = (0..n).map(|i| quota(cap, n, i)).sum();
                assert_eq!(total, cap, "capacity {cap} over {n} shards");
                let pool = ShardedPool::with_shards(Disk::with_defaults(), cap, n);
                let total: usize = (0..n).map(|i| pool.shard_capacity(i)).sum();
                assert_eq!(total, cap);
            }
        }
    }

    /// The adaptive-quota conservation invariant: a hot shard borrows
    /// free headroom from cold shards, and the per-shard capacities
    /// still sum to the global budget at every rest point.
    #[test]
    fn adaptive_quotas_conserve_capacity() {
        let pool = ShardedPool::with_routing(Disk::with_defaults(), 64, 8, Routing::ByRegion);
        pool.set_adaptive(true);
        let n = pool.num_shards();
        let static_quota = pool.shard_capacity(0);
        assert_eq!(static_quota, 8);
        // Touch every region lightly: each shard holds a couple of cold
        // pages, far below its quota.
        for r in 0..8u16 {
            for o in 0..2u64 {
                pool.read_page(pg(r, o));
            }
        }
        // Hammer one region: under ByRegion routing all its pages land
        // on one shard, which must outgrow its static quota by stealing
        // headroom instead of thrashing its own LRU.
        let hot = pg(0, 0);
        let hot_shard = pool.shard_of(&hot);
        for o in 0..48u64 {
            pool.read_page(pg(0, o));
        }
        let caps: Vec<usize> = (0..n).map(|i| pool.shard_capacity(i)).collect();
        assert_eq!(
            caps.iter().sum::<usize>(),
            pool.capacity(),
            "capacities must sum to the budget: {caps:?}"
        );
        assert!(
            caps[hot_shard] > static_quota,
            "hot shard never borrowed: {caps:?}"
        );
        assert!(caps.iter().all(|&c| c >= 1), "a donor fell below the floor");
        assert!(pool.len() <= pool.capacity());
        // Re-reading the hot region now hits: the borrowed headroom
        // actually widened the hot shard's LRU horizon.
        let misses_before = pool.misses();
        for o in 0..48u64 {
            pool.read_page(pg(0, o));
        }
        assert_eq!(pool.misses(), misses_before, "hot set no longer resident");
        // Reset restores the static split.
        pool.reset(64);
        for i in 0..n {
            assert_eq!(pool.shard_capacity(i), quota(64, n, i));
        }
    }

    /// Concurrent thieves: adaptive borrowing from many threads keeps
    /// the budget conserved and never overflows total occupancy.
    #[test]
    fn adaptive_quotas_survive_concurrent_borrowing() {
        let pool = std::sync::Arc::new(ShardedPool::with_routing(
            Disk::with_defaults(),
            96,
            8,
            Routing::ByRegion,
        ));
        pool.set_adaptive(true);
        std::thread::scope(|s| {
            for t in 0..4u16 {
                let pool = std::sync::Arc::clone(&pool);
                s.spawn(move || {
                    let mut rng = Rng(0xADA7_0000 + t as u64 + 1);
                    for _ in 0..2000 {
                        let r = rng.below(8) as u16;
                        pool.read_page(pg(r, rng.below(40)));
                    }
                });
            }
        });
        let n = pool.num_shards();
        let caps: Vec<usize> = (0..n).map(|i| pool.shard_capacity(i)).collect();
        assert_eq!(caps.iter().sum::<usize>(), pool.capacity(), "{caps:?}");
        assert!(pool.len() <= pool.capacity());
        assert_eq!(pool.hits() + pool.misses(), 4 * 2000);
    }

    /// With the feature off (the default) nothing moves: the quotas
    /// stay on the static split whatever the workload.
    #[test]
    fn adaptive_off_keeps_static_quotas() {
        let pool = ShardedPool::with_routing(Disk::with_defaults(), 64, 8, Routing::ByRegion);
        for o in 0..200u64 {
            pool.read_page(pg(0, o));
        }
        for i in 0..pool.num_shards() {
            assert_eq!(pool.shard_capacity(i), quota(64, 8, i));
        }
    }

    /// The correctness anchor of the refactor: a 1-shard pool mirrors
    /// the single-lock [`BufferPool`] byte-for-byte — identical disk
    /// stats after every operation of a randomized op sequence.
    #[test]
    fn one_shard_mirrors_buffer_pool() {
        let disk_a = Disk::with_defaults();
        let disk_b = Disk::with_defaults();
        let ra = disk_a.create_region("mirror");
        let rb = disk_b.create_region("mirror");
        assert_eq!(ra, rb);
        let mut reference = BufferPool::new(disk_a.clone(), 16);
        let sharded = ShardedPool::new(disk_b.clone(), 16);
        let mut rng = Rng(0x1994_1994_1994_1994);
        for step in 0..4000u32 {
            let page = pg(0, rng.below(64));
            match rng.below(10) {
                0..=2 => {
                    assert_eq!(
                        reference.read_page(page),
                        sharded.read_page(page),
                        "step {step}"
                    );
                }
                3 => {
                    reference.write_page(page);
                    sharded.write_page(page);
                }
                4 => {
                    assert_eq!(
                        reference.update_page(page),
                        sharded.update_page(page),
                        "step {step}"
                    );
                }
                5 => {
                    let mut pages: Vec<PageId> =
                        (0..rng.below(6)).map(|_| pg(0, rng.below(64))).collect();
                    pages.sort_unstable();
                    pages.dedup();
                    let seek = if rng.below(2) == 0 {
                        SeekPolicy::PerRequest
                    } else {
                        SeekPolicy::WithinCluster { initial_seek: true }
                    };
                    assert_eq!(
                        reference.read_set(&pages, seek),
                        sharded.read_set(&pages, seek),
                        "step {step}"
                    );
                }
                6 => {
                    let extent = PageRun::new(pg(0, rng.below(48)), 1 + rng.below(12));
                    assert_eq!(
                        reference.read_full_extent(extent),
                        sharded.read_full_extent(extent),
                        "step {step}"
                    );
                }
                7 => {
                    let extent = PageRun::new(pg(0, rng.below(40)), 16);
                    let mut offsets: Vec<u64> = (0..1 + rng.below(5))
                        .map(|_| rng.below(extent.len))
                        .collect();
                    offsets.sort_unstable();
                    offsets.dedup();
                    let mode = if rng.below(2) == 0 {
                        ReadMode::Normal
                    } else {
                        ReadMode::Vector
                    };
                    assert_eq!(
                        reference.read_extent_slm(extent, &offsets, 2, mode, true),
                        sharded.read_extent_slm(extent, &offsets, 2, mode, true),
                        "step {step}"
                    );
                }
                8 => {
                    let extent = PageRun::new(pg(0, rng.below(56)), 1 + rng.below(8));
                    reference.write_extent(extent);
                    sharded.write_extent(extent);
                }
                _ => match rng.below(4) {
                    0 => {
                        reference.flush();
                        sharded.flush();
                    }
                    1 => {
                        reference.invalidate_all();
                        sharded.invalidate_all();
                    }
                    2 => {
                        let cap = rng.below(24) as usize;
                        reference.reset(cap);
                        sharded.reset(cap);
                    }
                    _ => {
                        let on = rng.below(2) == 0;
                        reference.set_write_through(on);
                        sharded.set_write_through(on);
                    }
                },
            }
            assert_eq!(
                disk_a.stats(),
                disk_b.stats(),
                "stats diverged after step {step}"
            );
            assert_eq!(reference.buffer().len(), sharded.len(), "step {step}");
        }
        // The sequence exercised real I/O, not a no-op loop.
        assert!(disk_a.stats().requests() > 1000);
    }

    #[test]
    fn shards_partition_pages_and_respect_budget() {
        let disk = Disk::with_defaults();
        let r = disk.create_region("data");
        let pool = ShardedPool::with_shards(disk.clone(), 32, 4);
        assert_eq!(pool.num_shards(), 4);
        // Insert far more pages than the budget: the pool never holds
        // more than its total capacity.
        for o in 0..400u64 {
            pool.read_page(PageId::new(r, o));
        }
        assert!(pool.len() <= 32, "len {} over budget", pool.len());
        // Every access was classified exactly once.
        assert_eq!(pool.hits() + pool.misses(), 400);
        // Resize rebalances the quotas under the new budget.
        pool.reset(13);
        let total: usize = (0..4).map(|i| pool.shard_capacity(i)).sum();
        assert_eq!(total, 13);
        for o in 0..100u64 {
            pool.read_page(PageId::new(r, o));
        }
        assert!(pool.len() <= 13);
    }

    #[test]
    fn sharded_flush_groups_runs_globally() {
        let disk = Disk::with_defaults();
        let r = disk.create_region("data");
        let pool = ShardedPool::with_shards(disk.clone(), 64, 4);
        // Consecutive dirty pages land in different shards; the flush
        // must still form one run per consecutive group.
        for o in [0u64, 1, 2, 3, 10, 11] {
            pool.write_page(PageId::new(r, o));
        }
        pool.flush();
        let s = disk.stats();
        assert_eq!(s.write_requests, 2); // runs [0..4] and [10..12]
        assert_eq!(s.pages_written, 6);
        disk.reset_stats();
        pool.flush();
        assert_eq!(disk.stats().requests(), 0);
    }

    #[test]
    fn sharded_invalidate_and_reset_charge_dirty_writebacks() {
        let disk = Disk::with_defaults();
        let r = disk.create_region("data");
        let pool = ShardedPool::with_shards(disk.clone(), 64, 4);
        pool.write_page(PageId::new(r, 0));
        pool.write_page(PageId::new(r, 7));
        disk.reset_stats();
        pool.invalidate_all();
        assert_eq!(disk.stats().pages_written, 2);
        assert_eq!(pool.len(), 0);
        pool.write_page(PageId::new(r, 3));
        disk.reset_stats();
        pool.reset(32);
        assert_eq!(disk.stats().pages_written, 1);
        assert_eq!(pool.capacity(), 32);
    }

    #[test]
    fn warm_pinned_never_overflows_the_budget() {
        let disk = Disk::with_defaults();
        let r = disk.create_region("dir");
        // Tiny quotas (2 pages/shard): the page hash necessarily lands
        // more than a quota's worth of warm pages in some shard.
        let pool = ShardedPool::with_shards(disk.clone(), 16, 8);
        pool.warm_pinned((0..64).map(|o| PageId::new(r, o)));
        assert!(
            pool.len() <= 16,
            "pinned warm set overflowed the budget: {} pages",
            pool.len()
        );
        // With one shard the warm set fits (budget >= set size) and is
        // fully resident — the single-lock pool's behaviour.
        let pool1 = ShardedPool::new(disk.clone(), 16);
        pool1.warm_pinned((0..8).map(|o| PageId::new(r, o)));
        assert_eq!(pool1.len(), 8);
        for o in 0..8 {
            assert!(pool1.contains_page(&PageId::new(r, o)));
        }
    }

    /// Concurrency invariant behind the single-lock-hold `update_page`:
    /// every page that was ever updated in write-back mode is dirty
    /// until a charged eviction or flush, so the final write count
    /// covers every distinct page — a lost dirty flag (the page evicted
    /// clean between touch and mark) would deflate it.
    #[test]
    fn concurrent_updates_never_lose_writebacks() {
        let distinct_pages = 48u64;
        let disk = Disk::with_defaults();
        let r = disk.create_region("data");
        // Small budget: constant eviction pressure across the shards.
        let pool = std::sync::Arc::new(ShardedPool::with_shards(disk.clone(), 16, 4));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let pool = pool.clone();
                scope.spawn(move || {
                    for i in 0..4000u64 {
                        pool.update_page(PageId::new(r, (t * 13 + i) % distinct_pages));
                    }
                });
            }
        });
        pool.flush();
        assert!(
            disk.stats().pages_written >= distinct_pages,
            "lost writebacks: {} pages written for {distinct_pages} dirtied pages",
            disk.stats().pages_written
        );
    }

    #[test]
    fn concurrent_readers_share_the_pool() {
        let disk = Disk::with_defaults();
        let r = disk.create_region("data");
        // 2x capacity slack: the page hash spreads the 256-page working
        // set unevenly, and no shard quota may overflow for the warm
        // set to stay fully resident.
        let pool = std::sync::Arc::new(ShardedPool::with_shards(disk.clone(), 512, 8));
        // Warm every page, then hammer hits from many threads.
        for o in 0..256u64 {
            pool.read_page(PageId::new(r, o));
        }
        let before = disk.stats();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let pool = pool.clone();
                scope.spawn(move || {
                    for i in 0..2000u64 {
                        let page = PageId::new(r, (t * 97 + i) % 256);
                        assert!(pool.read_page(page), "warm page must hit");
                    }
                });
            }
        });
        // All hits: no further disk requests.
        assert_eq!(disk.stats(), before);
        assert_eq!(pool.hits(), 8 * 2000);
        assert_eq!(pool.misses(), 256);
    }

    #[test]
    fn region_routing_gives_each_region_one_shard() {
        let disk = Disk::with_defaults();
        for r in 0..8u16 {
            disk.create_region("r");
            let _ = r;
        }
        let pool = ShardedPool::with_routing(disk.clone(), 64, 8, Routing::ByRegion);
        assert_eq!(pool.routing(), Routing::ByRegion);
        let mut used = std::collections::HashSet::new();
        for r in 0..8u16 {
            let home = pool.shard_of(&pg(r, 0));
            for o in 1..200u64 {
                assert_eq!(
                    pool.shard_of(&pg(r, o)),
                    home,
                    "region {r} split across shards"
                );
            }
            used.insert(home);
        }
        // The region hash spreads distinct regions over several shards.
        assert!(used.len() > 2, "all regions collapsed onto {used:?}");
        // ByPage spreads one region's pages over many shards.
        let by_page = ShardedPool::with_shards(disk, 64, 8);
        assert_eq!(by_page.routing(), Routing::ByPage);
        let spread: std::collections::HashSet<usize> =
            (0..200u64).map(|o| by_page.shard_of(&pg(0, o))).collect();
        assert!(spread.len() > 2);
    }

    #[test]
    fn routing_preserves_stats_for_fixed_sequence() {
        // Same deterministic access sequence under both routings:
        // hit/miss totals are conserved and, with the working set within
        // every quota, the charged stats are identical.
        let run = |routing| {
            let disk = Disk::with_defaults();
            let regions: Vec<_> = (0..4).map(|_| disk.create_region("r")).collect();
            let pool = ShardedPool::with_routing(disk.clone(), 512, 4, routing);
            for pass in 0..3u64 {
                for &r in &regions {
                    for o in 0..32u64 {
                        pool.read_page(PageId::new(r, (o * 7 + pass) % 40));
                    }
                }
            }
            (pool.hits() + pool.misses(), disk.stats())
        };
        let (total_a, stats_a) = run(Routing::ByPage);
        let (total_b, stats_b) = run(Routing::ByRegion);
        assert_eq!(total_a, total_b);
        assert_eq!(stats_a, stats_b);
    }

    #[test]
    fn submitted_read_set_mirrors_sync_under_fcfs() {
        use crate::arm::ArmPolicy;
        let sync_disk = Disk::with_defaults();
        let arm_disk = Disk::with_defaults();
        arm_disk.set_arm_policy(ArmPolicy::Fcfs);
        sync_disk.create_region("m");
        arm_disk.create_region("m");
        let sync_pool = ShardedPool::new(sync_disk.clone(), 16);
        let arm_pool = ShardedPool::new(arm_disk.clone(), 16);
        let mut rng = Rng(0x5EED_5EED_5EED_5EED);
        for step in 0..800u32 {
            let mut pages: Vec<PageId> = (0..1 + rng.below(6))
                .map(|_| pg(0, rng.below(64)))
                .collect();
            pages.sort_unstable();
            pages.dedup();
            let seek = if rng.below(2) == 0 {
                SeekPolicy::PerRequest
            } else {
                SeekPolicy::WithinCluster { initial_seek: true }
            };
            let sync_out = sync_pool.read_set(&pages, seek);
            let (sub_out, ids) = arm_pool.read_set_submitted(&pages, seek);
            assert_eq!(sync_out, sub_out, "outcome diverged at step {step}");
            assert_eq!(ids.len() as u64, sub_out.requests);
            let done = arm_disk.drain_arm();
            assert_eq!(done.len(), ids.len());
            assert_eq!(
                sync_disk.stats(),
                arm_disk.stats(),
                "stats diverged at step {step}"
            );
            assert_eq!(sync_pool.hits(), arm_pool.hits(), "step {step}");
            assert_eq!(sync_pool.misses(), arm_pool.misses(), "step {step}");
        }
        assert!(sync_disk.stats().read_requests > 200);
    }

    #[test]
    fn submitted_single_page_reads_classify_like_sync() {
        let disk = Disk::with_defaults();
        let r = disk.create_region("x");
        let pool = ShardedPool::new(disk.clone(), 8);
        let id = pool.read_page_submitted(PageId::new(r, 3));
        assert!(id.is_some(), "cold page is a miss");
        // Buffered immediately: a second read hits without waiting for
        // the completion (contents are not modeled, only cost).
        assert_eq!(pool.read_page_submitted(PageId::new(r, 3)), None);
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.misses(), 1);
        assert_eq!(disk.stats().requests(), 0, "not charged before service");
        disk.drain_arm();
        assert_eq!(disk.stats().read_requests, 1);
        assert_eq!(disk.stats().pages_read, 1);
    }

    #[test]
    fn sharded_pool_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedPool>();
    }

    /// With arm affinity on, `ByRegion` routing places a region's pages
    /// in the shard of its arm; off again, the plain region hash is
    /// back. `ByPage` pools and 1-arm arrays stay untouched.
    #[test]
    fn arm_affinity_aligns_shards_with_arms() {
        let pool = ShardedPool::with_routing(Disk::with_defaults(), 64, 4, Routing::ByRegion);
        assert_eq!(pool.arm_affinity(), None);
        pool.set_arm_affinity(4, StripePolicy::RoundRobin);
        assert_eq!(pool.arm_affinity(), Some((4, StripePolicy::RoundRobin)));
        for r in 0..16u16 {
            let stripe = StripePolicy::RoundRobin;
            let arm = stripe.arm_of(RegionId(r), 4);
            assert_eq!(pool.shard_of(&pg(r, 0)), arm % 4, "region {r}");
            // All pages of a region share the shard, like plain ByRegion.
            assert_eq!(pool.shard_of(&pg(r, 7)), arm % 4, "region {r}");
        }
        // More arms than shards: arms fold onto shards mod N.
        pool.set_arm_affinity(8, StripePolicy::RegionHash);
        for r in 0..16u16 {
            let arm = StripePolicy::RegionHash.arm_of(RegionId(r), 8);
            assert_eq!(pool.shard_of(&pg(r, 0)), arm % 4, "region {r}");
        }
        // A single arm clears the affinity instead of funneling the
        // whole pool through shard 0.
        pool.set_arm_affinity(1, StripePolicy::RoundRobin);
        assert_eq!(pool.arm_affinity(), None);
        let spread: std::collections::HashSet<usize> =
            (0..64u16).map(|r| pool.shard_of(&pg(r, 0))).collect();
        assert!(spread.len() > 1, "region hash spreads shards again");

        // ByPage routing ignores the affinity entirely.
        let by_page = ShardedPool::with_routing(Disk::with_defaults(), 64, 4, Routing::ByPage);
        let before: Vec<usize> = (0..32u16).map(|r| by_page.shard_of(&pg(r, 5))).collect();
        by_page.set_arm_affinity(4, StripePolicy::RoundRobin);
        let after: Vec<usize> = (0..32u16).map(|r| by_page.shard_of(&pg(r, 5))).collect();
        assert_eq!(before, after);
    }

    /// Adaptive-quota decay: stolen quota left idle for a full
    /// eviction cycle flows back to a shard below its static split —
    /// while quota in active use never decays — and the per-shard
    /// capacities sum to the budget at every observable point.
    #[test]
    fn adaptive_quota_decay_returns_idle_quota() {
        let pool = ShardedPool::with_routing(Disk::with_defaults(), 8, 2, Routing::ByRegion);
        pool.set_adaptive(true);
        let sum = |p: &ShardedPool| (0..2).map(|i| p.shard_capacity(i)).sum::<usize>();
        // Probe two regions hashing to distinct shards.
        let a = (0..64u16).find(|r| pool.shard_of(&pg(*r, 0)) == 0).unwrap();
        let b = (0..64u16).find(|r| pool.shard_of(&pg(*r, 0)) == 1).unwrap();
        // Shard 0 borrows beyond its static half (4 pages).
        for o in 0..6 {
            pool.read_page(pg(a, o));
            assert_eq!(sum(&pool), 8, "conservation while borrowing");
        }
        assert_eq!(pool.shard_capacity(0), 6, "borrowed two pages");
        assert_eq!(pool.shard_capacity(1), 2);
        // Shard 1 churns through its shrunken quota: shard 0 is full,
        // so nothing can be stolen back and every insert evicts — the
        // decay clock advances well past one cycle, but the borrowed
        // quota is in active use, so nothing decays.
        for o in 0..6 {
            pool.read_page(pg(b, o));
            assert_eq!(sum(&pool), 8, "conservation under eviction pressure");
        }
        assert_eq!(pool.shard_capacity(0), 6, "in-use quota does not decay");
        // The borrowed headroom falls idle...
        assert_eq!(pool.remove_page(&pg(a, 0)), Some(false));
        assert_eq!(pool.remove_page(&pg(a, 1)), Some(false));
        // ...and the next insert returns it: one page stolen back by
        // the full shard plus one page decayed to the shorted lender
        // restore the static split.
        pool.read_page(pg(b, 6));
        assert_eq!(pool.shard_capacity(0), 4, "idle quota returned");
        assert_eq!(pool.shard_capacity(1), 4);
        assert_eq!(sum(&pool), 8);
    }

    /// Switching affinity flushes dirty pages and drops residents, so
    /// no page stays buffered in a shard the new mapping no longer
    /// routes it to.
    #[test]
    fn arm_affinity_switch_flushes_and_invalidates() {
        let disk = Disk::with_defaults();
        let pool = ShardedPool::with_routing(disk.clone(), 64, 4, Routing::ByRegion);
        pool.write_page(pg(3, 0));
        assert_eq!(pool.dirty_pages().len(), 1);
        pool.set_arm_affinity(4, StripePolicy::RoundRobin);
        assert!(pool.is_empty(), "residents dropped on switch");
        assert_eq!(disk.stats().pages_written, 1, "dirty page flushed");
        // Re-setting the same affinity is a no-op: no second flush.
        pool.read_page(pg(3, 0));
        pool.set_arm_affinity(4, StripePolicy::RoundRobin);
        assert!(!pool.is_empty());
    }
}

//! [`SpatialStore`] — the pluggable storage interface of the engine.
//!
//! Every way of laying out a large set of spatial objects on disk — the
//! paper's three organization models, the in-memory baseline
//! ([`crate::memory::MemoryStore`]), or a user-supplied backend — is a
//! `SpatialStore`. The query layer (`spatialdb-core`), the spatial join
//! (`spatialdb-join`) and the experiment harness are all written against
//! this trait, so a new organization is a one-file addition: implement
//! the trait and hand a `Box<dyn SpatialStore>` to
//! `Workspace::create_database_with`.
//!
//! The trait is deliberately **object safe**: everything downstream works
//! with `&dyn SpatialStore` (queries) or `&mut dyn SpatialStore`
//! (updates). It is also `Send + Sync`: the contract splits into a
//! **read path** that takes `&self` — all interior state a query touches
//! (buffer pool, disk counters) lives behind shared locks, so any number
//! of threads may query one store concurrently — and a **write path**
//! that keeps `&mut self`, serializing structural updates through Rust's
//! ownership rules. The groups:
//!
//! 1. **Updates** (`&mut self`) — [`insert`](SpatialStore::insert),
//!    [`bulk_load`](SpatialStore::bulk_load),
//!    [`delete`](SpatialStore::delete), [`flush`](SpatialStore::flush),
//!    [`begin_query`](SpatialStore::begin_query);
//! 2. **Queries** (`&self`) — [`window_query`](SpatialStore::window_query) /
//!    [`point_query`](SpatialStore::point_query) perform the filter step
//!    *and* transfer the exact representations, charging the simulated
//!    disk and returning a per-call [`QueryStats`] delta (measured
//!    against the calling thread's I/O tally, so deltas stay correct
//!    under concurrency);
//!    [`window_candidates`](SpatialStore::window_candidates) /
//!    [`point_candidates`](SpatialStore::point_candidates) re-read the
//!    filter result from the (now warm) directory without charging I/O,
//!    which is what the refinement step iterates over — the `_into`
//!    variants accept a scratch buffer so the hot path allocates nothing;
//! 3. **Bookkeeping** — occupancy, object sizes, buffer control, and
//!    access to the disk, pool and R\*-tree the store is built on.
//!
//! One part of the contract is not negotiable: every backend exposes an
//! R\*-tree over the object MBRs ([`tree`](SpatialStore::tree)). It is
//! the engine's spatial key index — the default candidate lookups read
//! it, and the spatial join's MBR phase performs a synchronized
//! traversal of both operands' trees (\[BKS93b\]). A backend is free to
//! organize the *exact representations* however it likes (that is the
//! dimension the paper varies); the MBR index always rides along.
//! [`crate::memory::MemoryStore`] shows the minimal embedding.

use crate::model::{QueryStats, SharedPool, TransferTechnique, WindowTechnique};
use crate::object::ObjectRecord;
use spatialdb_disk::{DiskHandle, IoKind, PageId, PageRequest, PageRun, RegionId};
use spatialdb_geom::{Point, Rect};
use spatialdb_rtree::{LeafEntry, NoIo, ObjectId, RStarTree, Tile, TilingParams, DEFAULT_STR_FILL};
use std::collections::HashSet;

/// The sort-tile-recursive half of a bulk load, produced by
/// [`SpatialStore::str_plan`]: the leaf entries to pack (payloads
/// already set to the store's accounting unit) and the tiling
/// capacities.
///
/// Planning takes `&self` and tiling is a pure function (see
/// [`spatialdb_rtree::bulk`]), so a driver may sort and tile the plan on
/// worker threads before handing the tiles back to `&mut self` via
/// [`SpatialStore::str_install`].
#[derive(Clone, Debug)]
pub struct StrPlan {
    /// One leaf entry per record, in record order (unsorted).
    pub entries: Vec<LeafEntry>,
    /// Packing capacities derived from the store's tree configuration.
    pub params: TilingParams,
}

/// A pluggable storage backend for spatial objects.
///
/// See the [module documentation](self) for the contract — in short:
/// query methods take `&self` and may be called from any thread, update
/// methods take `&mut self`. The paper's three organization models
/// ([`crate::SecondaryOrganization`], [`crate::PrimaryOrganization`],
/// [`crate::ClusterOrganization`]), the run-time-chosen
/// [`crate::Organization`] enum and the in-memory baseline
/// [`crate::MemoryStore`] all implement it.
pub trait SpatialStore: Send + Sync {
    /// Short name used in reports ("sec. org." / "prim. org." /
    /// "cluster org." / "memory").
    fn name(&self) -> &'static str;

    /// Insert a new object (§4.2.2 for the cluster organization).
    fn insert(&mut self, rec: &ObjectRecord);

    /// Insert a batch of objects in order (unsorted input, §5.2).
    ///
    /// The default loops over [`insert`](SpatialStore::insert); stores
    /// with a cheaper bulk path (sort-based packing, bottom-up build)
    /// can override it.
    fn bulk_load(&mut self, records: &[ObjectRecord]) {
        for rec in records {
            self.insert(rec);
        }
    }

    /// Delete an object. Returns `false` if it was not stored. Inserts
    /// and deletions can be intermixed with queries without any global
    /// reorganization (§4.1).
    fn delete(&mut self, oid: ObjectId) -> bool;

    /// Window query: filter via the R\*-tree, then transfer the exact
    /// representations of all candidates. `technique` selects the cluster
    /// organization's transfer strategy; other stores ignore it.
    ///
    /// Returns the statistics of **this call alone** (not cumulative
    /// counters): every implementation measures the delta against the
    /// calling thread's I/O tally
    /// ([`Disk::local_stats`](spatialdb_disk::Disk::local_stats)), so the
    /// delta is exact even while other threads charge the same disk.
    fn window_query(&self, window: &Rect, technique: WindowTechnique) -> QueryStats;

    /// Point query (§5.5): filter via the R\*-tree, then fetch the exact
    /// representation of each candidate individually. Per-call stats,
    /// like [`window_query`](SpatialStore::window_query).
    fn point_query(&self, point: &Point) -> QueryStats;

    /// The batched read path: run the window query **and capture its
    /// disk requests** as a replayable trace for the overlapped-I/O
    /// subsystem ([`spatialdb_disk::arm`]).
    ///
    /// The query executes synchronously — answers, [`QueryStats`] and
    /// charged [`spatialdb_disk::IoStats`] are exactly those of
    /// [`window_query`](SpatialStore::window_query) — while every
    /// request this thread charges is also recorded as a
    /// [`PageRequest`] (via [`spatialdb_disk::Disk::trace_begin`]). The
    /// executor replays the trace through the disk-arm scheduler to
    /// compute per-query latency. Analytical charges
    /// ([`spatialdb_disk::Disk::charge_raw`], the *optimum* baselines)
    /// have no physical page runs and are absent from the trace.
    fn window_query_traced(
        &self,
        window: &Rect,
        technique: WindowTechnique,
    ) -> (QueryStats, Vec<PageRequest>) {
        let disk = self.disk();
        disk.trace_begin();
        let stats = self.window_query(window, technique);
        (stats, disk.trace_take())
    }

    /// The batched read path of a point query — see
    /// [`window_query_traced`](SpatialStore::window_query_traced).
    fn point_query_traced(&self, point: &Point) -> (QueryStats, Vec<PageRequest>) {
        let disk = self.disk();
        disk.trace_begin();
        let stats = self.point_query(point);
        (stats, disk.trace_take())
    }

    /// The candidate entries of a window query, read from the in-memory
    /// directory without charging I/O, appended into a caller-supplied
    /// scratch buffer (cleared first).
    ///
    /// Meant to be called *after* [`window_query`](SpatialStore::window_query)
    /// transferred the exact representations: the refinement step
    /// iterates over these candidates against the exact geometry,
    /// reusing one buffer across queries instead of allocating per call.
    ///
    /// **This is the method the engine calls** (the query cursor and the
    /// parallel executor). A backend that sources candidates from
    /// somewhere other than [`tree`](SpatialStore::tree) must override
    /// the `_into` form; overriding only the allocating
    /// [`window_candidates`](SpatialStore::window_candidates) wrapper
    /// does not change what queries see.
    fn window_candidates_into(&self, window: &Rect, out: &mut Vec<LeafEntry>) {
        self.tree().window_entries_into(window, &mut NoIo, out)
    }

    /// The candidate entries of a point query, read without charging
    /// I/O, appended into a scratch buffer. Like
    /// [`window_candidates_into`](SpatialStore::window_candidates_into),
    /// this `_into` form is the engine's call point — override it, not
    /// the allocating wrapper.
    fn point_candidates_into(&self, point: &Point, out: &mut Vec<LeafEntry>) {
        self.tree().point_entries_into(point, &mut NoIo, out)
    }

    /// Allocating convenience wrapper around
    /// [`window_candidates_into`](SpatialStore::window_candidates_into).
    /// Not called by the engine; do not override it to change candidate
    /// sourcing.
    fn window_candidates(&self, window: &Rect) -> Vec<LeafEntry> {
        let mut out = Vec::new();
        self.window_candidates_into(window, &mut out);
        out
    }

    /// Allocating convenience wrapper around
    /// [`point_candidates_into`](SpatialStore::point_candidates_into).
    /// Not called by the engine; do not override it to change candidate
    /// sourcing.
    fn point_candidates(&self, point: &Point) -> Vec<LeafEntry> {
        let mut out = Vec::new();
        self.point_candidates_into(point, &mut out);
        out
    }

    /// Fetch one object's exact representation through the buffer (the
    /// join's object-transfer step for non-clustered stores).
    fn fetch_object(&self, oid: ObjectId);

    /// The join's object transfer (§6.2): fetch `oid`, batching the
    /// other join-relevant objects (`needed`) that live nearby according
    /// to `technique`.
    ///
    /// The default ignores the batching hints and fetches the single
    /// object; the cluster organization overrides it to transfer whole
    /// cluster units / SLM schedules.
    fn fetch_for_join(
        &self,
        oid: ObjectId,
        needed: &HashSet<ObjectId>,
        technique: TransferTechnique,
    ) {
        let _ = (needed, technique);
        self.fetch_object(oid);
    }

    /// A shadow copy of this store for the copy-on-write write path:
    /// an independent `SpatialStore` observing the same simulated disk
    /// and buffer pool, sharing all unmodified R\*-tree nodes with
    /// `self` (the tree's node table is copy-on-write, so the copy is
    /// a pointer-table clone and a writer materializes shadow pages
    /// only for the nodes it touches).
    ///
    /// The engine's concurrent writers (`SpatialDatabase`'s `&self`
    /// update path) build every commit on a snapshot and publish it
    /// atomically; readers keep traversing the superseded copy until
    /// epoch reclamation frees it. Taking the snapshot itself charges
    /// no I/O — the commit's page traffic is charged by the update
    /// applied to it, identically to the exclusive (`&mut`) path.
    ///
    /// The default panics: a foreign backend without an override
    /// still supports the full exclusive API, just not `&self`
    /// writers.
    fn snapshot(&self) -> Box<dyn SpatialStore> {
        unimplemented!(
            "SpatialStore backend {:?} has no snapshot() override; \
             concurrent (&self) writers need one — the exclusive (&mut) \
             update path works without it",
            self.name()
        )
    }

    /// Total pages occupied (Figure 6's storage-utilization measure).
    fn occupied_pages(&self) -> u64;

    /// Number of stored objects.
    fn num_objects(&self) -> usize;

    /// `true` if `oid` is currently stored.
    fn contains(&self, oid: ObjectId) -> bool;

    /// The simulated disk.
    fn disk(&self) -> DiskHandle;

    /// The shared buffer pool.
    fn pool(&self) -> SharedPool;

    /// The R\*-tree (for the join's MBR phase and diagnostics).
    fn tree(&self) -> &RStarTree;

    /// Write back all dirty buffered pages (end of construction).
    fn flush(&mut self);

    /// Start a cold query: drop all object pages from the buffer and
    /// (re-)pin the directory pages, which are assumed memory-resident
    /// during query processing.
    fn begin_query(&mut self);

    /// Size in bytes of a stored object.
    fn object_size(&self, oid: ObjectId) -> u32;

    /// Plan an STR bulk load: one leaf entry per record, with the
    /// payload the store accounts per entry (0 for the secondary and
    /// memory organizations; the inline/overflow byte cost for the
    /// primary; the exact size for the cluster), plus the tiling
    /// capacities at [`DEFAULT_STR_FILL`].
    ///
    /// Takes `&self`: a parallel driver plans once, then sorts and
    /// tiles on worker threads.
    fn str_plan(&self, records: &[ObjectRecord]) -> StrPlan {
        StrPlan {
            entries: records
                .iter()
                .map(|r| LeafEntry::new(r.mbr, r.oid, 0))
                .collect(),
            params: TilingParams::from_config(self.tree().config(), DEFAULT_STR_FILL),
        }
    }

    /// The region the packed tree's data pages are written to, or
    /// `None` when building the tree charges no I/O (the in-memory
    /// baseline, or a foreign backend without the bottom-up path).
    ///
    /// The **caller** of [`str_install`](SpatialStore::str_install)
    /// charges one sequential write run of `tiles.len()` pages against
    /// this region — that split lets a partitioned driver charge each
    /// partition's leaf run on the worker thread that packed it.
    fn str_tree_region(&self) -> Option<RegionId> {
        None
    }

    /// Install pre-tiled leaves: build the packed tree bottom-up and
    /// place the exact representations tile by tile. `tiles` must come
    /// from this store's own [`str_plan`](SpatialStore::str_plan)
    /// (sorted with [`spatialdb_rtree::bulk::sort_entries`] and tiled
    /// with the plan's params), and the store must be empty.
    ///
    /// Charges everything **except** the leaf-level write run, which
    /// the caller already charged per the
    /// [`str_tree_region`](SpatialStore::str_tree_region) contract.
    ///
    /// The default (for foreign backends without a bottom-up build)
    /// falls back to inserting the records in tile order — same
    /// answers, insertion-built structure.
    fn str_install(&mut self, records: &[ObjectRecord], tiles: Vec<Tile>, params: &TilingParams) {
        let _ = params;
        let by_oid: std::collections::HashMap<ObjectId, &ObjectRecord> =
            records.iter().map(|r| (r.oid, r)).collect();
        for tile in tiles {
            for e in tile {
                self.insert(by_oid[&e.oid]);
            }
        }
    }

    /// Sequential STR bulk load: plan, sort, tile, charge the leaf-run
    /// write, install. The parallel driver in `spatialdb-core`
    /// distributes exactly this pipeline over scoped threads and
    /// produces a byte-identical store at every thread count.
    ///
    /// The store must be empty. Compared to
    /// [`bulk_load`](SpatialStore::bulk_load) (the insertion loop) the
    /// resulting tree is packed at the configured fill factor and the
    /// build charges sequential writes instead of per-insertion
    /// directory traffic.
    fn bulk_load_str(&mut self, records: &[ObjectRecord]) {
        let StrPlan { entries, params } = self.str_plan(records);
        let tiles = spatialdb_rtree::bulk::plan_tiles(entries, &params);
        if let Some(region) = self.str_tree_region() {
            if !tiles.is_empty() {
                self.disk().charge(
                    IoKind::Write,
                    PageRun::new(PageId::new(region, 0), tiles.len() as u64),
                    false,
                );
            }
        }
        self.str_install(records, tiles, &params);
    }
}

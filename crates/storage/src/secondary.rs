//! The secondary organization (§3.2.1).
//!
//! The R\*-tree stores the approximations (MBRs) and pointers; the exact
//! representations live in a sequential file in insertion order. The
//! spatial access method is a primary index for the approximations but
//! only a *secondary* index for the objects — spatially adjacent objects
//! are scattered over the file, so *"when processing window queries, each
//! access to an exact object representation needs an additional seek
//! operation"*.

use crate::model::{QueryStats, SharedPool, WindowTechnique};
use crate::object::ObjectRecord;
use crate::packer::PagePacker;
use crate::store::SpatialStore;
use spatialdb_disk::{DiskHandle, IoKind, PageId, PageRun, RegionId, SeekPolicy, PAGE_SIZE};
use spatialdb_geom::{Point, Rect};
use spatialdb_rtree::{bulk, LeafEntry, ObjectId, RStarTree, RTreeConfig, Tile, TilingParams};
use std::collections::HashMap;

/// The secondary organization.
#[derive(Clone, Debug)]
pub struct SecondaryOrganization {
    disk: DiskHandle,
    pool: SharedPool,
    tree: RStarTree,
    tree_region: RegionId,
    file_region: RegionId,
    packer: PagePacker,
    locations: HashMap<ObjectId, PageRun>,
    sizes: HashMap<ObjectId, u32>,
    mbrs: HashMap<ObjectId, Rect>,
    /// Bytes freed by deletions; the sequential file never reclaims them
    /// (holes stay, as an insertion-ordered file implies).
    freed_bytes: u64,
}

impl SecondaryOrganization {
    /// Create an empty secondary organization on `disk`, buffered by
    /// `pool`.
    pub fn new(disk: DiskHandle, pool: SharedPool) -> Self {
        let tree_region = disk.create_region("sec:tree");
        let file_region = disk.create_region("sec:objects");
        let tree = RStarTree::new(RTreeConfig::paper_default(PAGE_SIZE), tree_region);
        SecondaryOrganization {
            disk,
            pool,
            tree,
            tree_region,
            file_region,
            packer: PagePacker::new(PAGE_SIZE as u64),
            locations: HashMap::new(),
            sizes: HashMap::new(),
            mbrs: HashMap::new(),
            freed_bytes: 0,
        }
    }

    /// Bytes occupied by deleted objects (holes in the sequential file).
    pub fn dead_bytes(&self) -> u64 {
        self.freed_bytes
    }

    /// Absolute pages of an object in the sequential file.
    fn object_pages(&self, oid: ObjectId) -> Vec<PageId> {
        let run = self.locations[&oid];
        run.pages().collect()
    }

    /// Read the exact representations of `oids` one object at a time:
    /// §3.2.1 — *"each access to an exact object representation needs an
    /// additional seek operation"*. The buffer absorbs objects sharing a
    /// page; no cross-object request merging happens (the system chases
    /// one pointer per candidate).
    fn read_objects(&self, oids: &[ObjectId]) {
        for oid in oids {
            let pages = self.object_pages(*oid);
            self.pool.read_set(&pages, SeekPolicy::PerRequest);
        }
    }
}

impl SpatialStore for SecondaryOrganization {
    fn name(&self) -> &'static str {
        "sec. org."
    }

    fn snapshot(&self) -> Box<dyn SpatialStore> {
        Box::new(self.clone())
    }

    fn insert(&mut self, rec: &ObjectRecord) {
        // 1. Insert the MBR + pointer into the regular R*-tree.
        let entry = LeafEntry::new(rec.mbr, rec.oid, 0);
        self.tree.insert(entry, &mut self.pool.as_ref());
        // 2. Append the exact representation to the sequential file.
        //    The arm has moved (tree I/O in between), so every append is
        //    its own request.
        let placement = self.packer.place(u64::from(rec.size_bytes));
        let run = PageRun::new(
            PageId::new(self.file_region, placement.first_page),
            placement.num_pages,
        );
        self.disk.charge(IoKind::Write, run, false);
        self.locations.insert(rec.oid, run);
        self.sizes.insert(rec.oid, rec.size_bytes);
        self.mbrs.insert(rec.oid, rec.mbr);
    }

    fn window_query(&self, window: &Rect, _technique: WindowTechnique) -> QueryStats {
        let before = self.disk.local_stats();
        let candidates = self.tree.window_entries(window, &mut self.pool.as_ref());
        let oids: Vec<ObjectId> = candidates.iter().map(|e| e.oid).collect();
        self.read_objects(&oids);
        QueryStats {
            candidates: oids.len(),
            result_bytes: oids.iter().map(|o| u64::from(self.sizes[o])).sum(),
            io_ms: self.disk.local_stats().since(&before).io_ms,
        }
    }

    fn point_query(&self, point: &Point) -> QueryStats {
        let before = self.disk.local_stats();
        let candidates = self.tree.point_entries(point, &mut self.pool.as_ref());
        let oids: Vec<ObjectId> = candidates.iter().map(|e| e.oid).collect();
        self.read_objects(&oids);
        QueryStats {
            candidates: oids.len(),
            result_bytes: oids.iter().map(|o| u64::from(self.sizes[o])).sum(),
            io_ms: self.disk.local_stats().since(&before).io_ms,
        }
    }

    fn fetch_object(&self, oid: ObjectId) {
        let pages = self.object_pages(oid);
        self.pool.read_set(&pages, SeekPolicy::PerRequest);
    }

    fn occupied_pages(&self) -> u64 {
        self.tree.allocated_pages() + self.packer.pages_used()
    }

    fn num_objects(&self) -> usize {
        self.sizes.len()
    }

    fn contains(&self, oid: ObjectId) -> bool {
        self.sizes.contains_key(&oid)
    }

    fn disk(&self) -> DiskHandle {
        self.disk.clone()
    }

    fn pool(&self) -> SharedPool {
        self.pool.clone()
    }

    fn tree(&self) -> &RStarTree {
        &self.tree
    }

    fn flush(&mut self) {
        self.pool.flush();
    }

    fn begin_query(&mut self) {
        self.pool
            .invalidate_regions(&[self.tree_region, self.file_region]);
        crate::model::warm_directory(&self.pool, &self.tree);
    }

    fn object_size(&self, oid: ObjectId) -> u32 {
        self.sizes[&oid]
    }

    fn delete(&mut self, oid: ObjectId) -> bool {
        let Some(mbr) = self.mbrs.remove(&oid) else {
            return false;
        };
        let outcome = self.tree.delete(oid, &mbr, &mut self.pool.as_ref());
        debug_assert!(outcome.removed, "index out of sync for {oid}");
        self.locations.remove(&oid);
        if let Some(size) = self.sizes.remove(&oid) {
            self.freed_bytes += u64::from(size);
        }
        true
    }

    fn str_tree_region(&self) -> Option<RegionId> {
        Some(self.tree_region)
    }

    fn str_install(&mut self, records: &[ObjectRecord], tiles: Vec<Tile>, params: &TilingParams) {
        assert!(self.sizes.is_empty(), "STR install requires an empty store");
        let build = bulk::build_tree(self.tree.config().clone(), self.tree_region, tiles, params);
        for run in build.level_runs.iter().skip(1) {
            self.disk.charge(IoKind::Write, *run, false);
        }
        for rec in records {
            self.sizes.insert(rec.oid, rec.size_bytes);
            self.mbrs.insert(rec.oid, rec.mbr);
        }
        // Lay the sequential file out in tile order: one sealed,
        // contiguous byte range per data page of the tree, written as
        // one sequential request. Spatially adjacent objects become
        // file-adjacent — the big STR win for this organization.
        for (_, leaf) in build.tree.leaves() {
            let first = self.packer.pages_used();
            for e in leaf.leaf_entries() {
                let placement = self.packer.place(u64::from(self.sizes[&e.oid]));
                self.locations.insert(
                    e.oid,
                    PageRun::new(
                        PageId::new(self.file_region, placement.first_page),
                        placement.num_pages,
                    ),
                );
            }
            self.packer.seal();
            let len = self.packer.pages_used() - first;
            self.disk.charge(
                IoKind::Write,
                PageRun::new(PageId::new(self.file_region, first), len),
                false,
            );
        }
        self.tree = build.tree;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::new_shared_pool;
    use spatialdb_disk::Disk;
    use spatialdb_rtree::validate::check_invariants;

    fn org_with(n: u64) -> SecondaryOrganization {
        let disk = Disk::with_defaults();
        let pool = new_shared_pool(disk.clone(), 512);
        let mut org = SecondaryOrganization::new(disk, pool);
        for i in 0..n {
            let x = (i % 40) as f64 / 40.0;
            let y = (i / 40) as f64 / 40.0;
            org.insert(&ObjectRecord::new(
                ObjectId(i),
                Rect::new(x, y, x + 0.01, y + 0.01),
                600 + (i % 100) as u32,
            ));
        }
        org.flush();
        org
    }

    #[test]
    fn insert_stores_and_indexes() {
        let org = org_with(200);
        assert_eq!(org.num_objects(), 200);
        assert_eq!(org.tree().len(), 200);
        check_invariants(org.tree()).unwrap();
    }

    #[test]
    fn sequential_file_is_dense() {
        let org = org_with(500);
        // ~650 B objects, 5–6 per page with internal clustering: the
        // file stays within 25% of the dense byte packing.
        let total: u64 = (0..500u64).map(|i| 600 + i % 100).sum();
        let dense = total.div_ceil(4096);
        assert!(
            org.packer.pages_used() <= dense + dense / 4,
            "pages {} vs dense {dense}",
            org.packer.pages_used()
        );
    }

    #[test]
    fn window_query_returns_candidates_and_cost() {
        let mut org = org_with(400);
        org.begin_query();
        let q = org.window_query(&Rect::new(0.0, 0.0, 0.5, 0.5), WindowTechnique::Complete);
        assert!(q.candidates > 0);
        assert!(q.result_bytes > 0);
        assert!(q.io_ms > 0.0);
    }

    #[test]
    fn scattered_objects_pay_separate_seeks() {
        let mut org = org_with(400);
        org.begin_query();
        let before = org.disk().stats();
        let q = org.window_query(&Rect::new(0.0, 0.0, 1.0, 1.0), WindowTechnique::Complete);
        let stats = org.disk().stats().since(&before);
        // Each read request paid a seek (PerRequest policy).
        assert_eq!(stats.seeks, stats.read_requests);
        assert_eq!(q.candidates, 400);
    }

    #[test]
    fn traced_window_query_replays_to_identical_cost() {
        let mut org = org_with(400);
        org.begin_query();
        let before = org.disk().stats();
        let (stats, trace) =
            org.window_query_traced(&Rect::new(0.0, 0.0, 0.5, 0.5), WindowTechnique::Complete);
        let delta = org.disk().stats().since(&before);
        assert!(stats.candidates > 0);
        assert_eq!(trace.len() as u64, delta.requests());
        // Every scattered object access paid its own seek — the traced
        // requests carry that (no skip_seek flags, §3.2.1).
        assert!(trace.iter().all(|r| !r.skip_seek));
        // Depth-1 replay through a fresh arm: identical charged stats.
        let replay = Disk::with_defaults();
        for req in &trace {
            replay.submit(*req);
            replay.complete_next();
        }
        assert_eq!(replay.stats(), delta);
    }

    #[test]
    fn point_query_cheap_and_correct() {
        let mut org = org_with(400);
        org.begin_query();
        let q = org.point_query(&Point::new(0.105, 0.005));
        assert!(q.candidates >= 1);
        // Directory is warm: only the leaf + the object pages are read.
        assert!(q.io_ms <= 4.0 * 16.0, "io {}", q.io_ms);
    }

    #[test]
    fn occupied_pages_counts_tree_and_file() {
        let org = org_with(300);
        assert!(org.occupied_pages() > org.packer.pages_used());
    }

    #[test]
    fn delete_unindexes_object() {
        let mut org = org_with(200);
        assert!(org.delete(ObjectId(7)));
        assert!(!org.delete(ObjectId(7)));
        assert_eq!(org.num_objects(), 199);
        assert_eq!(org.dead_bytes(), 607); // 600 + 7 % 100
        check_invariants(org.tree()).unwrap();
        org.begin_query();
        let q = org.window_query(&Rect::new(0.0, 0.0, 1.0, 1.0), WindowTechnique::Complete);
        assert_eq!(q.candidates, 199);
    }

    #[test]
    fn begin_query_warms_directory() {
        let mut org = org_with(300);
        org.begin_query();
        let before = org.disk().stats();
        // A second begin_query + query should not re-read directory pages.
        org.begin_query();
        org.point_query(&Point::new(2.0, 2.0)); // off-data point
        let after = org.disk().stats().since(&before);
        assert_eq!(after.read_requests, 0);
    }
}

//! The storage layer's view of a spatial object.

use spatialdb_geom::Rect;
use spatialdb_rtree::ObjectId;

/// What an organization model needs to know about an object: its id, its
/// MBR (the spatial key) and the byte size of its exact representation.
///
/// The exact geometry itself never enters the storage layer — the
/// simulation is driven by I/O cost, and the refinement step's CPU cost
/// is charged separately (§6.3 of the paper charges 0.75 msec per exact
/// geometry test).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ObjectRecord {
    /// Object identifier.
    pub oid: ObjectId,
    /// Minimum bounding rectangle.
    pub mbr: Rect,
    /// Size of the exact representation in bytes.
    pub size_bytes: u32,
}

impl ObjectRecord {
    /// Create a record.
    pub fn new(oid: ObjectId, mbr: Rect, size_bytes: u32) -> Self {
        assert!(size_bytes > 0, "zero-sized object {oid}");
        ObjectRecord {
            oid,
            mbr,
            size_bytes,
        }
    }

    /// Number of pages the object minimally occupies.
    pub fn min_pages(&self, page_bytes: u64) -> u64 {
        u64::from(self.size_bytes).div_ceil(page_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_pages() {
        let r = ObjectRecord::new(ObjectId(1), Rect::new(0.0, 0.0, 1.0, 1.0), 625);
        assert_eq!(r.min_pages(4096), 1);
        let big = ObjectRecord::new(ObjectId(2), Rect::new(0.0, 0.0, 1.0, 1.0), 9000);
        assert_eq!(big.min_pages(4096), 3);
    }

    #[test]
    #[should_panic(expected = "zero-sized object")]
    fn rejects_zero_size() {
        ObjectRecord::new(ObjectId(1), Rect::new(0.0, 0.0, 1.0, 1.0), 0);
    }
}

//! # spatialdb-storage
//!
//! The pluggable [`SpatialStore`] storage interface, the three
//! *organization models* implementing it for storing large sets of
//! spatial objects (§3.2 of Brinkhoff & Kriegel, VLDB 1994), and the
//! query techniques evaluated on top of them (§5.4):
//!
//! * [`SecondaryOrganization`] — R\*-tree over MBRs + pointers; exact
//!   representations in a sequential file in insertion order. Maximum
//!   local clustering of the *approximations*, none of the objects.
//! * [`PrimaryOrganization`] — exact representations stored inside the
//!   R\*-tree data pages; objects larger than a page overflow into a
//!   separate internally-clustered file.
//! * [`ClusterOrganization`] — the paper's contribution (§4): data pages
//!   hold only MBR entries, and each data page references one *cluster
//!   unit* of physically consecutive pages holding the exact
//!   representations of its objects. The modified R\*-tree performs no
//!   leaf-level reinsert and splits on the `Smax` byte bound (*cluster
//!   split*). Cluster units live in buddies ([`spatialdb_disk::buddy`]).
//!
//! Window queries on the cluster organization support the techniques of
//! §5.4 via [`WindowTechnique`]: *complete* cluster transfer, the
//! *geometric threshold* \[BKS93a\], the *SLM* read schedules \[SLM93\],
//! plain *page-by-page* access, and the *optimum* lower bound.
//!
//! All I/O flows through a shared [`spatialdb_disk::BufferPool`]; the
//! construction, storage-utilization and query figures of the paper
//! (Figures 5–12) are produced by driving these models.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod memory;
pub mod model;
pub mod object;
pub mod packer;
pub mod primary;
pub mod secondary;
pub mod store;

pub use cluster::{ClusterConfig, ClusterOrganization};
pub use memory::MemoryStore;
pub use model::{
    new_shared_pool, new_shared_pool_with_routing, new_shared_pool_with_shards, Organization,
    OrganizationKind, QueryStats, SharedPool, TransferTechnique, WindowTechnique,
};
pub use object::ObjectRecord;
pub use packer::{PagePacker, Placement};
pub use primary::PrimaryOrganization;
pub use secondary::SecondaryOrganization;
pub use spatialdb_disk::Routing;
pub use store::{SpatialStore, StrPlan};

/// Legacy name of [`SpatialStore`], kept so pre-redesign imports keep
/// compiling. Prefer `SpatialStore`.
pub use store::SpatialStore as OrganizationModel;

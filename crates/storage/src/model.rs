//! Shared vocabulary of the storage layer: techniques, per-query
//! statistics, the shared buffer pool, and the [`Organization`] enum that
//! picks one of the paper's models at run time.
//!
//! The storage *interface* itself is the [`SpatialStore`] trait in
//! [`crate::store`].

use crate::cluster::ClusterOrganization;
use crate::object::ObjectRecord;
use crate::primary::PrimaryOrganization;
use crate::secondary::SecondaryOrganization;
use crate::store::SpatialStore;
use spatialdb_disk::{DiskHandle, Routing, ShardedPool};
use spatialdb_geom::{Point, Rect};
use spatialdb_rtree::{ObjectId, RStarTree};
use std::collections::HashSet;
use std::sync::Arc;

/// A buffer pool shared between the components of one experiment
/// (both maps of a join share one pool, as in §6.1).
///
/// The pool is the engine's single page-replacement state under one
/// capacity budget; since the sharding refactor it is a
/// [`ShardedPool`] — page accesses lock only the shard their page
/// hashes to, so concurrent readers touching disjoint pages no longer
/// serialize on one pool-wide mutex. [`new_shared_pool`] creates the
/// deterministic 1-shard configuration (byte-identical stats to the
/// classic single-lock pool — the paper's figures); use
/// [`new_shared_pool_with_shards`] for concurrent-throughput workloads.
pub type SharedPool = Arc<ShardedPool>;

/// Create a shared pool of `capacity` pages over `disk` with a single
/// shard — the deterministic configuration every experiment runs under.
pub fn new_shared_pool(disk: DiskHandle, capacity: usize) -> SharedPool {
    Arc::new(ShardedPool::new(disk, capacity))
}

/// Create a shared pool of `capacity` total pages split across
/// `shards` page-hash shards (at least one). More shards reduce lock
/// contention between concurrent readers; the per-shard LRU horizons
/// make `io_ms` differ from the 1-shard figure (hit/miss totals are
/// conserved for a fixed access sequence).
pub fn new_shared_pool_with_shards(disk: DiskHandle, capacity: usize, shards: usize) -> SharedPool {
    Arc::new(ShardedPool::with_shards(disk, capacity, shards))
}

/// Create a shared pool with an explicit shard [`Routing`] mode:
/// [`Routing::ByRegion`] keys whole regions to shards, giving each
/// database file its own lock domain (coarser spreading, zero cross-file
/// contention); [`Routing::ByPage`] is the default page-hash spreading.
pub fn new_shared_pool_with_routing(
    disk: DiskHandle,
    capacity: usize,
    shards: usize,
    routing: Routing,
) -> SharedPool {
    Arc::new(ShardedPool::with_routing(disk, capacity, shards, routing))
}

/// Technique for transferring the objects of a window query from a
/// cluster unit (§5.4). Only the cluster organization distinguishes
/// them; the other models have a single natural access path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WindowTechnique {
    /// Transfer the complete cluster unit as soon as one of its objects
    /// qualifies (the paper's simplest technique, used in Figure 8).
    Complete,
    /// Geometric threshold (§5.4.1): compare the window/cluster-region
    /// degree of overlap to `T(c) = t_compl(c)/t_page`; read page-by-page
    /// below the threshold, completely above it.
    Threshold,
    /// SLM read schedules (§5.4.2): one request bridges gaps of
    /// non-requested pages shorter than `t_l/t_t − 1/2`.
    Slm,
    /// Always page-by-page: one request per qualifying object.
    PageByPage,
    /// The optimum baseline of Figure 10: one seek + one rotational delay
    /// per cluster unit plus the minimum number of page transfers.
    Optimum,
}

/// Technique for transferring objects during spatial-join processing
/// (§6.2, Figures 15–16).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransferTechnique {
    /// Always read the complete cluster unit.
    Complete,
    /// SLM schedule over the join-relevant objects; only requested pages
    /// are kept in the buffer (Figure 15 bottom).
    VectorRead,
    /// SLM schedule; all transferred pages are kept (Figure 15 top).
    Read,
    /// Optimum baseline of Figure 16: one seek + one latency per cluster
    /// unit visit, transferring only pages with queried data.
    Optimum,
}

/// Result of one query against an organization model.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QueryStats {
    /// Number of candidate objects (MBR filter matches).
    pub candidates: usize,
    /// Total exact-representation bytes of the candidates — the "amount
    /// of data queried" the paper normalizes by (msec / 4 KB).
    pub result_bytes: u64,
    /// Simulated I/O time of the query in milliseconds.
    pub io_ms: f64,
}

impl QueryStats {
    /// The paper's normalized cost: I/O milliseconds per 4 KB of queried
    /// data (Figures 8, 10, 12). Returns `None` when nothing qualified.
    #[must_use = "the normalized cost is the figure's data point"]
    pub fn ms_per_4kb(&self) -> Option<f64> {
        if self.result_bytes == 0 {
            None
        } else {
            Some(self.io_ms / (self.result_bytes as f64 / 4096.0))
        }
    }

    /// Accumulate another query's stats (for averaging over a query set).
    pub fn accumulate(&mut self, other: &QueryStats) {
        self.candidates += other.candidates;
        self.result_bytes += other.result_bytes;
        self.io_ms += other.io_ms;
    }
}

/// Warm and pin the tree's directory pages in the buffer, highest levels
/// first, up to half the buffer capacity.
///
/// Models the standard assumption that the index directory is
/// memory-resident during query processing — but only as far as it fits:
/// the primary organization's directory grows with the object size (a
/// C-series data page holds a single object, so there are as many leaves
/// as objects) and no longer fits, which is what makes its selective
/// queries degrade (§5.5).
pub fn warm_directory(pool: &ShardedPool, tree: &RStarTree) {
    let budget = pool.capacity() / 2;
    let mut dirs: Vec<(u32, spatialdb_disk::PageId)> = tree
        .nodes()
        .filter(|(_, n)| !n.is_leaf())
        .map(|(_, n)| (n.level, n.page))
        .collect();
    // Root first, then descending level.
    dirs.sort_by_key(|d| std::cmp::Reverse(d.0));
    pool.warm_pinned(dirs.into_iter().take(budget).map(|(_, p)| p));
}

/// Which organization model (for experiment configuration).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OrganizationKind {
    /// Secondary organization (§3.2.1).
    Secondary,
    /// Primary organization (§3.2.2).
    Primary,
    /// Cluster organization (§4).
    Cluster,
}

impl std::fmt::Display for OrganizationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrganizationKind::Secondary => write!(f, "sec. org."),
            OrganizationKind::Primary => write!(f, "prim. org."),
            OrganizationKind::Cluster => write!(f, "cluster org."),
        }
    }
}

/// An organization model chosen at run time (the experiment harness
/// iterates over all three).
#[derive(Clone, Debug)]
pub enum Organization {
    /// Secondary organization.
    Secondary(SecondaryOrganization),
    /// Primary organization.
    Primary(PrimaryOrganization),
    /// Cluster organization.
    Cluster(ClusterOrganization),
}

macro_rules! delegate {
    ($self:ident, $inner:ident => $body:expr) => {
        match $self {
            Organization::Secondary($inner) => $body,
            Organization::Primary($inner) => $body,
            Organization::Cluster($inner) => $body,
        }
    };
}

impl Organization {
    /// The cluster organization, if that is what this is.
    pub fn as_cluster(&mut self) -> Option<&mut ClusterOrganization> {
        match self {
            Organization::Cluster(c) => Some(c),
            _ => None,
        }
    }

    /// Which kind this is.
    pub fn kind(&self) -> OrganizationKind {
        match self {
            Organization::Secondary(_) => OrganizationKind::Secondary,
            Organization::Primary(_) => OrganizationKind::Primary,
            Organization::Cluster(_) => OrganizationKind::Cluster,
        }
    }
}

impl SpatialStore for Organization {
    fn name(&self) -> &'static str {
        delegate!(self, o => o.name())
    }

    fn snapshot(&self) -> Box<dyn SpatialStore> {
        Box::new(self.clone())
    }

    fn insert(&mut self, rec: &ObjectRecord) {
        delegate!(self, o => o.insert(rec))
    }

    fn bulk_load(&mut self, records: &[ObjectRecord]) {
        delegate!(self, o => o.bulk_load(records))
    }

    fn window_query(&self, window: &Rect, technique: WindowTechnique) -> QueryStats {
        delegate!(self, o => o.window_query(window, technique))
    }

    fn point_query(&self, point: &Point) -> QueryStats {
        delegate!(self, o => o.point_query(point))
    }

    // window_candidates / point_candidates use the trait defaults: they
    // read tree(), which already delegates to the variant.

    fn fetch_object(&self, oid: ObjectId) {
        delegate!(self, o => o.fetch_object(oid))
    }

    fn fetch_for_join(
        &self,
        oid: ObjectId,
        needed: &HashSet<ObjectId>,
        technique: TransferTechnique,
    ) {
        delegate!(self, o => o.fetch_for_join(oid, needed, technique))
    }

    fn occupied_pages(&self) -> u64 {
        delegate!(self, o => o.occupied_pages())
    }

    fn num_objects(&self) -> usize {
        delegate!(self, o => o.num_objects())
    }

    fn contains(&self, oid: ObjectId) -> bool {
        delegate!(self, o => o.contains(oid))
    }

    fn disk(&self) -> DiskHandle {
        delegate!(self, o => o.disk())
    }

    fn pool(&self) -> SharedPool {
        delegate!(self, o => o.pool())
    }

    fn tree(&self) -> &RStarTree {
        delegate!(self, o => o.tree())
    }

    fn flush(&mut self) {
        delegate!(self, o => o.flush())
    }

    fn begin_query(&mut self) {
        delegate!(self, o => o.begin_query())
    }

    fn object_size(&self, oid: ObjectId) -> u32 {
        delegate!(self, o => o.object_size(oid))
    }

    fn delete(&mut self, oid: ObjectId) -> bool {
        delegate!(self, o => o.delete(oid))
    }

    fn str_plan(&self, records: &[ObjectRecord]) -> crate::store::StrPlan {
        delegate!(self, o => o.str_plan(records))
    }

    fn str_tree_region(&self) -> Option<spatialdb_disk::RegionId> {
        delegate!(self, o => o.str_tree_region())
    }

    fn str_install(
        &mut self,
        records: &[ObjectRecord],
        tiles: Vec<spatialdb_rtree::Tile>,
        params: &spatialdb_rtree::TilingParams,
    ) {
        delegate!(self, o => o.str_install(records, tiles, params))
    }

    fn bulk_load_str(&mut self, records: &[ObjectRecord]) {
        delegate!(self, o => o.bulk_load_str(records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_per_4kb_normalization() {
        let q = QueryStats {
            candidates: 10,
            result_bytes: 8192,
            io_ms: 50.0,
        };
        assert_eq!(q.ms_per_4kb(), Some(25.0));
        let empty = QueryStats::default();
        assert_eq!(empty.ms_per_4kb(), None);
    }

    #[test]
    fn accumulate_sums() {
        let mut a = QueryStats {
            candidates: 1,
            result_bytes: 100,
            io_ms: 5.0,
        };
        a.accumulate(&QueryStats {
            candidates: 2,
            result_bytes: 300,
            io_ms: 7.0,
        });
        assert_eq!(a.candidates, 3);
        assert_eq!(a.result_bytes, 400);
        assert_eq!(a.io_ms, 12.0);
    }

    #[test]
    fn storage_stack_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedPool>();
        assert_send_sync::<Organization>();
        assert_send_sync::<Box<dyn SpatialStore>>();
        assert_send_sync::<crate::MemoryStore>();
    }

    #[test]
    fn kind_display_matches_paper_labels() {
        assert_eq!(OrganizationKind::Secondary.to_string(), "sec. org.");
        assert_eq!(OrganizationKind::Primary.to_string(), "prim. org.");
        assert_eq!(OrganizationKind::Cluster.to_string(), "cluster org.");
    }
}

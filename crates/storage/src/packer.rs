//! Byte-level placement of objects into pages with *internal clustering*.
//!
//! §3.1 of the paper defines internal clustering: the complete
//! representation of one object is stored in one page if it fits into the
//! free space of the page; otherwise the object is stored on multiple
//! physically consecutive pages, occupying at most one page more than the
//! minimum. [`PagePacker`] implements that policy over a growing byte
//! space — it is used by the secondary organization's sequential file,
//! by each cluster unit, and (in exclusive mode) by the primary
//! organization's overflow file.

/// Placement of one object: its first page and page count, relative to
/// the start of the packed space.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Placement {
    /// First page (0-based, relative).
    pub first_page: u64,
    /// Number of consecutive pages the object touches.
    pub num_pages: u64,
}

impl Placement {
    /// Relative page offsets covered by this placement.
    pub fn page_offsets(&self) -> impl Iterator<Item = u64> {
        self.first_page..self.first_page + self.num_pages
    }
}

/// Sequential page packer with internal clustering.
#[derive(Clone, Debug)]
pub struct PagePacker {
    page_bytes: u64,
    /// Pages fully or partially used so far.
    pages_used: u64,
    /// Free bytes remaining in the last used page.
    tail_free: u64,
}

impl PagePacker {
    /// Create a packer for pages of `page_bytes` bytes.
    pub fn new(page_bytes: u64) -> Self {
        assert!(page_bytes > 0);
        PagePacker {
            page_bytes,
            pages_used: 0,
            tail_free: 0,
        }
    }

    /// Place an object of `size` bytes with internal clustering: in the
    /// current tail page if it fits into its free space, otherwise on
    /// fresh consecutive pages.
    pub fn place(&mut self, size: u64) -> Placement {
        assert!(size > 0, "cannot place a zero-sized object");
        if size <= self.tail_free {
            self.tail_free -= size;
            Placement {
                first_page: self.pages_used - 1,
                num_pages: 1,
            }
        } else {
            self.place_exclusive(size)
        }
    }

    /// Place an object on fresh pages regardless of tail free space
    /// (the primary organization's overflow file: *"such objects occupied
    /// their individual pages exclusively"*). Subsequent [`Self::place`]
    /// calls may still share the new tail page; call
    /// [`Self::seal`] afterwards to prevent that.
    pub fn place_exclusive(&mut self, size: u64) -> Placement {
        assert!(size > 0, "cannot place a zero-sized object");
        let pages = size.div_ceil(self.page_bytes);
        let p = Placement {
            first_page: self.pages_used,
            num_pages: pages,
        };
        self.pages_used += pages;
        self.tail_free = pages * self.page_bytes - size;
        p
    }

    /// Forget the tail free space so the next object starts a fresh page.
    pub fn seal(&mut self) {
        self.tail_free = 0;
    }

    /// Pages used so far.
    #[inline]
    pub fn pages_used(&self) -> u64 {
        self.pages_used
    }

    /// Bytes still free in the tail page.
    #[inline]
    pub fn tail_free(&self) -> u64 {
        self.tail_free
    }
}

/// Byte-contiguous packer for cluster units.
///
/// Within a cluster unit an object is stored contiguously but may straddle
/// page boundaries: the whole unit sits on physically consecutive pages,
/// so a straddling object is still read with a single request — internal
/// clustering in the sense of §3.1 is preserved without per-page fitting.
/// This guarantees that a unit with ≤ `Smax` payload bytes occupies
/// ≤ `Smax` pages.
#[derive(Clone, Debug, Default)]
pub struct BytePacker {
    used_bytes: u64,
}

impl BytePacker {
    /// Empty packer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Place an object of `size` bytes at the current end, returning the
    /// page span it covers.
    pub fn place(&mut self, size: u64, page_bytes: u64) -> Placement {
        assert!(size > 0, "cannot place a zero-sized object");
        let first_page = self.used_bytes / page_bytes;
        let last_page = (self.used_bytes + size - 1) / page_bytes;
        self.used_bytes += size;
        Placement {
            first_page,
            num_pages: last_page - first_page + 1,
        }
    }

    /// Total bytes placed.
    #[inline]
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Pages covered so far.
    pub fn pages_used(&self, page_bytes: u64) -> u64 {
        self.used_bytes.div_ceil(page_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_packer_dense() {
        let mut p = BytePacker::new();
        let a = p.place(3000, 4096);
        assert_eq!(
            a,
            Placement {
                first_page: 0,
                num_pages: 1
            }
        );
        let b = p.place(3000, 4096);
        // Straddles pages 0 and 1.
        assert_eq!(
            b,
            Placement {
                first_page: 0,
                num_pages: 2
            }
        );
        assert_eq!(p.used_bytes(), 6000);
        assert_eq!(p.pages_used(4096), 2);
    }

    #[test]
    fn byte_packer_never_exceeds_ceiling() {
        let mut p = BytePacker::new();
        let mut total = 0u64;
        for i in 0..500u64 {
            let size = 100 + (i * 997) % 5000;
            p.place(size, 4096);
            total += size;
        }
        assert_eq!(p.pages_used(4096), total.div_ceil(4096));
    }

    #[test]
    fn byte_packer_page_span() {
        let mut p = BytePacker::new();
        p.place(4096, 4096);
        let b = p.place(8192, 4096);
        assert_eq!(
            b,
            Placement {
                first_page: 1,
                num_pages: 2
            }
        );
    }

    #[test]
    fn small_objects_share_pages() {
        let mut p = PagePacker::new(4096);
        let a = p.place(1000);
        let b = p.place(1000);
        let c = p.place(1000);
        let d = p.place(1000);
        assert_eq!(
            a,
            Placement {
                first_page: 0,
                num_pages: 1
            }
        );
        assert_eq!(b, a);
        assert_eq!(c, a);
        assert_eq!(d, a);
        // The fifth no longer fits (96 bytes free).
        let e = p.place(1000);
        assert_eq!(
            e,
            Placement {
                first_page: 1,
                num_pages: 1
            }
        );
        assert_eq!(p.pages_used(), 2);
    }

    #[test]
    fn large_object_spans_consecutive_pages() {
        let mut p = PagePacker::new(4096);
        let a = p.place(10_000);
        assert_eq!(
            a,
            Placement {
                first_page: 0,
                num_pages: 3
            }
        );
        // The tail page has 4096*3-10000 = 2288 free bytes: next small
        // object shares it.
        let b = p.place(2000);
        assert_eq!(
            b,
            Placement {
                first_page: 2,
                num_pages: 1
            }
        );
    }

    #[test]
    fn object_never_split_mid_space() {
        // An object that does not fit the tail free space starts fresh —
        // internal clustering is preserved.
        let mut p = PagePacker::new(4096);
        p.place(3000); // 1096 free
        let b = p.place(2000);
        assert_eq!(b.first_page, 1);
        assert_eq!(p.pages_used(), 2);
    }

    #[test]
    fn at_most_one_extra_page() {
        let mut p = PagePacker::new(4096);
        for size in [1u64, 4095, 4096, 4097, 8191, 8192, 8193, 100_000] {
            let min = size.div_ceil(4096);
            let placed = p.place(size);
            assert!(placed.num_pages <= min + 1, "size {size}");
        }
    }

    #[test]
    fn exclusive_always_fresh() {
        let mut p = PagePacker::new(4096);
        p.place(100); // page 0, lots of free space
        let b = p.place_exclusive(5000);
        assert_eq!(
            b,
            Placement {
                first_page: 1,
                num_pages: 2
            }
        );
    }

    #[test]
    fn seal_prevents_sharing() {
        let mut p = PagePacker::new(4096);
        p.place_exclusive(5000);
        p.seal();
        // Pages 0–1 hold the exclusive object; sealing forgets the tail
        // free space, so the next object starts page 2.
        let b = p.place(100);
        assert_eq!(b.first_page, 2);
    }

    #[test]
    fn page_offsets_iterate() {
        let pl = Placement {
            first_page: 4,
            num_pages: 3,
        };
        let v: Vec<u64> = pl.page_offsets().collect();
        assert_eq!(v, vec![4, 5, 6]);
    }

    #[test]
    fn packing_density_reasonable() {
        // Internal clustering wastes at most the tail of each page; for
        // the paper's A-1 sizes (avg 625 B) utilization stays high.
        let mut p = PagePacker::new(4096);
        let mut total = 0u64;
        for i in 0..1000u64 {
            let size = 400 + (i * 37) % 500;
            total += size;
            p.place(size);
        }
        let utilization = total as f64 / (p.pages_used() * 4096) as f64;
        assert!(utilization > 0.85, "utilization {utilization}");
    }
}

//! The cluster organization (§4) — the paper's contribution.
//!
//! Three levels (Figure 4): the R\*-tree directory, the data pages
//! holding the MBR entries, and one *cluster unit* per data page holding
//! the exact representations of its objects on physically consecutive
//! pages. The modified R\*-tree (§4.2.1) performs no leaf-level forced
//! reinsert and splits a data page when its cluster unit exceeds
//! `Smax ≈ 1.5 · M · S_obj` bytes (*cluster split*).
//!
//! Insertion follows §4.2.2: (1) determine the data page with the
//! R\*-tree algorithm, (2) insert the MBR into the data page, (3) append
//! the object to the corresponding cluster unit, (4) on overflow split
//! the data page into exactly two cluster units along the R\*-tree split
//! distribution. A cluster split *reads the old unit once and writes the
//! two new units sequentially* — this is why construction stays cheap
//! (§5.2): the copies already profit from global clustering.
//!
//! Cluster units live in buddies ([`spatialdb_disk::BuddyAllocator`]);
//! with the single-size configuration every unit occupies the full
//! `Smax`, reproducing the storage utilization of Figure 6, while the
//! restricted buddy system of Figure 7 adapts the physical unit size.

use crate::model::{QueryStats, SharedPool, TransferTechnique, WindowTechnique};
use crate::object::ObjectRecord;
use crate::packer::{BytePacker, Placement};
use crate::store::{SpatialStore, StrPlan};
use spatialdb_disk::{
    slm_gap_limit, BuddyAllocator, BuddyConfig, DiskHandle, IoKind, PageId, PageRun, ReadMode,
    RegionId, SeekPolicy, PAGE_SIZE,
};
use spatialdb_geom::{Point, Rect};
use spatialdb_rtree::{
    bulk, LeafEntry, NodeId, ObjectId, RStarTree, RTreeConfig, Tile, TilingParams, DEFAULT_STR_FILL,
};
use std::collections::{HashMap, HashSet};

/// Configuration of a [`ClusterOrganization`].
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Maximum cluster unit size in bytes (`Smax`, Table 1).
    pub smax_bytes: u64,
    /// Physical unit sizes (buddy system configuration, §5.3.1).
    pub buddy: BuddyConfig,
}

impl ClusterConfig {
    /// Plain cluster organization: every unit occupies the full `Smax`
    /// (Figures 5, 6, 8, 10–12, 14, 16, 17).
    pub fn plain(smax_bytes: u64) -> Self {
        let pages = smax_bytes.div_ceil(PAGE_SIZE as u64);
        ClusterConfig {
            smax_bytes,
            buddy: BuddyConfig::fixed(pages),
        }
    }

    /// Restricted buddy system with sizes `Smax`, `Smax/2`, `Smax/4`
    /// (Figure 7).
    pub fn restricted_buddy(smax_bytes: u64) -> Self {
        let pages = smax_bytes.div_ceil(PAGE_SIZE as u64);
        ClusterConfig {
            smax_bytes,
            buddy: BuddyConfig::restricted(pages),
        }
    }

    /// Full buddy system with `log2(Smax)` sizes (§5.3.1).
    pub fn full_buddy(smax_bytes: u64) -> Self {
        let pages = smax_bytes.div_ceil(PAGE_SIZE as u64);
        ClusterConfig {
            smax_bytes,
            buddy: BuddyConfig::full(pages),
        }
    }
}

/// One cluster unit: the physical extent (its buddy) plus the byte-packed
/// object placements.
#[derive(Clone, Debug)]
struct ClusterUnit {
    /// The buddy currently backing the unit.
    extent: PageRun,
    packer: BytePacker,
    /// Object → placement (page offsets relative to `extent.start`).
    members: HashMap<ObjectId, Placement>,
}

impl ClusterUnit {
    fn used_pages(&self) -> u64 {
        self.packer.pages_used(PAGE_SIZE as u64)
    }

    /// The physically used part of the extent.
    fn used_extent(&self) -> PageRun {
        PageRun::new(self.extent.start, self.used_pages())
    }

    /// Absolute pages of one member.
    fn member_pages(&self, oid: ObjectId) -> Vec<PageId> {
        let p = self.members[&oid];
        p.page_offsets()
            .map(|o| PageId::new(self.extent.start.region, self.extent.start.offset + o))
            .collect()
    }

    /// Sum of pages over all members (for the `nop∅` average).
    fn member_pages_total(&self) -> u64 {
        // lint: order-insensitive — an integer sum commutes.
        self.members.values().map(|p| p.num_pages).sum()
    }
}

/// The cluster organization.
#[derive(Clone, Debug)]
pub struct ClusterOrganization {
    disk: DiskHandle,
    pool: SharedPool,
    config: ClusterConfig,
    tree: RStarTree,
    tree_region: RegionId,
    buddy: BuddyAllocator,
    units: HashMap<NodeId, ClusterUnit>,
    /// Data page each object currently belongs to.
    location: HashMap<ObjectId, NodeId>,
    sizes: HashMap<ObjectId, u32>,
    /// Σ placement pages over all units (maintained incrementally for the
    /// threshold formula's `nop∅`).
    total_member_pages: u64,
}

impl ClusterOrganization {
    /// Create an empty cluster organization on `disk`, buffered by
    /// `pool`.
    pub fn new(disk: DiskHandle, pool: SharedPool, config: ClusterConfig) -> Self {
        let tree_region = disk.create_region("clu:tree");
        let unit_region = disk.create_region("clu:units");
        let tree = RStarTree::new(
            RTreeConfig::cluster(PAGE_SIZE, config.smax_bytes),
            tree_region,
        );
        let buddy = BuddyAllocator::new(unit_region, config.buddy.clone());
        ClusterOrganization {
            disk,
            pool,
            config,
            tree,
            tree_region,
            buddy,
            units: HashMap::new(),
            location: HashMap::new(),
            sizes: HashMap::new(),
            total_member_pages: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Number of cluster units.
    pub fn num_units(&self) -> usize {
        self.units.len()
    }

    /// Average number of entries per data page (`noe∅` of §5.4.1).
    pub fn avg_entries_per_page(&self) -> f64 {
        let leaves = self.tree.num_leaves().max(1);
        self.tree.len() as f64 / leaves as f64
    }

    /// Average number of pages occupied per object (`nop∅` of §5.4.1).
    pub fn avg_pages_per_object(&self) -> f64 {
        let n = self.sizes.len().max(1);
        self.total_member_pages as f64 / n as f64
    }

    /// Drop an extent's pages from the buffer (the extent is being freed
    /// or rewritten; stale copies must not produce buffer hits).
    fn drop_from_buffer(&self, extent: PageRun) {
        for p in extent.pages() {
            self.pool.remove_page(&p);
        }
    }

    /// Rebuild a unit's packing from an object list, allocating the
    /// smallest possible buddy. Returns the unit (no I/O charged here).
    fn pack_unit(&mut self, oids: &[ObjectId]) -> ClusterUnit {
        let mut packer = BytePacker::new();
        let mut members = HashMap::with_capacity(oids.len());
        for &oid in oids {
            let size = u64::from(self.sizes[&oid]);
            members.insert(oid, packer.place(size, PAGE_SIZE as u64));
        }
        let pages = packer.pages_used(PAGE_SIZE as u64).max(1);
        let extent = self
            .buddy
            .alloc_for(pages)
            .expect("cluster split produced a unit beyond Smax");
        ClusterUnit {
            extent,
            packer,
            members,
        }
    }

    /// §4.2.2 step 3: append the object to the unit of its data page,
    /// moving the unit to a larger buddy when needed.
    fn append_object(&mut self, leaf: NodeId, rec: &ObjectRecord) {
        self.sizes.insert(rec.oid, rec.size_bytes);
        self.location.insert(rec.oid, leaf);
        let size = u64::from(rec.size_bytes);
        if let Some(unit) = self.units.get_mut(&leaf) {
            let mut trial = unit.packer.clone();
            let placement = trial.place(size, PAGE_SIZE as u64);
            let needed = trial.pages_used(PAGE_SIZE as u64);
            if needed <= unit.extent.len {
                // Fits: write the object's pages (one request).
                unit.packer = trial;
                unit.members.insert(rec.oid, placement);
                let run = PageRun::new(
                    PageId::new(
                        unit.extent.start.region,
                        unit.extent.start.offset + placement.first_page,
                    ),
                    placement.num_pages,
                );
                self.total_member_pages += placement.num_pages;
                self.disk.charge(IoKind::Write, run, false);
            } else {
                // Move the unit into a larger buddy: read the old unit,
                // write the unit including the new object sequentially.
                let old_extent = unit.extent;
                let old_used = unit.used_extent();
                unit.packer = trial;
                unit.members.insert(rec.oid, placement);
                self.total_member_pages += placement.num_pages;
                let new_extent = self
                    .buddy
                    .alloc_for(needed)
                    .expect("unit grew beyond Smax without a cluster split");
                let unit = self.units.get_mut(&leaf).expect("unit vanished");
                unit.extent = new_extent;
                let new_used = unit.used_extent();
                self.disk.charge(IoKind::Read, old_used, false);
                self.disk.charge(IoKind::Write, new_used, false);
                self.buddy.free(old_extent);
                self.drop_from_buffer(old_extent);
            }
        } else {
            // First object of a fresh data page: new unit.
            let unit = self.pack_unit(&[rec.oid]);
            self.total_member_pages += unit.member_pages_total();
            self.disk.charge(IoKind::Write, unit.used_extent(), false);
            self.units.insert(leaf, unit);
        }
    }

    /// Rebuild one data page's cluster unit from the tree's current
    /// entry list (deletion path): read the old unit if it existed, pack
    /// the current members, write the new unit, free the old buddy.
    fn rebuild_unit(&mut self, leaf: NodeId) {
        if !self.tree.contains_node(leaf) || !self.tree.node(leaf).is_leaf() {
            return;
        }
        let oids: Vec<ObjectId> = self
            .tree
            .node(leaf)
            .leaf_entries()
            .iter()
            .map(|e| e.oid)
            .collect();
        let old = self.units.remove(&leaf);
        if let Some(u) = &old {
            self.disk.charge(IoKind::Read, u.used_extent(), false);
            self.total_member_pages -= u.member_pages_total();
        }
        if oids.is_empty() {
            if let Some(u) = old {
                self.buddy.free(u.extent);
                self.drop_from_buffer(u.extent);
            }
            return;
        }
        let unit = self.pack_unit(&oids);
        self.total_member_pages += unit.member_pages_total();
        self.disk.charge(IoKind::Write, unit.used_extent(), false);
        for oid in &oids {
            self.location.insert(*oid, leaf);
        }
        if let Some(u) = old {
            self.buddy.free(u.extent);
            self.drop_from_buffer(u.extent);
        }
        self.units.insert(leaf, unit);
    }

    /// Transfer the qualifying objects of one cluster unit according to
    /// the window-query technique. Returns nothing; all costs are charged
    /// to the disk through the pool.
    fn transfer_for_window(
        &self,
        leaf: NodeId,
        hits: &[LeafEntry],
        window: &Rect,
        technique: WindowTechnique,
    ) {
        let unit = &self.units[&leaf];
        let used = unit.used_extent();
        match technique {
            WindowTechnique::Complete => {
                self.read_complete_if_needed(leaf, hits);
            }
            WindowTechnique::Threshold => {
                let region = self.tree.node(leaf).mbr();
                let overlap = region.overlap_fraction(window);
                let t = self.disk.params().geometric_threshold(
                    used.len,
                    self.avg_entries_per_page(),
                    self.avg_pages_per_object(),
                );
                if overlap >= t {
                    self.read_complete_if_needed(leaf, hits);
                } else {
                    self.read_page_by_page(leaf, hits);
                }
            }
            WindowTechnique::PageByPage => {
                self.read_page_by_page(leaf, hits);
            }
            WindowTechnique::Slm => {
                let offsets = self.hit_offsets(leaf, hits);
                let gap = slm_gap_limit(&self.disk.params());
                self.pool
                    .read_extent_slm(used, &offsets, gap, ReadMode::Normal, true);
            }
            WindowTechnique::Optimum => {
                // 1 seek + 1 latency per cluster unit + minimal transfers.
                let offsets = self.hit_offsets(leaf, hits);
                let missing: Vec<u64> = offsets
                    .iter()
                    .copied()
                    .filter(|&o| !self.pool.contains_page(&used.page(o)))
                    .collect();
                if !missing.is_empty() {
                    let params = self.disk.params();
                    let k = missing.len() as u64;
                    let cost = params.seek_ms + params.latency_ms + params.transfer_ms * k as f64;
                    self.disk.charge_raw(IoKind::Read, k, cost, true);
                    for o in missing {
                        self.pool.insert_clean(used.page(o));
                    }
                }
            }
        }
    }

    /// Distinct page offsets (within the unit) of the hit objects, sorted.
    fn hit_offsets(&self, leaf: NodeId, hits: &[LeafEntry]) -> Vec<u64> {
        let unit = &self.units[&leaf];
        let mut offsets: Vec<u64> = hits
            .iter()
            .flat_map(|e| unit.members[&e.oid].page_offsets())
            .collect();
        offsets.sort_unstable();
        offsets.dedup();
        offsets
    }

    /// The simplest technique (§5.4): transfer the complete cluster unit
    /// as soon as any qualifying object needs I/O.
    fn read_complete_if_needed(&self, leaf: NodeId, hits: &[LeafEntry]) {
        let unit = &self.units[&leaf];
        let needed: Vec<PageId> = hits.iter().flat_map(|e| unit.member_pages(e.oid)).collect();
        let all_buffered = needed.iter().all(|p| self.pool.contains_page(p));
        if all_buffered {
            for p in &needed {
                self.pool.touch_page(p);
            }
        } else {
            self.pool.read_full_extent(unit.used_extent());
        }
    }

    /// Page-by-page: one request per qualifying object, one seek per
    /// cluster unit (§5.4.1's `t_page` access pattern).
    fn read_page_by_page(&self, leaf: NodeId, hits: &[LeafEntry]) {
        let mut seek_pending = true;
        for e in hits {
            let pages = self.units[&leaf].member_pages(e.oid);
            let out = self.pool.read_set(
                &pages,
                SeekPolicy::WithinCluster {
                    initial_seek: seek_pending,
                },
            );
            if out.issued_io() {
                seek_pending = false;
            }
        }
    }

    /// The join's object transfer (§6.2): fetch `oid`, batching the other
    /// join-relevant objects of the same cluster unit according to the
    /// technique. `needed` is the set of objects the join still requires.
    pub fn fetch_for_join(
        &self,
        oid: ObjectId,
        needed: &HashSet<ObjectId>,
        technique: TransferTechnique,
    ) {
        let leaf = self.location[&oid];
        let unit = &self.units[&leaf];
        let my_pages = unit.member_pages(oid);
        if my_pages.iter().all(|p| self.pool.contains_page(p)) {
            for p in &my_pages {
                self.pool.touch_page(p);
            }
            return;
        }
        let used = unit.used_extent();
        match technique {
            TransferTechnique::Complete => {
                self.pool.read_full_extent(used);
            }
            TransferTechnique::Read | TransferTechnique::VectorRead => {
                let mode = if technique == TransferTechnique::Read {
                    ReadMode::Normal
                } else {
                    ReadMode::Vector
                };
                let mut offsets: Vec<u64> = unit
                    .members
                    .iter()
                    .filter(|(o, _)| **o == oid || needed.contains(o))
                    .flat_map(|(_, p)| p.page_offsets())
                    .collect();
                offsets.sort_unstable();
                offsets.dedup();
                let gap = slm_gap_limit(&self.disk.params());
                self.pool.read_extent_slm(used, &offsets, gap, mode, true);
            }
            TransferTechnique::Optimum => {
                let mut offsets: Vec<u64> = unit
                    .members
                    .iter()
                    .filter(|(o, _)| **o == oid || needed.contains(o))
                    .flat_map(|(_, p)| p.page_offsets())
                    .collect();
                offsets.sort_unstable();
                offsets.dedup();
                let missing: Vec<u64> = offsets
                    .into_iter()
                    .filter(|&o| !self.pool.contains_page(&used.page(o)))
                    .collect();
                if !missing.is_empty() {
                    let params = self.disk.params();
                    let k = missing.len() as u64;
                    let cost = params.seek_ms + params.latency_ms + params.transfer_ms * k as f64;
                    self.disk.charge_raw(IoKind::Read, k, cost, true);
                    for o in missing {
                        self.pool.insert_clean(used.page(o));
                    }
                }
            }
        }
    }

    /// Structural self-check: every object is in exactly one unit, units
    /// correspond 1:1 to data pages, placements are within extents, and
    /// unit payloads respect `Smax`.
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut seen = HashSet::new();
        // lint: order-insensitive — a pass/fail check over all units;
        // only the first error's *content* depends on order, and that
        // is diagnostic text, never stats or placement.
        for (leaf, unit) in &self.units {
            let node = self.tree.node(*leaf);
            if !node.is_leaf() {
                return Err(format!("unit attached to non-leaf {leaf}"));
            }
            let entries = node.leaf_entries();
            if entries.len() != unit.members.len() {
                return Err(format!(
                    "data page {leaf} has {} entries but unit has {} members",
                    entries.len(),
                    unit.members.len()
                ));
            }
            for e in entries {
                if !unit.members.contains_key(&e.oid) {
                    return Err(format!("entry {} missing from unit {leaf}", e.oid));
                }
                if !seen.insert(e.oid) {
                    return Err(format!("object {} in two units", e.oid));
                }
            }
            if unit.used_pages() > unit.extent.len {
                return Err(format!(
                    "unit {leaf} uses {} pages but its buddy has {}",
                    unit.used_pages(),
                    unit.extent.len
                ));
            }
            if unit.members.len() > 1 && unit.packer.used_bytes() > self.config.smax_bytes {
                return Err(format!(
                    "unit {leaf} holds {} bytes > Smax {}",
                    unit.packer.used_bytes(),
                    self.config.smax_bytes
                ));
            }
        }
        if seen.len() != self.sizes.len() {
            return Err(format!(
                "{} objects stored but {} in units",
                self.sizes.len(),
                seen.len()
            ));
        }
        Ok(())
    }
}

impl SpatialStore for ClusterOrganization {
    fn name(&self) -> &'static str {
        "cluster org."
    }

    fn snapshot(&self) -> Box<dyn SpatialStore> {
        Box::new(self.clone())
    }

    fn insert(&mut self, rec: &ObjectRecord) {
        assert!(
            u64::from(rec.size_bytes) <= self.config.smax_bytes,
            "object {} larger than Smax; store it in a separate storage unit \
             (paper §4.2.2 footnote)",
            rec.oid
        );
        // Steps 1 + 2: determine the data page and insert the MBR entry
        // (the modified R*-tree may already split — step 4).
        let entry = LeafEntry::new(rec.mbr, rec.oid, rec.size_bytes);
        let outcome = self.tree.insert(entry, &mut self.pool.as_ref());
        debug_assert!(outcome.leaf_reinserts.is_empty());
        if outcome.leaf_splits.is_empty() {
            // Step 3: append the object to the cluster unit.
            let leaf = outcome.leaf.expect("insert without target leaf");
            self.append_object(leaf, rec);
        } else {
            // Step 4: the data page split (possibly chaining when one
            // half still exceeded Smax). Rebuild every involved unit
            // from the tree's final entry lists: the overflowing unit is
            // read once and the successors are written sequentially.
            self.sizes.insert(rec.oid, rec.size_bytes);
            let mut involved: Vec<NodeId> = outcome
                .leaf_splits
                .iter()
                .flat_map(|ev| [ev.old, ev.new])
                .collect();
            // Rebuild in node-id order: the rebuild order drives the
            // buddy allocate/free sequence and therefore the *physical
            // placement* of the units. A hash-set order here left the
            // flat per-request costs unchanged but made cylinder
            // positions differ between identical builds — visible the
            // moment the disk-arm model priced seeks by distance.
            involved.sort_unstable();
            involved.dedup();
            for leaf in involved {
                self.rebuild_unit(leaf);
            }
        }
    }

    fn window_query(&self, window: &Rect, technique: WindowTechnique) -> QueryStats {
        let before = self.disk.local_stats();
        let per_leaf = self.tree.window_leaves(window, &mut self.pool.as_ref());
        let mut stats = QueryStats::default();
        for (leaf, hits) in &per_leaf {
            stats.candidates += hits.len();
            stats.result_bytes += hits
                .iter()
                .map(|e| u64::from(self.sizes[&e.oid]))
                .sum::<u64>();
            self.transfer_for_window(*leaf, hits, window, technique);
        }
        stats.io_ms = self.disk.local_stats().since(&before).io_ms;
        stats
    }

    fn point_query(&self, point: &Point) -> QueryStats {
        let before = self.disk.local_stats();
        let candidates = self.tree.point_entries(point, &mut self.pool.as_ref());
        // Selective access: read just the objects' pages, not the units
        // (§5.5 — the cluster organization must not penalize selective
        // queries).
        for e in &candidates {
            let leaf = self.location[&e.oid];
            let pages = self.units[&leaf].member_pages(e.oid);
            self.pool.read_set(&pages, SeekPolicy::PerRequest);
        }
        QueryStats {
            candidates: candidates.len(),
            result_bytes: candidates
                .iter()
                .map(|e| u64::from(self.sizes[&e.oid]))
                .sum(),
            io_ms: self.disk.local_stats().since(&before).io_ms,
        }
    }

    fn fetch_object(&self, oid: ObjectId) {
        let leaf = self.location[&oid];
        let pages = self.units[&leaf].member_pages(oid);
        self.pool.read_set(&pages, SeekPolicy::PerRequest);
    }

    fn fetch_for_join(
        &self,
        oid: ObjectId,
        needed: &HashSet<ObjectId>,
        technique: TransferTechnique,
    ) {
        // The inherent method of the same name (cluster-unit batching).
        ClusterOrganization::fetch_for_join(self, oid, needed, technique);
    }

    fn occupied_pages(&self) -> u64 {
        self.tree.allocated_pages() + self.buddy.occupied_pages()
    }

    fn num_objects(&self) -> usize {
        self.sizes.len()
    }

    fn contains(&self, oid: ObjectId) -> bool {
        self.sizes.contains_key(&oid)
    }

    fn disk(&self) -> DiskHandle {
        self.disk.clone()
    }

    fn pool(&self) -> SharedPool {
        self.pool.clone()
    }

    fn tree(&self) -> &RStarTree {
        &self.tree
    }

    fn flush(&mut self) {
        self.pool.flush();
    }

    fn begin_query(&mut self) {
        self.pool
            .invalidate_regions(&[self.tree_region, self.buddy.region()]);
        crate::model::warm_directory(&self.pool, &self.tree);
    }

    fn object_size(&self, oid: ObjectId) -> u32 {
        self.sizes[&oid]
    }

    fn delete(&mut self, oid: ObjectId) -> bool {
        let Some(leaf0) = self.location.get(&oid).copied() else {
            return false;
        };
        let mbr = self
            .tree
            .node(leaf0)
            .leaf_entries()
            .iter()
            .find(|e| e.oid == oid)
            .map(|e| e.mbr)
            .expect("cluster location out of sync");
        let outcome = self.tree.delete(oid, &mbr, &mut self.pool.as_ref());
        debug_assert!(outcome.removed);
        self.location.remove(&oid);
        self.sizes.remove(&oid);
        // Tree condensation may have removed data pages and relocated
        // their entries; rebuild every affected cluster unit from the
        // tree's (authoritative) current entry lists.
        let mut affected: Vec<NodeId> = vec![leaf0];
        affected.extend(outcome.leaf_reinserts.iter().map(|(_, to)| *to));
        affected.extend(
            outcome
                .leaf_splits
                .iter()
                .flat_map(|split| [split.old, split.new]),
        );
        // Node-id order, like the insert path's split rebuilds: the
        // rebuild order drives the buddy allocate/free sequence and
        // therefore physical placement, which must not depend on hash
        // iteration (see `placement_determinism.rs`).
        affected.sort_unstable();
        affected.dedup();
        for leaf in affected {
            self.rebuild_unit(leaf);
        }
        // Sweep units whose data page vanished during condensation —
        // also in node-id order (`free` order shapes the buddy free
        // lists and thus future placements).
        let mut orphans: Vec<NodeId> = self
            .units
            .keys()
            .copied()
            .filter(|id| !self.tree.contains_node(*id))
            .collect();
        orphans.sort_unstable();
        for id in orphans {
            let unit = self.units.remove(&id).expect("orphan vanished");
            self.total_member_pages -= unit.member_pages_total();
            self.buddy.free(unit.extent);
            self.drop_from_buffer(unit.extent);
        }
        true
    }

    fn str_plan(&self, records: &[ObjectRecord]) -> StrPlan {
        // Cluster entries carry the exact size — the tiler's payload
        // limit (Smax via the tree config) is the cluster-split bound,
        // so every tile maps to one legal cluster unit.
        let entries = records
            .iter()
            .map(|r| {
                assert!(
                    u64::from(r.size_bytes) <= self.config.smax_bytes,
                    "object {} larger than Smax; store it in a separate storage unit \
                     (paper §4.2.2 footnote)",
                    r.oid
                );
                LeafEntry::new(r.mbr, r.oid, r.size_bytes)
            })
            .collect();
        StrPlan {
            entries,
            params: TilingParams::from_config(self.tree.config(), DEFAULT_STR_FILL),
        }
    }

    fn str_tree_region(&self) -> Option<RegionId> {
        Some(self.tree_region)
    }

    fn str_install(&mut self, records: &[ObjectRecord], tiles: Vec<Tile>, params: &TilingParams) {
        assert!(self.sizes.is_empty(), "STR install requires an empty store");
        let build = bulk::build_tree(self.tree.config().clone(), self.tree_region, tiles, params);
        for run in build.level_runs.iter().skip(1) {
            self.disk.charge(IoKind::Write, *run, false);
        }
        // Sizes first: `pack_unit` reads them.
        for rec in records {
            self.sizes.insert(rec.oid, rec.size_bytes);
        }
        // Pack one cluster unit per data page, in node-id order — the
        // same deterministic rebuild order the split/delete paths use,
        // so physical placement is a pure function of the tile
        // sequence (see `placement_determinism.rs`).
        let leaves: Vec<(NodeId, Vec<ObjectId>)> = build
            .tree
            .leaves()
            .map(|(id, node)| (id, node.leaf_entries().iter().map(|e| e.oid).collect()))
            .collect();
        self.tree = build.tree;
        for (leaf, oids) in leaves {
            let unit = self.pack_unit(&oids);
            self.total_member_pages += unit.member_pages_total();
            self.disk.charge(IoKind::Write, unit.used_extent(), false);
            for oid in &oids {
                self.location.insert(*oid, leaf);
            }
            self.units.insert(leaf, unit);
        }
        debug_assert_eq!(self.check_consistency(), Ok(()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::new_shared_pool;
    use spatialdb_disk::Disk;
    use spatialdb_rtree::validate::check_invariants;

    const SMAX: u64 = 16 * 1024; // 4 pages — small for testing

    fn org_with(n: u64, config: ClusterConfig) -> ClusterOrganization {
        let disk = Disk::with_defaults();
        let pool = new_shared_pool(disk.clone(), 512);
        let mut org = ClusterOrganization::new(disk, pool, config);
        for i in 0..n {
            let x = (i % 40) as f64 / 40.0;
            let y = (i / 40) as f64 / 40.0;
            org.insert(&ObjectRecord::new(
                ObjectId(i),
                Rect::new(x, y, x + 0.01, y + 0.01),
                600 + (i % 100) as u32,
            ));
        }
        org.flush();
        org
    }

    #[test]
    fn build_consistent() {
        let org = org_with(400, ClusterConfig::plain(SMAX));
        assert_eq!(org.num_objects(), 400);
        check_invariants(org.tree()).unwrap();
        org.check_consistency().unwrap();
        // One unit per data page.
        assert_eq!(org.num_units(), org.tree().num_leaves());
    }

    #[test]
    fn cluster_split_on_smax() {
        // ~650 B objects, Smax 16 KB → ~25 objects per unit, so 400
        // objects require many cluster splits.
        let org = org_with(400, ClusterConfig::plain(SMAX));
        assert!(org.num_units() > 10, "only {} units", org.num_units());
        for unit in org.units.values() {
            assert!(unit.packer.used_bytes() <= SMAX);
        }
    }

    #[test]
    fn plain_config_occupies_full_smax_per_unit() {
        let org = org_with(300, ClusterConfig::plain(SMAX));
        let units = org.num_units() as u64;
        assert_eq!(org.buddy.occupied_pages(), units * 4);
    }

    #[test]
    fn restricted_buddy_reduces_occupied_pages() {
        let plain = org_with(300, ClusterConfig::plain(SMAX));
        let buddy = org_with(300, ClusterConfig::restricted_buddy(SMAX));
        assert!(
            buddy.occupied_pages() < plain.occupied_pages(),
            "buddy {} !< plain {}",
            buddy.occupied_pages(),
            plain.occupied_pages()
        );
        buddy.check_consistency().unwrap();
    }

    #[test]
    fn restricted_buddy_costs_more_to_build() {
        let plain = org_with(300, ClusterConfig::plain(SMAX));
        let buddy = org_with(300, ClusterConfig::restricted_buddy(SMAX));
        assert!(
            buddy.disk().stats().io_ms > plain.disk().stats().io_ms,
            "unit moves must cost I/O"
        );
    }

    #[test]
    fn window_query_complete_reads_units_once() {
        let mut org = org_with(300, ClusterConfig::plain(SMAX));
        org.begin_query();
        let q = org.window_query(&Rect::new(0.0, 0.0, 1.0, 1.0), WindowTechnique::Complete);
        assert_eq!(q.candidates, 300);
        let stats = org.disk().stats();
        // Non-selective query: reading ≈ one request per unit (+ data
        // pages), far fewer than one per object.
        assert!(
            stats.read_requests < 300,
            "requests {}",
            stats.read_requests
        );
    }

    #[test]
    fn techniques_agree_on_candidates() {
        let window = Rect::new(0.1, 0.0, 0.6, 0.2);
        for tech in [
            WindowTechnique::Complete,
            WindowTechnique::Threshold,
            WindowTechnique::Slm,
            WindowTechnique::PageByPage,
            WindowTechnique::Optimum,
        ] {
            let mut org = org_with(400, ClusterConfig::plain(SMAX));
            org.begin_query();
            let q = org.window_query(&window, tech);
            assert!(q.candidates > 0, "{tech:?}");
        }
    }

    /// The §5.4.3 one-seek-per-cluster rule across queued requests: the
    /// SLM trace's follow-up runs stay seek-skipped when replayed
    /// through the arm scheduler, at depth 1 (byte-identical) and when
    /// queued all at once under the elevator (seeks can only merge
    /// away, never be re-charged).
    #[test]
    fn traced_slm_runs_keep_cluster_seek_rule_under_the_scheduler() {
        use spatialdb_disk::ArmPolicy;
        // 2.5 KB objects (~0.6 page each) in 80-page units: a thin
        // vertical slice hits one object per row, and adjacent rows sit
        // a dozen pages apart in the unit packing — gaps beyond the SLM
        // limit, so the schedule splits into several runs.
        let disk = Disk::with_defaults();
        let pool = new_shared_pool(disk.clone(), 512);
        let mut org = ClusterOrganization::new(disk, pool, ClusterConfig::plain(320 * 1024));
        for i in 0..400u64 {
            let x = (i % 40) as f64 / 40.0;
            let y = (i / 40) as f64 / 40.0;
            org.insert(&ObjectRecord::new(
                ObjectId(i),
                Rect::new(x, y, x + 0.01, y + 0.01),
                2500,
            ));
        }
        org.flush();
        org.begin_query();
        let before = org.disk().stats();
        let mut trace = Vec::new();
        for i in 0..8u64 {
            let x = i as f64 * 0.11 + 0.005;
            let (_, t) =
                org.window_query_traced(&Rect::new(x, 0.0, x + 0.004, 1.0), WindowTechnique::Slm);
            trace.extend(t);
        }
        let delta = org.disk().stats().since(&before);
        assert_eq!(trace.len() as u64, delta.requests());
        let follow_ups = trace.iter().filter(|r| r.skip_seek).count();
        assert!(
            follow_ups > 0,
            "workload produced no multi-run SLM schedules"
        );
        // Depth-1 replay: byte-identical to the synchronous charges.
        let replay = Disk::with_defaults();
        for req in &trace {
            replay.submit(*req);
            replay.complete_next();
        }
        assert_eq!(replay.stats(), delta);
        // Queued together under the elevator: skip flags are preserved
        // (never double-charged back), page/latency counts conserved,
        // and seeks only ever merge away.
        let queued = Disk::with_defaults();
        queued.set_arm_policy(ArmPolicy::Elevator);
        for req in &trace {
            queued.submit(*req);
        }
        let done = queued.drain_arm();
        assert_eq!(done.len(), trace.len());
        assert!(done
            .iter()
            .all(|c| !c.request.skip_seek || c.effective_skip_seek));
        let q = queued.stats();
        assert_eq!(q.pages_read, delta.pages_read);
        assert_eq!(q.latencies, delta.latencies);
        assert!(q.seeks <= delta.seeks, "{} > {}", q.seeks, delta.seeks);
        assert!(q.io_ms <= delta.io_ms);
    }

    #[test]
    fn optimum_is_cheapest_technique() {
        let window = Rect::new(0.0, 0.0, 0.4, 0.4);
        let mut costs = Vec::new();
        for tech in [
            WindowTechnique::Complete,
            WindowTechnique::Threshold,
            WindowTechnique::Slm,
            WindowTechnique::Optimum,
        ] {
            let mut org = org_with(400, ClusterConfig::plain(SMAX));
            org.begin_query();
            let q = org.window_query(&window, tech);
            costs.push((tech, q.io_ms));
        }
        let opt = costs
            .iter()
            .find(|(t, _)| *t == WindowTechnique::Optimum)
            .unwrap()
            .1;
        for (tech, c) in &costs {
            assert!(
                opt <= *c + 1e-9,
                "optimum {opt} more expensive than {tech:?} {c}"
            );
        }
    }

    #[test]
    fn point_query_does_not_read_whole_unit() {
        let mut org = org_with(300, ClusterConfig::plain(SMAX));
        org.begin_query();
        let q = org.point_query(&Point::new(0.105, 0.005));
        assert!(q.candidates >= 1);
        // Reading one small object: leaf page + 1–2 object pages.
        assert!(q.io_ms <= 3.0 * 16.0 + 17.0, "io {}", q.io_ms);
    }

    #[test]
    fn fetch_for_join_complete_buffers_whole_unit() {
        let mut org = org_with(200, ClusterConfig::plain(SMAX));
        org.begin_query();
        let oid = ObjectId(0);
        let leaf = org.location[&oid];
        let sibling = *org.units[&leaf]
            .members
            .keys()
            .find(|o| **o != oid)
            .expect("unit with 2+ members");
        let needed: HashSet<ObjectId> = [oid, sibling].into_iter().collect();
        org.fetch_for_join(oid, &needed, TransferTechnique::Complete);
        let before = org.disk().stats();
        // The sibling is now buffered: no further I/O.
        org.fetch_for_join(sibling, &needed, TransferTechnique::Complete);
        assert_eq!(org.disk().stats().since(&before).requests(), 0);
    }

    #[test]
    fn vector_read_keeps_less_than_read() {
        let mut a = org_with(200, ClusterConfig::plain(SMAX));
        let mut b = org_with(200, ClusterConfig::plain(SMAX));
        a.begin_query();
        b.begin_query();
        let oid = ObjectId(0);
        let needed: HashSet<ObjectId> = [oid].into_iter().collect();
        a.fetch_for_join(oid, &needed, TransferTechnique::Read);
        b.fetch_for_join(oid, &needed, TransferTechnique::VectorRead);
        let kept_a = a.pool().len();
        let kept_b = b.pool().len();
        assert!(kept_a >= kept_b);
    }

    #[test]
    #[should_panic(expected = "larger than Smax")]
    fn oversized_object_rejected() {
        let disk = Disk::with_defaults();
        let pool = new_shared_pool(disk.clone(), 64);
        let mut org = ClusterOrganization::new(disk, pool, ClusterConfig::plain(SMAX));
        org.insert(&ObjectRecord::new(
            ObjectId(0),
            Rect::new(0.0, 0.0, 1.0, 1.0),
            SMAX as u32 + 1,
        ));
    }

    #[test]
    fn delete_removes_object_and_rebuilds_units() {
        let mut org = org_with(300, ClusterConfig::plain(SMAX));
        for i in (0..300).step_by(3) {
            assert!(org.delete(ObjectId(i)), "delete {i}");
            org.check_consistency().unwrap();
            check_invariants(org.tree()).unwrap();
        }
        assert_eq!(org.num_objects(), 200);
        assert!(!org.delete(ObjectId(0)), "double delete");
        // Remaining objects still findable and fetchable.
        org.begin_query();
        let q = org.window_query(&Rect::new(0.0, 0.0, 1.0, 1.0), WindowTechnique::Complete);
        assert_eq!(q.candidates, 200);
    }

    #[test]
    fn delete_everything_frees_all_buddies() {
        let mut org = org_with(120, ClusterConfig::restricted_buddy(SMAX));
        for i in 0..120 {
            assert!(org.delete(ObjectId(i)));
        }
        assert_eq!(org.num_objects(), 0);
        assert_eq!(org.buddy.occupied_pages(), 0);
        assert_eq!(org.num_units(), 0);
        check_invariants(org.tree()).unwrap();
    }

    #[test]
    fn avg_stats_reasonable() {
        let org = org_with(400, ClusterConfig::plain(SMAX));
        let noe = org.avg_entries_per_page();
        assert!(noe > 2.0 && noe < 89.0, "noe {noe}");
        let nop = org.avg_pages_per_object();
        assert!((1.0..2.0).contains(&nop), "nop {nop}");
    }
}

//! An in-memory baseline store — the "fourth organization".
//!
//! [`MemoryStore`] keeps the R\*-tree and all object metadata in main
//! memory and charges **no** I/O for queries: it is the zero-cost
//! baseline to compare the disk-resident organization models against,
//! and doubles as the reference implementation of how a new
//! [`SpatialStore`] backend plugs into the engine in one file — no other
//! crate needs to change.

use crate::model::{QueryStats, SharedPool, WindowTechnique};
use crate::object::ObjectRecord;
use crate::store::SpatialStore;
use spatialdb_disk::{DiskHandle, PAGE_SIZE};
use spatialdb_geom::{Point, Rect};
use spatialdb_rtree::{
    bulk, LeafEntry, NoIo, ObjectId, RStarTree, RTreeConfig, Tile, TilingParams,
};
use std::collections::HashMap;

/// A purely in-memory spatial store (no simulated I/O).
#[derive(Clone, Debug)]
pub struct MemoryStore {
    disk: DiskHandle,
    pool: SharedPool,
    tree: RStarTree,
    sizes: HashMap<ObjectId, u32>,
    mbrs: HashMap<ObjectId, Rect>,
}

impl MemoryStore {
    /// Create an empty in-memory store.
    ///
    /// `disk` and `pool` are only carried along so the store can take
    /// part in joins (which require both operands to share one machine);
    /// the store itself never charges I/O to them.
    pub fn new(disk: DiskHandle, pool: SharedPool) -> Self {
        let region = disk.create_region("mem:tree");
        MemoryStore {
            disk,
            pool,
            tree: RStarTree::new(RTreeConfig::paper_default(PAGE_SIZE), region),
            sizes: HashMap::new(),
            mbrs: HashMap::new(),
        }
    }
}

impl SpatialStore for MemoryStore {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn snapshot(&self) -> Box<dyn SpatialStore> {
        Box::new(self.clone())
    }

    fn insert(&mut self, rec: &ObjectRecord) {
        let entry = LeafEntry::new(rec.mbr, rec.oid, 0);
        self.tree.insert(entry, &mut NoIo);
        self.sizes.insert(rec.oid, rec.size_bytes);
        self.mbrs.insert(rec.oid, rec.mbr);
    }

    fn delete(&mut self, oid: ObjectId) -> bool {
        let Some(mbr) = self.mbrs.remove(&oid) else {
            return false;
        };
        let outcome = self.tree.delete(oid, &mbr, &mut NoIo);
        debug_assert!(outcome.removed, "index out of sync for {oid}");
        self.sizes.remove(&oid);
        true
    }

    fn window_query(&self, window: &Rect, _technique: WindowTechnique) -> QueryStats {
        let candidates = self.tree.window_entries(window, &mut NoIo);
        QueryStats {
            candidates: candidates.len(),
            result_bytes: candidates
                .iter()
                .map(|e| u64::from(self.sizes[&e.oid]))
                .sum(),
            io_ms: 0.0,
        }
    }

    fn point_query(&self, point: &Point) -> QueryStats {
        let candidates = self.tree.point_entries(point, &mut NoIo);
        QueryStats {
            candidates: candidates.len(),
            result_bytes: candidates
                .iter()
                .map(|e| u64::from(self.sizes[&e.oid]))
                .sum(),
            io_ms: 0.0,
        }
    }

    fn fetch_object(&self, _oid: ObjectId) {
        // Already resident.
    }

    fn occupied_pages(&self) -> u64 {
        0
    }

    fn num_objects(&self) -> usize {
        self.sizes.len()
    }

    fn contains(&self, oid: ObjectId) -> bool {
        self.sizes.contains_key(&oid)
    }

    fn disk(&self) -> DiskHandle {
        self.disk.clone()
    }

    fn pool(&self) -> SharedPool {
        self.pool.clone()
    }

    fn tree(&self) -> &RStarTree {
        &self.tree
    }

    fn flush(&mut self) {
        // Nothing is buffered.
    }

    fn begin_query(&mut self) {
        // Always "cold" and always free.
    }

    fn object_size(&self, oid: ObjectId) -> u32 {
        self.sizes[&oid]
    }

    // `str_plan`'s default (payload 0) and `str_tree_region`'s default
    // (`None` — no I/O charged) are already right for a memory store;
    // only the install needs the bottom-up build.
    fn str_install(&mut self, records: &[ObjectRecord], tiles: Vec<Tile>, params: &TilingParams) {
        assert!(self.sizes.is_empty(), "STR install requires an empty store");
        let build = bulk::build_tree(
            self.tree.config().clone(),
            self.tree.region(),
            tiles,
            params,
        );
        self.tree = build.tree;
        for rec in records {
            self.sizes.insert(rec.oid, rec.size_bytes);
            self.mbrs.insert(rec.oid, rec.mbr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::new_shared_pool;
    use spatialdb_disk::Disk;
    use spatialdb_rtree::validate::check_invariants;

    fn store_with(n: u64) -> MemoryStore {
        let disk = Disk::with_defaults();
        let pool = new_shared_pool(disk.clone(), 64);
        let mut s = MemoryStore::new(disk, pool);
        for i in 0..n {
            let x = (i % 10) as f64 / 10.0;
            let y = (i / 10) as f64 / 10.0;
            s.insert(&ObjectRecord::new(
                ObjectId(i),
                Rect::new(x, y, x + 0.05, y + 0.05),
                640,
            ));
        }
        s
    }

    #[test]
    fn queries_are_free_and_correct() {
        let s = store_with(60);
        check_invariants(s.tree()).unwrap();
        let io_before = s.disk().stats();
        let q = s.window_query(&Rect::new(0.0, 0.0, 0.5, 0.5), WindowTechnique::Complete);
        assert!(q.candidates > 0);
        assert!(q.result_bytes > 0);
        assert_eq!(q.io_ms, 0.0);
        assert_eq!(s.disk().stats().since(&io_before).requests(), 0);
    }

    #[test]
    fn traced_queries_produce_empty_traces() {
        let s = store_with(60);
        let (q, trace) =
            s.window_query_traced(&Rect::new(0.0, 0.0, 0.5, 0.5), WindowTechnique::Complete);
        assert!(q.candidates > 0);
        assert!(trace.is_empty(), "memory store charges no I/O");
        let (_, ptrace) = s.point_query_traced(&spatialdb_geom::Point::new(0.02, 0.02));
        assert!(ptrace.is_empty());
    }

    #[test]
    fn delete_and_reinsert() {
        let mut s = store_with(30);
        assert!(s.delete(ObjectId(3)));
        assert!(!s.delete(ObjectId(3)));
        assert_eq!(s.num_objects(), 29);
        let all = Rect::new(-1.0, -1.0, 2.0, 2.0);
        assert_eq!(s.window_candidates(&all).len(), 29);
        s.insert(&ObjectRecord::new(
            ObjectId(3),
            Rect::new(0.3, 0.0, 0.35, 0.05),
            640,
        ));
        assert_eq!(s.window_candidates(&all).len(), 30);
    }

    #[test]
    fn occupies_no_disk() {
        let s = store_with(40);
        assert_eq!(s.occupied_pages(), 0);
    }
}

//! The primary organization (§3.2.2).
//!
//! The exact representations are stored *inside* the R\*-tree data pages
//! next to their MBRs: the access method is a primary index for the
//! objects and determines their storage location. Its essential drawback
//! is the low number of objects fitting onto one 4 KB page, which reduces
//! local clustering; objects larger than a data page are *"stored outside
//! of the R\*-tree in a separate file where internal clustering was
//! maintained. Such objects occupied their individual pages exclusively"*
//! (§5.2).

use crate::model::{QueryStats, SharedPool, WindowTechnique};
use crate::object::ObjectRecord;
use crate::packer::PagePacker;
use crate::store::{SpatialStore, StrPlan};
use spatialdb_disk::{DiskHandle, IoKind, PageId, PageRun, RegionId, SeekPolicy, PAGE_SIZE};
use spatialdb_geom::{Point, Rect};
use spatialdb_rtree::config::ENTRY_BYTES;
use spatialdb_rtree::{
    bulk, LeafEntry, ObjectId, RStarTree, RTreeConfig, Tile, TilingParams, DEFAULT_STR_FILL,
};
use std::collections::HashMap;

/// The primary organization.
#[derive(Clone, Debug)]
pub struct PrimaryOrganization {
    disk: DiskHandle,
    pool: SharedPool,
    tree: RStarTree,
    tree_region: RegionId,
    overflow_region: RegionId,
    overflow_packer: PagePacker,
    /// Locations of objects too large for a data page.
    overflow: HashMap<ObjectId, PageRun>,
    /// Data page currently holding each inline object.
    leaf_of: HashMap<ObjectId, spatialdb_rtree::NodeId>,
    sizes: HashMap<ObjectId, u32>,
    /// Overflow pages freed by deletions (holes in the overflow file).
    freed_overflow_pages: u64,
}

impl PrimaryOrganization {
    /// Largest object representation that still fits into a data page
    /// next to its 46-byte entry.
    pub fn inline_limit() -> u32 {
        (PAGE_SIZE - ENTRY_BYTES) as u32
    }

    /// Create an empty primary organization on `disk`, buffered by
    /// `pool`.
    pub fn new(disk: DiskHandle, pool: SharedPool) -> Self {
        let tree_region = disk.create_region("prim:tree");
        let overflow_region = disk.create_region("prim:overflow");
        let tree = RStarTree::new(RTreeConfig::primary(PAGE_SIZE), tree_region);
        PrimaryOrganization {
            disk,
            pool,
            tree,
            tree_region,
            overflow_region,
            overflow_packer: PagePacker::new(PAGE_SIZE as u64),
            overflow: HashMap::new(),
            leaf_of: HashMap::new(),
            sizes: HashMap::new(),
            freed_overflow_pages: 0,
        }
    }

    /// `true` if the object's exact representation lives in the overflow
    /// file rather than inline in a data page.
    pub fn is_overflow(&self, oid: ObjectId) -> bool {
        self.overflow.contains_key(&oid)
    }

    fn read_overflow_objects(&self, oids: &[ObjectId]) {
        // One pointer chase per overflow object (like the secondary
        // organization's object accesses); the buffer absorbs repeats.
        for oid in oids {
            let Some(run) = self.overflow.get(oid) else {
                continue;
            };
            let pages: Vec<PageId> = run.pages().collect();
            self.pool.read_set(&pages, SeekPolicy::PerRequest);
        }
    }
}

impl SpatialStore for PrimaryOrganization {
    fn name(&self) -> &'static str {
        "prim. org."
    }

    fn snapshot(&self) -> Box<dyn SpatialStore> {
        Box::new(self.clone())
    }

    fn insert(&mut self, rec: &ObjectRecord) {
        let inline = rec.size_bytes <= Self::inline_limit();
        let payload = if inline {
            ENTRY_BYTES as u32 + rec.size_bytes
        } else {
            ENTRY_BYTES as u32
        };
        let entry = LeafEntry::new(rec.mbr, rec.oid, payload);
        let outcome = self.tree.insert(entry, &mut self.pool.as_ref());
        // Track which data page each object ends up in, following the
        // relocations caused by forced reinserts and splits.
        if let Some(leaf) = outcome.leaf {
            self.leaf_of.insert(rec.oid, leaf);
        }
        for (oid, leaf) in &outcome.leaf_reinserts {
            self.leaf_of.insert(*oid, *leaf);
        }
        for split in &outcome.leaf_splits {
            for oid in &split.new_oids {
                self.leaf_of.insert(*oid, split.new);
            }
            for oid in &split.old_oids {
                self.leaf_of.insert(*oid, split.old);
            }
        }
        if !inline {
            // Exclusive pages in the overflow file, one write request.
            let placement = self
                .overflow_packer
                .place_exclusive(u64::from(rec.size_bytes));
            self.overflow_packer.seal();
            let run = PageRun::new(
                PageId::new(self.overflow_region, placement.first_page),
                placement.num_pages,
            );
            self.disk.charge(IoKind::Write, run, false);
            self.overflow.insert(rec.oid, run);
        }
        self.sizes.insert(rec.oid, rec.size_bytes);
    }

    fn window_query(&self, window: &Rect, _technique: WindowTechnique) -> QueryStats {
        let before = self.disk.local_stats();
        // Reading the qualifying data pages *is* reading the inline
        // objects; the tree charges those page reads.
        let candidates = self.tree.window_entries(window, &mut self.pool.as_ref());
        let oids: Vec<ObjectId> = candidates.iter().map(|e| e.oid).collect();
        let over: Vec<ObjectId> = oids
            .iter()
            .copied()
            .filter(|o| self.overflow.contains_key(o))
            .collect();
        self.read_overflow_objects(&over);
        QueryStats {
            candidates: oids.len(),
            result_bytes: oids.iter().map(|o| u64::from(self.sizes[o])).sum(),
            io_ms: self.disk.local_stats().since(&before).io_ms,
        }
    }

    fn point_query(&self, point: &Point) -> QueryStats {
        let before = self.disk.local_stats();
        let candidates = self.tree.point_entries(point, &mut self.pool.as_ref());
        let oids: Vec<ObjectId> = candidates.iter().map(|e| e.oid).collect();
        let over: Vec<ObjectId> = oids
            .iter()
            .copied()
            .filter(|o| self.overflow.contains_key(o))
            .collect();
        self.read_overflow_objects(&over);
        QueryStats {
            candidates: oids.len(),
            result_bytes: oids.iter().map(|o| u64::from(self.sizes[o])).sum(),
            io_ms: self.disk.local_stats().since(&before).io_ms,
        }
    }

    fn fetch_object(&self, oid: ObjectId) {
        // The data page holds the entry and (for inline objects) the
        // representation itself.
        let leaf = self.leaf_of[&oid];
        let page = self.tree.node_page(leaf);
        self.pool.read_page(page);
        if let Some(run) = self.overflow.get(&oid) {
            let pages: Vec<PageId> = run.pages().collect();
            self.pool.read_set(&pages, SeekPolicy::PerRequest);
        }
    }

    fn occupied_pages(&self) -> u64 {
        self.tree.allocated_pages() + self.overflow_packer.pages_used() - self.freed_overflow_pages
    }

    fn num_objects(&self) -> usize {
        self.sizes.len()
    }

    fn contains(&self, oid: ObjectId) -> bool {
        self.sizes.contains_key(&oid)
    }

    fn disk(&self) -> DiskHandle {
        self.disk.clone()
    }

    fn pool(&self) -> SharedPool {
        self.pool.clone()
    }

    fn tree(&self) -> &RStarTree {
        &self.tree
    }

    fn flush(&mut self) {
        self.pool.flush();
    }

    fn begin_query(&mut self) {
        self.pool
            .invalidate_regions(&[self.tree_region, self.overflow_region]);
        crate::model::warm_directory(&self.pool, &self.tree);
    }

    fn object_size(&self, oid: ObjectId) -> u32 {
        self.sizes[&oid]
    }

    fn delete(&mut self, oid: ObjectId) -> bool {
        let Some(leaf) = self.leaf_of.get(&oid).copied() else {
            return false;
        };
        let mbr = self
            .tree
            .node(leaf)
            .leaf_entries()
            .iter()
            .find(|e| e.oid == oid)
            .map(|e| e.mbr)
            .expect("leaf tracking out of sync");
        let outcome = self.tree.delete(oid, &mbr, &mut self.pool.as_ref());
        debug_assert!(outcome.removed);
        self.leaf_of.remove(&oid);
        self.sizes.remove(&oid);
        if let Some(run) = self.overflow.remove(&oid) {
            self.freed_overflow_pages += run.len;
        }
        // Tree condensation relocates entries (and with them the inline
        // objects); mirror the tracking.
        for (moved, to) in &outcome.leaf_reinserts {
            self.leaf_of.insert(*moved, *to);
        }
        for split in &outcome.leaf_splits {
            for o in &split.new_oids {
                self.leaf_of.insert(*o, split.new);
            }
            for o in &split.old_oids {
                self.leaf_of.insert(*o, split.old);
            }
        }
        true
    }

    fn str_plan(&self, records: &[ObjectRecord]) -> StrPlan {
        // The entry payload is what the object costs *inside* the data
        // page: entry + representation when inline, entry alone when
        // the representation overflows (§5.2).
        let entries = records
            .iter()
            .map(|r| {
                let payload = if r.size_bytes <= Self::inline_limit() {
                    ENTRY_BYTES as u32 + r.size_bytes
                } else {
                    ENTRY_BYTES as u32
                };
                LeafEntry::new(r.mbr, r.oid, payload)
            })
            .collect();
        StrPlan {
            entries,
            params: TilingParams::from_config(self.tree.config(), DEFAULT_STR_FILL),
        }
    }

    fn str_tree_region(&self) -> Option<RegionId> {
        Some(self.tree_region)
    }

    fn str_install(&mut self, records: &[ObjectRecord], tiles: Vec<Tile>, params: &TilingParams) {
        assert!(self.sizes.is_empty(), "STR install requires an empty store");
        let build = bulk::build_tree(self.tree.config().clone(), self.tree_region, tiles, params);
        for run in build.level_runs.iter().skip(1) {
            self.disk.charge(IoKind::Write, *run, false);
        }
        for (id, leaf) in build.tree.leaves() {
            for e in leaf.leaf_entries() {
                self.leaf_of.insert(e.oid, id);
            }
        }
        self.tree = build.tree;
        // Overflow objects go to their exclusive pages in tile order —
        // same file layout the insertion path would produce for the
        // same object order.
        for rec in records {
            self.sizes.insert(rec.oid, rec.size_bytes);
        }
        let mut overflow: Vec<ObjectId> = Vec::new();
        for (_, leaf) in self.tree.leaves() {
            for e in leaf.leaf_entries() {
                if self.sizes[&e.oid] > Self::inline_limit() {
                    overflow.push(e.oid);
                }
            }
        }
        for oid in overflow {
            let placement = self
                .overflow_packer
                .place_exclusive(u64::from(self.sizes[&oid]));
            self.overflow_packer.seal();
            let run = PageRun::new(
                PageId::new(self.overflow_region, placement.first_page),
                placement.num_pages,
            );
            self.disk.charge(IoKind::Write, run, false);
            self.overflow.insert(oid, run);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::new_shared_pool;
    use spatialdb_disk::Disk;
    use spatialdb_rtree::validate::check_invariants;

    fn org_with_sizes(sizes: &[u32]) -> PrimaryOrganization {
        let disk = Disk::with_defaults();
        let pool = new_shared_pool(disk.clone(), 512);
        let mut org = PrimaryOrganization::new(disk, pool);
        for (i, &s) in sizes.iter().enumerate() {
            let x = (i % 40) as f64 / 40.0;
            let y = (i / 40) as f64 / 40.0;
            org.insert(&ObjectRecord::new(
                ObjectId(i as u64),
                Rect::new(x, y, x + 0.01, y + 0.01),
                s,
            ));
        }
        org.flush();
        org
    }

    #[test]
    fn small_objects_inline() {
        let org = org_with_sizes(&vec![600; 100]);
        assert_eq!(org.num_objects(), 100);
        assert!(org.overflow.is_empty());
        check_invariants(org.tree()).unwrap();
        // Data pages hold few objects: payload-limited to ~6 per page.
        for (_, leaf) in org.tree().leaves() {
            assert!(leaf.len() <= 6, "leaf holds {}", leaf.len());
        }
    }

    #[test]
    fn large_objects_overflow() {
        let org = org_with_sizes(&[600, 5000, 700, 12_000]);
        assert!(org.is_overflow(ObjectId(1)));
        assert!(org.is_overflow(ObjectId(3)));
        assert!(!org.is_overflow(ObjectId(0)));
        // Exclusive pages: 5000 → 2 pages, 12000 → 3 pages.
        assert_eq!(org.overflow_packer.pages_used(), 2 + 3);
        check_invariants(org.tree()).unwrap();
    }

    #[test]
    fn leaf_tracking_survives_splits_and_reinserts() {
        let org = org_with_sizes(&vec![900; 300]);
        for i in 0..300u64 {
            let leaf = org.leaf_of[&ObjectId(i)];
            let found = org
                .tree()
                .node(leaf)
                .leaf_entries()
                .iter()
                .any(|e| e.oid == ObjectId(i));
            assert!(found, "object {i} not in tracked leaf");
        }
    }

    #[test]
    fn occupied_pages_larger_than_secondary_for_same_data() {
        // The primary organization stores objects in 70%-utilized tree
        // pages → worse storage utilization than a dense file.
        let org = org_with_sizes(&vec![600; 500]);
        let dense_pages = (500 * 600) as u64 / 4096 + 1;
        assert!(org.occupied_pages() > dense_pages);
    }

    #[test]
    fn window_query_reads_leaves_once() {
        let mut org = org_with_sizes(&vec![600; 400]);
        org.begin_query();
        let q = org.window_query(&Rect::new(0.0, 0.0, 1.0, 1.0), WindowTechnique::Complete);
        assert_eq!(q.candidates, 400);
        // All I/O is leaf pages (objects inline, directory warm):
        // #requests == #leaves.
        let leaves = org.tree().num_leaves() as u64;
        let stats = org.disk().stats();
        assert!(stats.read_requests >= leaves);
    }

    #[test]
    fn fetch_object_reads_leaf_and_overflow() {
        let mut org = org_with_sizes(&[600, 9000]);
        org.begin_query();
        let before = org.disk().stats();
        org.fetch_object(ObjectId(1));
        let d = org.disk().stats().since(&before);
        // Leaf page + 3 consecutive overflow pages = 2 requests.
        assert_eq!(d.read_requests, 2);
        assert_eq!(d.pages_read, 1 + 3);
    }

    #[test]
    fn delete_inline_and_overflow_objects() {
        let mut org = org_with_sizes(&[600, 9000, 700, 650, 5000, 620, 640, 660, 680, 630]);
        assert!(org.delete(ObjectId(1))); // overflow (3 pages)
        assert!(org.delete(ObjectId(0))); // inline
        assert!(!org.delete(ObjectId(0)));
        assert_eq!(org.num_objects(), 8);
        assert_eq!(org.freed_overflow_pages, 3);
        check_invariants(org.tree()).unwrap();
        // Leaf tracking still correct for the survivors.
        for i in [2u64, 3, 4, 5, 6, 7, 8, 9] {
            let leaf = org.leaf_of[&ObjectId(i)];
            assert!(org
                .tree()
                .node(leaf)
                .leaf_entries()
                .iter()
                .any(|e| e.oid == ObjectId(i)));
        }
    }

    #[test]
    fn traced_point_query_replays_to_identical_cost() {
        let mut org = org_with_sizes(&vec![600; 200]);
        org.begin_query();
        let before = org.disk().stats();
        let (stats, trace) = org.point_query_traced(&Point::new(0.105, 0.005));
        let delta = org.disk().stats().since(&before);
        assert!(stats.candidates >= 1);
        assert_eq!(trace.len() as u64, delta.requests());
        let replay = Disk::with_defaults();
        for req in &trace {
            replay.submit(*req);
            replay.complete_next();
        }
        assert_eq!(replay.stats(), delta);
    }

    #[test]
    fn point_query_on_inline_object() {
        let mut org = org_with_sizes(&vec![600; 200]);
        org.begin_query();
        let q = org.point_query(&Point::new(0.105, 0.005));
        assert!(q.candidates >= 1);
        // One leaf read suffices (object inline, directory warm).
        assert!(q.io_ms <= 32.0, "io {}", q.io_ms);
    }
}

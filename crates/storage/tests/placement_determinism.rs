//! Physical-placement determinism: two identical construction
//! sequences must produce byte-identical request traces — not just
//! identical flat costs. The disk-arm scheduler prices seeks by
//! cylinder distance, so placement nondeterminism (e.g. hash-ordered
//! cluster-split rebuilds) would make simulated latency flap between
//! runs. Regression test for the split-rebuild ordering on the insert
//! path and the affected-unit rebuild / orphan sweep on the delete
//! path.

use spatialdb_disk::Disk;
use spatialdb_geom::Rect;
use spatialdb_rtree::ObjectId;
use spatialdb_storage::{
    new_shared_pool, ClusterConfig, ClusterOrganization, ObjectRecord, SpatialStore,
    WindowTechnique,
};

fn build() -> ClusterOrganization {
    let disk = Disk::with_defaults();
    let pool = new_shared_pool(disk.clone(), 192);
    let mut org = ClusterOrganization::new(disk, pool, ClusterConfig::plain(40 * 1024));
    for i in 0..400u64 {
        let x = (i % 40) as f64 / 40.0;
        let y = (i / 40) as f64 / 40.0;
        org.insert(&ObjectRecord::new(
            ObjectId(i),
            Rect::new(x, y, x + 0.01, y + 0.01),
            600 + (i % 100) as u32,
        ));
    }
    // Deletions rebuild affected units and sweep orphans — that path
    // must be placement-deterministic too (tree condensation can touch
    // several units per delete).
    for i in (0..400u64).step_by(7) {
        assert!(org.delete(ObjectId(i)));
    }
    org.flush();
    org.begin_query();
    org
}

#[test]
fn identical_builds_place_units_identically() {
    let a = build();
    let b = build();
    let w = Rect::new(0.1, 0.1, 0.4, 0.4);
    let (_, ta) = a.window_query_traced(&w, WindowTechnique::Slm);
    let (_, tb) = b.window_query_traced(&w, WindowTechnique::Slm);
    for (i, (x, y)) in ta.iter().zip(tb.iter()).enumerate() {
        if x != y {
            panic!("diverged at request {i}: {x:?} vs {y:?}");
        }
    }
    assert_eq!(ta.len(), tb.len());
    println!("identical: {} requests", ta.len());
}

// Gated: requires the external `proptest` crate (not vendored in this
// offline build). Enable with `--features proptest` after adding the
// dev-dependency.
#![cfg(feature = "proptest")]

//! Property-based tests: the organization models stay consistent under
//! arbitrary insert/delete interleavings, and their query results agree
//! with each other and with brute force at the MBR level.

use proptest::prelude::*;
use spatialdb_disk::Disk;
use spatialdb_geom::{Point, Rect};
use spatialdb_rtree::validate::check_invariants;
use spatialdb_rtree::ObjectId;
use spatialdb_storage::{
    new_shared_pool, ClusterConfig, ClusterOrganization, ObjectRecord, Organization,
    OrganizationKind, PrimaryOrganization, SecondaryOrganization, SpatialStore, WindowTechnique,
};

const SMAX: u64 = 16 * 1024;

fn arb_record(id: u64) -> impl Strategy<Value = ObjectRecord> {
    (
        0.0f64..1.0,
        0.0f64..1.0,
        0.001f64..0.05,
        0.001f64..0.05,
        64u32..5000,
    )
        .prop_map(move |(x, y, w, h, size)| {
            ObjectRecord::new(
                ObjectId(id),
                Rect::new(x, y, (x + w).min(1.2), (y + h).min(1.2)),
                size,
            )
        })
}

fn arb_records(n: usize) -> impl Strategy<Value = Vec<ObjectRecord>> {
    (1..n).prop_flat_map(|len| (0..len as u64).map(arb_record).collect::<Vec<_>>())
}

fn make(kind: OrganizationKind) -> Organization {
    let disk = Disk::with_defaults();
    let pool = new_shared_pool(disk.clone(), 256);
    match kind {
        OrganizationKind::Secondary => {
            Organization::Secondary(SecondaryOrganization::new(disk, pool))
        }
        OrganizationKind::Primary => Organization::Primary(PrimaryOrganization::new(disk, pool)),
        OrganizationKind::Cluster => Organization::Cluster(ClusterOrganization::new(
            disk,
            pool,
            ClusterConfig::restricted_buddy(SMAX),
        )),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_models_agree_on_window_candidates(
        records in arb_records(120),
        wx in 0.0f64..1.0, wy in 0.0f64..1.0, ww in 0.01f64..0.5,
    ) {
        let window = Rect::new(wx, wy, wx + ww, wy + ww);
        let brute: usize = records.iter().filter(|r| r.mbr.intersects(&window)).count();
        for kind in [
            OrganizationKind::Secondary,
            OrganizationKind::Primary,
            OrganizationKind::Cluster,
        ] {
            let mut org = make(kind);
            for r in &records {
                org.insert(r);
            }
            org.flush();
            org.begin_query();
            let q = org.window_query(&window, WindowTechnique::Complete);
            prop_assert_eq!(q.candidates, brute, "{:?}", kind);
        }
    }

    #[test]
    fn all_models_agree_on_point_candidates(
        records in arb_records(100),
        px in 0.0f64..1.0, py in 0.0f64..1.0,
    ) {
        let p = Point::new(px, py);
        let brute: usize = records.iter().filter(|r| r.mbr.contains_point(&p)).count();
        for kind in [
            OrganizationKind::Secondary,
            OrganizationKind::Primary,
            OrganizationKind::Cluster,
        ] {
            let mut org = make(kind);
            for r in &records {
                org.insert(r);
            }
            org.flush();
            org.begin_query();
            let q = org.point_query(&p);
            prop_assert_eq!(q.candidates, brute, "{:?}", kind);
        }
    }

    #[test]
    fn cluster_consistent_under_insert_delete_interleavings(
        records in arb_records(80),
        ops in prop::collection::vec(any::<bool>(), 1..160),
    ) {
        let disk = Disk::with_defaults();
        let pool = new_shared_pool(disk.clone(), 256);
        let mut org = ClusterOrganization::new(disk, pool, ClusterConfig::restricted_buddy(SMAX));
        let mut pending: Vec<&ObjectRecord> = records.iter().collect();
        let mut live: Vec<ObjectId> = Vec::new();
        for (i, &del) in ops.iter().enumerate() {
            if del && !live.is_empty() {
                let oid = live.swap_remove(i % live.len());
                prop_assert!(org.delete(oid));
            } else if let Some(rec) = pending.pop() {
                org.insert(rec);
                live.push(rec.oid);
            }
            org.check_consistency().unwrap();
            check_invariants(org.tree()).unwrap();
            prop_assert_eq!(org.num_objects(), live.len());
        }
        // Everything still live is findable.
        org.flush();
        org.begin_query();
        let q = org.window_query(&Rect::new(-1.0, -1.0, 3.0, 3.0), WindowTechnique::Complete);
        prop_assert_eq!(q.candidates, live.len());
    }

    #[test]
    fn occupied_pages_track_contents(records in arb_records(100)) {
        let mut org = make(OrganizationKind::Cluster);
        let empty = org.occupied_pages();
        for r in &records {
            org.insert(r);
        }
        let full = org.occupied_pages();
        prop_assert!(full > empty);
        // Deleting everything returns the cluster area to empty.
        for r in &records {
            prop_assert!(org.delete(r.oid));
        }
        if let Organization::Cluster(c) = &org {
            c.check_consistency().unwrap();
        }
        prop_assert_eq!(org.num_objects(), 0);
    }

    #[test]
    fn window_techniques_same_candidates_different_cost(
        records in arb_records(100),
        wx in 0.0f64..0.8, wy in 0.0f64..0.8,
    ) {
        let window = Rect::new(wx, wy, wx + 0.2, wy + 0.2);
        let mut candidates = None;
        for tech in [
            WindowTechnique::Complete,
            WindowTechnique::Threshold,
            WindowTechnique::Slm,
            WindowTechnique::PageByPage,
            WindowTechnique::Optimum,
        ] {
            let mut org = make(OrganizationKind::Cluster);
            for r in &records {
                org.insert(r);
            }
            org.flush();
            org.begin_query();
            let q = org.window_query(&window, tech);
            match candidates {
                None => candidates = Some(q.candidates),
                Some(c) => prop_assert_eq!(q.candidates, c, "{:?}", tech),
            }
        }
    }
}

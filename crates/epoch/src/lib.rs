//! `spatialdb-epoch` — a small, dependency-free epoch-based
//! reclamation (EBR) manager for the engine's shadow-paged stores.
//!
//! The shadow-paging write path (see `spatialdb-core`) never mutates
//! state a reader can observe: a writer clones the current store (a
//! cheap copy-on-write snapshot), applies its update to the clone, and
//! publishes the clone by atomically swapping a root pointer. Readers
//! never take the writer's lock — they *pin an epoch*, load the root
//! pointer, and traverse that consistent snapshot for as long as the
//! pin guard lives. The one question left is when the superseded
//! snapshot may be freed, and that is what this crate answers:
//!
//! * The [`Collector`] keeps a global epoch counter and a pin count
//!   per recent epoch. [`Collector::pin`] is a wait-free pair of
//!   atomic operations (no lock shared with any writer).
//! * A writer that unpublishes a snapshot hands it to
//!   [`Collector::retire`], stamping it with the current epoch.
//! * [`Collector::advance_and_collect`] — called from commit paths
//!   and other quiescent points — advances the epoch when the
//!   previous epoch has no pinned readers left, and frees retired
//!   garbage that **no present or future pin can reach** (retired at
//!   least two epochs ago). A stalled reader therefore delays
//!   reclamation, never correctness.
//!
//! The invariant that makes the two-epoch rule sound: the epoch only
//! advances from `e` to `e + 1` once epoch `e - 1` has drained, so
//! every pinned reader sits at `e - 1` or `e`. Garbage retired at
//! epoch `r ≤ e - 2` is strictly older than any pin, and a pin taken
//! *after* the retire can no longer load the retired pointer (the swap
//! happened before the retire).
//!
//! The retired-garbage list lives behind a
//! [`DepMutex`](spatialdb_disk::DepMutex) of class
//! [`LockClass::Epoch`](spatialdb_disk::LockClass), the last rank of
//! the engine's documented lock hierarchy — the collector acquires
//! nothing while holding it, and lockdep checks that claim in debug
//! builds like every other lock in the workspace.
//!
//! [`Snapshot<T>`] is the companion root cell: an atomic pointer to a
//! heap-allocated `T` with [`pin`](Snapshot::pin) (read via a pinned
//! guard), [`swap`](Snapshot::swap) (publish + retire the old value)
//! and [`get_mut`](Snapshot::get_mut) (direct access under `&mut
//! self`, for the exclusive update path that needs no shadowing).
//! All `unsafe` in the workspace's reclamation story is contained in
//! this file, behind those three operations.

use spatialdb_disk::{DepMutex, LockClass};
use std::any::Any;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

/// Number of per-epoch pin-count slots. Pins only ever occupy the
/// current and previous epoch (see the module docs), so four slots
/// leave a full free lane between the active pair and the recycled
/// remainder.
const SLOTS: usize = 4;

/// One piece of retired garbage: the superseded value and the epoch
/// it was retired in.
struct Retired {
    epoch: u64,
    // lint: raw-lock — Box<dyn Any> is the garbage payload, not a lock.
    // Never read: held solely so its `Drop` runs when the collector
    // decides the value is unreachable.
    _value: Box<dyn Any + Send>,
}

impl std::fmt::Debug for Retired {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Retired")
            .field("epoch", &self.epoch)
            .finish()
    }
}

/// The epoch manager: a global epoch, per-epoch pin counts, and the
/// retired-garbage list. One collector guards one versioned root (the
/// engine embeds one per database).
#[derive(Debug)]
pub struct Collector {
    /// The global epoch. Monotonically increasing; advanced only by
    /// [`advance_and_collect`](Collector::advance_and_collect) once
    /// the previous epoch has no pinned readers.
    epoch: AtomicU64,
    /// Pin counts, indexed by `epoch % SLOTS`.
    pins: [AtomicUsize; SLOTS],
    /// Retired garbage awaiting a safe epoch distance.
    retired: DepMutex<Vec<Retired>>,
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl Collector {
    /// A fresh collector at epoch 0 with nothing retired.
    pub fn new() -> Self {
        Collector {
            epoch: AtomicU64::new(0),
            pins: std::array::from_fn(|_| AtomicUsize::new(0)),
            retired: DepMutex::new(LockClass::Epoch, Vec::new()),
        }
    }

    /// The current global epoch (diagnostics and tests).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Number of retired values not yet freed (diagnostics and the
    /// conservation tests).
    pub fn retired_len(&self) -> usize {
        self.retired.acquire().len()
    }

    /// Total pins currently outstanding across all epochs.
    pub fn pinned_readers(&self) -> usize {
        self.pins.iter().map(|p| p.load(Ordering::SeqCst)).sum()
    }

    /// Pin the current epoch. While the returned guard lives, no value
    /// retired at or after this epoch will be freed, so a root pointer
    /// loaded under the pin stays valid. Wait-free against writers: a
    /// pin is an atomic increment plus a validation load, and never
    /// touches the retired-list lock.
    pub fn pin(&self) -> Pin<'_> {
        loop {
            let e = self.epoch.load(Ordering::SeqCst);
            let slot = &self.pins[(e % SLOTS as u64) as usize];
            slot.fetch_add(1, Ordering::SeqCst);
            // The epoch may have advanced between the load and the
            // increment, in which case the count landed in a slot the
            // collector may already be treating as drained: undo and
            // retry against the new epoch.
            if self.epoch.load(Ordering::SeqCst) == e {
                return Pin {
                    collector: self,
                    epoch: e,
                };
            }
            slot.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Hand a superseded value to the collector, stamped with the
    /// current epoch. It is freed by a later
    /// [`advance_and_collect`](Collector::advance_and_collect) once no
    /// pin can reach it.
    pub fn retire(&self, value: Box<dyn Any + Send>) {
        let epoch = self.epoch.load(Ordering::SeqCst);
        self.retired.acquire().push(Retired {
            epoch,
            _value: value,
        });
    }

    /// Advance the epoch if the previous one has drained, then free
    /// all garbage retired at least two epochs ago. Returns how many
    /// retired values were freed.
    ///
    /// Called from quiescent points — after a writer publishes, and
    /// from the exclusive (`&mut`) paths. Never blocks readers: it
    /// only reads their pin counts.
    pub fn advance_and_collect(&self) -> usize {
        let e = self.epoch.load(Ordering::SeqCst);
        let prev_slot = ((e + SLOTS as u64 - 1) % SLOTS as u64) as usize;
        if e == 0 || self.pins[prev_slot].load(Ordering::SeqCst) == 0 {
            // Nobody is pinned at e - 1: every reader sits at e (or
            // later pins land at e + 1). Advance.
            let _ = self
                .epoch
                .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst);
        }
        let now = self.epoch.load(Ordering::SeqCst);
        let mut retired = self.retired.acquire();
        let before = retired.len();
        retired.retain(|r| r.epoch + 2 > now);
        before - retired.len()
    }
}

/// A pinned epoch. Dropping the guard unpins; the epoch may then
/// advance past it and garbage behind it become reclaimable.
#[derive(Debug)]
pub struct Pin<'c> {
    collector: &'c Collector,
    epoch: u64,
}

impl Pin<'_> {
    /// The epoch this guard pinned (diagnostics and tests).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Drop for Pin<'_> {
    fn drop(&mut self) {
        self.collector.pins[(self.epoch % SLOTS as u64) as usize].fetch_sub(1, Ordering::SeqCst);
    }
}

/// An atomically swappable root pointer to a heap-allocated `T`,
/// reclaimed through a [`Collector`].
///
/// This is the publication point of the shadow-paging scheme: readers
/// [`pin`](Snapshot::pin) and get a borrow of the current value that
/// stays valid for the guard's lifetime even while writers
/// [`swap`](Snapshot::swap) new values in; the old value is retired to
/// the collector rather than freed in place. `T` is typically a boxed
/// trait object (`Box<dyn SpatialStore>`), making the cell itself a
/// thin pointer to a heap slot that holds the fat one.
pub struct Snapshot<T: Send + 'static> {
    ptr: AtomicPtr<T>,
    /// `AtomicPtr` is unconditionally `Send + Sync`; this marker makes
    /// the cell's auto-traits follow the owned `T` instead (shared
    /// guards hand out `&T`, so `Sync` must require `T: Sync`).
    _owned: std::marker::PhantomData<T>,
}

impl<T: Send + 'static> Snapshot<T> {
    /// Wrap an initial value.
    pub fn new(value: T) -> Self {
        Snapshot {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
            _owned: std::marker::PhantomData,
        }
    }

    /// Pin `collector` and load the current value. The borrow lives as
    /// long as the guard; the collector will not free this value while
    /// the pin is outstanding (the swap that unpublishes it retires it
    /// at an epoch the pin blocks from reaching the two-epoch
    /// distance).
    pub fn pin<'a>(&'a self, collector: &'a Collector) -> SnapshotGuard<'a, T> {
        let pin = collector.pin();
        // Load *after* pinning: a value this load can observe was
        // unpublished no earlier than the pinned epoch, so it cannot
        // reach retirement distance while the pin lives.
        let ptr = self.ptr.load(Ordering::SeqCst);
        SnapshotGuard { _pin: pin, ptr }
    }

    /// Publish `value` and retire the superseded one to `collector`.
    /// Readers pinned before the swap keep traversing the old value;
    /// readers pinning after it load the new one.
    pub fn swap(&self, value: T, collector: &Collector) {
        let fresh = Box::into_raw(Box::new(value));
        let old = self.ptr.swap(fresh, Ordering::SeqCst);
        // SAFETY: `old` came from `Box::into_raw` in `new`/`swap` and
        // was just unpublished — exactly one swap can observe it, so
        // re-boxing transfers unique ownership to the collector.
        let boxed: Box<T> = unsafe { Box::from_raw(old) };
        collector.retire(boxed);
        collector.advance_and_collect();
    }

    /// Direct access under exclusive borrow — the `&mut` update path,
    /// which shadows nothing, retires nothing, and is byte-identical
    /// to a world without versioning.
    pub fn get_mut(&mut self) -> &mut T {
        // SAFETY: `&mut self` proves no guard borrows this cell (every
        // guard holds `&self`), and the pointer is always a live
        // allocation owned by the cell.
        unsafe { &mut *self.ptr.load(Ordering::SeqCst) }
    }

    /// Read access without pinning, under shared borrow of a cell the
    /// caller knows is quiescent (no concurrent writer). Used by the
    /// accessors that existed before versioning; the borrow is tied to
    /// `&self`, and a concurrent `swap` would retire (not free) the
    /// value, so even a racing writer cannot invalidate it before a
    /// quiescent point.
    fn current(&self) -> *mut T {
        self.ptr.load(Ordering::SeqCst)
    }
}

impl<T: Send + 'static> Drop for Snapshot<T> {
    fn drop(&mut self) {
        // SAFETY: the cell owns its current allocation; guards cannot
        // outlive `&self` borrows, and drop has `&mut self`.
        unsafe { drop(Box::from_raw(self.ptr.load(Ordering::SeqCst))) };
    }
}

impl<T: Send + std::fmt::Debug + 'static> std::fmt::Debug for Snapshot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // SAFETY: shared borrow of the cell; see `current`.
        let value = unsafe { &*self.current() };
        f.debug_struct("Snapshot").field("value", value).finish()
    }
}

/// Borrow of a [`Snapshot`] value under an epoch pin.
#[derive(Debug)]
pub struct SnapshotGuard<'a, T> {
    _pin: Pin<'a>,
    ptr: *mut T,
}

impl<T> SnapshotGuard<'_, T> {
    /// The epoch this guard's pin holds open (diagnostics and the
    /// snapshot-isolation tests).
    pub fn epoch(&self) -> u64 {
        self._pin.epoch()
    }
}

impl<T> std::ops::Deref for SnapshotGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the pointer was loaded under the pin this guard
        // holds; the collector frees a retired value only once every
        // pin that could have loaded it is gone (two-epoch rule).
        unsafe { &*self.ptr }
    }
}

/// A map from `u64` keys to heap-allocated values with **stable
/// addresses** and **deferred removal** — the companion structure for
/// state that lives *outside* the versioned root but is borrowed by
/// snapshot readers (the engine keeps each database's exact geometry
/// here).
///
/// The reclamation contract mirrors the collector's, expressed through
/// the borrow checker instead of epochs:
///
/// * Every value sits in its own `Box`, so rehashing the map never
///   moves it, and a `&V` from [`get`](StableMap::get) stays valid for
///   the `&self` borrow however many inserts and removes race with it.
/// * [`remove`](StableMap::remove) only *tombstones* the entry — the
///   box survives, so a reader holding candidates from an older store
///   snapshot can still resolve them ([`get_any`](StableMap::get_any)).
/// * Re-inserting a removed key moves the superseded box to a
///   graveyard rather than dropping it.
/// * Memory is returned only at [`quiesce`](StableMap::quiesce), which
///   takes `&mut self`: the exclusive borrow *proves* no `&V` is
///   outstanding, the same way [`Snapshot::get_mut`] proves no guard
///   is.
pub struct StableMap<V: Send + Sync + 'static> {
    inner: DepMutex<MapInner<V>>,
}

struct MapInner<V> {
    slots: std::collections::HashMap<u64, Slot<V>>,
    /// Boxes superseded by a re-insert, kept alive until `quiesce`.
    graveyard: Vec<Box<V>>,
}

struct Slot<V> {
    value: Box<V>,
    /// `false` once tombstoned by `remove`.
    live: bool,
}

impl<V: Send + Sync + 'static> StableMap<V> {
    /// An empty map whose internal lock registers with lockdep under
    /// `class`.
    pub fn new(class: LockClass) -> Self {
        StableMap {
            inner: DepMutex::new(
                class,
                MapInner {
                    slots: std::collections::HashMap::new(),
                    graveyard: Vec::new(),
                },
            ),
        }
    }

    /// Insert (or replace) the value under `key` and mark it live. A
    /// superseded box moves to the graveyard — a reader still borrowing
    /// it keeps a valid reference.
    pub fn insert(&self, key: u64, value: V) {
        let mut inner = self.inner.acquire();
        match inner.slots.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let slot = e.get_mut();
                let old = std::mem::replace(&mut slot.value, Box::new(value));
                slot.live = true;
                inner.graveyard.push(old);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Slot {
                    value: Box::new(value),
                    live: true,
                });
            }
        }
    }

    /// Tombstone `key`. Returns `false` when it was not live. The value
    /// stays allocated (and reachable through
    /// [`get_any`](StableMap::get_any)) until [`quiesce`](StableMap::quiesce).
    pub fn remove(&self, key: u64) -> bool {
        let mut inner = self.inner.acquire();
        match inner.slots.get_mut(&key) {
            Some(slot) if slot.live => {
                slot.live = false;
                true
            }
            _ => false,
        }
    }

    /// The live value under `key`. The borrow is tied to `&self`, not
    /// to the internal lock — valid across concurrent inserts and
    /// removes because boxes are only dropped under `&mut self`.
    pub fn get(&self, key: u64) -> Option<&V> {
        let inner = self.inner.acquire();
        let ptr = inner
            .slots
            .get(&key)
            .filter(|s| s.live)
            .map(|s| &*s.value as *const V);
        drop(inner);
        // SAFETY: the box behind `ptr` is dropped only in `quiesce` and
        // `Drop`, both of which take `&mut self` and therefore cannot
        // run while this `&self`-derived borrow lives. Concurrent
        // `insert`/`remove` move boxes (pointer-stable) or flip flags,
        // never free them.
        ptr.map(|p| unsafe { &*p })
    }

    /// The value under `key`, live **or tombstoned** — the resolution
    /// path for candidates read from an older store snapshot, whose
    /// exact representation must outlive a concurrent delete.
    pub fn get_any(&self, key: u64) -> Option<&V> {
        let inner = self.inner.acquire();
        let ptr = inner.slots.get(&key).map(|s| &*s.value as *const V);
        drop(inner);
        // SAFETY: as in `get`.
        ptr.map(|p| unsafe { &*p })
    }

    /// Sorted keys of all live entries.
    pub fn live_keys(&self) -> Vec<u64> {
        let inner = self.inner.acquire();
        let mut keys: Vec<u64> = inner
            .slots
            .iter()
            .filter(|(_, s)| s.live)
            .map(|(k, _)| *k)
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Number of live entries.
    pub fn live_len(&self) -> usize {
        self.inner
            .acquire()
            .slots
            .values()
            .filter(|s| s.live)
            .count()
    }

    /// Number of boxes held only for late readers (tombstones +
    /// graveyard) — what [`quiesce`](StableMap::quiesce) would free.
    pub fn deferred_len(&self) -> usize {
        let inner = self.inner.acquire();
        inner.slots.values().filter(|s| !s.live).count() + inner.graveyard.len()
    }

    /// Free every tombstoned entry and the graveyard. `&mut self` is
    /// the proof of quiescence: no reader borrow can be outstanding.
    /// Returns how many boxes were dropped.
    pub fn quiesce(&mut self) -> usize {
        let inner = self.inner.get_mut();
        let freed = inner.graveyard.len() + inner.slots.values().filter(|s| !s.live).count();
        inner.graveyard.clear();
        inner.slots.retain(|_, s| s.live);
        freed
    }
}

impl<V: Send + Sync + 'static> std::fmt::Debug for StableMap<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.acquire();
        let live = inner.slots.values().filter(|s| s.live).count();
        f.debug_struct("StableMap")
            .field("live", &live)
            .field(
                "deferred",
                &(inner.slots.len() - live + inner.graveyard.len()),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    /// Drop-counting payload for the conservation tests.
    struct Counted(Arc<AtomicUsize>);

    impl Drop for Counted {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn pin_unpin_roundtrip() {
        let c = Collector::new();
        assert_eq!(c.pinned_readers(), 0);
        let p = c.pin();
        assert_eq!(c.pinned_readers(), 1);
        assert_eq!(p.epoch(), c.epoch());
        drop(p);
        assert_eq!(c.pinned_readers(), 0);
    }

    #[test]
    fn nothing_freed_while_pinned() {
        let c = Collector::new();
        let drops = Arc::new(AtomicUsize::new(0));
        let _pin = c.pin();
        c.retire(Box::new(Counted(Arc::clone(&drops))));
        // However often the collector runs, the pinned epoch blocks
        // the advance, so the garbage never reaches distance 2.
        for _ in 0..10 {
            c.advance_and_collect();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 0, "freed under a pin");
        assert_eq!(c.retired_len(), 1);
    }

    #[test]
    fn freed_after_pins_drain_and_epochs_pass() {
        let c = Collector::new();
        let drops = Arc::new(AtomicUsize::new(0));
        let pin = c.pin();
        c.retire(Box::new(Counted(Arc::clone(&drops))));
        drop(pin);
        let mut freed = 0;
        for _ in 0..4 {
            freed += c.advance_and_collect();
        }
        assert_eq!(freed, 1, "exactly the one retired value is freed");
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        assert_eq!(c.retired_len(), 0);
    }

    #[test]
    fn conservation_no_leak_no_double_free() {
        // Retire N values across interleaved pins; in the end exactly
        // N drops happened (collector drop frees the remainder).
        let drops = Arc::new(AtomicUsize::new(0));
        const N: usize = 100;
        {
            let c = Collector::new();
            for i in 0..N {
                let pin = (i % 3 == 0).then(|| c.pin());
                c.retire(Box::new(Counted(Arc::clone(&drops))));
                c.advance_and_collect();
                drop(pin);
            }
            let freed_live: usize = drops.load(Ordering::SeqCst);
            assert!(freed_live <= N);
        }
        assert_eq!(drops.load(Ordering::SeqCst), N, "leak or double free");
    }

    #[test]
    fn stalled_reader_stalls_the_epoch_not_the_writer() {
        let c = Collector::new();
        let _stuck = c.pin();
        let e = c.epoch();
        // Writers keep retiring and collecting; the epoch can advance
        // at most once (the stuck pin drains epoch e only on drop).
        for _ in 0..8 {
            c.retire(Box::new(0u32));
            c.advance_and_collect();
        }
        assert!(c.epoch() <= e + 1);
        assert!(c.retired_len() >= 7, "nothing old enough to free yet");
    }

    #[test]
    fn snapshot_swap_preserves_pinned_reads() {
        let c = Collector::new();
        let s = Snapshot::new(String::from("v0"));
        let guard = s.pin(&c);
        s.swap(String::from("v1"), &c);
        s.swap(String::from("v2"), &c);
        // The pinned guard still reads the value it loaded.
        assert_eq!(&*guard, "v0");
        // A fresh pin sees the newest value.
        assert_eq!(&*s.pin(&c), "v2");
        drop(guard);
        for _ in 0..4 {
            c.advance_and_collect();
        }
        assert_eq!(c.retired_len(), 0, "old versions reclaimed");
    }

    #[test]
    fn snapshot_get_mut_bypasses_versioning() {
        let c = Collector::new();
        let mut s = Snapshot::new(7u32);
        *s.get_mut() += 1;
        assert_eq!(*s.pin(&c), 8);
        assert_eq!(c.retired_len(), 0, "exclusive path retires nothing");
    }

    #[test]
    fn stable_map_tombstones_and_revives() {
        let m: StableMap<String> = StableMap::new(LockClass::Geometry);
        m.insert(1, "a".into());
        assert_eq!(m.get(1).map(String::as_str), Some("a"));
        let held = m.get_any(1).unwrap();
        assert!(m.remove(1));
        assert!(!m.remove(1), "second remove is a no-op");
        assert_eq!(m.get(1), None, "tombstoned for live lookups");
        assert_eq!(
            m.get_any(1).map(String::as_str),
            Some("a"),
            "snapshot readers still resolve the tombstone"
        );
        m.insert(1, "b".into());
        assert_eq!(m.get(1).map(String::as_str), Some("b"));
        assert_eq!(held, "a", "old borrow survives the re-insert");
    }

    #[test]
    fn stable_map_quiesce_frees_exactly_the_dead() {
        let drops = Arc::new(AtomicUsize::new(0));
        let mut m: StableMap<Counted> = StableMap::new(LockClass::Geometry);
        for k in 0..10 {
            m.insert(k, Counted(Arc::clone(&drops)));
        }
        for k in 0..5 {
            assert!(m.remove(k));
        }
        // Reviving a tombstone parks the superseded box in the graveyard.
        m.insert(3, Counted(Arc::clone(&drops)));
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "nothing freed before quiesce"
        );
        assert_eq!(m.deferred_len(), 5);
        let freed = m.quiesce();
        assert_eq!(freed, 5, "4 tombstones + 1 graveyard box");
        assert_eq!(drops.load(Ordering::SeqCst), 5);
        assert_eq!(m.live_len(), 6);
        assert_eq!(m.live_keys(), vec![3, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let c = Arc::new(Collector::new());
        let s = Arc::new(Snapshot::new(0u64));
        let stop = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (s, c, stop) = (Arc::clone(&s), Arc::clone(&c), Arc::clone(&stop));
                scope.spawn(move || {
                    let mut last = 0;
                    while stop.load(Ordering::SeqCst) == 0 {
                        let g = s.pin(&c);
                        // Published values are monotone; a torn or
                        // reclaimed read would break that.
                        assert!(*g >= last);
                        last = *g;
                    }
                });
            }
            for i in 1..=1000u64 {
                s.swap(i, &c);
            }
            stop.store(1, Ordering::SeqCst);
        });
        assert_eq!(*s.pin(&c), 1000);
    }
}

//! # spatialdb-join
//!
//! The spatial (intersection) join of §6 of Brinkhoff & Kriegel,
//! VLDB 1994, built on the R\*-tree join of \[BKS93b\] (Brinkhoff, Kriegel,
//! Seeger, SIGMOD 1993).
//!
//! A complete intersection join runs in three steps (§6.3, \[BKSS94\]):
//!
//! 1. **MBR join** ([`mbr_join`]): synchronized traversal of the two
//!    R\*-trees. Pairs of intersecting directory entries are processed in
//!    ascending order of their smallest x-coordinate, with one subtree
//!    *pinned* against all its partners before moving on — combined with
//!    an LRU buffer of reasonable size this reads most tree pages only
//!    once.
//! 2. **Object transfer** ([`transfer`]): the exact representations of
//!    all candidate objects are fetched from the organization models.
//!    Unlike a window query, the join *"may read an object in an
//!    unpredictable manner many times"* (§6.2) — what gets re-read is
//!    decided by the shared LRU buffer, which is why Figures 14 and 16
//!    sweep the buffer size. The cluster organization supports the
//!    transfer techniques *complete*, *vector read*, *read* and
//!    *optimum*.
//! 3. **Exact geometry test**: each candidate pair is tested on the
//!    decomposed representations; the paper charges ≈ 0.75 msec of CPU
//!    time per test, which [`pipeline`] reproduces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mbr_join;
pub mod pipeline;
pub mod transfer;

pub use mbr_join::{mbr_join, MbrJoinResult};
pub use pipeline::{JoinConfig, JoinStats, SpatialJoin};
pub use transfer::transfer_objects;

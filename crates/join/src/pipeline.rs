//! Step 3 and the complete intersection-join pipeline (§6.3),
//! sequential ([`SpatialJoin::run`]) and parallel
//! ([`SpatialJoin::run_par`]).

use crate::mbr_join::{mbr_join, mbr_join_par};
use crate::transfer::transfer_objects;
use spatialdb_storage::{SpatialStore, TransferTechnique};

/// Configuration of a complete spatial join.
#[derive(Clone, Copy, Debug)]
pub struct JoinConfig {
    /// Object-transfer technique (only the cluster organization
    /// distinguishes them).
    pub transfer: TransferTechnique,
    /// CPU cost of one exact geometry test in milliseconds. §6.3: with
    /// the decomposed representation \[SK91\] *"one test needs roughly
    /// 0.75 msec"*.
    pub exact_test_ms: f64,
}

impl Default for JoinConfig {
    fn default() -> Self {
        JoinConfig {
            transfer: TransferTechnique::Complete,
            exact_test_ms: 0.75,
        }
    }
}

/// Cost breakdown of a complete intersection join (the bars of
/// Figure 17).
#[derive(Clone, Copy, Debug, Default)]
pub struct JoinStats {
    /// Candidate pairs produced by the MBR join.
    pub mbr_pairs: u64,
    /// I/O time of the MBR join in milliseconds.
    pub mbr_join_ms: f64,
    /// I/O time of the object transfer in milliseconds.
    pub transfer_ms: f64,
    /// CPU time of the exact geometry tests in milliseconds.
    pub exact_test_ms: f64,
}

impl JoinStats {
    /// Total cost in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.mbr_join_ms + self.transfer_ms + self.exact_test_ms
    }

    /// Total cost in seconds (the unit of Figures 14, 16, 17).
    pub fn total_seconds(&self) -> f64 {
        self.total_ms() / 1000.0
    }

    /// I/O-only cost in seconds (Figures 14 and 16 report I/O cost).
    pub fn io_seconds(&self) -> f64 {
        (self.mbr_join_ms + self.transfer_ms) / 1000.0
    }
}

/// A spatial join between two [`SpatialStore`] backends sharing one disk
/// and one buffer pool.
///
/// Joins are pure reads: the operands are borrowed immutably, all I/O
/// state lives behind the shared pool/disk locks.
pub struct SpatialJoin<'a> {
    r: &'a dyn SpatialStore,
    s: &'a dyn SpatialStore,
}

impl std::fmt::Debug for SpatialJoin<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The operands are trait objects; identify them by backend name.
        f.debug_struct("SpatialJoin")
            .field("r", &self.r.name())
            .field("s", &self.s.name())
            .finish()
    }
}

impl<'a> SpatialJoin<'a> {
    /// Prepare a join. Both stores must live on the same disk and share
    /// the same buffer pool (the paper's joins run on one machine with
    /// one buffer).
    ///
    /// # Panics
    ///
    /// Panics if the stores do not share disk and pool.
    pub fn new(r: &'a dyn SpatialStore, s: &'a dyn SpatialStore) -> Self {
        assert!(
            std::sync::Arc::ptr_eq(&r.pool(), &s.pool()),
            "join operands must share one buffer pool"
        );
        assert!(
            std::sync::Arc::ptr_eq(&r.disk(), &s.disk()),
            "join operands must share one disk"
        );
        SpatialJoin { r, s }
    }

    /// Run the complete three-step intersection join.
    pub fn run(&self, config: JoinConfig) -> JoinStats {
        self.run_with_pairs(config).1
    }

    /// Run the join and also return the candidate pairs (for callers that
    /// perform the exact refinement themselves).
    pub fn run_with_pairs(
        &self,
        config: JoinConfig,
    ) -> (
        Vec<(spatialdb_rtree::ObjectId, spatialdb_rtree::ObjectId)>,
        JoinStats,
    ) {
        let disk = self.r.disk();
        // Step 1: MBR join, over the shared (sharded) pool.
        let before = disk.local_stats();
        let pool = self.r.pool();
        let mbr = mbr_join(self.r.tree(), self.s.tree(), &mut pool.as_ref());
        let mbr_join_ms = disk.local_stats().since(&before).io_ms;
        self.finish(mbr, mbr_join_ms, config)
    }

    /// Run the join and additionally capture its disk requests as a
    /// replayable trace for the arm scheduler
    /// ([`spatialdb_disk::arm`]) — the join-side batched read path.
    ///
    /// The join executes synchronously (pairs and [`JoinStats`] are
    /// exactly those of [`run_with_pairs`](SpatialJoin::run_with_pairs));
    /// every request charged on this thread during the MBR phase and the
    /// object transfer is recorded. Optimum-baseline transfers charge
    /// analytically and are absent from the trace.
    pub fn run_with_pairs_traced(
        &self,
        config: JoinConfig,
    ) -> (
        Vec<(spatialdb_rtree::ObjectId, spatialdb_rtree::ObjectId)>,
        JoinStats,
        Vec<spatialdb_disk::PageRequest>,
    ) {
        let disk = self.r.disk();
        disk.trace_begin();
        let (pairs, stats) = self.run_with_pairs(config);
        (pairs, stats, disk.trace_take())
    }

    /// Run the join with the MBR phase partitioned across `n_threads`
    /// worker threads (see [`mbr_join_par`]), then the sequential object
    /// transfer and the exact-test cost estimate.
    ///
    /// The candidate pairs are **identical to the sequential join's**, in
    /// the same order. The [`JoinStats`] are deterministic for a given
    /// `n_threads`, but the MBR-phase I/O differs from the sequential
    /// figure: partitions traverse on private cold buffers (nodes shared
    /// between partitions are re-read), and the shared buffer is not
    /// warmed by the traversal. The merged MBR-phase cost is absorbed
    /// into the workspace disk so cumulative accounting stays complete.
    pub fn run_par(&self, config: JoinConfig, n_threads: usize) -> JoinStats {
        self.run_par_with_pairs(config, n_threads).1
    }

    /// [`run_par`](SpatialJoin::run_par) also returning the candidate
    /// pairs.
    pub fn run_par_with_pairs(
        &self,
        config: JoinConfig,
        n_threads: usize,
    ) -> (
        Vec<(spatialdb_rtree::ObjectId, spatialdb_rtree::ObjectId)>,
        JoinStats,
    ) {
        let disk = self.r.disk();
        let capacity = self.r.pool().capacity();
        let (mbr, scratch) = mbr_join_par(self.r.tree(), self.s.tree(), &disk, capacity, n_threads);
        disk.absorb(&scratch);
        self.finish(mbr, scratch.io_ms, config)
    }

    /// Steps 2 and 3, shared by the sequential and parallel pipelines.
    fn finish(
        &self,
        mbr: crate::mbr_join::MbrJoinResult,
        mbr_join_ms: f64,
        config: JoinConfig,
    ) -> (
        Vec<(spatialdb_rtree::ObjectId, spatialdb_rtree::ObjectId)>,
        JoinStats,
    ) {
        // Step 2: object transfer.
        let transfer_ms = transfer_objects(self.r, self.s, &mbr.pairs, config.transfer);
        // Step 3: exact geometry test, one per candidate pair.
        let exact_test_ms = config.exact_test_ms * mbr.pairs.len() as f64;
        let stats = JoinStats {
            mbr_pairs: mbr.pairs.len() as u64,
            mbr_join_ms,
            transfer_ms,
            exact_test_ms,
        };
        (mbr.pairs, stats)
    }

    /// Run only the MBR join and object transfer (the I/O part measured
    /// by Figures 14 and 16).
    pub fn run_io_only(&self, technique: TransferTechnique) -> JoinStats {
        self.run(JoinConfig {
            transfer: technique,
            exact_test_ms: 0.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatialdb_disk::Disk;
    use spatialdb_geom::Rect;
    use spatialdb_rtree::ObjectId;
    use spatialdb_storage::{
        new_shared_pool, ClusterConfig, ClusterOrganization, ObjectRecord, Organization,
        SecondaryOrganization, SharedPool,
    };

    fn build_pair(buffer: usize, cluster_r: bool) -> (Organization, Organization, SharedPool) {
        let disk = Disk::with_defaults();
        let pool = new_shared_pool(disk.clone(), buffer);
        let mut r = if cluster_r {
            Organization::Cluster(ClusterOrganization::new(
                disk.clone(),
                pool.clone(),
                ClusterConfig::plain(16 * 1024),
            ))
        } else {
            Organization::Secondary(SecondaryOrganization::new(disk.clone(), pool.clone()))
        };
        let mut s = if cluster_r {
            Organization::Cluster(ClusterOrganization::new(
                disk.clone(),
                pool.clone(),
                ClusterConfig::plain(16 * 1024),
            ))
        } else {
            Organization::Secondary(SecondaryOrganization::new(disk.clone(), pool.clone()))
        };
        for i in 0..300u64 {
            let x = (i % 20) as f64 / 20.0;
            let y = (i / 20) as f64 / 20.0;
            r.insert(&ObjectRecord::new(
                ObjectId(i),
                Rect::new(x, y, x + 0.04, y + 0.04),
                700,
            ));
            s.insert(&ObjectRecord::new(
                ObjectId(i),
                Rect::new(x + 0.02, y, x + 0.06, y + 0.04),
                700,
            ));
        }
        r.flush();
        s.flush();
        r.begin_query();
        s.begin_query();
        (r, s, pool)
    }

    #[test]
    fn pipeline_produces_pairs_and_costs() {
        let (r, s, _) = build_pair(512, false);
        let stats = SpatialJoin::new(&r, &s).run(JoinConfig::default());
        assert!(stats.mbr_pairs > 0);
        assert!(stats.mbr_join_ms > 0.0);
        assert!(stats.transfer_ms > 0.0);
        assert_eq!(stats.exact_test_ms, 0.75 * stats.mbr_pairs as f64);
        assert!(stats.total_ms() > stats.transfer_ms);
    }

    #[test]
    fn cluster_join_cheaper_than_secondary() {
        let (rs, ss, _) = build_pair(256, false);
        let sec = SpatialJoin::new(&rs, &ss).run_io_only(TransferTechnique::Complete);
        let (rc, sc, _) = build_pair(256, true);
        let clu = SpatialJoin::new(&rc, &sc).run_io_only(TransferTechnique::Complete);
        assert_eq!(sec.mbr_pairs, clu.mbr_pairs, "same candidates");
        assert!(
            clu.transfer_ms < sec.transfer_ms,
            "cluster {} vs secondary {}",
            clu.transfer_ms,
            sec.transfer_ms
        );
    }

    #[test]
    fn pair_count_independent_of_buffer_size() {
        let (a, b, _) = build_pair(128, true);
        let small = SpatialJoin::new(&a, &b).run_io_only(TransferTechnique::Complete);
        let (c, d, _) = build_pair(4096, true);
        let big = SpatialJoin::new(&c, &d).run_io_only(TransferTechnique::Complete);
        assert_eq!(small.mbr_pairs, big.mbr_pairs);
        assert!(big.io_seconds() <= small.io_seconds() + 1e-9);
    }

    #[test]
    fn parallel_pipeline_matches_sequential_pairs() {
        let (r, s, _) = build_pair(512, true);
        let (seq_pairs, seq_stats) = SpatialJoin::new(&r, &s).run_with_pairs(JoinConfig::default());
        for threads in [2, 8] {
            let (r2, s2, _) = build_pair(512, true);
            let (par_pairs, par_stats) =
                SpatialJoin::new(&r2, &s2).run_par_with_pairs(JoinConfig::default(), threads);
            assert_eq!(par_pairs, seq_pairs, "{threads} threads");
            assert_eq!(par_stats.mbr_pairs, seq_stats.mbr_pairs);
            assert_eq!(par_stats.exact_test_ms, seq_stats.exact_test_ms);
            assert!(par_stats.mbr_join_ms > 0.0);
        }
    }

    #[test]
    fn run_par_fallback_does_not_double_count_local_tally() {
        // threads == 1 takes the single-partition fallback; its scratch
        // charges must reach the caller's thread tally exactly once
        // (via absorb), not twice.
        let (r, s, _) = build_pair(512, true);
        let disk = r.disk();
        let before = disk.local_stats();
        let stats = SpatialJoin::new(&r, &s).run_par(JoinConfig::default(), 1);
        let delta = disk.local_stats().since(&before);
        assert!(
            (delta.io_ms - (stats.mbr_join_ms + stats.transfer_ms)).abs() < 1e-9,
            "local delta {} vs mbr {} + transfer {}",
            delta.io_ms,
            stats.mbr_join_ms,
            stats.transfer_ms
        );
    }

    #[test]
    fn parallel_mbr_cost_absorbed_into_workspace_disk() {
        let (r, s, _) = build_pair(512, true);
        let disk = r.disk();
        let before = disk.stats();
        let stats = SpatialJoin::new(&r, &s).run_par(JoinConfig::default(), 4);
        let grown = disk.stats().since(&before);
        // The scratch-accounted MBR phase plus the shared-pool transfer
        // both land in the cumulative workspace counters.
        assert!(grown.io_ms >= stats.mbr_join_ms + stats.transfer_ms - 1e-9);
    }

    #[test]
    #[should_panic(expected = "share one buffer pool")]
    fn rejects_distinct_pools() {
        let disk = Disk::with_defaults();
        let pool_a = new_shared_pool(disk.clone(), 64);
        let pool_b = new_shared_pool(disk.clone(), 64);
        let a = Organization::Secondary(SecondaryOrganization::new(disk.clone(), pool_a));
        let b = Organization::Secondary(SecondaryOrganization::new(disk, pool_b));
        let _ = SpatialJoin::new(&a, &b);
    }
}

//! Step 3 and the complete intersection-join pipeline (§6.3).

use crate::mbr_join::mbr_join;
use crate::transfer::transfer_objects;
use spatialdb_storage::{SpatialStore, TransferTechnique};

/// Configuration of a complete spatial join.
#[derive(Clone, Copy, Debug)]
pub struct JoinConfig {
    /// Object-transfer technique (only the cluster organization
    /// distinguishes them).
    pub transfer: TransferTechnique,
    /// CPU cost of one exact geometry test in milliseconds. §6.3: with
    /// the decomposed representation \[SK91\] *"one test needs roughly
    /// 0.75 msec"*.
    pub exact_test_ms: f64,
}

impl Default for JoinConfig {
    fn default() -> Self {
        JoinConfig {
            transfer: TransferTechnique::Complete,
            exact_test_ms: 0.75,
        }
    }
}

/// Cost breakdown of a complete intersection join (the bars of
/// Figure 17).
#[derive(Clone, Copy, Debug, Default)]
pub struct JoinStats {
    /// Candidate pairs produced by the MBR join.
    pub mbr_pairs: u64,
    /// I/O time of the MBR join in milliseconds.
    pub mbr_join_ms: f64,
    /// I/O time of the object transfer in milliseconds.
    pub transfer_ms: f64,
    /// CPU time of the exact geometry tests in milliseconds.
    pub exact_test_ms: f64,
}

impl JoinStats {
    /// Total cost in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.mbr_join_ms + self.transfer_ms + self.exact_test_ms
    }

    /// Total cost in seconds (the unit of Figures 14, 16, 17).
    pub fn total_seconds(&self) -> f64 {
        self.total_ms() / 1000.0
    }

    /// I/O-only cost in seconds (Figures 14 and 16 report I/O cost).
    pub fn io_seconds(&self) -> f64 {
        (self.mbr_join_ms + self.transfer_ms) / 1000.0
    }
}

/// A spatial join between two [`SpatialStore`] backends sharing one disk
/// and one buffer pool.
pub struct SpatialJoin<'a> {
    r: &'a mut dyn SpatialStore,
    s: &'a mut dyn SpatialStore,
}

impl<'a> SpatialJoin<'a> {
    /// Prepare a join. Both stores must live on the same disk and share
    /// the same buffer pool (the paper's joins run on one machine with
    /// one buffer).
    ///
    /// # Panics
    ///
    /// Panics if the stores do not share disk and pool.
    pub fn new(r: &'a mut dyn SpatialStore, s: &'a mut dyn SpatialStore) -> Self {
        assert!(
            std::rc::Rc::ptr_eq(&r.pool(), &s.pool()),
            "join operands must share one buffer pool"
        );
        assert!(
            std::rc::Rc::ptr_eq(&r.disk(), &s.disk()),
            "join operands must share one disk"
        );
        SpatialJoin { r, s }
    }

    /// Run the complete three-step intersection join.
    pub fn run(&mut self, config: JoinConfig) -> JoinStats {
        self.run_with_pairs(config).1
    }

    /// Run the join and also return the candidate pairs (for callers that
    /// perform the exact refinement themselves).
    pub fn run_with_pairs(
        &mut self,
        config: JoinConfig,
    ) -> (
        Vec<(spatialdb_rtree::ObjectId, spatialdb_rtree::ObjectId)>,
        JoinStats,
    ) {
        let disk = self.r.disk();
        // Step 1: MBR join.
        let before = disk.stats();
        let pool = self.r.pool();
        let mbr = {
            let mut pool = pool.borrow_mut();
            mbr_join(self.r.tree(), self.s.tree(), &mut pool)
        };
        let mbr_join_ms = disk.stats().since(&before).io_ms;
        // Step 2: object transfer.
        let transfer_ms = transfer_objects(self.r, self.s, &mbr.pairs, config.transfer);
        // Step 3: exact geometry test, one per candidate pair.
        let exact_test_ms = config.exact_test_ms * mbr.pairs.len() as f64;
        let stats = JoinStats {
            mbr_pairs: mbr.pairs.len() as u64,
            mbr_join_ms,
            transfer_ms,
            exact_test_ms,
        };
        (mbr.pairs, stats)
    }

    /// Run only the MBR join and object transfer (the I/O part measured
    /// by Figures 14 and 16).
    pub fn run_io_only(&mut self, technique: TransferTechnique) -> JoinStats {
        self.run(JoinConfig {
            transfer: technique,
            exact_test_ms: 0.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatialdb_disk::Disk;
    use spatialdb_geom::Rect;
    use spatialdb_rtree::ObjectId;
    use spatialdb_storage::{
        new_shared_pool, ClusterConfig, ClusterOrganization, ObjectRecord, Organization,
        SecondaryOrganization, SharedPool,
    };

    fn build_pair(buffer: usize, cluster_r: bool) -> (Organization, Organization, SharedPool) {
        let disk = Disk::with_defaults();
        let pool = new_shared_pool(disk.clone(), buffer);
        let mut r = if cluster_r {
            Organization::Cluster(ClusterOrganization::new(
                disk.clone(),
                pool.clone(),
                ClusterConfig::plain(16 * 1024),
            ))
        } else {
            Organization::Secondary(SecondaryOrganization::new(disk.clone(), pool.clone()))
        };
        let mut s = if cluster_r {
            Organization::Cluster(ClusterOrganization::new(
                disk.clone(),
                pool.clone(),
                ClusterConfig::plain(16 * 1024),
            ))
        } else {
            Organization::Secondary(SecondaryOrganization::new(disk.clone(), pool.clone()))
        };
        for i in 0..300u64 {
            let x = (i % 20) as f64 / 20.0;
            let y = (i / 20) as f64 / 20.0;
            r.insert(&ObjectRecord::new(
                ObjectId(i),
                Rect::new(x, y, x + 0.04, y + 0.04),
                700,
            ));
            s.insert(&ObjectRecord::new(
                ObjectId(i),
                Rect::new(x + 0.02, y, x + 0.06, y + 0.04),
                700,
            ));
        }
        r.flush();
        s.flush();
        r.begin_query();
        s.begin_query();
        (r, s, pool)
    }

    #[test]
    fn pipeline_produces_pairs_and_costs() {
        let (mut r, mut s, _) = build_pair(512, false);
        let stats = SpatialJoin::new(&mut r, &mut s).run(JoinConfig::default());
        assert!(stats.mbr_pairs > 0);
        assert!(stats.mbr_join_ms > 0.0);
        assert!(stats.transfer_ms > 0.0);
        assert_eq!(stats.exact_test_ms, 0.75 * stats.mbr_pairs as f64);
        assert!(stats.total_ms() > stats.transfer_ms);
    }

    #[test]
    fn cluster_join_cheaper_than_secondary() {
        let (mut rs, mut ss, _) = build_pair(256, false);
        let sec = SpatialJoin::new(&mut rs, &mut ss).run_io_only(TransferTechnique::Complete);
        let (mut rc, mut sc, _) = build_pair(256, true);
        let clu = SpatialJoin::new(&mut rc, &mut sc).run_io_only(TransferTechnique::Complete);
        assert_eq!(sec.mbr_pairs, clu.mbr_pairs, "same candidates");
        assert!(
            clu.transfer_ms < sec.transfer_ms,
            "cluster {} vs secondary {}",
            clu.transfer_ms,
            sec.transfer_ms
        );
    }

    #[test]
    fn pair_count_independent_of_buffer_size() {
        let (mut a, mut b, _) = build_pair(128, true);
        let small = SpatialJoin::new(&mut a, &mut b).run_io_only(TransferTechnique::Complete);
        let (mut c, mut d, _) = build_pair(4096, true);
        let big = SpatialJoin::new(&mut c, &mut d).run_io_only(TransferTechnique::Complete);
        assert_eq!(small.mbr_pairs, big.mbr_pairs);
        assert!(big.io_seconds() <= small.io_seconds() + 1e-9);
    }

    #[test]
    #[should_panic(expected = "share one buffer pool")]
    fn rejects_distinct_pools() {
        let disk = Disk::with_defaults();
        let pool_a = new_shared_pool(disk.clone(), 64);
        let pool_b = new_shared_pool(disk.clone(), 64);
        let mut a = Organization::Secondary(SecondaryOrganization::new(disk.clone(), pool_a));
        let mut b = Organization::Secondary(SecondaryOrganization::new(disk, pool_b));
        let _ = SpatialJoin::new(&mut a, &mut b);
    }
}

//! Step 1: the MBR join on two R\*-trees (\[BKS93b\]), sequential and
//! partition-parallel.

use spatialdb_disk::{BufferPool, DiskHandle, IoStats, ScratchTally};
use spatialdb_geom::Rect;
use spatialdb_rtree::{DirEntry, NodeId, NodeIo, NodeKind, ObjectId, RStarTree};

/// Result of the MBR join.
#[derive(Clone, Debug, Default)]
pub struct MbrJoinResult {
    /// Candidate pairs `(r-object, s-object)` whose MBRs intersect, in
    /// processing order (ascending x, pinned groups).
    pub pairs: Vec<(ObjectId, ObjectId)>,
    /// Node pages read (before buffering).
    pub node_accesses: u64,
}

/// Compute all pairs of entries of `r` and `s` whose MBRs intersect.
///
/// Implements the \[BKS93b\] ordering: at every directory level the
/// qualifying pairs of subtrees are processed in ascending order of the
/// smallest x-coordinate of their intersection, and one subtree is
/// processed with **all** of its partners before the next pair is taken
/// up (*pinning*). Together with the LRU buffer behind `io` — a
/// [`BufferPool`] scratch or the shared
/// [`ShardedPool`](spatialdb_disk::ShardedPool) via `&mut pool.as_ref()`
/// — this gives the close-to-optimal page-access behaviour the paper
/// relies on.
pub fn mbr_join(r: &RStarTree, s: &RStarTree, io: &mut impl NodeIo) -> MbrJoinResult {
    let mut out = MbrJoinResult::default();
    if r.is_empty() || s.is_empty() {
        return out;
    }
    join_nodes(r, s, r.root(), s.root(), &mut out, io);
    out
}

fn read_node(tree: &RStarTree, id: NodeId, out: &mut MbrJoinResult, io: &mut impl NodeIo) {
    out.node_accesses += 1;
    io.read(tree.node_page(id));
}

/// The \[BKS93b\] processing order of the qualifying child pairs of two
/// directory nodes: grouped by the `r` child (ascending xmin of its MBR,
/// then entry index — the *pinning* groups), pairs within one group in
/// ascending order of the intersection's smallest x-coordinate.
fn ordered_child_pairs(re: &[DirEntry], se: &[DirEntry]) -> Vec<(usize, usize)> {
    let mut order: Vec<(f64, usize, usize)> = Vec::new();
    for (i, rc) in re.iter().enumerate() {
        for (j, sc) in se.iter().enumerate() {
            if rc.mbr.intersects(&sc.mbr) {
                let xlow = rc.mbr.xmin.max(sc.mbr.xmin);
                order.push((xlow, i, j));
            }
        }
    }
    order.sort_by(|a, b| {
        let ra = &re[a.1].mbr;
        let rb = &re[b.1].mbr;
        ra.xmin
            .total_cmp(&rb.xmin)
            .then(a.1.cmp(&b.1))
            .then(a.0.total_cmp(&b.0))
    });
    order.into_iter().map(|(_, i, j)| (i, j)).collect()
}

/// Partition-parallel MBR join.
///
/// The synchronized traversal is partitioned by the qualifying top-level
/// `(r-subtree, s-subtree)` pairs, taken in the exact \[BKS93b\] order the
/// sequential join would process them in; each worker thread processes a
/// contiguous chunk of that list against a **private scratch disk and
/// buffer pool** (capacity `buffer_capacity`, the shared pool's size).
/// Results are merged in partition order, so for a given `n_threads`:
///
/// * the candidate **pairs are byte-identical to the sequential join**,
///   in the same order (the traversal is pure; buffering never changes
///   which pairs are found), and
/// * the returned [`IoStats`] are **deterministic** — every partition's
///   cost depends only on its chunk, and the merge sums the per-partition
///   stats in partition index order.
///
/// The node-I/O cost differs from the sequential join's: partitions do
/// not share buffered pages, so nodes read by several partitions are
/// charged once per partition (the price of scaling the traversal across
/// threads). Callers should [`absorb`](spatialdb_disk::Disk::absorb) the
/// returned stats into the real disk (`disk`) for cumulative accounting.
///
/// **Panic safety:** every worker accounts on a scratch disk guarded by
/// a [`ScratchTally`]. If a worker unwinds, its guard absorbs the
/// partial charges into `disk` directly, and the partitions that *did*
/// complete are absorbed before the panic is propagated — a panicking
/// worker cannot leak I/O charges out of the workspace's cumulative
/// counters (on the normal path nothing is absorbed here; the caller
/// absorbs the deterministic merge exactly as before).
///
/// Falls back to a single partition (one worker, still on a scratch
/// disk) when either root is a leaf, the trees differ in height, or the
/// top level yields fewer than two qualifying pairs.
pub fn mbr_join_par(
    r: &RStarTree,
    s: &RStarTree,
    disk: &DiskHandle,
    buffer_capacity: usize,
    n_threads: usize,
) -> (MbrJoinResult, IoStats) {
    if r.is_empty() || s.is_empty() {
        return (MbrJoinResult::default(), IoStats::new());
    }
    let rnode = r.node(r.root());
    let snode = s.node(s.root());
    let top: Option<Vec<(usize, usize)>> = match (&rnode.kind, &snode.kind) {
        (NodeKind::Dir(re), NodeKind::Dir(se)) if rnode.level == snode.level => {
            Some(ordered_child_pairs(re, se))
        }
        _ => None,
    };
    let threads = n_threads.max(1);
    // One partition per worker: contiguous chunks of the ordered list.
    let chunks: Vec<Vec<(NodeId, NodeId)>> = match &top {
        Some(pairs) if pairs.len() >= 2 && threads >= 2 => {
            let (re, se) = (rnode.dir_entries(), snode.dir_entries());
            let per = pairs.len().div_ceil(threads);
            pairs
                .chunks(per)
                .map(|c| c.iter().map(|&(i, j)| (re[i].child, se[j].child)).collect())
                .collect()
        }
        _ => Vec::new(),
    };
    if chunks.is_empty() {
        // Sequential shape on a scratch disk: identical pairs, private
        // accounting. Run it on a worker thread like the partitioned
        // path, so the scratch charges land on the worker's (dying)
        // thread tally — charging on the calling thread would make the
        // caller's `Disk::local_stats` delta count this I/O twice once
        // the stats are absorbed into the real disk.
        let joined = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let guard = ScratchTally::new(disk.clone());
                    let mut pool = BufferPool::new(guard.scratch().clone(), buffer_capacity);
                    let mut out = MbrJoinResult::default();
                    join_nodes(r, s, r.root(), s.root(), &mut out, &mut pool);
                    let stats = guard.finish();
                    (out, stats)
                })
                .join()
        });
        // On unwind the worker's guard already absorbed its partial
        // charges into the real disk.
        return match joined {
            Ok(pair) => pair,
            Err(payload) => std::panic::resume_unwind(payload),
        };
    }
    let results: Vec<std::thread::Result<(MbrJoinResult, IoStats)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                scope.spawn(move || {
                    let guard = ScratchTally::new(disk.clone());
                    let mut pool = BufferPool::new(guard.scratch().clone(), buffer_capacity);
                    let mut out = MbrJoinResult::default();
                    // Mirror the sequential root level: the pinned r
                    // child is read once per pinning group, the s child
                    // once per pair.
                    let mut last_r: Option<NodeId> = None;
                    for &(rn, sn) in chunk {
                        if last_r != Some(rn) {
                            read_node(r, rn, &mut out, &mut pool);
                            last_r = Some(rn);
                        }
                        read_node(s, sn, &mut out, &mut pool);
                        join_nodes(r, s, rn, sn, &mut out, &mut pool);
                    }
                    (out, guard.finish())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    });
    if results.iter().any(|r| r.is_err()) {
        // A worker panicked: its guard absorbed its partial charges on
        // unwind. Absorb the completed partitions too (their stats
        // would otherwise be dropped with this unwind), then propagate.
        let mut salvaged = IoStats::new();
        let mut payload = None;
        for res in results {
            match res {
                Ok((_, part_stats)) => salvaged = salvaged.plus(&part_stats),
                Err(p) => payload = Some(p),
            }
        }
        disk.absorb(&salvaged);
        std::panic::resume_unwind(payload.expect("at least one worker panicked"));
    }
    // Deterministic merge: partition index order.
    let mut merged = MbrJoinResult::default();
    let mut stats = IoStats::new();
    for res in results {
        let (part, part_stats) = res.expect("panics handled above");
        merged.pairs.extend(part.pairs);
        merged.node_accesses += part.node_accesses;
        stats = stats.plus(&part_stats);
    }
    (merged, stats)
}

/// Recursive synchronized traversal of the subtrees rooted at `rn`/`sn`.
fn join_nodes(
    r: &RStarTree,
    s: &RStarTree,
    rn: NodeId,
    sn: NodeId,
    out: &mut MbrJoinResult,
    io: &mut impl NodeIo,
) {
    let rnode = r.node(rn);
    let snode = s.node(sn);
    match (&rnode.kind, &snode.kind) {
        (NodeKind::Leaf(re), NodeKind::Leaf(se)) => {
            // Data page level: report intersecting entry pairs, x-ordered
            // plane-sweep to avoid the full quadratic scan.
            let mut ri: Vec<usize> = (0..re.len()).collect();
            let mut si: Vec<usize> = (0..se.len()).collect();
            ri.sort_by(|&a, &b| re[a].mbr.xmin.total_cmp(&re[b].mbr.xmin));
            si.sort_by(|&a, &b| se[a].mbr.xmin.total_cmp(&se[b].mbr.xmin));
            let mut j0 = 0usize;
            for &i in &ri {
                let rm = re[i].mbr;
                while j0 < si.len() && se[si[j0]].mbr.xmin < rm.xmin {
                    // Advance past s entries that can no longer start
                    // after rm.xmin; they are still checked below via the
                    // backward scan bound.
                    j0 += 1;
                }
                // Backward: s entries starting before rm.xmin that may
                // still span it.
                for &j in si[..j0].iter() {
                    if se[j].mbr.xmax >= rm.xmin && rm.intersects(&se[j].mbr) {
                        out.pairs.push((re[i].oid, se[j].oid));
                    }
                }
                // Forward: s entries starting within rm's x-range.
                for &j in si[j0..].iter() {
                    if se[j].mbr.xmin > rm.xmax {
                        break;
                    }
                    if rm.intersects(&se[j].mbr) {
                        out.pairs.push((re[i].oid, se[j].oid));
                    }
                }
            }
        }
        (NodeKind::Dir(re), NodeKind::Dir(se)) if rnode.level == snode.level => {
            let mut read_r = vec![false; re.len()];
            for (i, j) in ordered_child_pairs(re, se) {
                if !read_r[i] {
                    read_node(r, re[i].child, out, io);
                    read_r[i] = true;
                }
                read_node(s, se[j].child, out, io);
                join_nodes(r, s, re[i].child, se[j].child, out, io);
            }
        }
        _ => {
            // Height difference: descend the taller tree.
            if rnode.level > snode.level {
                let children: Vec<(Rect, NodeId)> = rnode
                    .dir_entries()
                    .iter()
                    .map(|e| (e.mbr, e.child))
                    .collect();
                let smbr = snode.mbr();
                let mut q: Vec<(Rect, NodeId)> = children
                    .into_iter()
                    .filter(|(m, _)| m.intersects(&smbr))
                    .collect();
                q.sort_by(|a, b| a.0.xmin.total_cmp(&b.0.xmin));
                for (_, child) in q {
                    read_node(r, child, out, io);
                    join_nodes(r, s, child, sn, out, io);
                }
            } else {
                let children: Vec<(Rect, NodeId)> = snode
                    .dir_entries()
                    .iter()
                    .map(|e| (e.mbr, e.child))
                    .collect();
                let rmbr = rnode.mbr();
                let mut q: Vec<(Rect, NodeId)> = children
                    .into_iter()
                    .filter(|(m, _)| m.intersects(&rmbr))
                    .collect();
                q.sort_by(|a, b| a.0.xmin.total_cmp(&b.0.xmin));
                for (_, child) in q {
                    read_node(s, child, out, io);
                    join_nodes(r, s, rn, child, out, io);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatialdb_disk::Disk;
    use spatialdb_rtree::{LeafEntry, NoIo, RTreeConfig};
    use std::collections::HashSet;

    fn build(rects: &[Rect]) -> (RStarTree, spatialdb_disk::DiskHandle) {
        let disk = Disk::with_defaults();
        let mut t = RStarTree::new(
            RTreeConfig {
                max_entries: 8,
                min_fill_ratio: 0.4,
                reinsert_fraction: 0.3,
                leaf_reinsert_enabled: true,
                leaf_payload_limit: None,
            },
            disk.create_region("t"),
        );
        for (i, r) in rects.iter().enumerate() {
            t.insert(LeafEntry::new(*r, ObjectId(i as u64), 0), &mut NoIo);
        }
        (t, disk)
    }

    fn grid(n: usize, dx: f64, size: f64) -> Vec<Rect> {
        (0..n)
            .map(|i| {
                let x = (i % 17) as f64 + dx;
                let y = (i / 17) as f64;
                Rect::new(x, y, x + size, y + size)
            })
            .collect()
    }

    #[test]
    fn join_matches_brute_force() {
        let ra = grid(150, 0.0, 0.7);
        let rb = grid(130, 0.3, 0.7);
        let (ta, disk) = build(&ra);
        let (tb, _) = build(&rb);
        let mut pool = BufferPool::new(disk, 256);
        let res = mbr_join(&ta, &tb, &mut pool);
        let got: HashSet<(u64, u64)> = res.pairs.iter().map(|(a, b)| (a.0, b.0)).collect();
        let mut want = HashSet::new();
        for (i, x) in ra.iter().enumerate() {
            for (j, y) in rb.iter().enumerate() {
                if x.intersects(y) {
                    want.insert((i as u64, j as u64));
                }
            }
        }
        assert_eq!(got, want);
        assert_eq!(got.len(), res.pairs.len(), "no duplicate pairs");
    }

    #[test]
    fn join_with_different_heights() {
        let ra = grid(400, 0.0, 0.6); // taller tree
        let rb = grid(20, 0.2, 0.6);
        let (ta, disk) = build(&ra);
        let (tb, _) = build(&rb);
        let mut pool = BufferPool::new(disk, 256);
        let res = mbr_join(&ta, &tb, &mut pool);
        let brute: usize = ra
            .iter()
            .map(|x| rb.iter().filter(|y| x.intersects(y)).count())
            .sum();
        assert_eq!(res.pairs.len(), brute);
        // Symmetric case.
        let disk2 = Disk::with_defaults();
        let mut pool2 = BufferPool::new(disk2, 256);
        let res2 = mbr_join(&tb, &ta, &mut pool2);
        assert_eq!(res2.pairs.len(), brute);
    }

    #[test]
    fn empty_trees_join_to_nothing() {
        let (ta, disk) = build(&[]);
        let (tb, _) = build(&grid(10, 0.0, 0.5));
        let mut pool = BufferPool::new(disk, 64);
        assert!(mbr_join(&ta, &tb, &mut pool).pairs.is_empty());
        assert!(mbr_join(&tb, &ta, &mut pool).pairs.is_empty());
    }

    #[test]
    fn disjoint_data_sets_produce_no_pairs() {
        let ra = grid(50, 0.0, 0.4);
        let rb: Vec<Rect> = grid(50, 0.0, 0.4)
            .iter()
            .map(|r| Rect::new(r.xmin + 100.0, r.ymin, r.xmax + 100.0, r.ymax))
            .collect();
        let (ta, disk) = build(&ra);
        let (tb, _) = build(&rb);
        let mut pool = BufferPool::new(disk, 64);
        assert!(mbr_join(&ta, &tb, &mut pool).pairs.is_empty());
    }

    #[test]
    fn parallel_join_pairs_identical_to_sequential() {
        let ra = grid(400, 0.0, 0.7);
        let rb = grid(350, 0.3, 0.7);
        let (ta, disk) = build(&ra);
        let (tb, _) = build(&rb);
        let mut pool = BufferPool::new(disk.clone(), 256);
        let seq = mbr_join(&ta, &tb, &mut pool);
        for threads in [1, 2, 4, 8] {
            let (par, stats) = mbr_join_par(&ta, &tb, &disk, 256, threads);
            // Byte-identical pairs, in the same order.
            assert_eq!(par.pairs, seq.pairs, "{threads} threads");
            assert!(stats.io_ms > 0.0);
            // Determinism: a second run merges to the same stats.
            let (_, again) = mbr_join_par(&ta, &tb, &disk, 256, threads);
            assert_eq!(stats, again, "{threads} threads");
        }
    }

    #[test]
    fn parallel_join_handles_degenerate_trees() {
        // Leaf root on one side (height mismatch + tiny tree).
        let ra = grid(500, 0.0, 0.7);
        let rb = grid(4, 0.2, 0.7);
        let (ta, disk) = build(&ra);
        let (tb, _) = build(&rb);
        let mut pool = BufferPool::new(disk.clone(), 256);
        let seq = mbr_join(&ta, &tb, &mut pool);
        let (par, _) = mbr_join_par(&ta, &tb, &disk, 256, 4);
        assert_eq!(par.pairs, seq.pairs);
        // Empty operand.
        let (te, _) = build(&[]);
        let (empty, stats) = mbr_join_par(&te, &ta, &disk, 256, 4);
        assert!(empty.pairs.is_empty());
        assert_eq!(stats, IoStats::new());
    }

    #[test]
    fn buffer_reduces_io_with_ordering() {
        let ra = grid(500, 0.0, 0.8);
        let rb = grid(500, 0.4, 0.8);
        let (ta, da) = build(&ra);
        let (tb, _) = build(&rb);
        // Big buffer: most pages read once.
        let mut big = BufferPool::new(da.clone(), 4096);
        da.reset_stats();
        let res = mbr_join(&ta, &tb, &mut big);
        let big_reads = da.stats().pages_read;
        assert!(!res.pairs.is_empty());
        // Tiny buffer: strictly more page reads.
        da.reset_stats();
        let mut small = BufferPool::new(da.clone(), 16);
        mbr_join(&ta, &tb, &mut small);
        let small_reads = da.stats().pages_read;
        assert!(small_reads >= big_reads);
        // With a reasonable buffer and x-ordering, close to one read per
        // node ("most pages transferred into main memory only once").
        let nodes = (ta.num_nodes() + tb.num_nodes()) as u64;
        assert!(
            big_reads <= nodes + nodes / 4,
            "{big_reads} reads for {nodes} nodes"
        );
    }
}

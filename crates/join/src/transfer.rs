//! Step 2: transferring the exact representations of the candidate pairs.

use spatialdb_rtree::ObjectId;
use spatialdb_storage::{SpatialStore, TransferTechnique};
use std::collections::HashSet;

/// Fetch the exact representations of all candidate pairs, in processing
/// order, through the shared buffer.
///
/// Each store decides how to honour the transfer `technique` via
/// [`SpatialStore::fetch_for_join`]: the cluster organization batches
/// whole cluster units or SLM schedules (§6.2); the secondary and
/// primary organizations have a single natural access path and ignore
/// it. Returns the I/O time in milliseconds.
pub fn transfer_objects(
    r_org: &dyn SpatialStore,
    s_org: &dyn SpatialStore,
    pairs: &[(ObjectId, ObjectId)],
    technique: TransferTechnique,
) -> f64 {
    let disk = r_org.disk();
    let before = disk.local_stats();
    // The join knows up front which objects it will need (the candidate
    // set of the MBR join); cluster-unit transfers batch accordingly.
    let needed_r: HashSet<ObjectId> = pairs.iter().map(|(a, _)| *a).collect();
    let needed_s: HashSet<ObjectId> = pairs.iter().map(|(_, b)| *b).collect();
    for (a, b) in pairs {
        r_org.fetch_for_join(*a, &needed_r, technique);
        s_org.fetch_for_join(*b, &needed_s, technique);
    }
    disk.local_stats().since(&before).io_ms
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatialdb_disk::Disk;
    use spatialdb_geom::Rect;
    use spatialdb_storage::{
        new_shared_pool, ClusterConfig, ClusterOrganization, ObjectRecord, Organization,
        SecondaryOrganization,
    };

    fn records(n: u64, dx: f64) -> Vec<ObjectRecord> {
        (0..n)
            .map(|i| {
                let x = (i % 20) as f64 / 20.0 + dx;
                let y = (i / 20) as f64 / 20.0;
                ObjectRecord::new(ObjectId(i), Rect::new(x, y, x + 0.03, y + 0.03), 700)
            })
            .collect()
    }

    fn setup(buffer_pages: usize) -> (Organization, Organization, Vec<(ObjectId, ObjectId)>) {
        let disk = Disk::with_defaults();
        let pool = new_shared_pool(disk.clone(), buffer_pages);
        let mut r = Organization::Cluster(ClusterOrganization::new(
            disk.clone(),
            pool.clone(),
            ClusterConfig::plain(16 * 1024),
        ));
        let mut s = Organization::Secondary(SecondaryOrganization::new(disk.clone(), pool));
        for rec in records(200, 0.0) {
            r.insert(&rec);
        }
        for rec in records(200, 0.01) {
            s.insert(&rec);
        }
        r.flush();
        // A plausible pair list: matching ids plus neighbours.
        let pairs: Vec<(ObjectId, ObjectId)> = (0..200u64)
            .flat_map(|i| {
                let mut v = vec![(ObjectId(i), ObjectId(i))];
                if i + 1 < 200 {
                    v.push((ObjectId(i), ObjectId(i + 1)));
                }
                v
            })
            .collect();
        (r, s, pairs)
    }

    #[test]
    fn transfer_charges_io() {
        let (mut r, s, pairs) = setup(512);
        r.begin_query();
        let ms = transfer_objects(&r, &s, &pairs, TransferTechnique::Complete);
        assert!(ms > 0.0);
    }

    #[test]
    fn larger_buffer_never_slower() {
        let mut costs = Vec::new();
        for pages in [32, 128, 1024] {
            let (mut r, s, pairs) = setup(pages);
            r.begin_query();
            let ms = transfer_objects(&r, &s, &pairs, TransferTechnique::Complete);
            costs.push(ms);
        }
        assert!(costs[0] >= costs[1] - 1e-9);
        assert!(costs[1] >= costs[2] - 1e-9);
    }

    #[test]
    fn optimum_not_more_expensive_than_complete() {
        let (mut r1, s1, pairs) = setup(256);
        r1.begin_query();
        let complete = transfer_objects(&r1, &s1, &pairs, TransferTechnique::Complete);
        let (mut r2, s2, pairs2) = setup(256);
        r2.begin_query();
        let opt = transfer_objects(&r2, &s2, &pairs2, TransferTechnique::Optimum);
        assert!(opt <= complete + 1e-9, "opt {opt} vs complete {complete}");
    }

    #[test]
    fn repeated_transfer_with_big_buffer_is_free() {
        let (mut r, s, pairs) = setup(8192);
        r.begin_query();
        transfer_objects(&r, &s, &pairs, TransferTechnique::Complete);
        let again = transfer_objects(&r, &s, &pairs, TransferTechnique::Complete);
        assert_eq!(again, 0.0);
    }
}

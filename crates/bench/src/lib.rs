//! Experiment harness support for the `spatialdb-bench` binaries.
//!
//! Each binary regenerates one table or figure of Brinkhoff & Kriegel,
//! VLDB 1994. Binaries accept an optional `--scale <fraction>` argument
//! (default 1.0 = paper scale) so a quick run is possible on small data.

use spatialdb::experiments::Scale;

/// Parse `--scale <f>` from the command line, returning the experiment
/// scale (paper scale by default).
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = Scale::paper();
    if let Some(pos) = args.iter().position(|a| a == "--scale") {
        let f: f64 = args
            .get(pos + 1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("--scale needs a fraction in (0, 1]"));
        assert!(f > 0.0 && f <= 1.0, "--scale must be in (0, 1]");
        scale.data_scale = f;
        if f < 0.5 {
            // Shrink query counts and join buffers proportionally so
            // quick runs stay quick and buffers stay meaningful relative
            // to the data volume.
            scale.num_queries = ((678.0 * f * 4.0) as usize).clamp(40, 678);
            scale.join_buffers = vec![160, 320, 640, 1280];
        }
    }
    scale
}

/// Standard experiment banner.
pub fn banner(what: &str, scale: &Scale) {
    println!("== {what} ==");
    println!(
        "   (data scale {:.2}, {} queries per set, seed {})",
        scale.data_scale, scale.num_queries, scale.seed
    );
    println!();
}

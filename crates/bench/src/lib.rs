//! Experiment harness support for the `spatialdb-bench` binaries.
//!
//! Each binary regenerates one table or figure of Brinkhoff & Kriegel,
//! VLDB 1994. Binaries accept an optional `--scale <fraction>` argument
//! (default 1.0 = paper scale) so a quick run is possible on small data.

use spatialdb::experiments::Scale;

/// Parse `--scale <f>` from the command line, returning the experiment
/// scale (paper scale by default).
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = Scale::paper();
    if let Some(pos) = args.iter().position(|a| a == "--scale") {
        let f: f64 = args
            .get(pos + 1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("--scale needs a fraction in (0, 1]"));
        assert!(f > 0.0 && f <= 1.0, "--scale must be in (0, 1]");
        scale.data_scale = f;
        if f < 0.5 {
            // Shrink query counts and join buffers proportionally so
            // quick runs stay quick and buffers stay meaningful relative
            // to the data volume.
            scale.num_queries = ((678.0 * f * 4.0) as usize).clamp(40, 678);
            scale.join_buffers = vec![160, 320, 640, 1280];
        }
    }
    scale
}

/// Value of the `--name <value>` command-line flag, if present (the
/// microbenchmark binaries' shared flag parser).
pub fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// A benchmark grid dimension: the `var` environment variable (a
/// comma-separated integer list, e.g. `SPATIALDB_BENCH_THREADS=1,4,16`)
/// overrides `default` — so re-baselining on different hardware (more
/// cores, deeper queues) needs no code change.
///
/// # Panics
///
/// Panics when the variable is set but not a comma-separated list of
/// positive integers.
pub fn grid_from_env(var: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(var) {
        Ok(s) => {
            let grid: Vec<usize> = s
                .split(',')
                .map(|t| {
                    t.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("{var} must be a comma-separated integer list"))
                })
                .collect();
            assert!(
                !grid.is_empty() && grid.iter().all(|&v| v > 0),
                "{var} must list positive integers"
            );
            grid
        }
        Err(_) => default.to_vec(),
    }
}

/// Standard experiment banner.
pub fn banner(what: &str, scale: &Scale) {
    println!("== {what} ==");
    println!(
        "   (data scale {:.2}, {} queries per set, seed {})",
        scale.data_scale, scale.num_queries, scale.seed
    );
    println!();
}

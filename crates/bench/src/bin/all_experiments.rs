//! Run the complete experiment suite (every table and figure) in one go.
//!
//! `cargo run --release -p spatialdb-bench --bin all_experiments [--scale f]`

use std::process::Command;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "table1", "fig05", "fig06", "fig07", "fig08", "fig10", "fig11", "fig12", "fig14", "fig16",
        "fig17",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let t0 = Instant::now();
    for bin in bins {
        let path = dir.join(bin);
        let started = Instant::now();
        let status = Command::new(&path)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to run {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
        eprintln!(
            "[{bin} finished in {:.1}s]",
            started.elapsed().as_secs_f64()
        );
        println!();
    }
    eprintln!("full suite: {:.1}s", t0.elapsed().as_secs_f64());
}

//! Bulk-load benchmark: insertion build vs the parallel STR bulk load
//! over an organizations × thread-count grid, emitted as
//! `BENCH_bulk_load.json`.
//!
//! For each organization model the §5.2 insertion build runs once (the
//! Figure 5 baseline), then the sort-tile-recursive bulk load
//! ([`build_organization_str`]) runs at every thread count in the grid
//! (`SPATIALDB_BENCH_LOAD_THREADS=1,2,4,8`). Reported per cell:
//! simulated construction I/O (total ms, pages read/written, requests),
//! wall-clock build seconds, occupied pages and R\*-tree node count.
//! The STR build's pages and placement are identical at every thread
//! count — only the per-partition request batching (and so the
//! simulated seek count) varies — and it charges **strictly less**
//! simulated I/O than the insertion build, which the bench asserts.
//!
//! A query-equivalence check follows per organization: a paper-style
//! 1 %-area window-query set runs against the insertion-built and the
//! STR-built trees. The answers must be identical (asserted); the
//! packed tree answers each window with fewer directory-node accesses,
//! reported as `node_reads_per_query`.
//!
//! Flags: `--scale F` (fraction of Table 1 data), `--out PATH`.

use spatialdb::data::workload::WindowQuerySet;
use spatialdb::data::DataSet;
use spatialdb::experiments::{
    build_organization, build_organization_str, records_of, ClusterSizing, ALL_KINDS,
};
use spatialdb::rtree::io::CountingIo;
use spatialdb::storage::{Organization, OrganizationKind, SpatialStore};
use spatialdb_bench::{arg, banner, grid_from_env, scale_from_args};
use std::time::Instant;

/// Window area of the equivalence query set (1 % of the data space —
/// the middle of the paper's Figure 8 grid).
const QUERY_AREA: f64 = 0.01;

fn org_label(kind: OrganizationKind) -> &'static str {
    match kind {
        OrganizationKind::Secondary => "secondary",
        OrganizationKind::Primary => "primary",
        OrganizationKind::Cluster => "cluster",
    }
}

/// Sorted answer set and total directory-node reads of one query set.
fn run_queries(org: &mut Organization, queries: &WindowQuerySet) -> (Vec<Vec<u64>>, u64) {
    let mut answers = Vec::with_capacity(queries.windows.len());
    let mut node_reads = 0u64;
    let mut scratch = Vec::new();
    for w in &queries.windows {
        let mut io = CountingIo::default();
        org.tree().window_entries_into(w, &mut io, &mut scratch);
        node_reads += io.reads;
        let mut ids: Vec<u64> = scratch.iter().map(|e| e.oid.0).collect();
        ids.sort_unstable();
        answers.push(ids);
    }
    (answers, node_reads)
}

fn main() {
    let scale = scale_from_args();
    let out_path = arg("--out").unwrap_or_else(|| "BENCH_bulk_load.json".to_string());
    let thread_grid = grid_from_env("SPATIALDB_BENCH_LOAD_THREADS", &[1, 2, 4, 8]);
    banner("Bulk load: insertion build vs parallel STR", &scale);

    let dataset = DataSet::all()[0];
    let spec = dataset.spec();
    let map = scale.map(dataset);
    let records = records_of(&map.objects);
    let queries = WindowQuerySet::generate(&map, QUERY_AREA, scale.num_queries, scale.seed);
    println!(
        "data set {dataset}: {} objects, thread grid {thread_grid:?}, {} queries",
        records.len(),
        queries.windows.len()
    );

    let mut rows = Vec::new();
    for kind in ALL_KINDS {
        let label = org_label(kind);

        let start = Instant::now();
        let (mut insert_org, insert_stats) = build_organization(
            kind,
            &records,
            spec.smax_bytes as u64,
            ClusterSizing::Plain,
            scale.construction_buffer,
        );
        let insert_secs = start.elapsed().as_secs_f64();
        println!(
            "  {label:9} insert        : {:8.1} io-s  {:7} pages written  {:.2} wall-s",
            insert_stats.io_seconds(),
            insert_stats.pages_written,
            insert_secs
        );
        rows.push(format!(
            "    {{\"org\": \"{label}\", \"method\": \"insert\", \"threads\": 1, \
             \"io_ms\": {:.3}, \"pages_written\": {}, \"pages_read\": {}, \
             \"write_requests\": {}, \"occupied_pages\": {}, \"tree_nodes\": {}, \
             \"wall_seconds\": {:.3}}}",
            insert_stats.io_ms,
            insert_stats.pages_written,
            insert_stats.pages_read,
            insert_stats.write_requests,
            insert_org.occupied_pages(),
            insert_org.tree().num_nodes(),
            insert_secs
        ));

        let mut str_org: Option<Organization> = None;
        let mut str_pages: Option<(u64, u64)> = None;
        for &threads in &thread_grid {
            let start = Instant::now();
            let (org, stats) = build_organization_str(
                kind,
                &records,
                spec.smax_bytes as u64,
                ClusterSizing::Plain,
                scale.construction_buffer,
                threads,
            );
            let secs = start.elapsed().as_secs_f64();
            println!(
                "  {label:9} str {threads:2} thread(s): {:8.1} io-s  {:7} pages written  \
                 {:.2} wall-s  ({:.2}x less simulated I/O)",
                stats.io_seconds(),
                stats.pages_written,
                secs,
                insert_stats.io_ms / stats.io_ms
            );
            assert!(
                stats.io_ms < insert_stats.io_ms,
                "{label}: STR at {threads} thread(s) must charge less I/O than insertion \
                 ({} vs {} ms)",
                stats.io_ms,
                insert_stats.io_ms
            );
            // The STR result is thread-count invariant: identical pages
            // at every cell (request batching is the only difference).
            match str_pages {
                None => str_pages = Some((stats.pages_written, stats.pages_read)),
                Some(p) => assert_eq!(
                    p,
                    (stats.pages_written, stats.pages_read),
                    "{label}: STR pages must not depend on the thread count"
                ),
            }
            rows.push(format!(
                "    {{\"org\": \"{label}\", \"method\": \"str\", \"threads\": {threads}, \
                 \"io_ms\": {:.3}, \"pages_written\": {}, \"pages_read\": {}, \
                 \"write_requests\": {}, \"occupied_pages\": {}, \"tree_nodes\": {}, \
                 \"wall_seconds\": {:.3}}}",
                stats.io_ms,
                stats.pages_written,
                stats.pages_read,
                stats.write_requests,
                org.occupied_pages(),
                org.tree().num_nodes(),
                secs
            ));
            str_org = Some(org);
        }

        // Query-equivalence check: same answers, fewer node accesses.
        let mut str_org = str_org.expect("thread grid must not be empty");
        let (insert_answers, insert_reads) = run_queries(&mut insert_org, &queries);
        let (str_answers, str_reads) = run_queries(&mut str_org, &queries);
        assert_eq!(
            insert_answers, str_answers,
            "{label}: STR tree must answer the query set identically"
        );
        assert!(
            str_reads < insert_reads,
            "{label}: packed tree must touch fewer nodes ({str_reads} vs {insert_reads})"
        );
        let n = queries.windows.len() as f64;
        println!(
            "  {label:9} queries       : identical answers; {:.2} node reads/query packed \
             vs {:.2} inserted",
            str_reads as f64 / n,
            insert_reads as f64 / n
        );
        rows.push(format!(
            "    {{\"org\": \"{label}\", \"method\": \"query_check\", \"queries\": {}, \
             \"answers_identical\": true, \"node_reads_per_query_str\": {:.3}, \
             \"node_reads_per_query_insert\": {:.3}}}",
            queries.windows.len(),
            str_reads as f64 / n,
            insert_reads as f64 / n
        ));
    }

    let threads_json: Vec<String> = thread_grid.iter().map(|t| t.to_string()).collect();
    let json = format!(
        "{{\n  \"bench\": \"bulk_load\",\n  \"dataset\": \"{dataset}\",\n  \
         \"objects\": {},\n  \"queries\": {},\n  \"window_area\": {QUERY_AREA},\n  \
         \"threads\": [{}],\n  \"rows\": [\n{}\n  ]\n}}\n",
        records.len(),
        queries.windows.len(),
        threads_json.join(", "),
        rows.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write bench report");
    println!("wrote {out_path}");
}

//! Buffer-pool lock-contention benchmark: hit-path page-access
//! throughput of the sharded pool over a threads × shards grid,
//! emitted as `BENCH_pool_contention.json`.
//!
//! The workload isolates the replacement-state lock: every worker
//! re-reads a pre-warmed working set, so each access is a buffer hit
//! (shard lock + LRU touch, no disk-mutex traffic). With one shard all
//! threads serialize on one lock — the pre-sharding engine's behaviour;
//! with more shards the page hash spreads the accesses over
//! independent locks. Each cell reports two measures:
//!
//! * `accesses_per_sec` — wall-clock throughput (scales with the shard
//!   count on multi-core machines);
//! * `blocked_acquisitions` — shard-lock acquisitions that found the
//!   lock held by another thread
//!   ([`ShardedPool::lock_contentions`]), the hardware-independent
//!   contention measure: it drops with the shard count even when the
//!   machine's core count hides the effect from wall-clock time.
//!
//! Pass `--ops N` for accesses per thread, `--out PATH` for the report
//! location.

use spatialdb::disk::{Disk, PageId, ShardedPool};
use std::sync::Arc;
use std::time::Instant;

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Pages per thread in the warm working set.
const PAGES_PER_THREAD: u64 = 256;

fn run_cell(threads: usize, shards: usize, ops_per_thread: u64) -> (f64, u64) {
    let disk = Disk::with_defaults();
    let region = disk.create_region("contention");
    // Budget sized so the whole working set stays resident in every
    // shard (2x slack for the page-hash imbalance).
    let capacity = (threads as u64 * PAGES_PER_THREAD * 2) as usize;
    let pool = Arc::new(ShardedPool::with_shards(disk.clone(), capacity, shards));
    let total_pages = threads as u64 * PAGES_PER_THREAD;
    for o in 0..total_pages {
        pool.read_page(PageId::new(region, o));
    }
    assert_eq!(
        pool.len() as u64,
        total_pages,
        "working set must stay resident"
    );
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads as u64 {
            let pool = pool.clone();
            scope.spawn(move || {
                // Each thread walks the whole working set with its own
                // stride, so accesses interleave across all shards.
                let stride = 2 * t + 1;
                let mut o = t * PAGES_PER_THREAD;
                for _ in 0..ops_per_thread {
                    let hit = pool.read_page(PageId::new(region, o % total_pages));
                    debug_assert!(hit, "warm page must hit");
                    o = o.wrapping_add(stride);
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let ops_per_sec = (threads as u64 * ops_per_thread) as f64 / secs;
    (ops_per_sec, pool.lock_contentions())
}

fn main() {
    let ops_per_thread: u64 = arg("--ops").and_then(|s| s.parse().ok()).unwrap_or(400_000);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let out_path = arg("--out").unwrap_or_else(|| "BENCH_pool_contention.json".to_string());
    let thread_grid = [1usize, 2, 4, 8];
    let shard_grid = [1usize, 2, 4, 8, 16];

    println!("pool contention: {ops_per_thread} hit-path accesses per thread");
    let mut rows = Vec::new();
    for &threads in &thread_grid {
        for &shards in &shard_grid {
            // Warm-up pass to stabilize the cell, then the measured run.
            run_cell(threads, shards, ops_per_thread / 8);
            let (ops_per_sec, blocked) = run_cell(threads, shards, ops_per_thread);
            println!(
                "  {threads} thread(s) x {shards:2} shard(s): {ops_per_sec:12.0} accesses/s  \
                 {blocked:9} blocked acquisitions"
            );
            rows.push(format!(
                "    {{\"threads\": {threads}, \"shards\": {shards}, \
                 \"accesses_per_sec\": {ops_per_sec:.0}, \"blocked_acquisitions\": {blocked}}}"
            ));
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"pool_contention\",\n  \"ops_per_thread\": {ops_per_thread},\n  \
         \"pages_per_thread\": {PAGES_PER_THREAD},\n  \"workload\": \"warm hit path\",\n  \
         \"cores\": {cores},\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write bench report");
    println!("wrote {out_path}");
}

//! Buffer-pool lock-contention benchmark: hit-path page-access
//! throughput of the sharded pool over a threads × shards × routing
//! grid, emitted as `BENCH_pool_contention.json`.
//!
//! The workload isolates the replacement-state lock: each worker
//! re-reads its **own region's** pre-warmed working set, so every access
//! is a buffer hit (shard lock + LRU touch, no disk-mutex traffic) —
//! the partitioned-by-database access pattern of a multi-tenant server.
//! The routing dimension compares the two shard keys:
//!
//! * `by_page` — the default page-hash spreading: every thread's pages
//!   land on every shard, so threads contend whenever two pages hash to
//!   one shard at the same moment;
//! * `by_region` — region-keyed routing
//!   ([`Routing::ByRegion`](spatialdb::disk::Routing)): each region is
//!   one lock domain, so workers touching disjoint regions **never**
//!   share a lock (up to region-hash collisions).
//!
//! The `arm_affinity` column reruns `by_region` with per-arm shard
//! affinity ([`ShardedPool::set_arm_affinity`]) over a round-robin
//! stripe of as many arms as shards: regions then map to shards by arm
//! assignment (`r mod shards`) instead of the region hash, which makes
//! the tenant → lock-domain mapping collision-free whenever the tenant
//! count does not exceed the shard count.
//!
//! Each cell reports wall-clock `accesses_per_sec` (scales with cores)
//! and `blocked_acquisitions`
//! ([`ShardedPool::lock_contentions`]), the hardware-independent
//! contention measure. Pass `--ops N` for accesses per thread, `--out
//! PATH` for the report location; the grids are env-overridable
//! (`SPATIALDB_BENCH_THREADS=1,2,4,8`, `SPATIALDB_BENCH_SHARDS=1,2,4,8,16`)
//! so a multi-core re-baseline needs no code change.

use spatialdb::disk::{Disk, PageId, Routing, ShardedPool, StripePolicy};
use spatialdb_bench::{arg, grid_from_env};
use std::sync::Arc;
use std::time::Instant;

/// Pages per thread in the warm working set (each thread's pages live in
/// its own region).
const PAGES_PER_THREAD: u64 = 256;

fn run_cell(
    threads: usize,
    shards: usize,
    routing: Routing,
    affinity: bool,
    ops_per_thread: u64,
) -> (f64, u64) {
    let disk = Disk::with_defaults();
    let regions: Vec<_> = (0..threads)
        .map(|t| disk.create_region(&format!("tenant-{t}")))
        .collect();
    // Budget sized so the working set stays resident under any shard
    // assignment: region routing can concentrate every region onto one
    // shard, whose quota is capacity / shards — so scale the budget by
    // the shard count (the bench only exercises the hit path; capacity
    // beyond residency changes nothing).
    let capacity = (2 * threads as u64 * shards.max(1) as u64 * PAGES_PER_THREAD) as usize;
    let pool = Arc::new(ShardedPool::with_routing(
        disk.clone(),
        capacity,
        shards,
        routing,
    ));
    if affinity {
        // One arm per shard: tenants land on lock domains round-robin
        // (collision-free up to the shard count) instead of by hash.
        pool.set_arm_affinity(shards, StripePolicy::RoundRobin);
    }
    for &r in &regions {
        for o in 0..PAGES_PER_THREAD {
            pool.read_page(PageId::new(r, o));
        }
    }
    assert_eq!(
        pool.len() as u64,
        threads as u64 * PAGES_PER_THREAD,
        "working set must stay resident"
    );
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (t, &region) in regions.iter().enumerate() {
            let pool = pool.clone();
            scope.spawn(move || {
                // Each thread walks its own region's working set with
                // its own stride.
                let stride = 2 * t as u64 + 1;
                let mut o = 0u64;
                for _ in 0..ops_per_thread {
                    let hit = pool.read_page(PageId::new(region, o % PAGES_PER_THREAD));
                    debug_assert!(hit, "warm page must hit");
                    o = o.wrapping_add(stride);
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let ops_per_sec = (threads as u64 * ops_per_thread) as f64 / secs;
    (ops_per_sec, pool.lock_contentions())
}

fn main() {
    let ops_per_thread: u64 = arg("--ops").and_then(|s| s.parse().ok()).unwrap_or(400_000);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let out_path = arg("--out").unwrap_or_else(|| "BENCH_pool_contention.json".to_string());
    let thread_grid = grid_from_env("SPATIALDB_BENCH_THREADS", &[1, 2, 4, 8]);
    let shard_grid = grid_from_env("SPATIALDB_BENCH_SHARDS", &[1, 2, 4, 8, 16]);

    println!("pool contention: {ops_per_thread} hit-path accesses per thread (per-region sets)");
    let mut rows = Vec::new();
    for &threads in &thread_grid {
        for &shards in &shard_grid {
            for (routing, affinity, label) in [
                (Routing::ByPage, false, "by_page"),
                (Routing::ByRegion, false, "by_region"),
                (Routing::ByRegion, true, "by_region"),
            ] {
                // Warm-up pass to stabilize the cell, then the measured
                // run.
                run_cell(threads, shards, routing, affinity, ops_per_thread / 8);
                let (ops_per_sec, blocked) =
                    run_cell(threads, shards, routing, affinity, ops_per_thread);
                let aff = if affinity { "+affinity" } else { "" };
                println!(
                    "  {threads} thread(s) x {shards:2} shard(s) {label:9}{aff:9}: \
                     {ops_per_sec:12.0} accesses/s  {blocked:9} blocked acquisitions"
                );
                rows.push(format!(
                    "    {{\"threads\": {threads}, \"shards\": {shards}, \
                     \"routing\": \"{label}\", \"arm_affinity\": {affinity}, \
                     \"accesses_per_sec\": {ops_per_sec:.0}, \
                     \"blocked_acquisitions\": {blocked}}}"
                ));
            }
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"pool_contention\",\n  \"ops_per_thread\": {ops_per_thread},\n  \
         \"pages_per_thread\": {PAGES_PER_THREAD},\n  \
         \"workload\": \"per-region warm hit path\",\n  \
         \"cores\": {cores},\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write bench report");
    println!("wrote {out_path}");
}

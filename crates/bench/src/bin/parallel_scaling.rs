//! Parallel query-throughput scaling: end-to-end queries/sec of
//! `Workspace::run_batch` at 1/2/4/8 threads over a window-query
//! workload, emitted as `BENCH_parallel_scaling.json`.
//!
//! The filter step (simulated disk) is serialized by design — what
//! scales with threads is the exact-geometry refinement, which is the
//! CPU cost of a real query mix. Pass `--objects N` / `--queries N` to
//! change the workload size, `--out PATH` for the report location. The
//! thread grid is env-overridable (`SPATIALDB_BENCH_THREADS=1,2,4,8`)
//! for re-baselining on multi-core runners without a code change.

use spatialdb::geom::{Geometry, Point, Polyline, Rect};
use spatialdb::storage::OrganizationKind;
use spatialdb::{DbOptions, SpatialDatabase, Workspace};
use spatialdb_bench::arg;
use std::time::Instant;

fn load(ws: &Workspace, n: u64) -> SpatialDatabase {
    let mut db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
    let side = (n as f64).sqrt().ceil() as u64;
    let objects: Vec<(u64, Geometry)> = (0..n)
        .map(|i| {
            let x = (i % side) as f64 / side as f64;
            let y = (i / side) as f64 / side as f64;
            let line = Polyline::new(vec![
                Point::new(x, y),
                Point::new(x + 0.6 / side as f64, y + 0.3 / side as f64),
                Point::new(x + 1.2 / side as f64, y),
            ]);
            (i, Geometry::from(line))
        })
        .collect();
    let threads = std::thread::available_parallelism().map_or(1, |t| t.get());
    ws.bulk_load_par(&mut db, objects, threads);
    db.finish_loading();
    db
}

/// Deterministic mix of window sizes sweeping the data space.
fn workload(n_queries: usize) -> Vec<Rect> {
    (0..n_queries)
        .map(|i| {
            let f = i as f64 / n_queries as f64;
            let size = 0.05 + 0.30 * ((i % 7) as f64 / 7.0);
            let x = (f * 13.0) % (1.0 - size);
            let y = (f * 7.0) % (1.0 - size);
            Rect::new(x, y, x + size, y + size)
        })
        .collect()
}

fn main() {
    let n_objects: u64 = arg("--objects")
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let n_queries: usize = arg("--queries").and_then(|s| s.parse().ok()).unwrap_or(256);
    let out_path = arg("--out").unwrap_or_else(|| "BENCH_parallel_scaling.json".to_string());

    let ws = Workspace::new(512);
    let mut db = load(&ws, n_objects);
    let windows = workload(n_queries);
    println!("parallel scaling: {n_objects} objects, {n_queries} window queries");

    let thread_grid = spatialdb_bench::grid_from_env("SPATIALDB_BENCH_THREADS", &[1, 2, 4, 8]);
    let mut rows = Vec::new();
    let mut baseline_ids: Option<Vec<Vec<u64>>> = None;
    let mut baseline_qps = 0.0;
    for threads in thread_grid {
        // Cold object buffer per run so every thread count does the
        // same simulated I/O.
        db.store_mut().begin_query();
        let queries: Vec<_> = windows.iter().map(|w| db.query().window(*w)).collect();
        let start = Instant::now();
        let batch = ws.run_batch(queries, threads);
        let secs = start.elapsed().as_secs_f64();
        let ids: Vec<Vec<u64>> = batch.into_iter().map(|o| o.into_ids()).collect();
        match &baseline_ids {
            None => baseline_ids = Some(ids),
            Some(base) => assert_eq!(base, &ids, "thread count changed the results"),
        }
        let qps = n_queries as f64 / secs;
        if baseline_qps == 0.0 {
            // First grid cell is the speedup baseline (the default grid
            // starts at 1 thread).
            baseline_qps = qps;
        }
        println!(
            "  {threads} thread(s): {secs:.3} s  {qps:8.1} queries/s  speedup {:.2}x",
            qps / baseline_qps
        );
        rows.push(format!(
            "    {{\"threads\": {threads}, \"seconds\": {secs:.6}, \
             \"queries_per_sec\": {qps:.2}, \"speedup\": {:.4}}}",
            qps / baseline_qps
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"parallel_scaling\",\n  \"objects\": {n_objects},\n  \
         \"queries\": {n_queries},\n  \"organization\": \"cluster\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write bench report");
    println!("wrote {out_path}");
}

//! Figure 10: window-query techniques on the cluster organization.

use spatialdb::data::{DataSet, MapId, SeriesId};
use spatialdb::experiments::window_query_techniques;
use spatialdb::report::{f, Table};
use spatialdb_bench::{banner, scale_from_args};

fn main() {
    let scale = scale_from_args();
    banner(
        "Figure 10: Comparison of the Different Query Techniques for Window Queries",
        &scale,
    );
    let sets = [
        DataSet {
            series: SeriesId::A,
            map: MapId::Map1,
        },
        DataSet {
            series: SeriesId::C,
            map: MapId::Map1,
        },
    ];
    let mut t = Table::new(vec![
        "series",
        "window area (%)",
        "complete (ms/4KB)",
        "threshold (ms/4KB)",
        "SLM (ms/4KB)",
        "opt. (ms/4KB)",
    ]);
    for row in window_query_techniques(&scale, &sets) {
        t.row(vec![
            row.dataset.to_string(),
            format!("{}", row.area * 100.0),
            f(row.ms_per_4kb[0], 1),
            f(row.ms_per_4kb[1], 1),
            f(row.ms_per_4kb[2], 1),
            f(row.ms_per_4kb[3], 1),
        ]);
    }
    println!("{t}");
    println!("expected shape: for small windows on C-1, threshold saves ≈15%,");
    println!("SLM ≈27% vs complete (optimum ≈35%); no significant difference");
    println!("for windows of 0.1% and larger (§5.4.3).");
}

//! Figure 16: join transfer techniques on the cluster organization.

use spatialdb::data::SeriesId;
use spatialdb::experiments::join_techniques;
use spatialdb::report::{f, Table};
use spatialdb_bench::{banner, scale_from_args};

fn main() {
    let scale = scale_from_args();
    banner(
        "Figure 16: Comparison of the Query Techniques for Spatial Joins (C-1/2, cluster org.)",
        &scale,
    );
    let mut t = Table::new(vec![
        "version",
        "buffer (pages)",
        "complete (s)",
        "vector read (s)",
        "read (s)",
        "opt. (s)",
    ]);
    for row in join_techniques(&scale, SeriesId::C) {
        t.row(vec![
            row.version.to_string(),
            row.buffer_pages.to_string(),
            f(row.io_seconds[0], 1),
            f(row.io_seconds[1], 1),
            f(row.io_seconds[2], 1),
            f(row.io_seconds[3], 1),
        ]);
    }
    println!("{t}");
    println!("expected shape: the SLM variants only beat reading complete");
    println!("cluster units at small buffer sizes; for buffers of ≈1,600 pages");
    println!("and more the cost approaches the theoretical optimum (§6.2).");
}

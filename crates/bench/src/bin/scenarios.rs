//! A figure-like mixed workload through the declarative scenario
//! harness, emitted as `BENCH_scenarios.json`.
//!
//! Unlike `io_latency` / `decluster` (which reproduce fixed benchmark
//! grids), this binary exercises the harness end to end the way a
//! user would: a seeded uniform dataset, an open-arrival window sweep
//! replayed over a depth × policy × arm grid, and a mixed
//! window/point/join/insert stream per organization — with the
//! accounting cross-check asserted on every phase. The report is the
//! scenario-native JSON ([`ScenarioReport::to_json`]), deterministic
//! at any thread count.
//!
//! Flags: `--objects N` (default 4000), `--queries N` (default 96),
//! `--ops N` (default 128), `--threads N` (default 4), `--out PATH`.

use spatialdb::disk::{ArmPolicy, StripePolicy};
use spatialdb::{Arrival, EngineConfig};
use spatialdb_bench::arg;
use spatialdb_workload::{org_label, Dataset, Mix, Scenario, WindowSweep};

fn main() {
    let n_objects: u64 = arg("--objects")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4000);
    let n_queries: usize = arg("--queries").and_then(|s| s.parse().ok()).unwrap_or(96);
    let n_ops: usize = arg("--ops").and_then(|s| s.parse().ok()).unwrap_or(128);
    let threads: usize = arg("--threads").and_then(|s| s.parse().ok()).unwrap_or(4);
    let out_path = arg("--out").unwrap_or_else(|| "BENCH_scenarios.json".to_string());

    println!(
        "scenarios: {n_objects} objects, {n_queries} queries/cell, {n_ops} mixed ops, \
         {threads} threads"
    );
    let report = Scenario::new("fig-like")
        .dataset(Dataset::uniform(n_objects).polyline_segments(6))
        .databases(2)
        .engine(EngineConfig::default().buffer_pages(1024))
        .windows(
            WindowSweep::new(n_queries)
                .size_base(0.04)
                .size_amp(0.18)
                .size_period(6),
        )
        .arrivals(Arrival::open(0.7))
        .sweep_depths(&[4, 16])
        .sweep_policies(&[ArmPolicy::Fcfs, ArmPolicy::Elevator])
        .sweep_arms(&[1, 4])
        .sweep_stripes(&[StripePolicy::RoundRobin])
        .mix(Mix::new().window(0.6).point(0.2).join(0.1).insert(0.1))
        .operations(n_ops)
        .threads(threads)
        .seed(1994)
        .run();
    report.assert_stats_conserved();

    for m in &report.mixes {
        println!(
            "  mix {}: {} windows, {} points, {} joins, {} inserts, {} results",
            m.org.map_or("?", org_label),
            m.windows,
            m.points,
            m.joins,
            m.inserts,
            m.results
        );
    }
    std::fs::write(&out_path, report.to_json()).expect("write bench report");
    println!("wrote {out_path}");
}

//! End-to-end query latency under the disk-arm scheduler: an
//! organizations × queue-depth × policy grid over an open-arrival
//! window-query workload, emitted as `BENCH_io_latency.json`.
//!
//! The whole experiment is one declarative [`Scenario`]: the harness
//! runs the traced filter pass, derives the open-arrival spacing
//! (`inter_arrival_ms = mean service / load`), and replays the traces
//! through the single-arm scheduler at each queue depth under FCFS and
//! elevator ordering — byte-identical to the hand-rolled driver this
//! binary used to carry.
//!
//! Flags: `--objects N` (default 6000), `--queries N` (default 160),
//! `--load F` (default 0.9), `--out PATH`. The depth grid is
//! env-overridable: `SPATIALDB_BENCH_DEPTHS=1,2,4,8,16`.

use spatialdb::disk::ArmPolicy;
use spatialdb::{Arrival, EngineConfig};
use spatialdb_bench::{arg, grid_from_env};
use spatialdb_workload::{org_label, Dataset, Scenario, WindowSweep};

fn main() {
    let n_objects: u64 = arg("--objects")
        .and_then(|s| s.parse().ok())
        .unwrap_or(6000);
    let n_queries: usize = arg("--queries").and_then(|s| s.parse().ok()).unwrap_or(160);
    let load: f64 = arg("--load").and_then(|s| s.parse().ok()).unwrap_or(0.9);
    assert!(load > 0.0, "--load must be positive");
    let out_path = arg("--out").unwrap_or_else(|| "BENCH_io_latency.json".to_string());
    let depths = grid_from_env("SPATIALDB_BENCH_DEPTHS", &[1, 2, 4, 8, 16]);

    println!(
        "io latency: {n_objects} objects, {n_queries} queries, load {load}, depths {depths:?}"
    );
    let report = Scenario::new("io_latency")
        .dataset(Dataset::grid(n_objects))
        .engine(EngineConfig::default().buffer_pages(512))
        .windows(
            WindowSweep::new(n_queries)
                .size_base(0.04)
                .size_amp(0.22)
                .size_period(7),
        )
        .arrivals(Arrival::open(load))
        .sweep_depths(&depths)
        .sweep_policies(&[ArmPolicy::Fcfs, ArmPolicy::Elevator])
        .run();
    report.assert_stats_conserved();

    for pair in report.cells().chunks(2) {
        let (fcfs, elevator) = (&pair[0], &pair[1]);
        println!(
            "  {} depth {:2}: fcfs mean {:9.1} ms | elevator mean {:9.1} ms ({:+.1}%)",
            org_label(fcfs.org),
            fcfs.depth,
            fcfs.latency.mean,
            elevator.latency.mean,
            (elevator.latency.mean / fcfs.latency.mean - 1.0) * 100.0
        );
    }

    let rows: Vec<String> = report.cells().iter().map(|c| c.io_latency_row()).collect();
    let depths_json: Vec<String> = depths.iter().map(|d| d.to_string()).collect();
    let json = format!(
        "{{\n  \"bench\": \"io_latency\",\n  \"objects\": {n_objects},\n  \
         \"queries\": {n_queries},\n  \"load\": {load},\n  \"depths\": [{}],\n  \
         \"policies\": [\"fcfs\", \"elevator\"],\n  \"rows\": [\n{}\n  ]\n}}\n",
        depths_json.join(", "),
        rows.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write bench report");
    println!("wrote {out_path}");
}

//! End-to-end query latency under the disk-arm scheduler: an
//! organizations × queue-depth × policy grid over an open-arrival
//! window-query workload, emitted as `BENCH_io_latency.json`.
//!
//! For each organization the workload's filter steps run once,
//! synchronously, through the stores' batched read path — capturing each
//! query's disk-request trace (identical charges to the paper's
//! throughput model). The traces are then replayed through the
//! [`simulate_queries`] harness: queries arrive every
//! `inter_arrival_ms = mean service / load` simulated ms, keep up to
//! `depth` requests outstanding, and the single arm services the union
//! under FCFS or elevator (SCAN) ordering. Reported per cell:
//! p50/p95/p99/mean end-to-end latency, makespan, and total service
//! time — the dimension the synchronous cost model cannot see.
//!
//! Flags: `--objects N` (default 6000), `--queries N` (default 160),
//! `--load F` (default 0.9), `--out PATH`. The depth grid is
//! env-overridable: `SPATIALDB_BENCH_DEPTHS=1,2,4,8,16`.

use spatialdb::disk::{simulate_queries, ArmGeometry, ArmPolicy, QueryTrace};
use spatialdb::geom::{Geometry, Point, Polyline, Rect};
use spatialdb::report::summarize_latencies;
use spatialdb::storage::{OrganizationKind, WindowTechnique};
use spatialdb::{DbOptions, SpatialDatabase, Workspace};
use spatialdb_bench::{arg, grid_from_env};

fn load_db(ws: &Workspace, kind: OrganizationKind, n: u64) -> SpatialDatabase {
    let mut db = ws.create_database(DbOptions::new(kind).technique(WindowTechnique::Slm));
    let side = (n as f64).sqrt().ceil() as u64;
    let objects: Vec<(u64, Geometry)> = (0..n)
        .map(|i| {
            let x = (i % side) as f64 / side as f64;
            let y = (i / side) as f64 / side as f64;
            let line = Polyline::new(vec![
                Point::new(x, y),
                Point::new(x + 0.6 / side as f64, y + 0.3 / side as f64),
                Point::new(x + 1.2 / side as f64, y),
            ]);
            (i, Geometry::from(line))
        })
        .collect();
    let threads = std::thread::available_parallelism().map_or(1, |t| t.get());
    ws.bulk_load_par(&mut db, objects, threads);
    db.finish_loading();
    db
}

/// Deterministic mix of window sizes sweeping the data space.
fn workload(n_queries: usize) -> Vec<Rect> {
    (0..n_queries)
        .map(|i| {
            let f = i as f64 / n_queries as f64;
            let size = 0.04 + 0.22 * ((i % 7) as f64 / 7.0);
            let x = (f * 13.0) % (1.0 - size);
            let y = (f * 7.0) % (1.0 - size);
            Rect::new(x, y, x + size, y + size)
        })
        .collect()
}

fn org_label(kind: OrganizationKind) -> &'static str {
    match kind {
        OrganizationKind::Secondary => "secondary",
        OrganizationKind::Primary => "primary",
        OrganizationKind::Cluster => "cluster",
    }
}

fn policy_label(policy: ArmPolicy) -> &'static str {
    match policy {
        ArmPolicy::Fcfs => "fcfs",
        ArmPolicy::Elevator => "elevator",
    }
}

fn main() {
    let n_objects: u64 = arg("--objects")
        .and_then(|s| s.parse().ok())
        .unwrap_or(6000);
    let n_queries: usize = arg("--queries").and_then(|s| s.parse().ok()).unwrap_or(160);
    let load: f64 = arg("--load").and_then(|s| s.parse().ok()).unwrap_or(0.9);
    assert!(load > 0.0, "--load must be positive");
    let out_path = arg("--out").unwrap_or_else(|| "BENCH_io_latency.json".to_string());
    let depths = grid_from_env("SPATIALDB_BENCH_DEPTHS", &[1, 2, 4, 8, 16]);
    let windows = workload(n_queries);

    println!(
        "io latency: {n_objects} objects, {n_queries} queries, load {load}, depths {depths:?}"
    );
    let mut rows = Vec::new();
    for kind in [
        OrganizationKind::Secondary,
        OrganizationKind::Primary,
        OrganizationKind::Cluster,
    ] {
        let ws = Workspace::new(512);
        let mut db = load_db(&ws, kind, n_objects);
        db.store_mut().begin_query();
        // One synchronous traced pass: the charged costs are the paper's
        // figures; the traces are what the arm replays.
        let mut traces: Vec<Vec<_>> = Vec::with_capacity(n_queries);
        let mut total_io_ms = 0.0;
        let mut total_requests = 0usize;
        for w in &windows {
            let (stats, trace) = db.store().window_query_traced(w, WindowTechnique::Slm);
            total_io_ms += stats.io_ms;
            total_requests += trace.len();
            traces.push(trace);
        }
        let inter_arrival_ms = (total_io_ms / n_queries as f64) / load;
        println!(
            "  {} ({} requests, {:.1} ms mean service, {:.4} ms inter-arrival):",
            org_label(kind),
            total_requests,
            total_io_ms / n_queries as f64,
            inter_arrival_ms
        );
        let params = ws.disk().params();
        // Arrival stamps and traces are invariant across the grid —
        // build the replayable workload once per organization.
        let qtraces: Vec<QueryTrace> = traces
            .into_iter()
            .enumerate()
            .map(|(i, requests)| QueryTrace {
                arrival_ms: i as f64 * inter_arrival_ms,
                requests,
            })
            .collect();
        for &depth in &depths {
            let mut means = Vec::new();
            for policy in [ArmPolicy::Fcfs, ArmPolicy::Elevator] {
                let stats =
                    simulate_queries(params, ArmGeometry::default(), policy, depth, &qtraces);
                let mut latencies: Vec<f64> = stats.iter().map(|s| s.latency_ms()).collect();
                let s = summarize_latencies(&mut latencies);
                let makespan = stats.iter().map(|x| x.completed_ms).fold(0.0, f64::max);
                let service: f64 = stats.iter().map(|x| x.service_ms).sum();
                means.push(s.mean);
                rows.push(format!(
                    "    {{\"org\": \"{}\", \"policy\": \"{}\", \"depth\": {depth}, \
                     \"inter_arrival_ms\": {inter_arrival_ms:.4}, \"p50_ms\": {:.3}, \
                     \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"mean_ms\": {:.3}, \
                     \"makespan_ms\": {makespan:.3}, \"service_ms\": {service:.3}, \
                     \"requests\": {total_requests}}}",
                    org_label(kind),
                    policy_label(policy),
                    s.p50,
                    s.p95,
                    s.p99,
                    s.mean,
                ));
            }
            let (fcfs, elevator) = (means[0], means[1]);
            println!(
                "    depth {depth:2}: fcfs mean {fcfs:9.1} ms | elevator mean {elevator:9.1} ms \
                 ({:+.1}%)",
                (elevator / fcfs - 1.0) * 100.0
            );
        }
    }

    let depths_json: Vec<String> = depths.iter().map(|d| d.to_string()).collect();
    let json = format!(
        "{{\n  \"bench\": \"io_latency\",\n  \"objects\": {n_objects},\n  \
         \"queries\": {n_queries},\n  \"load\": {load},\n  \"depths\": [{}],\n  \
         \"policies\": [\"fcfs\", \"elevator\"],\n  \"rows\": [\n{}\n  ]\n}}\n",
        depths_json.join(", "),
        rows.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write bench report");
    println!("wrote {out_path}");
}

//! Declustered-storage scaling: an organizations × arm-count ×
//! stripe-policy grid over a multi-database window-query burst, emitted
//! as `BENCH_decluster.json`.
//!
//! Several databases share one workspace, so their regions decluster
//! across the simulated [`DiskArray`](spatialdb::disk::DiskArray): each
//! organization's filter steps run once, synchronously, through the
//! traced read path (identical charges to the paper's throughput
//! model), then the traces replay through [`simulate_queries_striped`]
//! under **open arrivals**: queries arrive every
//! `(mean service time) / load` simulated ms (the `io_latency`
//! discipline) with up to `--depth` requests outstanding. With one arm
//! the replay is byte-identical to the single-arm harness; with more
//! arms the stripe policy decides which regions can be serviced in
//! parallel — aggregate IOPS (= total requests / makespan) shows the
//! throughput scaling, and the per-cell p95/p99 latency percentiles
//! show how declustering trims the queueing tail. Per-arm FCFS rows
//! isolate pure declustering parallelism (an arm never reorders);
//! elevator rows show the combined effect.
//!
//! The databases are built with the parallel STR bulk load
//! ([`Workspace::bulk_load_par`]), so the bench inherits the packed
//! construction path.
//!
//! Flags: `--objects N` (default 6000, split across the databases),
//! `--queries N` (default 144), `--dbs N` (default 6), `--depth N`
//! (default 16), `--load F` (default 0.7), `--out PATH`. The arm grid
//! is env-overridable: `SPATIALDB_BENCH_ARMS=1,2,4,8`.

use spatialdb::disk::{
    simulate_queries_striped, ArmGeometry, ArmPolicy, ArrayConfig, QueryTrace, StripePolicy,
};
use spatialdb::geom::{Geometry, Point, Polyline, Rect};
use spatialdb::report::summarize_latencies;
use spatialdb::storage::{OrganizationKind, WindowTechnique};
use spatialdb::{DbOptions, SpatialDatabase, Workspace};
use spatialdb_bench::{arg, grid_from_env};

const ALL_STRIPES: [StripePolicy; 3] = [
    StripePolicy::RoundRobin,
    StripePolicy::RegionHash,
    StripePolicy::MbrLocality,
];

fn load_db(ws: &Workspace, kind: OrganizationKind, n: u64, salt: u64) -> SpatialDatabase {
    let mut db = ws.create_database(DbOptions::new(kind).technique(WindowTechnique::Slm));
    let side = (n as f64).sqrt().ceil() as u64;
    let objects: Vec<(u64, Geometry)> = (0..n)
        .map(|i| {
            let x = ((i + salt * 17) % side) as f64 / side as f64;
            let y = (i / side) as f64 / side as f64;
            let line = Polyline::new(vec![
                Point::new(x, y),
                Point::new(x + 0.6 / side as f64, y + 0.3 / side as f64),
                Point::new(x + 1.2 / side as f64, y),
            ]);
            (i, Geometry::from(line))
        })
        .collect();
    let threads = std::thread::available_parallelism().map_or(1, |t| t.get());
    ws.bulk_load_par(&mut db, objects, threads);
    db.finish_loading();
    db
}

/// Deterministic mix of window sizes sweeping the data space.
fn workload(n_queries: usize) -> Vec<Rect> {
    (0..n_queries)
        .map(|i| {
            let f = i as f64 / n_queries as f64;
            let size = 0.05 + 0.20 * ((i % 5) as f64 / 5.0);
            let x = (f * 13.0) % (1.0 - size);
            let y = (f * 7.0) % (1.0 - size);
            Rect::new(x, y, x + size, y + size)
        })
        .collect()
}

fn org_label(kind: OrganizationKind) -> &'static str {
    match kind {
        OrganizationKind::Secondary => "secondary",
        OrganizationKind::Primary => "primary",
        OrganizationKind::Cluster => "cluster",
    }
}

fn stripe_label(stripe: StripePolicy) -> &'static str {
    match stripe {
        StripePolicy::RoundRobin => "round_robin",
        StripePolicy::RegionHash => "region_hash",
        StripePolicy::MbrLocality => "mbr_locality",
    }
}

fn policy_label(policy: ArmPolicy) -> &'static str {
    match policy {
        ArmPolicy::Fcfs => "fcfs",
        ArmPolicy::Elevator => "elevator",
    }
}

fn main() {
    let n_objects: u64 = arg("--objects")
        .and_then(|s| s.parse().ok())
        .unwrap_or(6000);
    let n_queries: usize = arg("--queries").and_then(|s| s.parse().ok()).unwrap_or(144);
    let n_dbs: usize = arg("--dbs").and_then(|s| s.parse().ok()).unwrap_or(6);
    let depth: usize = arg("--depth").and_then(|s| s.parse().ok()).unwrap_or(16);
    let load: f64 = arg("--load").and_then(|s| s.parse().ok()).unwrap_or(0.7);
    assert!(n_dbs > 0 && depth > 0);
    assert!(load > 0.0, "--load must be positive");
    let out_path = arg("--out").unwrap_or_else(|| "BENCH_decluster.json".to_string());
    let arm_grid = grid_from_env("SPATIALDB_BENCH_ARMS", &[1, 2, 4, 8]);
    let windows = workload(n_queries);

    println!(
        "decluster: {n_objects} objects across {n_dbs} databases, {n_queries} queries, \
         depth {depth}, arms {arm_grid:?}"
    );
    let mut rows = Vec::new();
    for kind in [
        OrganizationKind::Secondary,
        OrganizationKind::Primary,
        OrganizationKind::Cluster,
    ] {
        // One workspace, several databases: their regions are the units
        // the stripe policies spread across arms.
        let ws = Workspace::new(512 * n_dbs);
        let mut dbs: Vec<SpatialDatabase> = (0..n_dbs)
            .map(|d| load_db(&ws, kind, n_objects / n_dbs as u64, d as u64))
            .collect();
        for db in &mut dbs {
            db.store_mut().begin_query();
        }
        // One synchronous traced pass, queries round-robined over the
        // databases — the traces are what the array replays. The mean
        // synchronous service time sets the open-arrival spacing.
        let mut total_requests = 0usize;
        let mut total_io_ms = 0.0;
        let traced: Vec<Vec<_>> = windows
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let db = &dbs[i % n_dbs];
                let (stats, requests) = db.store().window_query_traced(w, WindowTechnique::Slm);
                total_requests += requests.len();
                total_io_ms += stats.io_ms;
                requests
            })
            .collect();
        let inter_arrival_ms = (total_io_ms / n_queries as f64) / load;
        let qtraces: Vec<QueryTrace> = traced
            .into_iter()
            .enumerate()
            .map(|(i, requests)| QueryTrace {
                arrival_ms: i as f64 * inter_arrival_ms,
                requests,
            })
            .collect();
        println!(
            "  {} ({} requests, arrival every {:.3} ms):",
            org_label(kind),
            total_requests,
            inter_arrival_ms
        );
        let params = ws.disk().params();
        for stripe in ALL_STRIPES {
            for policy in [ArmPolicy::Fcfs, ArmPolicy::Elevator] {
                let mut line = format!(
                    "    {:>12}/{:<8}:",
                    stripe_label(stripe),
                    policy_label(policy)
                );
                for &arms in &arm_grid {
                    let (latency, arm_stats) = simulate_queries_striped(
                        params,
                        ArmGeometry::default(),
                        ArrayConfig {
                            arms,
                            stripe,
                            policy,
                            ..ArrayConfig::default()
                        },
                        depth,
                        &qtraces,
                    );
                    let makespan = latency.iter().map(|s| s.completed_ms).fold(0.0, f64::max);
                    let iops = if makespan > 0.0 {
                        total_requests as f64 / makespan * 1000.0
                    } else {
                        0.0
                    };
                    let mut latencies: Vec<f64> = latency.iter().map(|s| s.latency_ms()).collect();
                    let s = summarize_latencies(&mut latencies);
                    let busy: Vec<usize> = arm_stats
                        .iter()
                        .filter(|a| a.serviced > 0)
                        .map(|a| a.arm)
                        .collect();
                    let max_util = arm_stats
                        .iter()
                        .map(|a| a.utilization())
                        .fold(0.0, f64::max);
                    rows.push(format!(
                        "    {{\"org\": \"{}\", \"stripe\": \"{}\", \"policy\": \"{}\", \
                         \"arms\": {arms}, \"busy_arms\": {}, \"requests\": {total_requests}, \
                         \"inter_arrival_ms\": {inter_arrival_ms:.4}, \
                         \"makespan_ms\": {makespan:.3}, \"iops\": {iops:.2}, \
                         \"mean_ms\": {:.3}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \
                         \"p99_ms\": {:.3}, \"max_util\": {max_util:.3}}}",
                        org_label(kind),
                        stripe_label(stripe),
                        policy_label(policy),
                        busy.len(),
                        s.mean,
                        s.p50,
                        s.p95,
                        s.p99,
                    ));
                    line.push_str(&format!(" {arms}a {iops:7.1} iops |"));
                }
                println!("{}", line.trim_end_matches(" |"));
            }
        }
    }

    let arms_json: Vec<String> = arm_grid.iter().map(|a| a.to_string()).collect();
    let json = format!(
        "{{\n  \"bench\": \"decluster\",\n  \"objects\": {n_objects},\n  \
         \"queries\": {n_queries},\n  \"databases\": {n_dbs},\n  \"depth\": {depth},\n  \
         \"load\": {load},\n  \
         \"arms\": [{}],\n  \"stripes\": [\"round_robin\", \"region_hash\", \
         \"mbr_locality\"],\n  \"policies\": [\"fcfs\", \"elevator\"],\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        arms_json.join(", "),
        rows.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write bench report");
    println!("wrote {out_path}");
}

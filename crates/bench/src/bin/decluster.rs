//! Declustered-storage scaling: an organizations × arm-count ×
//! stripe-policy grid over a multi-database window-query stream,
//! emitted as `BENCH_decluster.json`.
//!
//! The whole experiment is one declarative [`Scenario`]: several
//! databases share one workspace (their regions are the units the
//! stripe policies spread across the simulated disk array), queries
//! round-robin over them, and each grid cell replays the traced
//! workload under open arrivals at the configured depth — byte-identical
//! to the hand-rolled driver this binary used to carry. Aggregate IOPS
//! (= total requests / makespan) shows the throughput scaling; the
//! p95/p99 percentiles show how declustering trims the queueing tail.
//!
//! Flags: `--objects N` (default 6000, split across the databases),
//! `--queries N` (default 144), `--dbs N` (default 6), `--depth N`
//! (default 16), `--load F` (default 0.7), `--out PATH`. The arm grid
//! is env-overridable: `SPATIALDB_BENCH_ARMS=1,2,4,8`.

use spatialdb::disk::{ArmPolicy, StripePolicy};
use spatialdb::{Arrival, EngineConfig};
use spatialdb_bench::{arg, grid_from_env};
use spatialdb_workload::{org_label, policy_label, stripe_label, Dataset, Scenario, WindowSweep};

const ALL_STRIPES: [StripePolicy; 3] = [
    StripePolicy::RoundRobin,
    StripePolicy::RegionHash,
    StripePolicy::MbrLocality,
];

fn main() {
    let n_objects: u64 = arg("--objects")
        .and_then(|s| s.parse().ok())
        .unwrap_or(6000);
    let n_queries: usize = arg("--queries").and_then(|s| s.parse().ok()).unwrap_or(144);
    let n_dbs: usize = arg("--dbs").and_then(|s| s.parse().ok()).unwrap_or(6);
    let depth: usize = arg("--depth").and_then(|s| s.parse().ok()).unwrap_or(16);
    let load: f64 = arg("--load").and_then(|s| s.parse().ok()).unwrap_or(0.7);
    assert!(n_dbs > 0 && depth > 0);
    assert!(load > 0.0, "--load must be positive");
    let out_path = arg("--out").unwrap_or_else(|| "BENCH_decluster.json".to_string());
    let arm_grid = grid_from_env("SPATIALDB_BENCH_ARMS", &[1, 2, 4, 8]);

    println!(
        "decluster: {n_objects} objects across {n_dbs} databases, {n_queries} queries, \
         depth {depth}, arms {arm_grid:?}"
    );
    let report = Scenario::new("decluster")
        .dataset(Dataset::grid(n_objects))
        .databases(n_dbs)
        .engine(EngineConfig::default().buffer_pages(512 * n_dbs))
        .windows(
            WindowSweep::new(n_queries)
                .size_base(0.05)
                .size_amp(0.20)
                .size_period(5),
        )
        .arrivals(Arrival::open(load))
        .depth(depth)
        .sweep_policies(&[ArmPolicy::Fcfs, ArmPolicy::Elevator])
        .sweep_arms(&arm_grid)
        .sweep_stripes(&ALL_STRIPES)
        .run();
    report.assert_stats_conserved();

    for group in report.cells().chunks(arm_grid.len()) {
        let mut line = format!(
            "  {:>9} {:>12}/{:<8}:",
            org_label(group[0].org),
            stripe_label(group[0].stripe),
            policy_label(group[0].policy)
        );
        for cell in group {
            line.push_str(&format!(" {}a {:7.1} iops |", cell.arms, cell.iops));
        }
        println!("{}", line.trim_end_matches(" |"));
    }

    let rows: Vec<String> = report.cells().iter().map(|c| c.decluster_row()).collect();
    let arms_json: Vec<String> = arm_grid.iter().map(|a| a.to_string()).collect();
    let json = format!(
        "{{\n  \"bench\": \"decluster\",\n  \"objects\": {n_objects},\n  \
         \"queries\": {n_queries},\n  \"databases\": {n_dbs},\n  \"depth\": {depth},\n  \
         \"load\": {load},\n  \
         \"arms\": [{}],\n  \"stripes\": [\"round_robin\", \"region_hash\", \
         \"mbr_locality\"],\n  \"policies\": [\"fcfs\", \"elevator\"],\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        arms_json.join(", "),
        rows.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write bench report");
    println!("wrote {out_path}");
}

//! Figure 11: performance gains by adapting the cluster size.

use spatialdb::experiments::cluster_size_adaptation;
use spatialdb::report::{f, Table};
use spatialdb_bench::{banner, scale_from_args};

fn main() {
    let scale = scale_from_args();
    banner(
        "Figure 11: Performance Gains by an Adaptation of the Cluster Size (B-1)",
        &scale,
    );
    let mut t = Table::new(vec![
        "technique",
        "factor 10 (%)",
        "factor 100 (%)",
        "0.001 -> 0.1 (%)",
    ]);
    for row in cluster_size_adaptation(&scale) {
        t.row(vec![
            format!("{:?}", row.technique),
            f(row.gain_factor10_pct, 1),
            f(row.gain_factor100_pct, 1),
            f(row.gain_0001_to_01_pct, 1),
        ]);
    }
    println!("{t}");
    println!("expected shape: adapting the cluster size helps the simple");
    println!("complete technique (≈6% / ≈23%) but hardly helps threshold and");
    println!("SLM — adaptation is not essential (§5.4.4). Exception: clusters");
    println!("tuned for 0.001% windows handicap later 0.1% windows.");
}

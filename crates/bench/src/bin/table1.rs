//! Table 1: the maps and the test series.

use spatialdb::experiments::table1;
use spatialdb::report::{f, Table};
use spatialdb_bench::{banner, scale_from_args};

fn main() {
    let scale = scale_from_args();
    banner("Table 1: The Maps and the Test Series", &scale);
    let mut t = Table::new(vec![
        "test series - map",
        "number of objects",
        "avg object size (B)",
        "paper avg (B)",
        "total size (MB)",
        "paper total (MB)",
        "Smax (KB)",
    ]);
    for row in table1(&scale) {
        t.row(vec![
            row.dataset.to_string(),
            row.num_objects.to_string(),
            f(row.avg_object_bytes, 0),
            row.paper_avg_bytes.to_string(),
            f(row.total_mb, 1),
            f(row.paper_total_mb, 1),
            row.smax_kb.to_string(),
        ]);
    }
    println!("{t}");
}

//! Figure 8: window queries across the organization models.

use spatialdb::data::{DataSet, MapId, SeriesId};
use spatialdb::experiments::window_query_orgs;
use spatialdb::report::{f, speedup, Table};
use spatialdb_bench::{banner, scale_from_args};

fn main() {
    let scale = scale_from_args();
    banner(
        "Figure 8: Comparison of the Different Organization Models for Window Queries",
        &scale,
    );
    let sets = [
        DataSet {
            series: SeriesId::A,
            map: MapId::Map1,
        },
        DataSet {
            series: SeriesId::C,
            map: MapId::Map1,
        },
    ];
    let mut t = Table::new(vec![
        "series",
        "window area (%)",
        "avg answers",
        "sec. org. (ms/4KB)",
        "prim. org. (ms/4KB)",
        "cluster org. (ms/4KB)",
        "speedup vs sec.",
    ]);
    for row in window_query_orgs(&scale, &sets) {
        t.row(vec![
            row.dataset.to_string(),
            format!("{}", row.area * 100.0),
            f(row.avg_candidates, 1),
            f(row.ms_per_4kb[0], 1),
            f(row.ms_per_4kb[1], 1),
            f(row.ms_per_4kb[2], 1),
            speedup(row.ms_per_4kb[0], row.ms_per_4kb[2]),
        ]);
    }
    println!("{t}");
    println!("expected shape: the larger the window, the better the cluster");
    println!("organization; speedups vs the secondary organization up to ≈20x");
    println!("(A-1) / ≈12.5x (C-1) at the 10% window (§5.4).");
}

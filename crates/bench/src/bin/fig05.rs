//! Figure 5: I/O cost for constructing the organization models.

use spatialdb::data::DataSet;
use spatialdb::experiments::construction_suite;
use spatialdb::report::{f, Table};
use spatialdb_bench::{banner, scale_from_args};

fn main() {
    let scale = scale_from_args();
    banner(
        "Figure 5: I/O-Cost for Constructing the Organization Models",
        &scale,
    );
    let mut t = Table::new(vec![
        "series",
        "sec. org. (s)",
        "prim. org. (s)",
        "cluster org. (s)",
    ]);
    for row in construction_suite(&scale, &DataSet::all()) {
        t.row(vec![
            row.dataset.to_string(),
            f(row.io_seconds[0], 0),
            f(row.io_seconds[1], 0),
            f(row.io_seconds[2], 0),
        ]);
    }
    println!("{t}");
    println!("expected shape: cluster < secondary < primary; primary grows with");
    println!("object size; secondary/cluster nearly independent of it (§5.2).");
}

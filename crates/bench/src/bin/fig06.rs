//! Figure 6: storage utilization of the organization models.

use spatialdb::data::DataSet;
use spatialdb::experiments::construction_suite;
use spatialdb::report::Table;
use spatialdb_bench::{banner, scale_from_args};

fn main() {
    let scale = scale_from_args();
    banner(
        "Figure 6: Storage Utilization of the Organization Models",
        &scale,
    );
    let mut t = Table::new(vec![
        "series",
        "sec. org. (pages)",
        "prim. org. (pages)",
        "cluster org. (pages)",
    ]);
    for row in construction_suite(&scale, &DataSet::all()) {
        t.row(vec![
            row.dataset.to_string(),
            row.occupied_pages[0].to_string(),
            row.occupied_pages[1].to_string(),
            row.occupied_pages[2].to_string(),
        ]);
    }
    println!("{t}");
    println!("expected shape: secondary best (dense file); cluster worst");
    println!("(each unit occupies the full Smax); primary in between (§5.3).");
}

//! Figure 14: spatial joins across the organization models.

use spatialdb::data::SeriesId;
use spatialdb::experiments::join_orgs;
use spatialdb::report::{f, speedup, Table};
use spatialdb_bench::{banner, scale_from_args};

fn main() {
    let scale = scale_from_args();
    banner(
        "Figure 14: Comparison of the Different Organization Models for Spatial Joins (C-1/2)",
        &scale,
    );
    let mut t = Table::new(vec![
        "version",
        "buffer (pages)",
        "MBR pairs",
        "sec. org. (s)",
        "prim. org. (s)",
        "cluster org. (s)",
        "speedup vs sec.",
    ]);
    for row in join_orgs(&scale, SeriesId::C) {
        t.row(vec![
            row.version.to_string(),
            row.buffer_pages.to_string(),
            row.mbr_pairs.to_string(),
            f(row.io_seconds[0], 1),
            f(row.io_seconds[1], 1),
            f(row.io_seconds[2], 1),
            speedup(row.io_seconds[0], row.io_seconds[2]),
        ]);
    }
    println!("{t}");
    println!("expected shape: the cluster organization wins at every buffer");
    println!("size; speedups vs the secondary organization up to ≈4.9 (version");
    println!("a) and ≈9.5 (version b); vs the primary up to ≈4.6 / ≈6.2 (§6.1).");
}

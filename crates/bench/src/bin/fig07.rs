//! Figure 7: storage utilization and construction cost with the
//! restricted buddy system.

use spatialdb::data::{DataSet, MapId, SeriesId};
use spatialdb::experiments::construction_suite;
use spatialdb::report::{f, Table};
use spatialdb_bench::{banner, scale_from_args};

fn main() {
    let scale = scale_from_args();
    banner(
        "Figure 7: Storage Utilization and Construction Cost (I/O) Using a Restricted Buddy System",
        &scale,
    );
    let map1: Vec<DataSet> = [SeriesId::A, SeriesId::B, SeriesId::C]
        .into_iter()
        .map(|series| DataSet {
            series,
            map: MapId::Map1,
        })
        .collect();
    let mut t = Table::new(vec![
        "series",
        "pages sec. org.",
        "pages prim. org.",
        "pages cluster (no buddy)",
        "pages cluster (buddy)",
        "constr. s (no buddy)",
        "constr. s (buddy)",
    ]);
    for row in construction_suite(&scale, &map1) {
        t.row(vec![
            row.dataset.to_string(),
            row.occupied_pages[0].to_string(),
            row.occupied_pages[1].to_string(),
            row.occupied_pages[2].to_string(),
            row.buddy_pages.to_string(),
            f(row.io_seconds[2], 0),
            f(row.buddy_io_seconds, 0),
        ]);
    }
    println!("{t}");
    println!("expected shape: with the restricted buddy system the cluster");
    println!("organization reaches ≈ primary-organization storage utilization");
    println!("at only slightly higher construction cost (§5.3.1).");
}

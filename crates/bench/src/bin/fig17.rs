//! Figure 17: the performance of a complete intersection join.

use spatialdb::experiments::join_breakdown;
use spatialdb::report::{f, Table};
use spatialdb_bench::{banner, scale_from_args};

fn main() {
    let scale = scale_from_args();
    banner(
        "Figure 17: The Performance of a Complete Intersection Join (C-1/2, 1600-page buffer)",
        &scale,
    );
    // The paper uses a 1,600-page buffer; scale it with the data so quick
    // runs stay meaningful.
    let buffer = ((1600.0 * scale.data_scale).round() as usize).max(320);
    let mut t = Table::new(vec![
        "version",
        "organization",
        "MBR pairs",
        "MBR-join (s)",
        "obj. transfer (s)",
        "exact test (s)",
        "total (s)",
    ]);
    let rows = join_breakdown(&scale, buffer);
    for row in &rows {
        t.row(vec![
            row.version.to_string(),
            row.organization.to_string(),
            row.mbr_pairs.to_string(),
            f(row.mbr_join_s, 1),
            f(row.transfer_s, 1),
            f(row.exact_test_s, 1),
            f(row.total_s(), 1),
        ]);
    }
    println!("{t}");
    for version in ["a", "b"] {
        let sec = rows
            .iter()
            .find(|r| r.version == version && r.organization == "sec. org.");
        let clu = rows
            .iter()
            .find(|r| r.version == version && r.organization == "cluster org.");
        if let (Some(sec), Some(clu)) = (sec, clu) {
            println!(
                "version {version}: total speedup {:.1}x (paper: ≈3.9x for a, ≈4.3x for b)",
                sec.total_s() / clu.total_s()
            );
        }
    }
    println!("expected shape: the object-transfer cost collapses under the");
    println!("cluster organization while MBR-join and exact-test cost stay");
    println!("roughly unchanged (§6.3).");
}

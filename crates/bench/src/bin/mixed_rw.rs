//! Closed-loop mixed read/write benchmark, emitted as
//! `BENCH_mixed_rw.json`.
//!
//! The shadow-paging experiment: a client population drives window
//! queries under `Arrival::Closed` (each client thinks, queries, and
//! only then queries again), swept over the population size, while a
//! full-algebra mixed stream — windows, points, joins, inserts, and
//! deletes — runs against every storage organization through the
//! barrier-free stream executor. Readers pin epoch snapshots and never
//! block behind the writers; the accounting cross-check is asserted on
//! every phase, and the whole report is deterministic at any thread
//! count.
//!
//! Flags: `--objects N` (default 2000), `--queries N` (default 48),
//! `--ops N` (default 96), `--threads N` (default 4),
//! `--think MS` (default 2.0), `--out PATH`.

use spatialdb::disk::{ArmPolicy, StripePolicy};
use spatialdb::{Arrival, EngineConfig};
use spatialdb_bench::arg;
use spatialdb_workload::{org_label, Dataset, Mix, Scenario, WindowSweep};

fn main() {
    let n_objects: u64 = arg("--objects")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    let n_queries: usize = arg("--queries").and_then(|s| s.parse().ok()).unwrap_or(48);
    let n_ops: usize = arg("--ops").and_then(|s| s.parse().ok()).unwrap_or(96);
    let threads: usize = arg("--threads").and_then(|s| s.parse().ok()).unwrap_or(4);
    let think_ms: f64 = arg("--think").and_then(|s| s.parse().ok()).unwrap_or(2.0);
    let out_path = arg("--out").unwrap_or_else(|| "BENCH_mixed_rw.json".to_string());

    println!(
        "mixed_rw: {n_objects} objects, {n_queries} queries/cell, {n_ops} mixed ops, \
         {threads} threads, think {think_ms} ms"
    );

    let mut sweeps: Vec<String> = Vec::new();
    for clients in [1usize, 2, 4, 8] {
        let report = Scenario::new(format!("mixed-rw-c{clients}"))
            .dataset(Dataset::uniform(n_objects).polyline_segments(6))
            .databases(2)
            .engine(EngineConfig::default().buffer_pages(1024))
            .windows(
                WindowSweep::new(n_queries)
                    .size_base(0.04)
                    .size_amp(0.18)
                    .size_period(6),
            )
            .arrivals(Arrival::closed(clients, think_ms))
            .sweep_depths(&[4])
            .sweep_policies(&[ArmPolicy::Elevator])
            .sweep_arms(&[1, 4])
            .sweep_stripes(&[StripePolicy::RoundRobin])
            .mix(
                Mix::new()
                    .window(0.4)
                    .point(0.2)
                    .join(0.1)
                    .insert(0.15)
                    .delete(0.15),
            )
            .operations(n_ops)
            .threads(threads)
            .seed(1994)
            .run();
        report.assert_stats_conserved();

        for m in &report.mixes {
            println!(
                "  c={clients} mix {}: {} windows, {} points, {} joins, {} inserts, \
                 {} deletes, {} results",
                m.org.map_or("?", org_label),
                m.windows,
                m.points,
                m.joins,
                m.inserts,
                m.deletes,
                m.results
            );
        }
        sweeps.push(format!(
            "  {{\"clients\": {clients}, \"report\": {}}}",
            report.to_json().trim_end()
        ));
    }

    let json = format!(
        "{{\n\"bench\": \"mixed_rw\", \"think_ms\": {think_ms}, \"sweeps\": [\n{}\n]\n}}\n",
        sweeps.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write bench report");
    println!("wrote {out_path}");
}

//! Figure 12: point queries across the organization models.

use spatialdb::data::{DataSet, MapId, SeriesId};
use spatialdb::experiments::point_queries;
use spatialdb::report::{f, Table};
use spatialdb_bench::{banner, scale_from_args};

fn main() {
    let scale = scale_from_args();
    banner(
        "Figure 12: Comparison of the Different Organization Models for Point Queries",
        &scale,
    );
    let sets: Vec<DataSet> = [SeriesId::A, SeriesId::B, SeriesId::C]
        .into_iter()
        .map(|series| DataSet {
            series,
            map: MapId::Map1,
        })
        .collect();
    let mut t = Table::new(vec![
        "series",
        "avg answers",
        "sec. org. (ms/4KB)",
        "prim. org. (ms/4KB)",
        "cluster org. (ms/4KB)",
    ]);
    for row in point_queries(&scale, &sets) {
        t.row(vec![
            row.dataset.to_string(),
            f(row.avg_candidates, 2),
            f(row.ms_per_4kb[0], 1),
            f(row.ms_per_4kb[1], 1),
            f(row.ms_per_4kb[2], 1),
        ]);
    }
    println!("{t}");
    println!("expected shape: almost no difference between the secondary and");
    println!("the cluster organization; the primary organization is best for");
    println!("the smallest objects and loses its edge as objects grow (§5.5).");
}

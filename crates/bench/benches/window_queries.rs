// Gated: requires the external `criterion` crate (not vendored in this
// offline build). Enable with `--features criterion` after adding the
// dev-dependency.
#![cfg(feature = "criterion")]

//! Benchmarks of window-query processing per organization model and per
//! cluster-organization technique (the workloads behind Figures 8 / 10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spatialdb::data::workload::WindowQuerySet;
use spatialdb::data::{DataSet, GeometryMode, MapId, SeriesId, SpatialMap};
use spatialdb::experiments::{build_organization, records_of, ClusterSizing};
use spatialdb::storage::{OrganizationKind, SpatialStore, WindowTechnique};
use std::hint::black_box;

fn setup() -> (SpatialMap, Vec<spatialdb::storage::ObjectRecord>) {
    let ds = DataSet {
        series: SeriesId::A,
        map: MapId::Map1,
    };
    let map = SpatialMap::generate(ds, 0.02, GeometryMode::MbrOnly, 42);
    let records = records_of(&map.objects);
    (map, records)
}

fn bench_orgs(c: &mut Criterion) {
    let (map, records) = setup();
    let queries = WindowQuerySet::generate(&map, 1e-3, 32, 7);
    let mut g = c.benchmark_group("window_query_orgs");
    g.sample_size(10);
    for kind in [
        OrganizationKind::Secondary,
        OrganizationKind::Primary,
        OrganizationKind::Cluster,
    ] {
        let (mut org, _) = build_organization(kind, &records, 80 * 1024, ClusterSizing::Plain, 256);
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.to_string()),
            &(),
            |b, _| {
                b.iter(|| {
                    let mut total = 0usize;
                    for w in &queries.windows {
                        org.begin_query();
                        total += org.window_query(w, WindowTechnique::Complete).candidates;
                    }
                    black_box(total)
                })
            },
        );
    }
    g.finish();
}

fn bench_techniques(c: &mut Criterion) {
    let (map, records) = setup();
    let queries = WindowQuerySet::generate(&map, 1e-4, 32, 7);
    let (mut org, _) = build_organization(
        OrganizationKind::Cluster,
        &records,
        80 * 1024,
        ClusterSizing::Plain,
        256,
    );
    let mut g = c.benchmark_group("window_query_techniques");
    g.sample_size(10);
    for (name, tech) in [
        ("complete", WindowTechnique::Complete),
        ("threshold", WindowTechnique::Threshold),
        ("slm", WindowTechnique::Slm),
        ("optimum", WindowTechnique::Optimum),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut ms = 0.0;
                for w in &queries.windows {
                    org.begin_query();
                    ms += org.window_query(w, tech).io_ms;
                }
                black_box(ms)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_orgs, bench_techniques);
criterion_main!(benches);

// Gated: requires the external `criterion` crate (not vendored in this
// offline build). Enable with `--features criterion` after adding the
// dev-dependency.
#![cfg(feature = "criterion")]

//! Microbenchmarks of the disk substrate: buddy allocation, page
//! packing, SLM schedules and the LRU buffer.

use criterion::{criterion_group, criterion_main, Criterion};
use spatialdb::disk::{
    slm_schedule, BuddyAllocator, BuddyConfig, Disk, LruBuffer, PageId, RegionId,
};
use std::hint::black_box;

fn bench_buddy(c: &mut Criterion) {
    c.bench_function("buddy_alloc_free_cycle", |b| {
        let disk = Disk::with_defaults();
        let region = disk.create_region("bench");
        b.iter(|| {
            let mut alloc = BuddyAllocator::new(region, BuddyConfig::restricted(20));
            let mut live = Vec::new();
            for i in 0..512u64 {
                let unit = alloc.alloc_for(1 + i % 20).expect("fits");
                live.push(unit);
                if i % 3 == 0 {
                    alloc.free(live.swap_remove((i as usize / 3) % live.len()));
                }
            }
            black_box(alloc.occupied_pages())
        })
    });
}

fn bench_slm(c: &mut Criterion) {
    let offsets: Vec<u64> = (0..500u64).filter(|o| o % 7 != 3 && o % 11 != 5).collect();
    c.bench_function("slm_schedule_500", |b| {
        b.iter(|| black_box(slm_schedule(&offsets, 5).len()))
    });
}

fn bench_lru(c: &mut Criterion) {
    c.bench_function("lru_buffer_churn", |b| {
        b.iter(|| {
            let mut buf = LruBuffer::new(256);
            let r = RegionId(0);
            for i in 0..4096u64 {
                buf.insert(PageId::new(r, (i * 2654435761) % 1024), i % 5 == 0);
            }
            black_box(buf.len())
        })
    });
}

criterion_group!(benches, bench_buddy, bench_slm, bench_lru);
criterion_main!(benches);

// Gated: requires the external `criterion` crate (not vendored in this
// offline build). Enable with `--features criterion` after adding the
// dev-dependency.
#![cfg(feature = "criterion")]

//! Microbenchmarks of the R*-tree: insertion, window and point queries,
//! with and without leaf-level forced reinsert.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spatialdb::disk::Disk;
use spatialdb::geom::{Point, Rect};
use spatialdb::rtree::{LeafEntry, NoIo, ObjectId, RStarTree, RTreeConfig};
use std::hint::black_box;

fn grid_rects(n: usize) -> Vec<Rect> {
    (0..n)
        .map(|i| {
            let x = ((i * 7919) % 1000) as f64 / 1000.0;
            let y = ((i * 104729) % 1000) as f64 / 1000.0;
            Rect::new(x, y, x + 0.004, y + 0.004)
        })
        .collect()
}

fn build(rects: &[Rect], leaf_reinsert: bool) -> RStarTree {
    let disk = Disk::with_defaults();
    let mut t = RStarTree::new(
        RTreeConfig {
            leaf_reinsert_enabled: leaf_reinsert,
            ..RTreeConfig::paper_default(4096)
        },
        disk.create_region("t"),
    );
    for (i, r) in rects.iter().enumerate() {
        t.insert(LeafEntry::new(*r, ObjectId(i as u64), 0), &mut NoIo);
    }
    t
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("rtree_insert");
    g.sample_size(10);
    for n in [1_000usize, 10_000] {
        let rects = grid_rects(n);
        g.bench_with_input(BenchmarkId::new("with_reinsert", n), &rects, |b, rects| {
            b.iter(|| black_box(build(rects, true).len()))
        });
        g.bench_with_input(
            BenchmarkId::new("no_leaf_reinsert", n),
            &rects,
            |b, rects| b.iter(|| black_box(build(rects, false).len())),
        );
    }
    g.finish();
}

fn bench_queries(c: &mut Criterion) {
    let rects = grid_rects(20_000);
    let tree = build(&rects, true);
    let mut g = c.benchmark_group("rtree_query");
    g.bench_function("window_1pct", |b| {
        let w = Rect::new(0.4, 0.4, 0.5, 0.5);
        b.iter(|| black_box(tree.window_entries(&w, &mut NoIo).len()))
    });
    g.bench_function("window_selective", |b| {
        let w = Rect::new(0.42, 0.42, 0.425, 0.425);
        b.iter(|| black_box(tree.window_entries(&w, &mut NoIo).len()))
    });
    g.bench_function("point", |b| {
        let p = Point::new(0.5, 0.5);
        b.iter(|| black_box(tree.point_entries(&p, &mut NoIo).len()))
    });
    g.finish();
}

criterion_group!(benches, bench_insert, bench_queries);
criterion_main!(benches);

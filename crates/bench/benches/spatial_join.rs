// Gated: requires the external `criterion` crate (not vendored in this
// offline build). Enable with `--features criterion` after adding the
// dev-dependency.
#![cfg(feature = "criterion")]

//! Benchmarks of the spatial-join pipeline (the workloads behind
//! Figures 14 / 16 / 17).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spatialdb::data::{DataSet, GeometryMode, MapId, SeriesId, SpatialMap};
use spatialdb::disk::Disk;
use spatialdb::experiments::{build_organization_on, records_of, ClusterSizing};
use spatialdb::join::SpatialJoin;
use spatialdb::storage::{
    new_shared_pool, Organization, OrganizationKind, SpatialStore, TransferTechnique,
};
use std::hint::black_box;

fn build_pair(kind: OrganizationKind) -> (Organization, Organization) {
    let m1 = SpatialMap::generate(
        DataSet {
            series: SeriesId::A,
            map: MapId::Map1,
        },
        0.02,
        GeometryMode::MbrOnly,
        42,
    );
    let m2 = SpatialMap::generate(
        DataSet {
            series: SeriesId::A,
            map: MapId::Map2,
        },
        0.02,
        GeometryMode::MbrOnly,
        42,
    );
    let disk = Disk::with_defaults();
    let pool = new_shared_pool(disk.clone(), 640);
    let (r, _) = build_organization_on(
        kind,
        &records_of(&m1.objects),
        80 * 1024,
        ClusterSizing::Plain,
        disk.clone(),
        pool.clone(),
    );
    let (s, _) = build_organization_on(
        kind,
        &records_of(&m2.objects),
        80 * 1024,
        ClusterSizing::Plain,
        disk,
        pool,
    );
    (r, s)
}

fn bench_join_orgs(c: &mut Criterion) {
    let mut g = c.benchmark_group("spatial_join_orgs");
    g.sample_size(10);
    for kind in [OrganizationKind::Secondary, OrganizationKind::Cluster] {
        let (mut r, mut s) = build_pair(kind);
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.to_string()),
            &(),
            |b, _| {
                b.iter(|| {
                    r.pool().reset(640);
                    r.disk().reset_stats();
                    let stats = SpatialJoin::new(&r, &s).run_io_only(TransferTechnique::Complete);
                    black_box(stats.mbr_pairs)
                })
            },
        );
    }
    g.finish();
}

fn bench_join_techniques(c: &mut Criterion) {
    let mut g = c.benchmark_group("spatial_join_techniques");
    g.sample_size(10);
    let (mut r, mut s) = build_pair(OrganizationKind::Cluster);
    for (name, tech) in [
        ("complete", TransferTechnique::Complete),
        ("vector_read", TransferTechnique::VectorRead),
        ("read", TransferTechnique::Read),
        ("optimum", TransferTechnique::Optimum),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                r.pool().reset(640);
                r.disk().reset_stats();
                let stats = SpatialJoin::new(&r, &s).run_io_only(tech);
                black_box(stats.mbr_pairs)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_join_orgs, bench_join_techniques);
criterion_main!(benches);

//! Parallel sort-based (STR) bulk loading.
//!
//! The sequential reference pipeline is
//! [`SpatialStore::bulk_load_str`]: plan entries, sort, tile, charge
//! the leaf-level write run, install. This module distributes the sort
//! and tile stages over scoped worker threads while producing a
//! **byte-identical store at every thread count**:
//!
//! 1. **Plan** (`&store`): one leaf entry per record with the store's
//!    payload accounting, plus the tiling capacities.
//! 2. **Sort**: the entries are chunk-sorted on `T` threads and merged.
//!    The STR comparator is a total order (unique object ids), so the
//!    merged sequence equals the sequential sort.
//! 3. **Tile**: the slice boundaries are a pure function of the entry
//!    count ([`spatialdb_rtree::bulk::slice_spans`]), computed once;
//!    workers tile contiguous groups of slices. Each worker accounts
//!    its partition's leaf-run write on a private scratch disk guarded
//!    by a [`ScratchTally`] — if a worker panics (e.g. a non-finite
//!    MBR trips the tiler's assertion), its partial charges and those
//!    of the partitions that completed are absorbed into the real disk
//!    before the panic propagates, exactly like the parallel MBR join.
//! 4. **Install** (`&mut store`): tiles are concatenated in partition
//!    order — the same sequence the sequential tiler produces — and
//!    handed to [`SpatialStore::str_install`], which packs the tree
//!    bottom-up and places the exact representations.
//!
//! Only the *number of write requests* for the leaf run differs across
//! thread counts (one per partition instead of one total); pages
//! written, tree structure, physical placement and every query answer
//! are identical. With `threads == 1` the accounting too is identical
//! to [`SpatialStore::bulk_load_str`].

use spatialdb_disk::{IoKind, IoStats, PageId, PageRun, ScratchTally};
use spatialdb_rtree::bulk;
use spatialdb_rtree::{LeafEntry, Tile};
use spatialdb_storage::{ObjectRecord, SpatialStore, StrPlan};
use std::ops::Range;

/// Split the slice spans into at most `threads` contiguous groups of
/// roughly equal entry counts (deterministic: depends only on the span
/// lengths and `threads`).
fn partition_spans(spans: &[Range<usize>], threads: usize) -> Vec<Vec<Range<usize>>> {
    let total: usize = spans.iter().map(|s| s.len()).sum();
    let target = total.div_ceil(threads).max(1);
    let mut groups: Vec<Vec<Range<usize>>> = Vec::new();
    let mut cur: Vec<Range<usize>> = Vec::new();
    let mut cur_len = 0usize;
    for span in spans {
        if cur_len >= target && groups.len() + 1 < threads {
            groups.push(std::mem::take(&mut cur));
            cur_len = 0;
        }
        cur_len += span.len();
        cur.push(span.clone());
    }
    if !cur.is_empty() {
        groups.push(cur);
    }
    groups
}

/// STR-bulk-load `records` into an empty `store`, fanning the sort and
/// tile stages across `threads` scoped worker threads.
///
/// See the [module docs](self) for the determinism contract. Cumulative
/// disk accounting is preserved: worker charges are absorbed into the
/// store's disk (even when a worker panics mid-tile).
///
/// # Panics
///
/// Panics if the store is non-empty, or on a record with a non-finite
/// MBR (propagated from a worker after salvaging the completed
/// partitions' charges).
pub fn bulk_load_records_par(
    store: &mut dyn SpatialStore,
    records: &[ObjectRecord],
    threads: usize,
) {
    let StrPlan {
        mut entries,
        params,
    } = store.str_plan(records);
    let threads = threads.max(1);

    // Sort: chunk per worker, merge. Identical to the sequential sort
    // because the comparator is a total order.
    if threads == 1 || entries.len() < 2 * threads {
        bulk::sort_entries(&mut entries);
    } else {
        let per = entries.len().div_ceil(threads);
        let chunks: Vec<Vec<LeafEntry>> = std::thread::scope(|scope| {
            let handles: Vec<_> = entries
                .chunks(per)
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut v = chunk.to_vec();
                        bulk::sort_entries(&mut v);
                        v
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sort workers charge no I/O"))
                .collect()
        });
        entries = bulk::merge_sorted_chunks(chunks);
    }

    // Tile: contiguous slice groups per worker, leaf-run charges on
    // scratch disks, merged in partition order.
    let disk = store.disk();
    let region = store.str_tree_region();
    let spans = bulk::slice_spans(entries.len(), &params);
    let groups = partition_spans(&spans, threads);
    let entries = &entries;
    let params_ref = &params;
    let results: Vec<std::thread::Result<(Vec<Tile>, IoStats)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .iter()
            .map(|group| {
                let disk = disk.clone();
                scope.spawn(move || {
                    let guard = ScratchTally::new(disk);
                    let mut tiles: Vec<Tile> = Vec::new();
                    for span in group {
                        tiles.extend(bulk::tile_slice(&entries[span.clone()], params_ref));
                    }
                    if let Some(region) = region {
                        if !tiles.is_empty() {
                            // This partition's stretch of the packed
                            // leaf level, written sequentially. The
                            // cost model prices runs by length, not
                            // position, so each partition charges from
                            // offset 0 without affecting the totals.
                            guard.scratch().charge(
                                IoKind::Write,
                                PageRun::new(PageId::new(region, 0), tiles.len() as u64),
                                false,
                            );
                        }
                    }
                    (tiles, guard.finish())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    });
    if results.iter().any(|r| r.is_err()) {
        // A worker panicked; its guard absorbed its partial charges on
        // unwind. Absorb the completed partitions too, then propagate.
        let mut salvaged = IoStats::new();
        let mut payload = None;
        for res in results {
            match res {
                Ok((_, part_stats)) => salvaged = salvaged.plus(&part_stats),
                Err(p) => payload = Some(p),
            }
        }
        disk.absorb(&salvaged);
        std::panic::resume_unwind(payload.expect("at least one worker panicked"));
    }
    let mut tiles: Vec<Tile> = Vec::new();
    let mut stats = IoStats::new();
    for res in results {
        let (part_tiles, part_stats) = res.expect("panics handled above");
        tiles.extend(part_tiles);
        stats = stats.plus(&part_stats);
    }
    disk.absorb(&stats);
    store.str_install(records, tiles, &params);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_are_contiguous_and_balanced() {
        let spans: Vec<Range<usize>> = (0..10).map(|i| i * 100..(i + 1) * 100).collect();
        for threads in [1usize, 2, 3, 8, 16] {
            let groups = partition_spans(&spans, threads);
            assert!(groups.len() <= threads);
            let flat: Vec<Range<usize>> = groups.concat();
            assert_eq!(flat, spans, "{threads} threads reorder spans");
        }
    }

    #[test]
    fn more_threads_than_spans() {
        let spans: Vec<Range<usize>> = std::iter::once(0..5).collect();
        let groups = partition_spans(&spans, 8);
        assert_eq!(groups, vec![spans.clone()]);
    }
}

//! Spatial-join experiments (Figures 14, 16, 17 — §6 of the paper).

use super::{build_organization_on, records_of, ClusterSizing, Scale, ALL_KINDS};
use spatialdb_data::workload::{calibrate_inflation, inflate_mbrs, pairs_per_mbr};
use spatialdb_data::{DataSet, MapId, SeriesId};
use spatialdb_disk::Disk;
use spatialdb_join::{JoinConfig, SpatialJoin};
use spatialdb_storage::{
    new_shared_pool, ObjectRecord, Organization, OrganizationKind, SpatialStore, TransferTechnique,
};

/// One calibrated join version (§6.1: version *a* ≈ 0.65 intersections
/// per MBR, version *b* ≈ 9).
#[derive(Clone, Debug)]
pub struct JoinVersionSpec {
    /// "a" or "b".
    pub name: &'static str,
    /// MBR inflation factor applied to both maps.
    pub inflation: f64,
    /// Achieved intersections per MBR.
    pub pairs_per_mbr: f64,
}

/// Calibrate the MBR inflation factors for join versions *a* and *b* on
/// the given series.
pub fn calibrate_versions(scale: &Scale, series: SeriesId) -> (JoinVersionSpec, JoinVersionSpec) {
    let m1 = scale.map(DataSet {
        series,
        map: MapId::Map1,
    });
    let m2 = scale.map(DataSet {
        series,
        map: MapId::Map2,
    });
    let a_mbrs = m1.mbrs();
    let b_mbrs = m2.mbrs();
    let make = |name: &'static str, target: f64| {
        let inflation = calibrate_inflation(&a_mbrs, &b_mbrs, target, 0.05);
        let achieved = pairs_per_mbr(
            &inflate_mbrs(&a_mbrs, inflation),
            &inflate_mbrs(&b_mbrs, inflation),
        );
        JoinVersionSpec {
            name,
            inflation,
            pairs_per_mbr: achieved,
        }
    };
    (make("a", 0.65), make("b", 9.0))
}

/// Records of a map with MBRs inflated by the version's factor.
fn inflated_records(scale: &Scale, dataset: DataSet, inflation: f64) -> Vec<ObjectRecord> {
    let map = scale.map(dataset);
    let mut records = records_of(&map.objects);
    for r in &mut records {
        r.mbr = r.mbr.scale(inflation);
    }
    records
}

/// Build the two maps of one join experiment on a single machine
/// (shared disk + pool).
fn build_join_pair(
    scale: &Scale,
    series: SeriesId,
    inflation: f64,
    kind: OrganizationKind,
) -> (Organization, Organization) {
    let spec_r = DataSet {
        series,
        map: MapId::Map1,
    }
    .spec();
    let disk = Disk::with_defaults();
    let pool = new_shared_pool(disk.clone(), scale.construction_buffer);
    let recs_r = inflated_records(
        scale,
        DataSet {
            series,
            map: MapId::Map1,
        },
        inflation,
    );
    let recs_s = inflated_records(
        scale,
        DataSet {
            series,
            map: MapId::Map2,
        },
        inflation,
    );
    let (mut r, _) = build_organization_on(
        kind,
        &recs_r,
        spec_r.smax_bytes as u64,
        ClusterSizing::Plain,
        disk.clone(),
        pool.clone(),
    );
    let (mut s, _) = build_organization_on(
        kind,
        &recs_s,
        spec_r.smax_bytes as u64,
        ClusterSizing::Plain,
        disk,
        pool,
    );
    r.flush();
    s.flush();
    (r, s)
}

/// One Figure 14 cell: join I/O cost per organization model at one
/// buffer size.
#[derive(Clone, Debug)]
pub struct JoinOrgRow {
    /// Join version ("a" or "b").
    pub version: &'static str,
    /// Buffer size in pages.
    pub buffer_pages: usize,
    /// Candidate pairs of the MBR join.
    pub mbr_pairs: u64,
    /// I/O seconds per organization model (secondary, primary, cluster).
    pub io_seconds: [f64; 3],
}

/// Figure 14 (§6.1): the spatial join `series-1 ⋈ series-2` under the
/// three organization models, sweeping the buffer size. The cluster
/// organization always reads complete cluster units.
pub fn join_orgs(scale: &Scale, series: SeriesId) -> Vec<JoinOrgRow> {
    let (va, vb) = calibrate_versions(scale, series);
    let mut rows = Vec::new();
    for version in [va, vb] {
        // Build once per organization kind, sweep the buffer.
        let mut per_kind: Vec<(Organization, Organization)> = ALL_KINDS
            .iter()
            .map(|kind| build_join_pair(scale, series, version.inflation, *kind))
            .collect();
        for &buffer in &scale.join_buffers {
            let mut io_seconds = [0.0f64; 3];
            let mut mbr_pairs = 0u64;
            for (i, (r, s)) in per_kind.iter_mut().enumerate() {
                let disk = r.disk();
                // Bin boundary: `reset` writes back any dirty pages
                // *before* the counters are zeroed, so boundary
                // writebacks are charged to the boundary (not silently
                // dropped) and the measured bin stays join-only.
                r.pool().reset(buffer);
                disk.reset_stats();
                let stats = SpatialJoin::new(r, s).run_io_only(TransferTechnique::Complete);
                io_seconds[i] = stats.io_seconds();
                mbr_pairs = stats.mbr_pairs;
            }
            rows.push(JoinOrgRow {
                version: version.name,
                buffer_pages: buffer,
                mbr_pairs,
                io_seconds,
            });
        }
    }
    rows
}

/// One Figure 16 cell: join I/O cost of the cluster organization per
/// transfer technique.
#[derive(Clone, Debug)]
pub struct JoinTechRow {
    /// Join version ("a" or "b").
    pub version: &'static str,
    /// Buffer size in pages.
    pub buffer_pages: usize,
    /// I/O seconds for complete / vector read / read / optimum.
    pub io_seconds: [f64; 4],
}

/// The four transfer techniques of Figure 16, in reporting order.
pub const FIG16_TECHNIQUES: [TransferTechnique; 4] = [
    TransferTechnique::Complete,
    TransferTechnique::VectorRead,
    TransferTechnique::Read,
    TransferTechnique::Optimum,
];

/// Figure 16 (§6.2): transfer techniques for the cluster organization
/// during join processing, over the buffer-size sweep.
pub fn join_techniques(scale: &Scale, series: SeriesId) -> Vec<JoinTechRow> {
    let (va, vb) = calibrate_versions(scale, series);
    let mut rows = Vec::new();
    for version in [va, vb] {
        let (r, s) = build_join_pair(scale, series, version.inflation, OrganizationKind::Cluster);
        for &buffer in &scale.join_buffers {
            let mut io_seconds = [0.0f64; 4];
            for (i, tech) in FIG16_TECHNIQUES.iter().enumerate() {
                let disk = r.disk();
                r.pool().reset(buffer);
                disk.reset_stats();
                let stats = SpatialJoin::new(&r, &s).run_io_only(*tech);
                io_seconds[i] = stats.io_seconds();
            }
            rows.push(JoinTechRow {
                version: version.name,
                buffer_pages: buffer,
                io_seconds,
            });
        }
    }
    rows
}

/// One Figure 17 bar: the cost breakdown of a complete intersection
/// join.
#[derive(Clone, Debug)]
pub struct JoinBreakdownRow {
    /// Join version ("a" or "b").
    pub version: &'static str,
    /// Organization model ("sec. org." or "cluster org.").
    pub organization: &'static str,
    /// Candidate pairs.
    pub mbr_pairs: u64,
    /// MBR-join I/O seconds.
    pub mbr_join_s: f64,
    /// Object-transfer I/O seconds.
    pub transfer_s: f64,
    /// Exact geometry test CPU seconds (0.75 msec per pair).
    pub exact_test_s: f64,
}

impl JoinBreakdownRow {
    /// Total seconds.
    pub fn total_s(&self) -> f64 {
        self.mbr_join_s + self.transfer_s + self.exact_test_s
    }
}

/// Figure 17 (§6.3): complete intersection join C-1 ⋈ C-2 with a
/// 1,600-page buffer, secondary vs cluster organization, versions a and
/// b.
pub fn join_breakdown(scale: &Scale, buffer_pages: usize) -> Vec<JoinBreakdownRow> {
    let series = SeriesId::C;
    let (va, vb) = calibrate_versions(scale, series);
    let mut rows = Vec::new();
    for version in [va, vb] {
        for kind in [OrganizationKind::Secondary, OrganizationKind::Cluster] {
            let (r, s) = build_join_pair(scale, series, version.inflation, kind);
            let disk = r.disk();
            r.pool().reset(buffer_pages);
            disk.reset_stats();
            let stats = SpatialJoin::new(&r, &s).run(JoinConfig {
                transfer: TransferTechnique::Complete,
                exact_test_ms: 0.75,
            });
            rows.push(JoinBreakdownRow {
                version: version.name,
                organization: match kind {
                    OrganizationKind::Secondary => "sec. org.",
                    _ => "cluster org.",
                },
                mbr_pairs: stats.mbr_pairs,
                mbr_join_s: stats.mbr_join_ms / 1000.0,
                transfer_s: stats.transfer_ms / 1000.0,
                exact_test_s: stats.exact_test_ms / 1000.0,
            });
        }
    }
    rows
}

//! Experiment drivers regenerating every table and figure of the paper's
//! evaluation (§5 and §6).
//!
//! Each driver is parameterized by a [`Scale`] so the identical code runs
//! at paper scale (the `spatialdb-bench` binaries) and at smoke-test
//! scale (the integration tests, which assert the *shape* of each
//! result: who wins, by roughly what factor, where crossovers fall).
//!
//! | driver | paper artifact |
//! |---|---|
//! | [`construction::table1`] | Table 1 — maps and test series |
//! | [`construction::construction_suite`] | Fig. 5 (build I/O), Fig. 6 (occupied pages), Fig. 7 (restricted buddy) |
//! | [`windows::window_query_orgs`] | Fig. 8 — window queries across organization models |
//! | [`windows::window_query_techniques`] | Fig. 10 — complete / threshold / SLM / optimum |
//! | [`windows::cluster_size_adaptation`] | Fig. 11 — adapting the cluster size |
//! | [`windows::point_queries`] | Fig. 12 — point queries |
//! | [`joins::join_orgs`] | Fig. 14 — join across organization models |
//! | [`joins::join_techniques`] | Fig. 16 — join transfer techniques |
//! | [`joins::join_breakdown`] | Fig. 17 — complete join cost breakdown |

pub mod construction;
pub mod joins;
pub mod windows;

use spatialdb_data::{GeometryMode, MapObject, SpatialMap};
use spatialdb_disk::{Disk, DiskHandle, IoStats};
use spatialdb_storage::{
    new_shared_pool, ClusterConfig, ClusterOrganization, ObjectRecord, Organization,
    OrganizationKind, PrimaryOrganization, SecondaryOrganization, SpatialStore,
};

pub use construction::{construction_suite, table1, ConstructionRow, Table1Row};
pub use joins::{
    calibrate_versions, join_breakdown, join_orgs, join_techniques, JoinBreakdownRow, JoinOrgRow,
    JoinTechRow, JoinVersionSpec,
};
pub use windows::{
    cluster_size_adaptation, point_queries, window_query_orgs, window_query_techniques,
    AdaptationRow, PointRow, TechniqueRow, WindowOrgRow,
};

/// Experiment size parameters.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Fraction of the full Table 1 object counts.
    pub data_scale: f64,
    /// Queries per window/point query set (paper: 678).
    pub num_queries: usize,
    /// Master RNG seed.
    pub seed: u64,
    /// Buffer pages during construction.
    pub construction_buffer: usize,
    /// Buffer pages during window/point query processing.
    pub query_buffer: usize,
    /// Buffer sizes swept by the join experiments (paper: 200–6,400).
    pub join_buffers: Vec<usize>,
}

impl Scale {
    /// Paper-scale parameters (full object counts, 678 queries, buffer
    /// sweep 200–6,400 pages).
    pub fn paper() -> Self {
        Scale {
            data_scale: 1.0,
            num_queries: 678,
            seed: 1994,
            construction_buffer: 512,
            query_buffer: 512,
            join_buffers: vec![200, 400, 800, 1600, 3200, 6400],
        }
    }

    /// Small-scale parameters for tests (~1 % of the data; buffer sweep
    /// scaled to the shrunken data set).
    pub fn smoke() -> Self {
        Scale {
            data_scale: 0.01,
            num_queries: 60,
            seed: 1994,
            construction_buffer: 128,
            query_buffer: 128,
            join_buffers: vec![16, 32, 64, 128],
        }
    }

    /// Generate a map at this scale (MBR-only geometry: the experiments
    /// are I/O-cost driven).
    pub fn map(&self, dataset: spatialdb_data::DataSet) -> SpatialMap {
        SpatialMap::generate(dataset, self.data_scale, GeometryMode::MbrOnly, self.seed)
    }
}

/// Convert generated map objects to storage records.
pub fn records_of(objects: &[MapObject]) -> Vec<ObjectRecord> {
    objects
        .iter()
        .map(|o| ObjectRecord::new(spatialdb_rtree::ObjectId(o.id), o.mbr, o.size_bytes))
        .collect()
}

/// Which cluster-unit sizing to use when building a cluster organization.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClusterSizing {
    /// Full-`Smax` units (no buddy system).
    Plain,
    /// Restricted buddy system with three sizes (Figure 7).
    RestrictedBuddy,
}

/// Build an organization model over its own fresh disk, inserting
/// `records` in order (unsorted input, §5.2) and flushing at the end.
///
/// Returns the organization together with the construction I/O
/// statistics.
pub fn build_organization(
    kind: OrganizationKind,
    records: &[ObjectRecord],
    smax_bytes: u64,
    sizing: ClusterSizing,
    buffer_pages: usize,
) -> (Organization, IoStats) {
    let disk = Disk::with_defaults();
    let pool = new_shared_pool(disk.clone(), buffer_pages);
    let org = make_org(kind, disk.clone(), pool, smax_bytes, sizing);
    build_into(org, records, disk)
}

/// Build an organization on an existing disk + pool (join experiments
/// put both maps on one machine).
pub fn build_organization_on(
    kind: OrganizationKind,
    records: &[ObjectRecord],
    smax_bytes: u64,
    sizing: ClusterSizing,
    disk: DiskHandle,
    pool: spatialdb_storage::SharedPool,
) -> (Organization, IoStats) {
    let org = make_org(kind, disk.clone(), pool, smax_bytes, sizing);
    build_into(org, records, disk)
}

fn make_org(
    kind: OrganizationKind,
    disk: DiskHandle,
    pool: spatialdb_storage::SharedPool,
    smax_bytes: u64,
    sizing: ClusterSizing,
) -> Organization {
    match kind {
        OrganizationKind::Secondary => {
            Organization::Secondary(SecondaryOrganization::new(disk, pool))
        }
        OrganizationKind::Primary => Organization::Primary(PrimaryOrganization::new(disk, pool)),
        OrganizationKind::Cluster => {
            let config = match sizing {
                ClusterSizing::Plain => ClusterConfig::plain(smax_bytes),
                ClusterSizing::RestrictedBuddy => ClusterConfig::restricted_buddy(smax_bytes),
            };
            Organization::Cluster(ClusterOrganization::new(disk, pool, config))
        }
    }
}

fn build_into(
    mut org: Organization,
    records: &[ObjectRecord],
    disk: DiskHandle,
) -> (Organization, IoStats) {
    let before = disk.stats();
    // Construction runs with write-through page updates — the update
    // discipline of the systems the paper measured. This is what makes
    // the secondary organization's leaf-level forced reinserts expensive
    // (every relocated entry rewrites a data page) and lets the cluster
    // organization win Figure 5 despite copying objects on cluster
    // splits.
    org.pool().set_write_through(true);
    for rec in records {
        org.insert(rec);
    }
    org.flush();
    org.pool().set_write_through(false);
    let stats = disk.stats().since(&before);
    (org, stats)
}

/// Build an organization model over its own fresh disk with the
/// **sort-tile-recursive bulk load** ([`crate::bulkload`]) instead of
/// the insertion loop of [`build_organization`]. `threads` fans the
/// sort/tile stages across scoped workers; the resulting organization
/// is identical at every thread count.
///
/// Returns the organization together with the construction I/O
/// statistics (strictly less simulated I/O than the insertion build —
/// the packed levels are written sequentially instead of being split
/// and rewritten).
pub fn build_organization_str(
    kind: OrganizationKind,
    records: &[ObjectRecord],
    smax_bytes: u64,
    sizing: ClusterSizing,
    buffer_pages: usize,
    threads: usize,
) -> (Organization, IoStats) {
    let disk = Disk::with_defaults();
    let pool = new_shared_pool(disk.clone(), buffer_pages);
    let mut org = make_org(kind, disk.clone(), pool, smax_bytes, sizing);
    let before = disk.stats();
    crate::bulkload::bulk_load_records_par(&mut org, records, threads);
    org.flush();
    let stats = disk.stats().since(&before);
    (org, stats)
}

/// The three organization kinds in the paper's reporting order.
pub const ALL_KINDS: [OrganizationKind; 3] = [
    OrganizationKind::Secondary,
    OrganizationKind::Primary,
    OrganizationKind::Cluster,
];

//! Table 1 and the construction / storage-utilization experiments
//! (Figures 5, 6, 7 — §5.1 to §5.3 of the paper).

use super::{build_organization, records_of, ClusterSizing, Scale, ALL_KINDS};
use spatialdb_data::DataSet;
use spatialdb_storage::{OrganizationKind, SpatialStore};

/// One row of Table 1, as generated.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Series–map combination.
    pub dataset: DataSet,
    /// Generated object count.
    pub num_objects: usize,
    /// Generated average object size in bytes.
    pub avg_object_bytes: f64,
    /// Generated total size in MB.
    pub total_mb: f64,
    /// `Smax` in KB.
    pub smax_kb: usize,
    /// The paper's values for comparison.
    pub paper_avg_bytes: usize,
    /// The paper's total MB.
    pub paper_total_mb: f64,
}

/// Generate all six data sets and report their Table 1 statistics.
pub fn table1(scale: &Scale) -> Vec<Table1Row> {
    DataSet::all()
        .iter()
        .map(|ds| {
            let spec = ds.spec();
            let map = scale.map(*ds);
            Table1Row {
                dataset: *ds,
                num_objects: map.len(),
                avg_object_bytes: map.avg_object_bytes(),
                total_mb: map.total_bytes() as f64 / (1024.0 * 1024.0),
                smax_kb: spec.smax_bytes / 1024,
                paper_avg_bytes: spec.avg_object_bytes,
                paper_total_mb: spec.total_mb(),
            }
        })
        .collect()
}

/// Construction cost and storage utilization of one data set under all
/// organization models (Figures 5–7).
#[derive(Clone, Debug)]
pub struct ConstructionRow {
    /// Series–map combination.
    pub dataset: DataSet,
    /// Construction I/O seconds per organization model
    /// (secondary, primary, cluster — Figure 5).
    pub io_seconds: [f64; 3],
    /// Occupied pages per organization model (Figure 6).
    pub occupied_pages: [u64; 3],
    /// Construction I/O seconds of the cluster organization with the
    /// restricted buddy system (Figure 7, right chart).
    pub buddy_io_seconds: f64,
    /// Occupied pages with the restricted buddy system (Figure 7, left
    /// chart).
    pub buddy_pages: u64,
}

/// Build every organization model for the given data sets, reporting the
/// data behind Figures 5, 6 and 7.
pub fn construction_suite(scale: &Scale, datasets: &[DataSet]) -> Vec<ConstructionRow> {
    datasets
        .iter()
        .map(|ds| {
            let spec = ds.spec();
            let map = scale.map(*ds);
            let records = records_of(&map.objects);
            let mut io_seconds = [0.0f64; 3];
            let mut occupied_pages = [0u64; 3];
            for (i, kind) in ALL_KINDS.iter().enumerate() {
                let (org, stats) = build_organization(
                    *kind,
                    &records,
                    spec.smax_bytes as u64,
                    ClusterSizing::Plain,
                    scale.construction_buffer,
                );
                io_seconds[i] = stats.io_seconds();
                occupied_pages[i] = org.occupied_pages();
            }
            // Figure 7: the cluster organization with the restricted
            // buddy system.
            let (buddy_org, buddy_stats) = build_organization(
                OrganizationKind::Cluster,
                &records,
                spec.smax_bytes as u64,
                ClusterSizing::RestrictedBuddy,
                scale.construction_buffer,
            );
            ConstructionRow {
                dataset: *ds,
                io_seconds,
                occupied_pages,
                buddy_io_seconds: buddy_stats.io_seconds(),
                buddy_pages: buddy_org.occupied_pages(),
            }
        })
        .collect()
}

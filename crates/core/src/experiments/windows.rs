//! Window-query and point-query experiments
//! (Figures 8, 10, 11, 12 — §5.4 and §5.5 of the paper).

use super::{build_organization, records_of, ClusterSizing, Scale, ALL_KINDS};
use spatialdb_data::workload::{WindowQuerySet, PAPER_WINDOW_AREAS};
use spatialdb_data::{DataSet, MapId, SeriesId, SpatialMap};
use spatialdb_storage::{
    Organization, OrganizationKind, QueryStats, SpatialStore, WindowTechnique,
};

/// Figure 8: one (data set, window area) cell.
#[derive(Clone, Debug)]
pub struct WindowOrgRow {
    /// Series–map combination.
    pub dataset: DataSet,
    /// Window area as a fraction of the data space.
    pub area: f64,
    /// Average answers per query (the paper reports 5.3 … 22,569).
    pub avg_candidates: f64,
    /// Normalized I/O cost in msec per 4 KB of queried data, per
    /// organization model (secondary, primary, cluster).
    pub ms_per_4kb: [f64; 3],
}

/// Run one query set against an organization, cold per query, and return
/// the aggregated stats.
fn run_window_set(
    org: &mut Organization,
    queries: &WindowQuerySet,
    technique: WindowTechnique,
) -> QueryStats {
    let mut total = QueryStats::default();
    for w in &queries.windows {
        org.begin_query();
        let q = org.window_query(w, technique);
        total.accumulate(&q);
    }
    total
}

/// Figure 8: window queries of five area classes under the three
/// organization models. The cluster organization uses the paper's
/// *simplest* technique — the complete cluster unit is transferred as
/// soon as one object qualifies.
pub fn window_query_orgs(scale: &Scale, datasets: &[DataSet]) -> Vec<WindowOrgRow> {
    let mut rows = Vec::new();
    for ds in datasets {
        let spec = ds.spec();
        let map = scale.map(*ds);
        let records = records_of(&map.objects);
        let mut orgs: Vec<Organization> = ALL_KINDS
            .iter()
            .map(|kind| {
                build_organization(
                    *kind,
                    &records,
                    spec.smax_bytes as u64,
                    ClusterSizing::Plain,
                    scale.query_buffer,
                )
                .0
            })
            .collect();
        for &area in &PAPER_WINDOW_AREAS {
            let queries = WindowQuerySet::generate(&map, area, scale.num_queries, scale.seed);
            let mut ms = [0.0f64; 3];
            let mut candidates = 0usize;
            for (i, org) in orgs.iter_mut().enumerate() {
                let total = run_window_set(org, &queries, WindowTechnique::Complete);
                ms[i] = total.ms_per_4kb().unwrap_or(0.0);
                candidates = total.candidates;
            }
            rows.push(WindowOrgRow {
                dataset: *ds,
                area,
                avg_candidates: candidates as f64 / queries.windows.len() as f64,
                ms_per_4kb: ms,
            });
        }
    }
    rows
}

/// Figure 10: one (data set, window area) cell comparing the cluster
/// organization's query techniques.
#[derive(Clone, Debug)]
pub struct TechniqueRow {
    /// Series–map combination.
    pub dataset: DataSet,
    /// Window area fraction.
    pub area: f64,
    /// msec per 4 KB for complete / threshold / SLM / optimum.
    pub ms_per_4kb: [f64; 4],
}

/// The four techniques of Figure 10, in reporting order.
pub const FIG10_TECHNIQUES: [WindowTechnique; 4] = [
    WindowTechnique::Complete,
    WindowTechnique::Threshold,
    WindowTechnique::Slm,
    WindowTechnique::Optimum,
];

/// Figure 10: window-query techniques on the cluster organization.
pub fn window_query_techniques(scale: &Scale, datasets: &[DataSet]) -> Vec<TechniqueRow> {
    let mut rows = Vec::new();
    for ds in datasets {
        let spec = ds.spec();
        let map = scale.map(*ds);
        let records = records_of(&map.objects);
        let (mut org, _) = build_organization(
            OrganizationKind::Cluster,
            &records,
            spec.smax_bytes as u64,
            ClusterSizing::Plain,
            scale.query_buffer,
        );
        for &area in &PAPER_WINDOW_AREAS {
            let queries = WindowQuerySet::generate(&map, area, scale.num_queries, scale.seed);
            let mut ms = [0.0f64; 4];
            for (i, tech) in FIG10_TECHNIQUES.iter().enumerate() {
                let total = run_window_set(&mut org, &queries, *tech);
                ms[i] = total.ms_per_4kb().unwrap_or(0.0);
            }
            rows.push(TechniqueRow {
                dataset: *ds,
                area,
                ms_per_4kb: ms,
            });
        }
    }
    rows
}

/// Figure 11: average performance gain (%) obtainable by adapting the
/// cluster size to the query size, per technique.
#[derive(Clone, Debug)]
pub struct AdaptationRow {
    /// Technique the gains apply to.
    pub technique: WindowTechnique,
    /// Gain when the window area changes by a factor of 10.
    pub gain_factor10_pct: f64,
    /// Gain when the window area changes by a factor of 100.
    pub gain_factor100_pct: f64,
    /// Gain for the paper's highlighted 0.001 % → 0.1 % case.
    pub gain_0001_to_01_pct: f64,
}

/// Candidate cluster sizes (in pages) swept by the adaptation study.
pub const ADAPTATION_CLUSTER_PAGES: [u64; 5] = [5, 10, 20, 40, 80];

/// Figure 11 (§5.4.4, after \[DS93\]): measure the best cluster size per
/// window size, then quantify how much is lost by keeping the cluster
/// size tuned for a window area that is off by 10× / 100×.
pub fn cluster_size_adaptation(scale: &Scale) -> Vec<AdaptationRow> {
    let ds = DataSet {
        series: SeriesId::B,
        map: MapId::Map1,
    };
    let map = scale.map(ds);
    let records = records_of(&map.objects);
    let techniques = [
        WindowTechnique::Complete,
        WindowTechnique::Threshold,
        WindowTechnique::Slm,
    ];
    // cost[t][a][s]: avg ms/4KB for technique t, area index a, size s.
    let areas = PAPER_WINDOW_AREAS;
    let mut cost = vec![vec![vec![f64::INFINITY; ADAPTATION_CLUSTER_PAGES.len()]; areas.len()]; 3];
    for (si, &pages) in ADAPTATION_CLUSTER_PAGES.iter().enumerate() {
        let smax = pages * spatialdb_disk::PAGE_SIZE as u64;
        let (mut org, _) = build_organization(
            OrganizationKind::Cluster,
            &records,
            smax,
            ClusterSizing::Plain,
            scale.query_buffer,
        );
        for (ai, &area) in areas.iter().enumerate() {
            let queries = WindowQuerySet::generate(&map, area, scale.num_queries, scale.seed);
            for (ti, tech) in techniques.iter().enumerate() {
                let total = run_window_set(&mut org, &queries, *tech);
                cost[ti][ai][si] = total.ms_per_4kb().unwrap_or(f64::INFINITY);
            }
        }
    }
    let argmin = |v: &[f64]| {
        v.iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty")
    };
    techniques
        .iter()
        .enumerate()
        .map(|(ti, tech)| {
            // Average gain over all area pairs differing by the factor.
            let gain_for_shift = |shift: usize| {
                let mut gains = Vec::new();
                for a in 0..areas.len() {
                    for b in [a.checked_sub(shift), Some(a + shift)]
                        .into_iter()
                        .flatten()
                    {
                        if b >= areas.len() {
                            continue;
                        }
                        // Tuned for area a, but running area b.
                        let tuned_for_a = argmin(&cost[ti][a]);
                        let tuned_for_b = argmin(&cost[ti][b]);
                        let stale = cost[ti][b][tuned_for_a];
                        let fresh = cost[ti][b][tuned_for_b];
                        if stale.is_finite() && fresh.is_finite() && stale > 0.0 {
                            gains.push((stale - fresh) / stale * 100.0);
                        }
                    }
                }
                if gains.is_empty() {
                    0.0
                } else {
                    gains.iter().sum::<f64>() / gains.len() as f64
                }
            };
            // 0.001% is index 0, 0.1% is index 2.
            let s_small = argmin(&cost[ti][0]);
            let s_right = argmin(&cost[ti][2]);
            let stale = cost[ti][2][s_small];
            let fresh = cost[ti][2][s_right];
            let special = if stale.is_finite() && stale > 0.0 {
                (stale - fresh) / stale * 100.0
            } else {
                0.0
            };
            AdaptationRow {
                technique: *tech,
                gain_factor10_pct: gain_for_shift(1),
                gain_factor100_pct: gain_for_shift(2),
                gain_0001_to_01_pct: special,
            }
        })
        .collect()
}

/// Figure 12: one data set's point-query costs.
#[derive(Clone, Debug)]
pub struct PointRow {
    /// Series–map combination.
    pub dataset: DataSet,
    /// Average candidates per point query.
    pub avg_candidates: f64,
    /// msec per 4 KB per organization model.
    pub ms_per_4kb: [f64; 3],
}

/// Figure 12 (§5.5): 678 point queries at the centres of the window
/// queries, under the three organization models.
pub fn point_queries(scale: &Scale, datasets: &[DataSet]) -> Vec<PointRow> {
    datasets
        .iter()
        .map(|ds| {
            let spec = ds.spec();
            let map: SpatialMap = scale.map(*ds);
            let records = records_of(&map.objects);
            // The paper's points: centres of the §5.4 windows.
            let windows = WindowQuerySet::generate(&map, 1e-4, scale.num_queries, scale.seed);
            let points = windows.centers();
            let mut ms = [0.0f64; 3];
            let mut candidates = 0usize;
            for (i, kind) in ALL_KINDS.iter().enumerate() {
                let (mut org, _) = build_organization(
                    *kind,
                    &records,
                    spec.smax_bytes as u64,
                    ClusterSizing::Plain,
                    scale.query_buffer,
                );
                let mut total = QueryStats::default();
                for p in &points.points {
                    org.begin_query();
                    total.accumulate(&org.point_query(p));
                }
                ms[i] = total.ms_per_4kb().unwrap_or(0.0);
                candidates = total.candidates;
            }
            PointRow {
                dataset: *ds,
                avg_candidates: candidates as f64 / points.points.len() as f64,
                ms_per_4kb: ms,
            }
        })
        .collect()
}

//! # spatialdb
//!
//! A from-scratch reproduction of Brinkhoff & Kriegel, *"The Impact of
//! Global Clustering on Spatial Database Systems"*, VLDB 1994 — a spatial
//! database storage engine built around the paper's **cluster
//! organization** for global clustering, together with the secondary and
//! primary organization baselines, an R\*-tree, a magnetic-disk I/O cost
//! simulator, the window-query techniques (complete / geometric threshold
//! / SLM / optimum), the R\*-tree spatial join, and a TIGER-like data
//! generator.
//!
//! ## Quickstart
//!
//! ```
//! use spatialdb::{DbOptions, OrganizationKind, Workspace};
//! use spatialdb::geom::{Point, Polyline, Rect};
//!
//! // A workspace is one simulated machine: disk + buffer pool.
//! let ws = Workspace::new(512);
//! let mut db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
//!
//! // Store a street as a polyline.
//! db.insert_polyline(1, Polyline::new(vec![
//!     Point::new(0.10, 0.20),
//!     Point::new(0.12, 0.21),
//!     Point::new(0.15, 0.20),
//! ]));
//!
//! // Window query with exact refinement.
//! let hits = db.window_query(&Rect::new(0.0, 0.0, 0.2, 0.3));
//! assert_eq!(hits, vec![1]);
//!
//! // Every access was charged to the simulated disk.
//! assert!(db.io_stats().io_ms > 0.0);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`geom`] | geometry kernel (points, MBRs, polylines, polygons) |
//! | [`disk`] | disk cost model, buffer pool, buddy system, SLM schedules |
//! | [`rtree`] | the R\*-tree |
//! | [`storage`] | the three organization models & query techniques |
//! | [`join`] | the spatial join pipeline |
//! | [`data`] | synthetic TIGER-like maps & workloads (Table 1) |
//! | [`experiments`] | drivers regenerating every table/figure of the paper |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod db;
pub mod experiments;
pub mod report;

pub use db::{DbOptions, SpatialDatabase, Workspace};

pub use spatialdb_data as data;
pub use spatialdb_disk as disk;
pub use spatialdb_geom as geom;
pub use spatialdb_join as join;
pub use spatialdb_rtree as rtree;
pub use spatialdb_storage as storage;

pub use spatialdb_data::{DataSet, GeometryMode, MapId, SeriesId, SpatialMap};
pub use spatialdb_disk::{Disk, DiskHandle, DiskParams, IoStats};
pub use spatialdb_join::{JoinConfig, JoinStats, SpatialJoin};
pub use spatialdb_rtree::ObjectId;
pub use spatialdb_storage::{
    ClusterConfig, Organization, OrganizationKind, OrganizationModel, QueryStats,
    TransferTechnique, WindowTechnique,
};

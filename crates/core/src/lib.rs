//! # spatialdb
//!
//! A from-scratch reproduction of Brinkhoff & Kriegel, *"The Impact of
//! Global Clustering on Spatial Database Systems"*, VLDB 1994 — a spatial
//! database storage engine built around the paper's **cluster
//! organization** for global clustering, together with the secondary and
//! primary organization baselines, an R\*-tree, a magnetic-disk I/O cost
//! simulator, the window-query techniques (complete / geometric threshold
//! / SLM / optimum), the R\*-tree spatial join, and a TIGER-like data
//! generator.
//!
//! Storage backends are pluggable behind the
//! [`SpatialStore`](spatialdb_storage::SpatialStore) trait, and queries
//! stream through the [`Query`](query::Query) builder.
//!
//! ## Quickstart
//!
//! ```
//! use spatialdb::{DbOptions, OrganizationKind, Workspace};
//! use spatialdb::geom::{Point, Polygon, Polyline, Rect};
//! use spatialdb::storage::WindowTechnique;
//!
//! // A workspace is one simulated machine: disk + buffer pool.
//! let ws = Workspace::new(512);
//! let mut db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
//!
//! // Store a street (polyline), a well (point) and a park (polygon).
//! db.insert(1, Polyline::new(vec![
//!     Point::new(0.10, 0.20),
//!     Point::new(0.12, 0.21),
//!     Point::new(0.15, 0.20),
//! ]));
//! db.insert(2, Point::new(0.11, 0.205));
//! db.insert(3, Polygon::new(vec![
//!     Point::new(0.13, 0.19),
//!     Point::new(0.14, 0.19),
//!     Point::new(0.14, 0.22),
//! ]));
//! db.finish_loading();
//!
//! // Build a window query and stream the exactly-refined results.
//! let mut results = db
//!     .query()
//!     .window(Rect::new(0.0, 0.0, 0.2, 0.3))
//!     .technique(WindowTechnique::Slm)
//!     .run();
//!
//! // The cursor carries the cost of *this* query alone…
//! assert_eq!(results.stats().candidates, 3);
//! assert!(results.stats().io_ms > 0.0);
//!
//! // …and lazily yields (id, &Geometry) pairs in ascending id order.
//! let ids: Vec<u64> = results.by_ref().map(|(id, _)| id).collect();
//! assert_eq!(ids, vec![1, 2, 3]);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`geom`] | geometry kernel (points, MBRs, polylines, polygons, [`Geometry`]) |
//! | [`disk`] | disk cost model, buffer pool, buddy system, SLM schedules |
//! | [`rtree`] | the R\*-tree |
//! | [`storage`] | the `SpatialStore` trait, the three organization models & the in-memory baseline |
//! | [`join`] | the spatial join pipeline |
//! | [`data`] | synthetic TIGER-like maps & workloads (Table 1) |
//! | [`query`] | the streaming `Query` builder and cursors |
//! | [`executor`] | the parallel query executor (`run_par`, `run_batch`) |
//! | [`stream`] | the mixed read/write stream executor (`run_stream`) |
//! | [`experiments`] | drivers regenerating every table/figure of the paper |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bulkload;
pub mod config;
pub mod db;
pub mod executor;
pub mod experiments;
pub mod query;
pub mod report;
pub mod stream;

pub use bulkload::bulk_load_records_par;
pub use config::{ConfigError, EngineConfig};
pub use db::{DbOptions, SpatialDatabase, StoreRead, Workspace};
pub use executor::{Arrival, BatchOutcome, ExecPlan, FilterMode, OverlapConfig, QueryOutcome};
pub use query::{JoinCursor, JoinQuery, Query, ResultCursor};
pub use stream::{run_stream, OpOutcome, StreamOp, StreamOutcome};

pub use spatialdb_data as data;
pub use spatialdb_disk as disk;
pub use spatialdb_geom as geom;
pub use spatialdb_join as join;
pub use spatialdb_rtree as rtree;
pub use spatialdb_storage as storage;

pub use spatialdb_data::{DataSet, GeometryMode, MapId, SeriesId, SpatialMap};
pub use spatialdb_disk::{
    ArmPolicy, ArmStats, Disk, DiskHandle, DiskParams, IoStats, LatencyStats, RotationModel,
    Routing, StripePolicy,
};
pub use spatialdb_geom::Geometry;
pub use spatialdb_join::{JoinConfig, JoinStats, SpatialJoin};
pub use spatialdb_rtree::ObjectId;
pub use spatialdb_storage::{
    ClusterConfig, MemoryStore, Organization, OrganizationKind, QueryStats, SpatialStore,
    TransferTechnique, WindowTechnique,
};

//! One validated configuration for a [`Workspace`](crate::Workspace).
//!
//! Historically every knob of the simulated machine grew its own
//! constructor or setter — `with_shards`, `with_shard_routing`,
//! `configure_arms`, `set_adaptive_shards` — and combining them meant
//! knowing which calls compose in which order. [`EngineConfig`] subsumes
//! that zoo into a single builder that is validated as a whole before
//! any resource exists:
//!
//! ```
//! use spatialdb::{EngineConfig, Routing, StripePolicy, Workspace};
//!
//! let ws = Workspace::from_config(
//!     EngineConfig::default()
//!         .buffer_pages(1024)
//!         .shards(8)
//!         .routing(Routing::ByRegion)
//!         .arms(4, StripePolicy::RoundRobin),
//! );
//! # let _ = ws;
//! ```
//!
//! The old entry points remain as thin deprecated shims over
//! [`Workspace::from_config`](crate::Workspace::from_config).

use spatialdb_disk::{DiskParams, Routing, StripePolicy};

/// Everything that shapes one simulated machine: disk timing, buffer
/// capacity, pool sharding, and the disk-arm array.
///
/// Build with the fluent setters, then hand to
/// [`Workspace::from_config`](crate::Workspace::from_config) (panics on
/// an invalid combination) or check explicitly with
/// [`validate`](EngineConfig::validate). The default is the paper's
/// deterministic single-shard, single-arm machine with a 512-page
/// buffer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineConfig {
    /// Simulated disk timing parameters (§5.1 cost model).
    pub params: DiskParams,
    /// Buffer pool capacity in pages. Must be nonzero and at least the
    /// shard count (each shard keeps a one-page floor).
    pub buffer_pages: usize,
    /// Number of buffer-pool shards under the one capacity budget.
    /// One shard (the default) reproduces the paper's figures
    /// byte-for-byte.
    pub shards: usize,
    /// How pages are routed to shards ([`Routing::ByPage`] hashes the
    /// full page address; [`Routing::ByRegion`] keys whole regions so
    /// each database file gets its own lock domain).
    pub routing: Routing,
    /// Number of independent disk arms the simulated array declusters
    /// regions across. One arm (the default) is byte-identical to the
    /// plain single-arm disk.
    pub arms: usize,
    /// How regions map to arms when `arms > 1`.
    pub stripe: StripePolicy,
    /// Adaptive shard quotas: a full shard may borrow unused headroom
    /// from siblings, one page at a time, without a global lock. Off
    /// (the default) is byte-identical to the static quotas.
    pub adaptive_shards: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            params: DiskParams::default(),
            buffer_pages: 512,
            shards: 1,
            routing: Routing::ByPage,
            arms: 1,
            stripe: StripePolicy::RoundRobin,
            adaptive_shards: false,
        }
    }
}

impl EngineConfig {
    /// Set the simulated disk timing parameters.
    #[must_use]
    pub fn params(mut self, params: DiskParams) -> Self {
        self.params = params;
        self
    }

    /// Set the buffer pool capacity in pages.
    #[must_use]
    pub fn buffer_pages(mut self, pages: usize) -> Self {
        self.buffer_pages = pages;
        self
    }

    /// Split the buffer pool into `shards` lock domains.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Set the page → shard routing mode.
    #[must_use]
    pub fn routing(mut self, routing: Routing) -> Self {
        self.routing = routing;
        self
    }

    /// Decluster regions across `arms` disk arms under `stripe`. With
    /// multiple pool shards this also aligns shard *i* ↔ arm *i*
    /// (which requires [`Routing::ByRegion`]; see
    /// [`validate`](EngineConfig::validate)).
    #[must_use]
    pub fn arms(mut self, arms: usize, stripe: StripePolicy) -> Self {
        self.arms = arms;
        self.stripe = stripe;
        self
    }

    /// Enable adaptive shard quotas.
    #[must_use]
    pub fn adaptive_shards(mut self, on: bool) -> Self {
        self.adaptive_shards = on;
        self
    }

    /// Check the configuration as a whole. Every constructor funnels
    /// through this, so an invalid machine can never be half-built.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.buffer_pages == 0 {
            return Err(ConfigError::ZeroBufferPages);
        }
        if self.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if self.arms == 0 {
            return Err(ConfigError::ZeroArms);
        }
        if self.shards > self.buffer_pages {
            return Err(ConfigError::ShardsExceedBuffer {
                shards: self.shards,
                buffer_pages: self.buffer_pages,
            });
        }
        if self.arms > 1 && self.shards > 1 && self.routing != Routing::ByRegion {
            return Err(ConfigError::AffinityNeedsRegionRouting {
                arms: self.arms,
                shards: self.shards,
            });
        }
        Ok(())
    }
}

/// Why an [`EngineConfig`] was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `buffer_pages == 0`: the pool cannot hold a single page.
    ZeroBufferPages,
    /// `shards == 0`: the pool needs at least one lock domain.
    ZeroShards,
    /// `arms == 0`: the disk array needs at least one arm.
    ZeroArms,
    /// More shards than buffer pages: each shard keeps a one-page
    /// quota floor, so the capacity budget cannot cover them.
    ShardsExceedBuffer {
        /// Requested shard count.
        shards: usize,
        /// Requested pool capacity.
        buffer_pages: usize,
    },
    /// Multiple arms with multiple shards require
    /// [`Routing::ByRegion`]: per-arm shard affinity aligns shard *i* ↔
    /// arm *i* by region, which page-hash routing cannot honor.
    AffinityNeedsRegionRouting {
        /// Requested arm count.
        arms: usize,
        /// Requested shard count.
        shards: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroBufferPages => write!(f, "buffer_pages must be nonzero"),
            ConfigError::ZeroShards => write!(f, "shards must be nonzero"),
            ConfigError::ZeroArms => write!(f, "arms must be nonzero"),
            ConfigError::ShardsExceedBuffer {
                shards,
                buffer_pages,
            } => write!(
                f,
                "{shards} shards exceed the {buffer_pages}-page buffer \
                 (each shard keeps a one-page quota floor)"
            ),
            ConfigError::AffinityNeedsRegionRouting { arms, shards } => write!(
                f,
                "{arms} arms with {shards} shards require Routing::ByRegion \
                 (per-arm shard affinity is region-keyed)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert_eq!(EngineConfig::default().validate(), Ok(()));
    }

    #[test]
    fn rejects_zero_knobs() {
        assert_eq!(
            EngineConfig::default().buffer_pages(0).validate(),
            Err(ConfigError::ZeroBufferPages)
        );
        assert_eq!(
            EngineConfig::default().shards(0).validate(),
            Err(ConfigError::ZeroShards)
        );
        assert_eq!(
            EngineConfig::default()
                .arms(0, StripePolicy::RoundRobin)
                .validate(),
            Err(ConfigError::ZeroArms)
        );
    }

    #[test]
    fn rejects_affinity_without_region_routing() {
        let conflicted = EngineConfig::default()
            .shards(4)
            .arms(2, StripePolicy::RoundRobin);
        assert!(matches!(
            conflicted.validate(),
            Err(ConfigError::AffinityNeedsRegionRouting { arms: 2, shards: 4 })
        ));
        assert_eq!(conflicted.routing(Routing::ByRegion).validate(), Ok(()));
        // Either dimension alone composes with any routing.
        assert_eq!(
            EngineConfig::default()
                .arms(2, StripePolicy::RoundRobin)
                .validate(),
            Ok(())
        );
        assert_eq!(EngineConfig::default().shards(4).validate(), Ok(()));
    }

    #[test]
    fn error_messages_name_the_conflict() {
        let err = EngineConfig::default()
            .buffer_pages(4)
            .shards(8)
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("8 shards"));
    }
}

//! Minimal aligned-table formatting for the experiment binaries.

use std::fmt::Write as _;

/// A simple text table with right-aligned numeric columns.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                let cell = &cells[i];
                // First column left-aligned (labels), others right-aligned.
                if i == 0 {
                    let _ = write!(line, " {cell:<width$} ", width = widths[i]);
                } else {
                    let _ = write!(line, " {cell:>width$} ", width = widths[i]);
                }
                if i + 1 < cols {
                    line.push('|');
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Format a float with `digits` decimal places.
pub fn f(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

/// Summary of a latency distribution (simulated ms) — the row shape of
/// the `io_latency` benchmark and the latency-oriented figures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Maximum.
    pub max: f64,
}

/// Nearest-rank quantile of an **ascending-sorted** slice
/// (`q` in `[0, 1]`).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of an empty distribution");
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Summarize a latency distribution. Sorts in place.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn summarize_latencies(values: &mut [f64]) -> LatencySummary {
    assert!(!values.is_empty(), "no latency samples");
    values.sort_by(f64::total_cmp);
    LatencySummary {
        count: values.len(),
        p50: quantile(values, 0.50),
        p95: quantile(values, 0.95),
        p99: quantile(values, 0.99),
        mean: values.iter().sum::<f64>() / values.len() as f64,
        max: *values.last().expect("non-empty"),
    }
}

/// One row of the per-arm report of a timed batch: the utilization /
/// queue-depth view of a simulated
/// [`DiskArray`](spatialdb_disk::DiskArray), derived from
/// [`ArmStats`](spatialdb_disk::ArmStats).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArmReport {
    /// Arm index within the array.
    pub arm: usize,
    /// Requests the arm serviced.
    pub serviced: u64,
    /// Fraction of the arm's timeline spent servicing (0 for idle).
    pub utilization: f64,
    /// Time-average queue depth (Little's law).
    pub mean_queue_depth: f64,
}

/// Summarize the per-arm statistics of a timed batch
/// ([`BatchOutcome::arm_stats`](crate::BatchOutcome::arm_stats)) into
/// report rows, one per arm in arm order.
pub fn summarize_arms(stats: &[spatialdb_disk::ArmStats]) -> Vec<ArmReport> {
    stats
        .iter()
        .map(|s| ArmReport {
            arm: s.arm,
            serviced: s.serviced,
            utilization: s.utilization(),
            mean_queue_depth: s.mean_queue_depth(),
        })
        .collect()
}

/// Render per-arm statistics as an aligned [`Table`]
/// (`arm | serviced | busy_ms | util | qdepth`).
pub fn arm_table(stats: &[spatialdb_disk::ArmStats]) -> Table {
    let mut t = Table::new(vec!["arm", "serviced", "busy_ms", "util", "qdepth"]);
    for s in stats {
        t.row(vec![
            s.arm.to_string(),
            s.serviced.to_string(),
            f(s.busy_ms, 1),
            f(s.utilization(), 3),
            f(s.mean_queue_depth(), 2),
        ]);
    }
    t
}

/// Format a ratio as `x.x×`.
pub fn speedup(base: f64, improved: f64) -> String {
    if improved <= 0.0 {
        "—".to_string()
    } else {
        format!("{:.1}x", base / improved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1.0"]);
        t.row(vec!["b", "123.45"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].contains("alpha"));
        // All lines equal length.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(speedup(10.0, 2.0), "5.0x");
        assert_eq!(speedup(10.0, 0.0), "—");
    }

    #[test]
    fn quantile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 0.5), 5.0);
        assert_eq!(quantile(&v, 0.95), 10.0);
        assert_eq!(quantile(&v, 1.0), 10.0);
        assert_eq!(quantile(&[42.0], 0.99), 42.0);
    }

    #[test]
    fn summarize_sorts_and_aggregates() {
        let mut v = vec![30.0, 10.0, 20.0, 40.0];
        let s = summarize_latencies(&mut v);
        assert_eq!(s.count, 4);
        assert_eq!(s.p50, 20.0);
        assert_eq!(s.max, 40.0);
        assert_eq!(s.mean, 25.0);
        assert_eq!(v, vec![10.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_rejects_empty() {
        quantile(&[], 0.5);
    }

    #[test]
    fn arm_report_summarizes_stats() {
        let stats = vec![
            spatialdb_disk::ArmStats {
                arm: 0,
                serviced: 10,
                busy_ms: 80.0,
                queue_wait_ms: 200.0,
                clock_ms: 100.0,
                pending: 0,
            },
            spatialdb_disk::ArmStats::default(),
        ];
        let rows = summarize_arms(&stats);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].serviced, 10);
        assert!((rows[0].utilization - 0.8).abs() < 1e-12);
        assert!((rows[0].mean_queue_depth - 2.0).abs() < 1e-12);
        assert_eq!(rows[1].utilization, 0.0);
        let table = arm_table(&stats);
        assert_eq!(table.len(), 2);
        assert!(table.render().contains("0.800"));
    }
}

//! Minimal aligned-table formatting for the experiment binaries.

use std::fmt::Write as _;

/// A simple text table with right-aligned numeric columns.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                let cell = &cells[i];
                // First column left-aligned (labels), others right-aligned.
                if i == 0 {
                    let _ = write!(line, " {cell:<width$} ", width = widths[i]);
                } else {
                    let _ = write!(line, " {cell:>width$} ", width = widths[i]);
                }
                if i + 1 < cols {
                    line.push('|');
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Format a float with `digits` decimal places.
pub fn f(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

/// Format a ratio as `x.x×`.
pub fn speedup(base: f64, improved: f64) -> String {
    if improved <= 0.0 {
        "—".to_string()
    } else {
        format!("{:.1}x", base / improved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1.0"]);
        t.row(vec!["b", "123.45"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].contains("alpha"));
        // All lines equal length.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(speedup(10.0, 2.0), "5.0x");
        assert_eq!(speedup(10.0, 0.0), "—");
    }
}

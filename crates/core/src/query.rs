//! The streaming query layer: [`Query`] builder, lazy [`ResultCursor`],
//! and the [`JoinQuery`] / [`JoinCursor`] pair for composable joins.
//!
//! A query runs in the paper's two steps. [`Query::run`] executes the
//! **filter step** eagerly — the store walks its R\*-tree and transfers
//! the exact representations of all candidates, charging the simulated
//! disk — and snapshots the I/O cost of *exactly this query* (the disk's
//! counters are deltas around the call, never workspace-cumulative
//! totals). The **refinement step** is lazy: the returned cursor tests
//! each candidate against its exact [`Geometry`] only as the caller
//! iterates, yielding `(id, &Geometry)` pairs in ascending id order.
//!
//! ```
//! use spatialdb::geom::{Point, Polyline, Rect};
//! use spatialdb::storage::WindowTechnique;
//! use spatialdb::{DbOptions, OrganizationKind, Workspace};
//!
//! let ws = Workspace::new(256);
//! let mut db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
//! db.insert(1, Polyline::new(vec![Point::new(0.1, 0.1), Point::new(0.2, 0.2)]));
//! db.finish_loading();
//!
//! let mut cursor = db
//!     .query()
//!     .window(Rect::new(0.0, 0.0, 0.5, 0.5))
//!     .technique(WindowTechnique::Slm)
//!     .run();
//! let stats = cursor.stats(); // cost of this query alone
//! assert_eq!(stats.candidates, 1);
//! let (id, geometry) = cursor.next().unwrap();
//! assert_eq!(id, 1);
//! assert!(geometry.as_polyline().is_some());
//! ```

use crate::db::{SpatialDatabase, StoreRead};
use spatialdb_disk::{
    simulate_queries, ArmGeometry, ArmPolicy, IoStats, LatencyStats, PageRequest, QueryTrace,
};
use spatialdb_geom::Geometry;
use spatialdb_geom::{Point, Rect};
use spatialdb_join::{JoinConfig, JoinStats, SpatialJoin};
use spatialdb_storage::{QueryStats, SpatialStore, TransferTechnique, WindowTechnique};

/// What a [`Query`] searches for.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Target {
    /// All objects sharing a point with the window.
    Window(Rect),
    /// All objects containing the point.
    Point(Point),
}

/// The filter step: run the store query for `target` and capture both
/// per-query deltas against the calling thread's I/O tally — so the
/// reported cost is this query's alone even while other threads query
/// concurrently. One implementation shared by the sequential cursor
/// ([`Query::run`]) and the parallel executor.
pub(crate) fn execute_filter(
    store: &dyn SpatialStore,
    target: &Target,
    technique: WindowTechnique,
) -> (QueryStats, IoStats) {
    let disk = store.disk();
    let io_before = disk.local_stats();
    let stats = match target {
        Target::Window(w) => store.window_query(w, technique),
        Target::Point(p) => store.point_query(p),
    };
    let io = disk.local_stats().since(&io_before);
    (stats, io)
}

/// [`execute_filter`] through the stores' batched read path
/// ([`SpatialStore::window_query_traced`](spatialdb_storage::SpatialStore::window_query_traced)):
/// same synchronous execution and deltas, plus the captured
/// [`PageRequest`] trace for the arm scheduler.
pub(crate) fn execute_filter_traced(
    store: &dyn SpatialStore,
    target: &Target,
    technique: WindowTechnique,
) -> (QueryStats, IoStats, Vec<PageRequest>) {
    let disk = store.disk();
    let io_before = disk.local_stats();
    let (stats, trace) = match target {
        Target::Window(w) => store.window_query_traced(w, technique),
        Target::Point(p) => store.point_query_traced(p),
    };
    let io = disk.local_stats().since(&io_before);
    (stats, io, trace)
}

/// The refinement predicate: the exact geometry of `id` if it really
/// answers `target`, `None` if the candidate was a false MBR hit.
/// Shared by the sequential cursor and the parallel executor so the two
/// paths cannot drift.
///
/// # Panics
///
/// Objects loaded through `SpatialDatabase::insert` always have exact
/// geometry. Records bulk-loaded directly into the store are
/// filter-only: they cannot be refined, so refining such a database is
/// a usage error in every build profile.
pub(crate) fn refined_geometry<'g>(
    db: &'g SpatialDatabase,
    target: &Target,
    id: u64,
) -> Option<&'g Geometry> {
    // `get_any`: the candidate may come from a pinned snapshot older
    // than a concurrent delete — the tombstoned geometry must still
    // refine it.
    let Some(geometry) = db.geoms.get_any(id) else {
        panic!(
            "candidate {id} has no exact geometry; records bulk-loaded \
             via store_mut() are filter-only — read the query's stats() \
             instead of refining it, or insert through SpatialDatabase::insert"
        );
    };
    let hit = match target {
        Target::Window(w) => geometry.intersects_rect(w),
        Target::Point(p) => geometry.contains_point(p),
    };
    hit.then_some(geometry)
}

/// The join refinement predicate: whether the candidate pair `(a, b)`
/// really intersects on exact geometry. Shared by [`JoinCursor`] and
/// the mixed-stream executor so the two paths cannot drift.
///
/// # Panics
///
/// Panics when either side lacks exact geometry (records bulk-loaded
/// directly into the store are filter-only).
pub(crate) fn refine_pair(
    left: &SpatialDatabase,
    right: &SpatialDatabase,
    a: spatialdb_rtree::ObjectId,
    b: spatialdb_rtree::ObjectId,
) -> bool {
    // `get_any`: tombstoned geometry still refines pairs drawn from an
    // older pinned snapshot (see `refined_geometry`).
    let (Some(ga), Some(gb)) = (left.geoms.get_any(a.0), right.geoms.get_any(b.0)) else {
        panic!(
            "join candidate ({}, {}) lacks exact geometry; read stats() \
             instead of iterating, or insert through SpatialDatabase::insert",
            a.0, b.0
        );
    };
    ga.intersects(gb)
}

/// Sorted candidate ids of `target`, re-read from the warm directory
/// without charging I/O, using `scratch` as the entry buffer.
pub(crate) fn candidate_ids(
    store: &dyn SpatialStore,
    target: &Target,
    scratch: &mut Vec<spatialdb_rtree::LeafEntry>,
) -> Vec<u64> {
    match target {
        Target::Window(w) => store.window_candidates_into(w, scratch),
        Target::Point(p) => store.point_candidates_into(p, scratch),
    }
    let mut ids: Vec<u64> = scratch.iter().map(|e| e.oid.0).collect();
    ids.sort_unstable();
    ids
}

/// A fluent query under construction. Created by
/// [`SpatialDatabase::query`]; consumed by [`Query::run`].
#[must_use = "a Query does nothing until .run()"]
#[derive(Debug)]
pub struct Query<'a> {
    pub(crate) db: &'a SpatialDatabase,
    pub(crate) target: Option<Target>,
    pub(crate) technique: Option<WindowTechnique>,
}

impl<'a> Query<'a> {
    pub(crate) fn new(db: &'a SpatialDatabase) -> Self {
        Query {
            db,
            target: None,
            technique: None,
        }
    }

    /// Search for all objects sharing at least one point with `window`.
    pub fn window(mut self, window: Rect) -> Self {
        self.target = Some(Target::Window(window));
        self
    }

    /// Search for all objects containing `point`.
    pub fn point(mut self, point: Point) -> Self {
        self.target = Some(Target::Point(point));
        self
    }

    /// Override the window transfer technique for this query (defaults
    /// to the database's configured technique; only the cluster
    /// organization distinguishes them).
    pub fn technique(mut self, technique: WindowTechnique) -> Self {
        self.technique = Some(technique);
        self
    }

    /// Execute the filter step (charging the simulated disk) and return
    /// a lazy cursor over the refined results.
    ///
    /// # Panics
    ///
    /// Panics if neither [`window`](Query::window) nor
    /// [`point`](Query::point) was set.
    pub fn run(self) -> ResultCursor<'a> {
        let Query {
            db,
            target,
            technique,
        } = self;
        let target = target.expect("Query::run() needs .window(..) or .point(..) first");
        let technique = technique.unwrap_or(db.technique);
        // One pinned snapshot for the whole cursor: the filter step and
        // the lazy candidate re-read see the same store version even if
        // writers publish in between.
        let store = db.store();
        let (stats, io) = execute_filter(&*store, &target, technique);
        ResultCursor {
            db,
            store,
            target,
            // Materialized on first iteration: a stats-only caller never
            // pays for the candidate re-read.
            candidates: None,
            next: 0,
            stats,
            io,
        }
    }

    /// Execute the query with the refinement step fanned across
    /// `n_threads` worker threads.
    ///
    /// The filter step (the part that charges the simulated disk) runs
    /// exactly as in [`run`](Query::run) — the disk is one arm, its cost
    /// model is inherently serial — and the CPU-bound exact-geometry
    /// tests are partitioned across a scoped thread pool. The returned
    /// [`QueryOutcome`](crate::executor::QueryOutcome) therefore carries
    /// the **same result set and the same per-query stats** as the
    /// sequential cursor, materialized.
    pub fn run_par(self, n_threads: usize) -> crate::executor::QueryOutcome {
        crate::executor::run_one_par(self, n_threads)
    }
}

/// A lazy stream of query results.
///
/// Iterating yields `(object id, exact geometry)` for every candidate
/// that survives exact refinement, in ascending id order. The refinement
/// is performed per [`next`](Iterator::next) call — consuming only the
/// first few results does only the first few geometry tests.
///
/// The cursor also carries the cost of the query that produced it:
/// [`stats`](ResultCursor::stats) and
/// [`io_stats`](ResultCursor::io_stats) describe **this query alone**,
/// not the workspace's cumulative counters.
#[derive(Debug)]
pub struct ResultCursor<'a> {
    db: &'a SpatialDatabase,
    /// The pinned store snapshot this cursor reads. Held for the
    /// cursor's whole lifetime: concurrent writers publish around it,
    /// and the epoch pin keeps the snapshot from being reclaimed.
    store: StoreRead<'a>,
    target: Target,
    /// Sorted candidate ids, re-read lazily from the warm directory (no
    /// I/O charged) when iteration starts.
    candidates: Option<Vec<u64>>,
    next: usize,
    stats: QueryStats,
    io: IoStats,
}

impl<'a> ResultCursor<'a> {
    /// Filter-step statistics of this query alone (candidates, queried
    /// bytes, simulated I/O milliseconds).
    pub fn stats(&self) -> QueryStats {
        self.stats
    }

    /// Detailed I/O counters of this query alone (requests, pages,
    /// seeks, latencies, milliseconds).
    pub fn io_stats(&self) -> IoStats {
        self.io
    }

    /// Number of candidates the filter step produced (refinement may
    /// discard some of them while iterating).
    pub fn num_candidates(&self) -> usize {
        self.stats.candidates
    }

    /// Drain the cursor into the sorted ids of all exact answers.
    pub fn ids(self) -> Vec<u64> {
        self.map(|(id, _)| id).collect()
    }

    /// The epoch this cursor's snapshot is pinned at (diagnostics and
    /// the snapshot-isolation tests).
    pub fn pinned_epoch(&self) -> u64 {
        self.store.pinned_epoch()
    }

    fn candidates(&mut self) -> &[u64] {
        let (store, target) = (&self.store, &self.target);
        self.candidates
            .get_or_insert_with(|| candidate_ids(&**store, target, &mut Vec::new()))
    }
}

impl<'a> Iterator for ResultCursor<'a> {
    type Item = (u64, &'a Geometry);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let i = self.next;
            let &id = self.candidates().get(i)?;
            self.next += 1;
            if let Some(geometry) = refined_geometry(self.db, &self.target, id) {
                return Some((id, geometry));
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let upper = match &self.candidates {
            Some(c) => c.len() - self.next,
            None => self.stats.candidates,
        };
        (0, Some(upper))
    }
}

/// A spatial join under construction. Created by
/// [`SpatialDatabase::join`]; consumed by [`JoinQuery::run`].
#[must_use = "a JoinQuery does nothing until .run()"]
#[derive(Debug)]
pub struct JoinQuery<'a> {
    left: &'a SpatialDatabase,
    right: &'a SpatialDatabase,
    config: JoinConfig,
}

impl<'a> JoinQuery<'a> {
    pub(crate) fn new(left: &'a SpatialDatabase, right: &'a SpatialDatabase) -> Self {
        JoinQuery {
            left,
            right,
            config: JoinConfig::default(),
        }
    }

    /// Object-transfer technique (only meaningful for cluster-organized
    /// operands).
    pub fn transfer(mut self, technique: TransferTechnique) -> Self {
        self.config.transfer = technique;
        self
    }

    /// CPU cost charged per exact geometry test (paper: 0.75 ms).
    pub fn exact_test_ms(mut self, ms: f64) -> Self {
        self.config.exact_test_ms = ms;
        self
    }

    /// Replace the whole join configuration.
    pub fn config(mut self, config: JoinConfig) -> Self {
        self.config = config;
        self
    }

    /// Run the MBR join and object transfer (charging the simulated
    /// disk) and return a lazy cursor over the exactly-refined pairs.
    ///
    /// # Panics
    ///
    /// Panics if the two databases do not share one workspace (disk +
    /// buffer pool).
    pub fn run(self) -> JoinCursor<'a> {
        let JoinQuery {
            left,
            right,
            config,
        } = self;
        let (pairs, stats) = {
            let (ls, rs) = (left.store(), right.store());
            SpatialJoin::new(&*ls, &*rs).run_with_pairs(config)
        };
        JoinCursor {
            left,
            right,
            pairs,
            next: 0,
            stats,
            latency: None,
        }
    }

    /// Run the join and additionally replay its captured request trace
    /// through the disk-arm scheduler with a `depth`-deep submission
    /// window under `policy`, attaching the join's simulated
    /// [`LatencyStats`] to the cursor
    /// ([`JoinCursor::latency_stats`]).
    ///
    /// The join executes synchronously — pairs and [`JoinStats`] are
    /// identical to [`run`](JoinQuery::run) — so the latency figure is
    /// the *overlapped* service time of exactly the requests the
    /// synchronous join charged.
    ///
    /// # Panics
    ///
    /// Panics if the two databases do not share one workspace.
    pub fn run_timed(self, depth: usize, policy: ArmPolicy) -> JoinCursor<'a> {
        let JoinQuery {
            left,
            right,
            config,
        } = self;
        let disk = left.store().disk();
        let (pairs, stats, trace) = {
            let (ls, rs) = (left.store(), right.store());
            SpatialJoin::new(&*ls, &*rs).run_with_pairs_traced(config)
        };
        let latency = simulate_queries(
            disk.params(),
            ArmGeometry::default(),
            policy,
            depth,
            &[QueryTrace {
                arrival_ms: 0.0,
                requests: trace,
            }],
        )
        .pop();
        JoinCursor {
            left,
            right,
            pairs,
            next: 0,
            stats,
            latency,
        }
    }

    /// Run the join with the MBR phase partitioned across `n_threads`
    /// threads (see
    /// [`SpatialJoin::run_par`](spatialdb_join::SpatialJoin::run_par)).
    ///
    /// The candidate pairs — and therefore the refined results — are
    /// identical to [`run`](JoinQuery::run); the MBR-phase I/O cost is
    /// accounted on per-partition scratch disks and merged
    /// deterministically.
    ///
    /// # Panics
    ///
    /// Panics if the two databases do not share one workspace.
    pub fn run_par(self, n_threads: usize) -> JoinCursor<'a> {
        let JoinQuery {
            left,
            right,
            config,
        } = self;
        let (pairs, stats) = {
            let (ls, rs) = (left.store(), right.store());
            SpatialJoin::new(&*ls, &*rs).run_par_with_pairs(config, n_threads)
        };
        JoinCursor {
            left,
            right,
            pairs,
            next: 0,
            stats,
            latency: None,
        }
    }
}

/// A lazy stream of join results: candidate pairs in MBR-join processing
/// order, each tested on the exact geometries as the caller iterates.
#[derive(Debug)]
pub struct JoinCursor<'a> {
    left: &'a SpatialDatabase,
    right: &'a SpatialDatabase,
    pairs: Vec<(spatialdb_rtree::ObjectId, spatialdb_rtree::ObjectId)>,
    next: usize,
    stats: JoinStats,
    latency: Option<LatencyStats>,
}

impl<'a> JoinCursor<'a> {
    /// Cost breakdown of this join alone (§6.3 / Figure 17).
    pub fn stats(&self) -> JoinStats {
        self.stats
    }

    /// Simulated latency of the join's I/O under the arm scheduler —
    /// present only for [`JoinQuery::run_timed`].
    pub fn latency_stats(&self) -> Option<LatencyStats> {
        self.latency
    }

    /// Number of candidate pairs the MBR join produced.
    pub fn num_candidates(&self) -> usize {
        self.pairs.len()
    }

    /// Drain the cursor into the sorted exact result pairs.
    pub fn pairs(self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = self.collect();
        out.sort_unstable();
        out
    }
}

impl<'a> Iterator for JoinCursor<'a> {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<Self::Item> {
        while self.next < self.pairs.len() {
            let (a, b) = self.pairs[self.next];
            self.next += 1;
            if refine_pair(self.left, self.right, a, b) {
                return Some((a.0, b.0));
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.pairs.len() - self.next))
    }
}

//! The user-facing database API.
//!
//! A [`Workspace`] models one machine (simulated disk + shared buffer
//! pool); databases created in the same workspace can be joined against
//! each other. [`SpatialDatabase`] pairs a pluggable
//! [`SpatialStore`] backend with the exact [`Geometry`] of every object,
//! kept in memory for the *refinement* step — so queries return exact
//! answers while all I/O is charged to the simulated disk exactly as the
//! paper's cost model prescribes.
//!
//! Queries go through the streaming builder: see
//! [`SpatialDatabase::query`] and [`SpatialDatabase::join`]. The store
//! stack is `Send + Sync` with a `&self` read path, so queries and joins
//! borrow the database immutably — any number of threads may query one
//! database concurrently, and the parallel executor
//! ([`crate::executor`]) fans batches across a scoped thread pool.
//!
//! ## Concurrent writers: shadow paging + epochs
//!
//! Since the shadow-paging refactor, **updates take `&self` too**:
//! [`SpatialDatabase::insert`] and [`SpatialDatabase::remove`] serialize
//! writers on an internal gate, build a copy-on-write snapshot of the
//! store (the R\*-tree's node table is `Arc`-shared, so the clone copies
//! pointers, and only the pages a writer touches are shadow-copied),
//! apply the update to the shadow, and publish it by atomically swapping
//! the root pointer. **Readers never take the writer gate**: a query
//! pins an epoch ([`spatialdb_epoch::Collector`]), loads the root, and
//! traverses that consistent snapshot for as long as its cursor lives —
//! a concurrent writer can neither block it nor mutate what it sees.
//! Superseded snapshots are retired to the database's collector and
//! freed once no pin can reach them (see the `spatialdb-epoch` docs);
//! exact geometry lives outside the versioned root in a
//! [`StableMap`](spatialdb_epoch::StableMap), whose tombstone-on-remove
//! discipline keeps candidates from older snapshots refinable.
//!
//! The exclusive entry points that remain `&mut self`
//! ([`bulk_load`](SpatialDatabase::bulk_load),
//! [`finish_loading`](SpatialDatabase::finish_loading),
//! [`store_mut`](SpatialDatabase::store_mut)) bypass versioning
//! entirely — `&mut` proves no reader exists, so they mutate the
//! current root in place, shadow nothing and retire nothing, exactly as
//! before the refactor. The shared write path charges the **same
//! simulated I/O** as the exclusive one: the snapshot clone is a pure
//! memory operation, and the update applied to the shadow touches the
//! same pages of the same shared buffer pool.

use crate::config::{ConfigError, EngineConfig};
use crate::executor::ExecPlan;
use crate::query::{JoinQuery, Query};
use spatialdb_disk::Routing;
use spatialdb_disk::{
    DepMutex, Disk, DiskHandle, DiskParams, IoStats, LockClass, StripePolicy, PAGE_SIZE,
};
use spatialdb_epoch::{Collector, Snapshot, SnapshotGuard, StableMap};
use spatialdb_geom::{Geometry, HasMbr};
use spatialdb_rtree::ObjectId;
use spatialdb_storage::{
    new_shared_pool_with_routing, ClusterConfig, ClusterOrganization, ObjectRecord,
    OrganizationKind, PrimaryOrganization, SecondaryOrganization, SharedPool, SpatialStore,
    WindowTechnique,
};

/// Options for creating a [`SpatialDatabase`] backed by one of the
/// paper's organization models.
#[derive(Clone, Debug)]
pub struct DbOptions {
    /// Which organization model stores the objects.
    pub organization: OrganizationKind,
    /// `Smax` in bytes (cluster organization only). Default 80 KB, the
    /// paper's series-A value.
    pub smax_bytes: u64,
    /// Use the restricted buddy system (§5.3.1) instead of full-`Smax`
    /// units (cluster organization only).
    pub restricted_buddy: bool,
    /// Window-query technique (cluster organization only).
    pub technique: WindowTechnique,
}

impl DbOptions {
    /// Defaults for the given organization model.
    pub fn new(organization: OrganizationKind) -> Self {
        DbOptions {
            organization,
            smax_bytes: 80 * 1024,
            restricted_buddy: false,
            technique: WindowTechnique::Slm,
        }
    }

    /// Set `Smax`.
    pub fn smax_bytes(mut self, bytes: u64) -> Self {
        self.smax_bytes = bytes;
        self
    }

    /// Enable the restricted buddy system.
    pub fn restricted_buddy(mut self, on: bool) -> Self {
        self.restricted_buddy = on;
        self
    }

    /// Set the window-query technique.
    pub fn technique(mut self, t: WindowTechnique) -> Self {
        self.technique = t;
        self
    }
}

/// One simulated machine: a disk and a shared buffer pool.
#[derive(Debug)]
pub struct Workspace {
    disk: DiskHandle,
    pool: SharedPool,
}

impl Workspace {
    /// Create a workspace with the paper's disk parameters and a buffer
    /// of `buffer_pages` pages (a single-shard pool — the deterministic
    /// configuration). Every other knob of the machine goes through
    /// [`from_config`](Workspace::from_config).
    pub fn new(buffer_pages: usize) -> Self {
        Self::from_config(EngineConfig::default().buffer_pages(buffer_pages))
    }

    /// Create a workspace with explicit disk parameters and a
    /// single-shard pool.
    pub fn with_params(params: DiskParams, buffer_pages: usize) -> Self {
        Self::from_config(
            EngineConfig::default()
                .params(params)
                .buffer_pages(buffer_pages),
        )
    }

    /// Build the machine an [`EngineConfig`] describes — the one entry
    /// point for every configuration knob (buffer capacity, pool
    /// sharding and routing, disk-arm array, adaptive quotas):
    ///
    /// ```
    /// use spatialdb::{EngineConfig, Routing, StripePolicy, Workspace};
    ///
    /// let ws = Workspace::from_config(
    ///     EngineConfig::default()
    ///         .buffer_pages(1024)
    ///         .shards(8)
    ///         .routing(Routing::ByRegion)
    ///         .arms(4, StripePolicy::RoundRobin),
    /// );
    /// # let _ = ws;
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid
    /// ([`EngineConfig::validate`]); use
    /// [`try_from_config`](Workspace::try_from_config) to handle the
    /// error instead.
    pub fn from_config(config: EngineConfig) -> Self {
        match Self::try_from_config(config) {
            Ok(ws) => ws,
            Err(e) => panic!("invalid EngineConfig: {e}"),
        }
    }

    /// Fallible [`from_config`](Workspace::from_config): returns the
    /// [`ConfigError`] naming the rejected knob combination instead of
    /// panicking.
    pub fn try_from_config(config: EngineConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let disk = Disk::new(config.params);
        let pool = new_shared_pool_with_routing(
            disk.clone(),
            config.buffer_pages,
            config.shards,
            config.routing,
        );
        let ws = Workspace { disk, pool };
        if config.arms > 1 {
            ws.apply_arms(config.arms, config.stripe);
        }
        if config.adaptive_shards {
            ws.pool.set_adaptive(true);
        }
        Ok(ws)
    }

    /// Create a workspace whose buffer pool is split across `shards`
    /// page-hash shards under the one `buffer_pages` budget.
    #[deprecated(
        since = "0.1.0",
        note = "use Workspace::from_config(EngineConfig::default()\
                .buffer_pages(..).shards(..))"
    )]
    pub fn with_shards(buffer_pages: usize, shards: usize) -> Self {
        Self::from_config(
            EngineConfig::default()
                .buffer_pages(buffer_pages)
                .shards(shards),
        )
    }

    /// Create a workspace with explicit disk parameters and shard count.
    #[deprecated(
        since = "0.1.0",
        note = "use Workspace::from_config(EngineConfig::default()\
                .params(..).buffer_pages(..).shards(..))"
    )]
    pub fn with_params_sharded(params: DiskParams, buffer_pages: usize, shards: usize) -> Self {
        Self::from_config(
            EngineConfig::default()
                .params(params)
                .buffer_pages(buffer_pages)
                .shards(shards),
        )
    }

    /// Create a sharded workspace with an explicit shard
    /// [`Routing`] mode.
    #[deprecated(
        since = "0.1.0",
        note = "use Workspace::from_config(EngineConfig::default()\
                .buffer_pages(..).shards(..).routing(..))"
    )]
    pub fn with_shard_routing(buffer_pages: usize, shards: usize, routing: Routing) -> Self {
        Self::from_config(
            EngineConfig::default()
                .buffer_pages(buffer_pages)
                .shards(shards)
                .routing(routing),
        )
    }

    /// Reconfigure the simulated disk as an `arms`-way array whose
    /// regions are declustered by `stripe` (see [`StripePolicy`]).
    ///
    /// # Panics
    ///
    /// Panics if requests are still pending on the current array.
    #[deprecated(
        since = "0.1.0",
        note = "use Workspace::from_config(EngineConfig::default().arms(..))"
    )]
    pub fn configure_arms(&self, arms: usize, stripe: StripePolicy) {
        self.apply_arms(arms, stripe);
    }

    /// Shape the disk as an `arms`-way array and keep the buffer
    /// pool's shard routing aligned with the new arm assignment: under
    /// `Routing::ByRegion` with multiple shards, each shard's miss
    /// stream then feeds exactly one arm (see
    /// `ShardedPool::set_arm_affinity`; dormant in other modes).
    fn apply_arms(&self, arms: usize, stripe: StripePolicy) {
        self.disk.configure_arms(arms, stripe);
        self.pool.set_arm_affinity(arms, stripe);
    }

    /// Enable (or disable) adaptive shard quotas on the buffer pool.
    #[deprecated(
        since = "0.1.0",
        note = "use Workspace::from_config(EngineConfig::default()\
                .adaptive_shards(true))"
    )]
    pub fn set_adaptive_shards(&self, on: bool) {
        self.pool.set_adaptive(on);
    }

    /// The simulated disk.
    pub fn disk(&self) -> DiskHandle {
        self.disk.clone()
    }

    /// The shared buffer pool.
    pub fn pool(&self) -> SharedPool {
        self.pool.clone()
    }

    /// Create a database backed by one of the paper's organization
    /// models.
    pub fn create_database(&self, options: DbOptions) -> SpatialDatabase {
        let store: Box<dyn SpatialStore> = match options.organization {
            OrganizationKind::Secondary => Box::new(SecondaryOrganization::new(
                self.disk.clone(),
                self.pool.clone(),
            )),
            OrganizationKind::Primary => Box::new(PrimaryOrganization::new(
                self.disk.clone(),
                self.pool.clone(),
            )),
            OrganizationKind::Cluster => {
                let config = if options.restricted_buddy {
                    ClusterConfig::restricted_buddy(options.smax_bytes)
                } else {
                    ClusterConfig::plain(options.smax_bytes)
                };
                Box::new(ClusterOrganization::new(
                    self.disk.clone(),
                    self.pool.clone(),
                    config,
                ))
            }
        };
        SpatialDatabase::from_parts(store, options.technique)
    }

    /// Every batch entry point shares this membership check: a query's
    /// store must be built on this workspace's disk.
    fn assert_same_workspace(&self, queries: &[Query<'_>]) {
        for (i, q) in queries.iter().enumerate() {
            assert!(
                std::sync::Arc::ptr_eq(&q.db.store().disk(), &self.disk),
                "query {i} targets a database of another workspace"
            );
        }
    }

    /// Execute a batch of independent window/point queries under an
    /// [`ExecPlan`] — the one batch entry point.
    ///
    /// Build the queries with [`SpatialDatabase::query`] (without calling
    /// `run`) and hand them over; they may target different databases of
    /// **this workspace**. A bare thread count (as below) is the
    /// serialized deterministic plan: the filter steps are issued in
    /// submission order against the workspace's single simulated disk —
    /// see the [`executor`](crate::executor) module docs for why that
    /// keeps every per-query and aggregate statistic **identical to
    /// sequential execution**, at any thread count — while the
    /// exact-geometry refinement runs on the thread pool.
    /// `ExecPlan::threads(k).overlapped()` fans the filter steps across
    /// the workers too (built for sharded pools), and
    /// `ExecPlan::threads(k).timed(OverlapConfig)` replays the filter
    /// I/O through the disk-arm scheduler, attaching per-query
    /// [`LatencyStats`](spatialdb_disk::LatencyStats) to the outcomes.
    /// (For a batch spanning several workspaces, call
    /// [`executor::run_batch`](crate::executor::run_batch) directly.)
    ///
    /// ```
    /// # use spatialdb::{DbOptions, OrganizationKind, Workspace};
    /// # use spatialdb::geom::{Point, Polyline, Rect};
    /// # let ws = Workspace::new(256);
    /// # let mut db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
    /// # for i in 0..32u64 {
    /// #     let x = (i % 8) as f64 / 8.0;
    /// #     db.insert(i, Polyline::new(vec![Point::new(x, 0.1), Point::new(x + 0.05, 0.15)]));
    /// # }
    /// # db.finish_loading();
    /// let batch = ws.run_batch(
    ///     vec![
    ///         db.query().window(Rect::new(0.0, 0.0, 0.5, 0.5)),
    ///         db.query().window(Rect::new(0.5, 0.0, 1.0, 0.5)),
    ///         db.query().point(Point::new(0.1, 0.1)),
    ///     ],
    ///     8,
    /// );
    /// assert_eq!(batch.len(), 3);
    /// let total = batch.aggregate_stats();
    /// # let _ = total;
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if a query targets a database of another workspace (its
    /// store is not built on this workspace's disk).
    pub fn run_batch(
        &self,
        queries: Vec<Query<'_>>,
        plan: impl Into<ExecPlan>,
    ) -> crate::executor::BatchOutcome {
        self.assert_same_workspace(&queries);
        crate::executor::run_batch(queries, plan)
    }

    /// Execute a batch with the **filter steps overlapped** across the
    /// worker pool as well (see
    /// [`FilterMode::Overlapped`](crate::executor::FilterMode)).
    #[deprecated(
        since = "0.1.0",
        note = "use run_batch(queries, ExecPlan::threads(n).overlapped())"
    )]
    pub fn run_batch_overlapped(
        &self,
        queries: Vec<Query<'_>>,
        n_threads: usize,
    ) -> crate::executor::BatchOutcome {
        self.run_batch(queries, ExecPlan::threads(n_threads).overlapped())
    }

    /// Execute a batch under the **overlapped-I/O scheduler**
    /// ([`FilterMode::OverlappedIo`](crate::executor::FilterMode)).
    #[deprecated(
        since = "0.1.0",
        note = "use run_batch(queries, ExecPlan::threads(n).timed(config))"
    )]
    pub fn run_batch_timed(
        &self,
        queries: Vec<Query<'_>>,
        n_threads: usize,
        config: crate::executor::OverlapConfig,
    ) -> crate::executor::BatchOutcome {
        self.run_batch(queries, ExecPlan::threads(n_threads).timed(config))
    }

    /// STR-bulk-load `objects` into the empty database `db`, fanning
    /// the sort and tile stages across `threads` scoped worker threads
    /// (see [`crate::bulkload`]).
    ///
    /// The resulting database — tree structure, physical placement,
    /// every query answer — is **identical at every thread count**, and
    /// with `threads == 1` the charged I/O is byte-identical to the
    /// sequential [`SpatialDatabase::bulk_load`]. Compared to inserting
    /// the objects one by one, the packed build charges strictly less
    /// simulated I/O and yields data pages filled at the configured
    /// fill factor instead of insertion's ~70 %.
    ///
    /// # Panics
    ///
    /// Panics if `db` belongs to another workspace, is non-empty, or an
    /// object id repeats.
    pub fn bulk_load_par(
        &self,
        db: &mut SpatialDatabase,
        objects: Vec<(u64, Geometry)>,
        threads: usize,
    ) {
        assert!(
            std::sync::Arc::ptr_eq(&db.store().disk(), &self.disk),
            "database belongs to another workspace"
        );
        let records = db.records_for_bulk(&objects);
        crate::bulkload::bulk_load_records_par(db.store_mut(), &records, threads);
        db.extend_geometry(objects);
    }

    /// Create a database on a caller-supplied [`SpatialStore`] backend —
    /// the extension point for organizations beyond the paper's three.
    ///
    /// The store should be built on this workspace's
    /// [`disk`](Workspace::disk) and [`pool`](Workspace::pool) so it can
    /// take part in joins. Note the trait's one structural requirement:
    /// every backend embeds an R\*-tree over the object MBRs as its
    /// filter index (see the `spatialdb_storage::store` docs) — what a
    /// backend is free to reinvent is the layout of the exact
    /// representations. A backend that wants the shared (`&self`) write
    /// path must also override
    /// [`SpatialStore::snapshot`](spatialdb_storage::SpatialStore::snapshot)
    /// (typically `Box::new(self.clone())` on a `Clone` store, as below);
    /// without it only the exclusive `&mut` entry points work.
    ///
    /// ```
    /// use spatialdb::storage::{
    ///     MemoryStore, ObjectRecord, QueryStats, SharedPool, SpatialStore, WindowTechnique,
    /// };
    /// use spatialdb::geom::{Point, Polyline, Rect};
    /// use spatialdb::rtree::{ObjectId, RStarTree};
    /// use spatialdb::disk::DiskHandle;
    /// use spatialdb::Workspace;
    ///
    /// /// A custom backend: here it simply wraps the in-memory baseline,
    /// /// but any from-scratch organization implements the same trait.
    /// #[derive(Clone)]
    /// struct GridFileStore(MemoryStore);
    ///
    /// impl SpatialStore for GridFileStore {
    ///     fn name(&self) -> &'static str {
    ///         "grid file"
    ///     }
    ///     fn snapshot(&self) -> Box<dyn SpatialStore> {
    ///         Box::new(self.clone())
    ///     }
    ///     fn insert(&mut self, rec: &ObjectRecord) {
    ///         self.0.insert(rec)
    ///     }
    ///     fn delete(&mut self, oid: ObjectId) -> bool {
    ///         self.0.delete(oid)
    ///     }
    ///     fn window_query(&self, w: &Rect, t: WindowTechnique) -> QueryStats {
    ///         self.0.window_query(w, t)
    ///     }
    ///     fn point_query(&self, p: &Point) -> QueryStats {
    ///         self.0.point_query(p)
    ///     }
    ///     fn fetch_object(&self, oid: ObjectId) {
    ///         self.0.fetch_object(oid)
    ///     }
    ///     fn occupied_pages(&self) -> u64 {
    ///         self.0.occupied_pages()
    ///     }
    ///     fn num_objects(&self) -> usize {
    ///         self.0.num_objects()
    ///     }
    ///     fn contains(&self, oid: ObjectId) -> bool {
    ///         self.0.contains(oid)
    ///     }
    ///     fn disk(&self) -> DiskHandle {
    ///         self.0.disk()
    ///     }
    ///     fn pool(&self) -> SharedPool {
    ///         self.0.pool()
    ///     }
    ///     fn tree(&self) -> &RStarTree {
    ///         self.0.tree()
    ///     }
    ///     fn flush(&mut self) {
    ///         self.0.flush()
    ///     }
    ///     fn begin_query(&mut self) {
    ///         self.0.begin_query()
    ///     }
    ///     fn object_size(&self, oid: ObjectId) -> u32 {
    ///         self.0.object_size(oid)
    ///     }
    /// }
    ///
    /// // Register the custom store and use it like any other database.
    /// let ws = Workspace::new(128);
    /// let store = GridFileStore(MemoryStore::new(ws.disk(), ws.pool()));
    /// let mut db = ws.create_database_with(Box::new(store));
    /// db.insert(7, Polyline::new(vec![Point::new(0.1, 0.1), Point::new(0.2, 0.2)]));
    /// db.finish_loading();
    /// let ids = db.query().window(Rect::new(0.0, 0.0, 1.0, 1.0)).run().ids();
    /// assert_eq!(ids, vec![7]);
    /// assert_eq!(db.store_name(), "grid file");
    /// ```
    pub fn create_database_with(&self, store: Box<dyn SpatialStore>) -> SpatialDatabase {
        SpatialDatabase::from_parts(store, WindowTechnique::Slm)
    }
}

/// A spatial database: a pluggable storage backend plus the exact
/// geometry used for query refinement.
///
/// The backend lives behind a versioned root pointer
/// ([`Snapshot`](spatialdb_epoch::Snapshot)): reads pin an epoch and
/// traverse a consistent copy-on-write snapshot, writes serialize on an
/// internal gate and publish shadow copies — see the [module
/// docs](crate::db) for the full concurrency story.
pub struct SpatialDatabase {
    /// The published store. Readers pin it through [`store`](Self::store);
    /// `&self` writers clone-apply-swap it; `&mut` paths mutate it in
    /// place through [`Snapshot::get_mut`].
    pub(crate) root: Snapshot<Box<dyn SpatialStore>>,
    /// Epoch manager deciding when superseded store snapshots are freed.
    pub(crate) epochs: Collector,
    /// The writer gate: at most one `&self` writer clones and publishes
    /// at a time. First rank of the lock hierarchy; readers never touch
    /// it.
    pub(crate) writer: DepMutex<()>,
    pub(crate) technique: WindowTechnique,
    /// Exact geometry, outside the versioned root: stable addresses and
    /// tombstone-on-remove keep candidates from older snapshots
    /// refinable (see [`StableMap`]).
    pub(crate) geoms: StableMap<Geometry>,
}

impl std::fmt::Debug for SpatialDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The store is a trait object; identify it by its backend name.
        f.debug_struct("SpatialDatabase")
            .field("store", &self.store().name())
            .field("technique", &self.technique)
            .field("objects", &self.geoms.live_len())
            .finish()
    }
}

/// A pinned, read-only view of a database's store: the loaded root
/// snapshot plus the epoch pin that keeps it alive. Obtained from
/// [`SpatialDatabase::store`]; dereferences to
/// [`dyn SpatialStore`](SpatialStore), so `db.store().window_query(..)`
/// reads exactly like the pre-versioning accessor. While the guard
/// lives, concurrent writers publish *around* it — the view never
/// changes and is never freed under it.
pub struct StoreRead<'a> {
    guard: SnapshotGuard<'a, Box<dyn SpatialStore>>,
}

impl StoreRead<'_> {
    /// The epoch this view is pinned at (diagnostics and the
    /// snapshot-isolation tests).
    pub fn pinned_epoch(&self) -> u64 {
        self.guard.epoch()
    }
}

impl std::ops::Deref for StoreRead<'_> {
    type Target = dyn SpatialStore;
    fn deref(&self) -> &(dyn SpatialStore + 'static) {
        &**self.guard
    }
}

impl std::fmt::Debug for StoreRead<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreRead")
            .field("store", &self.name())
            .field("epoch", &self.pinned_epoch())
            .finish()
    }
}

impl SpatialDatabase {
    /// Assemble a database around a boxed backend (shared constructor of
    /// the `Workspace` factory methods).
    pub(crate) fn from_parts(
        store: Box<dyn SpatialStore>,
        technique: WindowTechnique,
    ) -> SpatialDatabase {
        SpatialDatabase {
            root: Snapshot::new(store),
            epochs: Collector::new(),
            writer: DepMutex::new(LockClass::DbWriter, ()),
            technique,
            geoms: StableMap::new(LockClass::Geometry),
        }
    }

    /// Register `objects`' exact geometry (bulk-load tail).
    pub(crate) fn extend_geometry(&self, objects: Vec<(u64, Geometry)>) {
        for (id, geometry) in objects {
            self.geoms.insert(id, geometry);
        }
    }
    /// Insert an object under `id`. Accepts anything convertible into a
    /// [`Geometry`]: a `Point`, a `Polyline` (stored decomposed), or a
    /// `Polygon`.
    ///
    /// Takes `&self`: the update is applied to a copy-on-write shadow of
    /// the store and published atomically, so concurrent readers keep
    /// traversing the snapshot they pinned and are never blocked.
    /// Writers serialize on the database's writer gate. The charged
    /// simulated I/O is identical to the pre-versioning exclusive path —
    /// the shadow clone is a pure memory operation.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already present.
    pub fn insert(&self, id: u64, geometry: impl Into<Geometry>) {
        let geometry = geometry.into();
        let _gate = self.writer.acquire();
        let mut fresh = {
            let cur = self.root.pin(&self.epochs);
            // Ask the store, not just the geometry map: ids bulk-loaded
            // directly into the backend (filter-only records) must also
            // be rejected, or the index would hold duplicate entries.
            assert!(!cur.contains(ObjectId(id)), "object {id} already stored");
            cur.snapshot()
        };
        let rec = ObjectRecord::new(
            ObjectId(id),
            geometry.mbr(),
            geometry.serialized_size() as u32,
        );
        fresh.insert(&rec);
        // Geometry goes in before the swap: a reader pinning the new
        // root must be able to refine the new candidate. Readers of the
        // old root never see `id`, so the early entry is unobservable.
        self.geoms.insert(id, geometry);
        self.root.swap(fresh, &self.epochs);
    }

    /// Bulk-load `objects` into this (empty) database with the
    /// sequential sort-tile-recursive build
    /// ([`SpatialStore::bulk_load_str`]): the R\*-tree is packed
    /// bottom-up at the configured fill factor and the exact
    /// representations are placed in tile order, charging strictly less
    /// simulated I/O than the same objects inserted one by one. For the
    /// parallel variant see [`Workspace::bulk_load_par`], which produces
    /// a byte-identical database.
    ///
    /// # Panics
    ///
    /// Panics if the database is non-empty or an object id repeats.
    pub fn bulk_load(&mut self, objects: Vec<(u64, impl Into<Geometry>)>) {
        let objects: Vec<(u64, Geometry)> =
            objects.into_iter().map(|(id, g)| (id, g.into())).collect();
        let records = self.records_for_bulk(&objects);
        // Exclusive path: `&mut self` proves no pinned reader exists, so
        // the load mutates the current root in place — no shadow copy.
        self.root.get_mut().bulk_load_str(&records);
        self.extend_geometry(objects);
    }

    /// Shared precondition checks + record conversion for the bulk-load
    /// entry points.
    pub(crate) fn records_for_bulk(&self, objects: &[(u64, Geometry)]) -> Vec<ObjectRecord> {
        let store = self.store();
        let mut seen = std::collections::HashSet::with_capacity(objects.len());
        objects
            .iter()
            .map(|(id, geometry)| {
                assert!(
                    !store.contains(ObjectId(*id)) && seen.insert(*id),
                    "object {id} already stored"
                );
                ObjectRecord::new(
                    ObjectId(*id),
                    geometry.mbr(),
                    geometry.serialized_size() as u32,
                )
            })
            .collect()
    }

    /// Delete an object. Returns `false` when `id` was not stored.
    /// Insertions and deletions can be intermixed with queries without
    /// any global reorganization (§4.1 of the paper).
    ///
    /// Takes `&self` and never blocks readers — shadow-paged like
    /// [`insert`](SpatialDatabase::insert). The exact geometry is
    /// tombstoned, not freed: a reader pinned to an older snapshot can
    /// still refine the deleted candidate.
    pub fn remove(&self, id: u64) -> bool {
        let _gate = self.writer.acquire();
        let mut fresh = {
            let cur = self.root.pin(&self.epochs);
            if !cur.contains(ObjectId(id)) {
                return false;
            }
            cur.snapshot()
        };
        let removed = fresh.delete(ObjectId(id));
        debug_assert!(removed, "gate held: contains() cannot go stale");
        self.geoms.remove(id);
        self.root.swap(fresh, &self.epochs);
        true
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.store().num_objects()
    }

    /// `true` if the database is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Start building a query. Finish with
    /// [`run`](crate::query::Query::run) to obtain a lazy
    /// [`ResultCursor`](crate::query::ResultCursor):
    ///
    /// ```no_run
    /// # use spatialdb::{DbOptions, OrganizationKind, Workspace};
    /// # use spatialdb::geom::{HasMbr, Rect};
    /// # use spatialdb::storage::WindowTechnique;
    /// # let ws = Workspace::new(64);
    /// # let mut db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
    /// for (id, geometry) in db
    ///     .query()
    ///     .window(Rect::new(0.0, 0.0, 0.25, 0.25))
    ///     .technique(WindowTechnique::Slm)
    ///     .run()
    /// {
    ///     println!("{id}: {:?}", geometry.mbr());
    /// }
    /// ```
    pub fn query(&self) -> Query<'_> {
        Query::new(self)
    }

    /// Start building an intersection join against `other` (same
    /// workspace). Finish with [`run`](crate::query::JoinQuery::run) to
    /// obtain a lazy [`JoinCursor`](crate::query::JoinCursor), or with
    /// [`run_par`](crate::query::JoinQuery::run_par) to partition the
    /// MBR phase across threads.
    pub fn join<'a>(&'a self, other: &'a SpatialDatabase) -> JoinQuery<'a> {
        JoinQuery::new(self, other)
    }

    /// Accumulated I/O statistics of the workspace disk — cumulative
    /// over everything that ran on this machine. The cost of a single
    /// query is on its cursor
    /// ([`ResultCursor::io_stats`](crate::query::ResultCursor::io_stats)).
    pub fn io_stats(&self) -> IoStats {
        self.store().disk().stats()
    }

    /// Total pages occupied on the simulated disk.
    pub fn occupied_pages(&self) -> u64 {
        self.store().occupied_pages()
    }

    /// Occupied storage in megabytes.
    pub fn occupied_mb(&self) -> f64 {
        (self.occupied_pages() * PAGE_SIZE as u64) as f64 / (1024.0 * 1024.0)
    }

    /// Write back dirty pages and prepare for cold queries. Also a
    /// quiescent point: `&mut self` proves no reader is pinned, so
    /// superseded store snapshots and tombstoned geometry are freed.
    pub fn finish_loading(&mut self) {
        let store = self.root.get_mut();
        store.flush();
        store.begin_query();
        self.quiesce();
    }

    /// Free everything deferred for late readers. Safe exactly because
    /// `&mut self` excludes outstanding pins and geometry borrows.
    fn quiesce(&mut self) {
        self.geoms.quiesce();
        // Two epoch distances plus the advance itself drain the whole
        // retired list when no pin is outstanding.
        for _ in 0..3 {
            self.epochs.advance_and_collect();
        }
    }

    /// A pinned, read-only view of the storage backend (diagnostics,
    /// experiments). The view is a consistent snapshot: writers that
    /// publish while the guard lives do not change what it sees.
    pub fn store(&self) -> StoreRead<'_> {
        StoreRead {
            guard: self.root.pin(&self.epochs),
        }
    }

    /// Mutable access to the storage backend — the exclusive update
    /// path, bypassing versioning (no shadow copy, nothing retired).
    pub fn store_mut(&mut self) -> &mut dyn SpatialStore {
        self.root.get_mut().as_mut()
    }

    /// Short name of the storage backend ("cluster org.", "memory", …).
    pub fn store_name(&self) -> &'static str {
        self.store().name()
    }

    /// Number of readers currently pinned to a snapshot of this
    /// database (diagnostics and the concurrency tests).
    pub fn pinned_readers(&self) -> usize {
        self.epochs.pinned_readers()
    }

    /// Store snapshots retired but not yet freed (diagnostics and the
    /// reclamation tests).
    pub fn retired_snapshots(&self) -> usize {
        self.epochs.retired_len()
    }

    /// The ids of all live objects with exact geometry, sorted
    /// ascending. The id universe mixed-workload drivers draw delete
    /// targets from.
    pub fn object_ids(&self) -> Vec<u64> {
        self.geoms.live_keys()
    }

    /// The exact geometry of an object, if stored.
    ///
    /// Consults the store first, so an object deleted through
    /// [`store_mut`](SpatialDatabase::store_mut) (bypassing
    /// [`remove`](SpatialDatabase::remove)) does not surface a stale
    /// geometry.
    pub fn geometry(&self, id: u64) -> Option<&Geometry> {
        if self.store().contains(ObjectId(id)) {
            self.geoms.get_any(id)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatialdb_geom::{Point, Polygon, Polyline, Rect};
    use spatialdb_storage::MemoryStore;

    fn street(x: f64, y: f64) -> Polyline {
        Polyline::new(vec![
            Point::new(x, y),
            Point::new(x + 0.01, y + 0.005),
            Point::new(x + 0.02, y),
        ])
    }

    #[test]
    fn insert_and_query_all_kinds() {
        for kind in [
            OrganizationKind::Secondary,
            OrganizationKind::Primary,
            OrganizationKind::Cluster,
        ] {
            let ws = Workspace::new(256);
            let mut db = ws.create_database(DbOptions::new(kind));
            for i in 0..50u64 {
                db.insert(i, street((i % 10) as f64 / 10.0, (i / 10) as f64 / 10.0));
            }
            db.finish_loading();
            assert_eq!(db.len(), 50);
            let window = Rect::new(0.0, 0.0, 0.25, 0.25);
            let hits: Vec<(u64, bool)> = db
                .query()
                .window(window)
                .run()
                .map(|(id, g)| (id, g.intersects_rect(&window)))
                .collect();
            assert!(!hits.is_empty(), "{kind:?}");
            // Exact refinement: every reported object really intersects.
            assert!(hits.iter().all(|(_, ok)| *ok), "{kind:?}");
        }
    }

    #[test]
    fn point_query_exact() {
        let ws = Workspace::new(256);
        let mut db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
        db.insert(7, street(0.5, 0.5));
        db.finish_loading();
        // On the first vertex.
        assert_eq!(db.query().point(Point::new(0.5, 0.5)).run().ids(), vec![7]);
        // Inside the MBR but off the line.
        assert!(db
            .query()
            .point(Point::new(0.505, 0.0049))
            .run()
            .ids()
            .is_empty());
    }

    #[test]
    fn mixed_geometry_kinds_queryable() {
        let ws = Workspace::new(256);
        let mut db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
        db.insert(1, Point::new(0.5, 0.5));
        db.insert(2, street(0.45, 0.5));
        db.insert(
            3,
            Polygon::new(vec![
                Point::new(0.45, 0.45),
                Point::new(0.55, 0.45),
                Point::new(0.55, 0.55),
                Point::new(0.45, 0.55),
            ]),
        );
        db.insert(4, Point::new(0.9, 0.9));
        db.finish_loading();
        let hits = db
            .query()
            .window(Rect::new(0.44, 0.44, 0.56, 0.56))
            .run()
            .ids();
        assert_eq!(hits, vec![1, 2, 3]);
        // The polygon contains the point; the polyline passes through it.
        let through = db.query().point(Point::new(0.5, 0.5)).run().ids();
        assert!(through.contains(&1));
        assert!(through.contains(&3));
    }

    #[test]
    fn cursor_is_lazy_and_carries_per_query_stats() {
        let ws = Workspace::new(256);
        let mut db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
        for i in 0..60u64 {
            db.insert(i, street((i % 10) as f64 / 10.0, (i / 10) as f64 / 10.0));
        }
        db.finish_loading();
        let all = Rect::new(-1.0, -1.0, 2.0, 2.0);
        let mut cursor = db.query().window(all).run();
        assert_eq!(cursor.stats().candidates, 60);
        assert!(cursor.stats().io_ms > 0.0);
        assert!(cursor.io_stats().read_requests > 0);
        // Streaming: taking a prefix leaves the rest unrefined.
        let first3: Vec<u64> = cursor.by_ref().take(3).map(|(id, _)| id).collect();
        assert_eq!(first3, vec![0, 1, 2]);
        let rest = cursor.count();
        assert_eq!(rest, 57);
    }

    #[test]
    fn per_query_stats_not_cumulative() {
        let ws = Workspace::new(128);
        let mut db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
        for i in 0..40u64 {
            db.insert(i, street((i % 8) as f64 / 8.0, (i / 8) as f64 / 8.0));
        }
        db.finish_loading();
        let w = Rect::new(0.0, 0.0, 0.6, 0.6);
        let first = {
            let c = db.query().window(w).run();
            (c.stats(), c.io_stats())
        };
        // A cold repeat of the same query must report the same per-query
        // cost even though the workspace's cumulative counters grew.
        db.store_mut().begin_query();
        let second = {
            let c = db.query().window(w).run();
            (c.stats(), c.io_stats())
        };
        assert_eq!(first.0, second.0);
        assert_eq!(first.1.read_requests, second.1.read_requests);
        assert_eq!(first.1.io_ms, second.1.io_ms);
        // Cumulative disk stats kept growing past the per-query delta.
        assert!(db.io_stats().read_requests > second.1.read_requests);
    }

    #[test]
    #[should_panic(expected = "already stored")]
    fn duplicate_id_rejected() {
        let ws = Workspace::new(64);
        let db = ws.create_database(DbOptions::new(OrganizationKind::Secondary));
        db.insert(1, street(0.1, 0.1));
        db.insert(1, street(0.2, 0.2));
    }

    #[test]
    #[should_panic(expected = "already stored")]
    fn duplicate_id_via_bulk_load_rejected() {
        let ws = Workspace::new(64);
        let mut db = ws.create_database(DbOptions::new(OrganizationKind::Secondary));
        db.store_mut().bulk_load(&[ObjectRecord::new(
            ObjectId(5),
            Rect::new(0.1, 0.1, 0.2, 0.2),
            640,
        )]);
        db.insert(5, street(0.1, 0.1));
    }

    #[test]
    #[should_panic(expected = "needs .window(..) or .point(..)")]
    fn query_without_target_panics() {
        let ws = Workspace::new(64);
        let db = ws.create_database(DbOptions::new(OrganizationKind::Secondary));
        let _ = db.query().run();
    }

    #[test]
    fn join_of_two_databases() {
        let ws = Workspace::new(512);
        let mut a = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
        let mut b = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
        for i in 0..30u64 {
            a.insert(i, street((i % 6) as f64 / 6.0, (i / 6) as f64 / 6.0));
            // Same layout shifted slightly: many crossings.
            b.insert(
                i,
                street((i % 6) as f64 / 6.0 + 0.005, (i / 6) as f64 / 6.0),
            );
        }
        a.finish_loading();
        b.finish_loading();
        let cursor = a.join(&b).run();
        let stats = cursor.stats();
        let pairs = cursor.pairs();
        assert!(stats.mbr_pairs > 0);
        assert!(!pairs.is_empty());
        assert!(pairs.len() as u64 <= stats.mbr_pairs, "refinement filters");
    }

    #[test]
    fn remove_intermixed_with_queries() {
        let ws = Workspace::new(256);
        let mut db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
        for i in 0..60u64 {
            db.insert(i, street((i % 10) as f64 / 10.0, (i / 10) as f64 / 10.0));
        }
        db.finish_loading();
        assert!(db.remove(5));
        assert!(!db.remove(5));
        let all = Rect::new(-1.0, -1.0, 2.0, 2.0);
        let hits = db.query().window(all).run().ids();
        assert_eq!(hits.len(), 59);
        assert!(!hits.contains(&5));
        // Re-insert under the same id after removal.
        db.insert(5, street(0.9, 0.9));
        assert_eq!(db.query().window(all).run().ids().len(), 60);
    }

    #[test]
    fn io_accounting_visible() {
        let ws = Workspace::new(64);
        let mut db = ws.create_database(DbOptions::new(OrganizationKind::Secondary));
        for i in 0..20u64 {
            db.insert(i, street((i % 5) as f64 / 5.0, (i / 5) as f64 / 5.0));
        }
        db.finish_loading();
        let s = db.io_stats();
        assert!(s.write_requests > 0);
        assert!(db.occupied_pages() > 0);
        assert!(db.occupied_mb() > 0.0);
    }

    #[test]
    fn readers_see_pinned_snapshots_not_later_writes() {
        let ws = Workspace::new(256);
        let mut db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
        for i in 0..40u64 {
            db.insert(i, street((i % 8) as f64 / 8.0, (i / 8) as f64 / 8.0));
        }
        db.finish_loading();
        let all = Rect::new(-1.0, -1.0, 2.0, 2.0);
        // The cursor pins a snapshot at run(); everything it reads —
        // candidates included — comes from that version.
        let cursor = db.query().window(all).run();
        assert_eq!(db.pinned_readers(), 1, "the cursor holds an epoch pin");
        db.insert(100, street(0.5, 0.5));
        assert!(db.remove(7));
        let pinned_ids = cursor.ids();
        assert_eq!(pinned_ids.len(), 40, "snapshot: no 100, still has 7");
        assert!(pinned_ids.contains(&7));
        assert!(!pinned_ids.contains(&100));
        // A fresh query sees the published state.
        let fresh_ids = db.query().window(all).run().ids();
        assert_eq!(fresh_ids.len(), 40);
        assert!(!fresh_ids.contains(&7));
        assert!(fresh_ids.contains(&100));
        assert_eq!(db.pinned_readers(), 0);
    }

    #[test]
    fn readers_never_take_the_writer_gate() {
        let ws = Workspace::new(256);
        let mut db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
        for i in 0..30u64 {
            db.insert(i, street((i % 6) as f64 / 6.0, (i / 6) as f64 / 6.0));
        }
        db.finish_loading();
        // Hold the writer gate for the whole scope — a reader that
        // needed it would deadlock this test instead of finishing.
        let _gate = db.writer.acquire();
        let ids = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    db.query()
                        .window(Rect::new(-1.0, -1.0, 2.0, 2.0))
                        .run()
                        .ids()
                })
                .join()
                .expect("reader panicked")
        });
        assert_eq!(ids.len(), 30, "reader completed under a held writer gate");
    }

    #[test]
    fn superseded_snapshots_are_reclaimed_not_leaked() {
        let ws = Workspace::new(256);
        let db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
        for i in 0..10u64 {
            db.insert(i, street((i % 5) as f64 / 5.0, (i / 5) as f64 / 5.0));
        }
        // With no pins outstanding, each publish's collection pass keeps
        // the retired list within the two-epoch window.
        assert!(
            db.retired_snapshots() <= 2,
            "{} retired snapshots linger without a pin",
            db.retired_snapshots()
        );
        // A pinned reader blocks reclamation…
        let cursor = db.query().window(Rect::new(-1.0, -1.0, 2.0, 2.0)).run();
        for i in 10..20u64 {
            db.insert(i, street((i % 5) as f64 / 5.0, (i / 5) as f64 / 5.0));
        }
        assert!(
            db.retired_snapshots() >= 9,
            "{} retired while a pin blocks the epoch",
            db.retired_snapshots()
        );
        // …and releasing it lets later publishes drain the backlog.
        drop(cursor);
        for i in 20..24u64 {
            db.insert(i, street((i % 5) as f64 / 5.0, (i / 5) as f64 / 5.0));
        }
        assert!(
            db.retired_snapshots() <= 2,
            "{} retired snapshots survive the drained pin",
            db.retired_snapshots()
        );
    }

    #[test]
    fn shared_write_path_charges_identical_io_to_exclusive_path() {
        // The determinism contract: a single writer with no readers
        // charges byte-identical I/O through the shadow-paging (&self)
        // path and through the in-place (&mut, store_mut) path.
        let load = |shadow: bool| {
            let ws = Workspace::new(256);
            let mut db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
            for i in 0..50u64 {
                let g = street((i % 10) as f64 / 10.0, (i / 10) as f64 / 10.0);
                if shadow {
                    db.insert(i, g);
                } else {
                    let geometry: Geometry = g.into();
                    let rec = ObjectRecord::new(
                        ObjectId(i),
                        geometry.mbr(),
                        geometry.serialized_size() as u32,
                    );
                    db.store_mut().insert(&rec);
                    db.extend_geometry(vec![(i, geometry)]);
                }
            }
            for i in (0..50u64).step_by(3) {
                if shadow {
                    assert!(db.remove(i));
                } else {
                    assert!(db.store_mut().delete(ObjectId(i)));
                }
            }
            db.finish_loading();
            let w = Rect::new(0.1, 0.1, 0.7, 0.7);
            let cursor = db.query().window(w).run();
            (db.io_stats(), cursor.stats(), cursor.ids())
        };
        let (io_shadow, stats_shadow, ids_shadow) = load(true);
        let (io_excl, stats_excl, ids_excl) = load(false);
        assert_eq!(io_shadow, io_excl, "cumulative I/O must be byte-identical");
        assert_eq!(stats_shadow, stats_excl);
        assert_eq!(ids_shadow, ids_excl);
    }

    #[test]
    fn concurrent_writers_and_readers_conserve_objects() {
        let ws = Workspace::from_config(EngineConfig::default().buffer_pages(512).shards(8));
        let db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
        for i in 0..200u64 {
            db.insert(i, street((i % 20) as f64 / 20.0, (i / 20) as f64 / 20.0));
        }
        let all = Rect::new(-1.0, -1.0, 2.0, 2.0);
        std::thread::scope(|scope| {
            // Two writers: one inserting fresh ids, one removing evens.
            scope.spawn(|| {
                for i in 200..260u64 {
                    db.insert(i, street((i % 20) as f64 / 20.0, 0.95));
                }
            });
            scope.spawn(|| {
                for i in (0..120u64).step_by(2) {
                    assert!(db.remove(i), "id {i} vanished without a remove");
                }
            });
            // Four readers: every observed result set is a consistent
            // snapshot — between 200-60 and 200+60 objects, never torn.
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..30 {
                        let n = db.query().window(all).run().ids().len();
                        assert!((140..=260).contains(&n), "torn read: {n} objects");
                    }
                });
            }
        });
        assert_eq!(db.len(), 200 - 60 + 60);
        let ids = db.query().window(all).run().ids();
        assert_eq!(ids.len(), 200);
        assert!(!ids.contains(&0) && ids.contains(&1) && ids.contains(&259));
    }

    #[test]
    fn custom_store_backs_a_database() {
        let ws = Workspace::new(64);
        let store = MemoryStore::new(ws.disk(), ws.pool());
        let mut db = ws.create_database_with(Box::new(store));
        assert_eq!(db.store_name(), "memory");
        for i in 0..20u64 {
            db.insert(i, street((i % 5) as f64 / 5.0, (i / 5) as f64 / 5.0));
        }
        db.finish_loading();
        let hits = db.query().window(Rect::new(0.0, 0.0, 1.0, 1.0)).run();
        assert_eq!(hits.stats().io_ms, 0.0, "memory store charges no I/O");
        assert_eq!(hits.ids().len(), 20);
    }
}

//! The user-facing database API.
//!
//! A [`Workspace`] models one machine (simulated disk + shared buffer
//! pool); databases created in the same workspace can be joined against
//! each other. [`SpatialDatabase`] pairs a pluggable
//! [`SpatialStore`] backend with the exact [`Geometry`] of every object,
//! kept in memory for the *refinement* step — so queries return exact
//! answers while all I/O is charged to the simulated disk exactly as the
//! paper's cost model prescribes.
//!
//! Queries go through the streaming builder: see
//! [`SpatialDatabase::query`] and [`SpatialDatabase::join`]. The store
//! stack is `Send + Sync` with a `&self` read path, so queries and joins
//! borrow the database immutably — any number of threads may query one
//! database concurrently, and the parallel executor
//! ([`crate::executor`]) fans batches across a scoped thread pool —
//! while updates keep `&mut self`.

use crate::config::{ConfigError, EngineConfig};
use crate::executor::ExecPlan;
use crate::query::{JoinQuery, Query};
use spatialdb_disk::Routing;
use spatialdb_disk::{Disk, DiskHandle, DiskParams, IoStats, StripePolicy, PAGE_SIZE};
use spatialdb_geom::{Geometry, HasMbr};
use spatialdb_rtree::ObjectId;
use spatialdb_storage::{
    new_shared_pool_with_routing, ClusterConfig, ClusterOrganization, ObjectRecord,
    OrganizationKind, PrimaryOrganization, SecondaryOrganization, SharedPool, SpatialStore,
    WindowTechnique,
};
use std::collections::HashMap;

/// Options for creating a [`SpatialDatabase`] backed by one of the
/// paper's organization models.
#[derive(Clone, Debug)]
pub struct DbOptions {
    /// Which organization model stores the objects.
    pub organization: OrganizationKind,
    /// `Smax` in bytes (cluster organization only). Default 80 KB, the
    /// paper's series-A value.
    pub smax_bytes: u64,
    /// Use the restricted buddy system (§5.3.1) instead of full-`Smax`
    /// units (cluster organization only).
    pub restricted_buddy: bool,
    /// Window-query technique (cluster organization only).
    pub technique: WindowTechnique,
}

impl DbOptions {
    /// Defaults for the given organization model.
    pub fn new(organization: OrganizationKind) -> Self {
        DbOptions {
            organization,
            smax_bytes: 80 * 1024,
            restricted_buddy: false,
            technique: WindowTechnique::Slm,
        }
    }

    /// Set `Smax`.
    pub fn smax_bytes(mut self, bytes: u64) -> Self {
        self.smax_bytes = bytes;
        self
    }

    /// Enable the restricted buddy system.
    pub fn restricted_buddy(mut self, on: bool) -> Self {
        self.restricted_buddy = on;
        self
    }

    /// Set the window-query technique.
    pub fn technique(mut self, t: WindowTechnique) -> Self {
        self.technique = t;
        self
    }
}

/// One simulated machine: a disk and a shared buffer pool.
#[derive(Debug)]
pub struct Workspace {
    disk: DiskHandle,
    pool: SharedPool,
}

impl Workspace {
    /// Create a workspace with the paper's disk parameters and a buffer
    /// of `buffer_pages` pages (a single-shard pool — the deterministic
    /// configuration). Every other knob of the machine goes through
    /// [`from_config`](Workspace::from_config).
    pub fn new(buffer_pages: usize) -> Self {
        Self::from_config(EngineConfig::default().buffer_pages(buffer_pages))
    }

    /// Create a workspace with explicit disk parameters and a
    /// single-shard pool.
    pub fn with_params(params: DiskParams, buffer_pages: usize) -> Self {
        Self::from_config(
            EngineConfig::default()
                .params(params)
                .buffer_pages(buffer_pages),
        )
    }

    /// Build the machine an [`EngineConfig`] describes — the one entry
    /// point for every configuration knob (buffer capacity, pool
    /// sharding and routing, disk-arm array, adaptive quotas):
    ///
    /// ```
    /// use spatialdb::{EngineConfig, Routing, StripePolicy, Workspace};
    ///
    /// let ws = Workspace::from_config(
    ///     EngineConfig::default()
    ///         .buffer_pages(1024)
    ///         .shards(8)
    ///         .routing(Routing::ByRegion)
    ///         .arms(4, StripePolicy::RoundRobin),
    /// );
    /// # let _ = ws;
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid
    /// ([`EngineConfig::validate`]); use
    /// [`try_from_config`](Workspace::try_from_config) to handle the
    /// error instead.
    pub fn from_config(config: EngineConfig) -> Self {
        match Self::try_from_config(config) {
            Ok(ws) => ws,
            Err(e) => panic!("invalid EngineConfig: {e}"),
        }
    }

    /// Fallible [`from_config`](Workspace::from_config): returns the
    /// [`ConfigError`] naming the rejected knob combination instead of
    /// panicking.
    pub fn try_from_config(config: EngineConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let disk = Disk::new(config.params);
        let pool = new_shared_pool_with_routing(
            disk.clone(),
            config.buffer_pages,
            config.shards,
            config.routing,
        );
        let ws = Workspace { disk, pool };
        if config.arms > 1 {
            ws.apply_arms(config.arms, config.stripe);
        }
        if config.adaptive_shards {
            ws.pool.set_adaptive(true);
        }
        Ok(ws)
    }

    /// Create a workspace whose buffer pool is split across `shards`
    /// page-hash shards under the one `buffer_pages` budget.
    #[deprecated(
        since = "0.1.0",
        note = "use Workspace::from_config(EngineConfig::default()\
                .buffer_pages(..).shards(..))"
    )]
    pub fn with_shards(buffer_pages: usize, shards: usize) -> Self {
        Self::from_config(
            EngineConfig::default()
                .buffer_pages(buffer_pages)
                .shards(shards),
        )
    }

    /// Create a workspace with explicit disk parameters and shard count.
    #[deprecated(
        since = "0.1.0",
        note = "use Workspace::from_config(EngineConfig::default()\
                .params(..).buffer_pages(..).shards(..))"
    )]
    pub fn with_params_sharded(params: DiskParams, buffer_pages: usize, shards: usize) -> Self {
        Self::from_config(
            EngineConfig::default()
                .params(params)
                .buffer_pages(buffer_pages)
                .shards(shards),
        )
    }

    /// Create a sharded workspace with an explicit shard
    /// [`Routing`] mode.
    #[deprecated(
        since = "0.1.0",
        note = "use Workspace::from_config(EngineConfig::default()\
                .buffer_pages(..).shards(..).routing(..))"
    )]
    pub fn with_shard_routing(buffer_pages: usize, shards: usize, routing: Routing) -> Self {
        Self::from_config(
            EngineConfig::default()
                .buffer_pages(buffer_pages)
                .shards(shards)
                .routing(routing),
        )
    }

    /// Reconfigure the simulated disk as an `arms`-way array whose
    /// regions are declustered by `stripe` (see [`StripePolicy`]).
    ///
    /// # Panics
    ///
    /// Panics if requests are still pending on the current array.
    #[deprecated(
        since = "0.1.0",
        note = "use Workspace::from_config(EngineConfig::default().arms(..))"
    )]
    pub fn configure_arms(&self, arms: usize, stripe: StripePolicy) {
        self.apply_arms(arms, stripe);
    }

    /// Shape the disk as an `arms`-way array and keep the buffer
    /// pool's shard routing aligned with the new arm assignment: under
    /// `Routing::ByRegion` with multiple shards, each shard's miss
    /// stream then feeds exactly one arm (see
    /// `ShardedPool::set_arm_affinity`; dormant in other modes).
    fn apply_arms(&self, arms: usize, stripe: StripePolicy) {
        self.disk.configure_arms(arms, stripe);
        self.pool.set_arm_affinity(arms, stripe);
    }

    /// Enable (or disable) adaptive shard quotas on the buffer pool.
    #[deprecated(
        since = "0.1.0",
        note = "use Workspace::from_config(EngineConfig::default()\
                .adaptive_shards(true))"
    )]
    pub fn set_adaptive_shards(&self, on: bool) {
        self.pool.set_adaptive(on);
    }

    /// The simulated disk.
    pub fn disk(&self) -> DiskHandle {
        self.disk.clone()
    }

    /// The shared buffer pool.
    pub fn pool(&self) -> SharedPool {
        self.pool.clone()
    }

    /// Create a database backed by one of the paper's organization
    /// models.
    pub fn create_database(&self, options: DbOptions) -> SpatialDatabase {
        let store: Box<dyn SpatialStore> = match options.organization {
            OrganizationKind::Secondary => Box::new(SecondaryOrganization::new(
                self.disk.clone(),
                self.pool.clone(),
            )),
            OrganizationKind::Primary => Box::new(PrimaryOrganization::new(
                self.disk.clone(),
                self.pool.clone(),
            )),
            OrganizationKind::Cluster => {
                let config = if options.restricted_buddy {
                    ClusterConfig::restricted_buddy(options.smax_bytes)
                } else {
                    ClusterConfig::plain(options.smax_bytes)
                };
                Box::new(ClusterOrganization::new(
                    self.disk.clone(),
                    self.pool.clone(),
                    config,
                ))
            }
        };
        SpatialDatabase {
            store,
            technique: options.technique,
            geometry: HashMap::new(),
        }
    }

    /// Every batch entry point shares this membership check: a query's
    /// store must be built on this workspace's disk.
    fn assert_same_workspace(&self, queries: &[Query<'_>]) {
        for (i, q) in queries.iter().enumerate() {
            assert!(
                std::sync::Arc::ptr_eq(&q.db.store.disk(), &self.disk),
                "query {i} targets a database of another workspace"
            );
        }
    }

    /// Execute a batch of independent window/point queries under an
    /// [`ExecPlan`] — the one batch entry point.
    ///
    /// Build the queries with [`SpatialDatabase::query`] (without calling
    /// `run`) and hand them over; they may target different databases of
    /// **this workspace**. A bare thread count (as below) is the
    /// serialized deterministic plan: the filter steps are issued in
    /// submission order against the workspace's single simulated disk —
    /// see the [`executor`](crate::executor) module docs for why that
    /// keeps every per-query and aggregate statistic **identical to
    /// sequential execution**, at any thread count — while the
    /// exact-geometry refinement runs on the thread pool.
    /// `ExecPlan::threads(k).overlapped()` fans the filter steps across
    /// the workers too (built for sharded pools), and
    /// `ExecPlan::threads(k).timed(OverlapConfig)` replays the filter
    /// I/O through the disk-arm scheduler, attaching per-query
    /// [`LatencyStats`](spatialdb_disk::LatencyStats) to the outcomes.
    /// (For a batch spanning several workspaces, call
    /// [`executor::run_batch`](crate::executor::run_batch) directly.)
    ///
    /// ```
    /// # use spatialdb::{DbOptions, OrganizationKind, Workspace};
    /// # use spatialdb::geom::{Point, Polyline, Rect};
    /// # let ws = Workspace::new(256);
    /// # let mut db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
    /// # for i in 0..32u64 {
    /// #     let x = (i % 8) as f64 / 8.0;
    /// #     db.insert(i, Polyline::new(vec![Point::new(x, 0.1), Point::new(x + 0.05, 0.15)]));
    /// # }
    /// # db.finish_loading();
    /// let batch = ws.run_batch(
    ///     vec![
    ///         db.query().window(Rect::new(0.0, 0.0, 0.5, 0.5)),
    ///         db.query().window(Rect::new(0.5, 0.0, 1.0, 0.5)),
    ///         db.query().point(Point::new(0.1, 0.1)),
    ///     ],
    ///     8,
    /// );
    /// assert_eq!(batch.len(), 3);
    /// let total = batch.aggregate_stats();
    /// # let _ = total;
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if a query targets a database of another workspace (its
    /// store is not built on this workspace's disk).
    pub fn run_batch(
        &self,
        queries: Vec<Query<'_>>,
        plan: impl Into<ExecPlan>,
    ) -> crate::executor::BatchOutcome {
        self.assert_same_workspace(&queries);
        crate::executor::run_batch(queries, plan)
    }

    /// Execute a batch with the **filter steps overlapped** across the
    /// worker pool as well (see
    /// [`FilterMode::Overlapped`](crate::executor::FilterMode)).
    #[deprecated(
        since = "0.1.0",
        note = "use run_batch(queries, ExecPlan::threads(n).overlapped())"
    )]
    pub fn run_batch_overlapped(
        &self,
        queries: Vec<Query<'_>>,
        n_threads: usize,
    ) -> crate::executor::BatchOutcome {
        self.run_batch(queries, ExecPlan::threads(n_threads).overlapped())
    }

    /// Execute a batch under the **overlapped-I/O scheduler**
    /// ([`FilterMode::OverlappedIo`](crate::executor::FilterMode)).
    #[deprecated(
        since = "0.1.0",
        note = "use run_batch(queries, ExecPlan::threads(n).timed(config))"
    )]
    pub fn run_batch_timed(
        &self,
        queries: Vec<Query<'_>>,
        n_threads: usize,
        config: crate::executor::OverlapConfig,
    ) -> crate::executor::BatchOutcome {
        self.run_batch(queries, ExecPlan::threads(n_threads).timed(config))
    }

    /// STR-bulk-load `objects` into the empty database `db`, fanning
    /// the sort and tile stages across `threads` scoped worker threads
    /// (see [`crate::bulkload`]).
    ///
    /// The resulting database — tree structure, physical placement,
    /// every query answer — is **identical at every thread count**, and
    /// with `threads == 1` the charged I/O is byte-identical to the
    /// sequential [`SpatialDatabase::bulk_load`]. Compared to inserting
    /// the objects one by one, the packed build charges strictly less
    /// simulated I/O and yields data pages filled at the configured
    /// fill factor instead of insertion's ~70 %.
    ///
    /// # Panics
    ///
    /// Panics if `db` belongs to another workspace, is non-empty, or an
    /// object id repeats.
    pub fn bulk_load_par(
        &self,
        db: &mut SpatialDatabase,
        objects: Vec<(u64, Geometry)>,
        threads: usize,
    ) {
        assert!(
            std::sync::Arc::ptr_eq(&db.store.disk(), &self.disk),
            "database belongs to another workspace"
        );
        let records = db.records_for_bulk(&objects);
        crate::bulkload::bulk_load_records_par(db.store.as_mut(), &records, threads);
        db.geometry.extend(objects);
    }

    /// Create a database on a caller-supplied [`SpatialStore`] backend —
    /// the extension point for organizations beyond the paper's three.
    ///
    /// The store should be built on this workspace's
    /// [`disk`](Workspace::disk) and [`pool`](Workspace::pool) so it can
    /// take part in joins. Note the trait's one structural requirement:
    /// every backend embeds an R\*-tree over the object MBRs as its
    /// filter index (see the `spatialdb_storage::store` docs) — what a
    /// backend is free to reinvent is the layout of the exact
    /// representations.
    ///
    /// ```
    /// use spatialdb::storage::{
    ///     MemoryStore, ObjectRecord, QueryStats, SharedPool, SpatialStore, WindowTechnique,
    /// };
    /// use spatialdb::geom::{Point, Polyline, Rect};
    /// use spatialdb::rtree::{ObjectId, RStarTree};
    /// use spatialdb::disk::DiskHandle;
    /// use spatialdb::Workspace;
    ///
    /// /// A custom backend: here it simply wraps the in-memory baseline,
    /// /// but any from-scratch organization implements the same trait.
    /// struct GridFileStore(MemoryStore);
    ///
    /// impl SpatialStore for GridFileStore {
    ///     fn name(&self) -> &'static str {
    ///         "grid file"
    ///     }
    ///     fn insert(&mut self, rec: &ObjectRecord) {
    ///         self.0.insert(rec)
    ///     }
    ///     fn delete(&mut self, oid: ObjectId) -> bool {
    ///         self.0.delete(oid)
    ///     }
    ///     fn window_query(&self, w: &Rect, t: WindowTechnique) -> QueryStats {
    ///         self.0.window_query(w, t)
    ///     }
    ///     fn point_query(&self, p: &Point) -> QueryStats {
    ///         self.0.point_query(p)
    ///     }
    ///     fn fetch_object(&self, oid: ObjectId) {
    ///         self.0.fetch_object(oid)
    ///     }
    ///     fn occupied_pages(&self) -> u64 {
    ///         self.0.occupied_pages()
    ///     }
    ///     fn num_objects(&self) -> usize {
    ///         self.0.num_objects()
    ///     }
    ///     fn contains(&self, oid: ObjectId) -> bool {
    ///         self.0.contains(oid)
    ///     }
    ///     fn disk(&self) -> DiskHandle {
    ///         self.0.disk()
    ///     }
    ///     fn pool(&self) -> SharedPool {
    ///         self.0.pool()
    ///     }
    ///     fn tree(&self) -> &RStarTree {
    ///         self.0.tree()
    ///     }
    ///     fn flush(&mut self) {
    ///         self.0.flush()
    ///     }
    ///     fn begin_query(&mut self) {
    ///         self.0.begin_query()
    ///     }
    ///     fn object_size(&self, oid: ObjectId) -> u32 {
    ///         self.0.object_size(oid)
    ///     }
    /// }
    ///
    /// // Register the custom store and use it like any other database.
    /// let ws = Workspace::new(128);
    /// let store = GridFileStore(MemoryStore::new(ws.disk(), ws.pool()));
    /// let mut db = ws.create_database_with(Box::new(store));
    /// db.insert(7, Polyline::new(vec![Point::new(0.1, 0.1), Point::new(0.2, 0.2)]));
    /// db.finish_loading();
    /// let ids = db.query().window(Rect::new(0.0, 0.0, 1.0, 1.0)).run().ids();
    /// assert_eq!(ids, vec![7]);
    /// assert_eq!(db.store_name(), "grid file");
    /// ```
    pub fn create_database_with(&self, store: Box<dyn SpatialStore>) -> SpatialDatabase {
        SpatialDatabase {
            store,
            technique: WindowTechnique::Slm,
            geometry: HashMap::new(),
        }
    }
}

/// A spatial database: a pluggable storage backend plus the exact
/// geometry used for query refinement.
pub struct SpatialDatabase {
    pub(crate) store: Box<dyn SpatialStore>,
    pub(crate) technique: WindowTechnique,
    pub(crate) geometry: HashMap<u64, Geometry>,
}

impl std::fmt::Debug for SpatialDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The store is a trait object; identify it by its backend name.
        f.debug_struct("SpatialDatabase")
            .field("store", &self.store.name())
            .field("technique", &self.technique)
            .field("objects", &self.geometry.len())
            .finish()
    }
}

impl SpatialDatabase {
    /// Insert an object under `id`. Accepts anything convertible into a
    /// [`Geometry`]: a `Point`, a `Polyline` (stored decomposed), or a
    /// `Polygon`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already present.
    pub fn insert(&mut self, id: u64, geometry: impl Into<Geometry>) {
        // Ask the store, not just the geometry map: ids bulk-loaded
        // directly into the backend (filter-only records) must also be
        // rejected, or the index would hold duplicate entries.
        assert!(
            !self.store.contains(ObjectId(id)),
            "object {id} already stored"
        );
        let geometry = geometry.into();
        let rec = ObjectRecord::new(
            ObjectId(id),
            geometry.mbr(),
            geometry.serialized_size() as u32,
        );
        self.store.insert(&rec);
        self.geometry.insert(id, geometry);
    }

    /// Bulk-load `objects` into this (empty) database with the
    /// sequential sort-tile-recursive build
    /// ([`SpatialStore::bulk_load_str`]): the R\*-tree is packed
    /// bottom-up at the configured fill factor and the exact
    /// representations are placed in tile order, charging strictly less
    /// simulated I/O than the same objects inserted one by one. For the
    /// parallel variant see [`Workspace::bulk_load_par`], which produces
    /// a byte-identical database.
    ///
    /// # Panics
    ///
    /// Panics if the database is non-empty or an object id repeats.
    pub fn bulk_load(&mut self, objects: Vec<(u64, impl Into<Geometry>)>) {
        let objects: Vec<(u64, Geometry)> =
            objects.into_iter().map(|(id, g)| (id, g.into())).collect();
        let records = self.records_for_bulk(&objects);
        self.store.bulk_load_str(&records);
        self.geometry.extend(objects);
    }

    /// Shared precondition checks + record conversion for the bulk-load
    /// entry points.
    pub(crate) fn records_for_bulk(&self, objects: &[(u64, Geometry)]) -> Vec<ObjectRecord> {
        let mut seen = std::collections::HashSet::with_capacity(objects.len());
        objects
            .iter()
            .map(|(id, geometry)| {
                assert!(
                    !self.store.contains(ObjectId(*id)) && seen.insert(*id),
                    "object {id} already stored"
                );
                ObjectRecord::new(
                    ObjectId(*id),
                    geometry.mbr(),
                    geometry.serialized_size() as u32,
                )
            })
            .collect()
    }

    /// Delete an object. Returns `false` when `id` was not stored.
    /// Insertions and deletions can be intermixed with queries without
    /// any global reorganization (§4.1 of the paper).
    pub fn remove(&mut self, id: u64) -> bool {
        let removed = self.store.delete(ObjectId(id));
        if removed {
            self.geometry.remove(&id);
        }
        removed
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.store.num_objects()
    }

    /// `true` if the database is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Start building a query. Finish with
    /// [`run`](crate::query::Query::run) to obtain a lazy
    /// [`ResultCursor`](crate::query::ResultCursor):
    ///
    /// ```no_run
    /// # use spatialdb::{DbOptions, OrganizationKind, Workspace};
    /// # use spatialdb::geom::{HasMbr, Rect};
    /// # use spatialdb::storage::WindowTechnique;
    /// # let ws = Workspace::new(64);
    /// # let mut db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
    /// for (id, geometry) in db
    ///     .query()
    ///     .window(Rect::new(0.0, 0.0, 0.25, 0.25))
    ///     .technique(WindowTechnique::Slm)
    ///     .run()
    /// {
    ///     println!("{id}: {:?}", geometry.mbr());
    /// }
    /// ```
    pub fn query(&self) -> Query<'_> {
        Query::new(self)
    }

    /// Start building an intersection join against `other` (same
    /// workspace). Finish with [`run`](crate::query::JoinQuery::run) to
    /// obtain a lazy [`JoinCursor`](crate::query::JoinCursor), or with
    /// [`run_par`](crate::query::JoinQuery::run_par) to partition the
    /// MBR phase across threads.
    pub fn join<'a>(&'a self, other: &'a SpatialDatabase) -> JoinQuery<'a> {
        JoinQuery::new(self, other)
    }

    /// Accumulated I/O statistics of the workspace disk — cumulative
    /// over everything that ran on this machine. The cost of a single
    /// query is on its cursor
    /// ([`ResultCursor::io_stats`](crate::query::ResultCursor::io_stats)).
    pub fn io_stats(&self) -> IoStats {
        self.store.disk().stats()
    }

    /// Total pages occupied on the simulated disk.
    pub fn occupied_pages(&self) -> u64 {
        self.store.occupied_pages()
    }

    /// Occupied storage in megabytes.
    pub fn occupied_mb(&self) -> f64 {
        (self.occupied_pages() * PAGE_SIZE as u64) as f64 / (1024.0 * 1024.0)
    }

    /// Write back dirty pages and prepare for cold queries.
    pub fn finish_loading(&mut self) {
        self.store.flush();
        self.store.begin_query();
    }

    /// The storage backend (diagnostics, experiments).
    pub fn store(&self) -> &dyn SpatialStore {
        self.store.as_ref()
    }

    /// Mutable access to the storage backend.
    pub fn store_mut(&mut self) -> &mut dyn SpatialStore {
        self.store.as_mut()
    }

    /// Short name of the storage backend ("cluster org.", "memory", …).
    pub fn store_name(&self) -> &'static str {
        self.store.name()
    }

    /// The exact geometry of an object, if stored.
    ///
    /// Consults the store first, so an object deleted through
    /// [`store_mut`](SpatialDatabase::store_mut) (bypassing
    /// [`remove`](SpatialDatabase::remove)) does not surface a stale
    /// geometry.
    pub fn geometry(&self, id: u64) -> Option<&Geometry> {
        if self.store.contains(ObjectId(id)) {
            self.geometry.get(&id)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatialdb_geom::{Point, Polygon, Polyline, Rect};
    use spatialdb_storage::MemoryStore;

    fn street(x: f64, y: f64) -> Polyline {
        Polyline::new(vec![
            Point::new(x, y),
            Point::new(x + 0.01, y + 0.005),
            Point::new(x + 0.02, y),
        ])
    }

    #[test]
    fn insert_and_query_all_kinds() {
        for kind in [
            OrganizationKind::Secondary,
            OrganizationKind::Primary,
            OrganizationKind::Cluster,
        ] {
            let ws = Workspace::new(256);
            let mut db = ws.create_database(DbOptions::new(kind));
            for i in 0..50u64 {
                db.insert(i, street((i % 10) as f64 / 10.0, (i / 10) as f64 / 10.0));
            }
            db.finish_loading();
            assert_eq!(db.len(), 50);
            let window = Rect::new(0.0, 0.0, 0.25, 0.25);
            let hits: Vec<(u64, bool)> = db
                .query()
                .window(window)
                .run()
                .map(|(id, g)| (id, g.intersects_rect(&window)))
                .collect();
            assert!(!hits.is_empty(), "{kind:?}");
            // Exact refinement: every reported object really intersects.
            assert!(hits.iter().all(|(_, ok)| *ok), "{kind:?}");
        }
    }

    #[test]
    fn point_query_exact() {
        let ws = Workspace::new(256);
        let mut db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
        db.insert(7, street(0.5, 0.5));
        db.finish_loading();
        // On the first vertex.
        assert_eq!(db.query().point(Point::new(0.5, 0.5)).run().ids(), vec![7]);
        // Inside the MBR but off the line.
        assert!(db
            .query()
            .point(Point::new(0.505, 0.0049))
            .run()
            .ids()
            .is_empty());
    }

    #[test]
    fn mixed_geometry_kinds_queryable() {
        let ws = Workspace::new(256);
        let mut db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
        db.insert(1, Point::new(0.5, 0.5));
        db.insert(2, street(0.45, 0.5));
        db.insert(
            3,
            Polygon::new(vec![
                Point::new(0.45, 0.45),
                Point::new(0.55, 0.45),
                Point::new(0.55, 0.55),
                Point::new(0.45, 0.55),
            ]),
        );
        db.insert(4, Point::new(0.9, 0.9));
        db.finish_loading();
        let hits = db
            .query()
            .window(Rect::new(0.44, 0.44, 0.56, 0.56))
            .run()
            .ids();
        assert_eq!(hits, vec![1, 2, 3]);
        // The polygon contains the point; the polyline passes through it.
        let through = db.query().point(Point::new(0.5, 0.5)).run().ids();
        assert!(through.contains(&1));
        assert!(through.contains(&3));
    }

    #[test]
    fn cursor_is_lazy_and_carries_per_query_stats() {
        let ws = Workspace::new(256);
        let mut db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
        for i in 0..60u64 {
            db.insert(i, street((i % 10) as f64 / 10.0, (i / 10) as f64 / 10.0));
        }
        db.finish_loading();
        let all = Rect::new(-1.0, -1.0, 2.0, 2.0);
        let mut cursor = db.query().window(all).run();
        assert_eq!(cursor.stats().candidates, 60);
        assert!(cursor.stats().io_ms > 0.0);
        assert!(cursor.io_stats().read_requests > 0);
        // Streaming: taking a prefix leaves the rest unrefined.
        let first3: Vec<u64> = cursor.by_ref().take(3).map(|(id, _)| id).collect();
        assert_eq!(first3, vec![0, 1, 2]);
        let rest = cursor.count();
        assert_eq!(rest, 57);
    }

    #[test]
    fn per_query_stats_not_cumulative() {
        let ws = Workspace::new(128);
        let mut db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
        for i in 0..40u64 {
            db.insert(i, street((i % 8) as f64 / 8.0, (i / 8) as f64 / 8.0));
        }
        db.finish_loading();
        let w = Rect::new(0.0, 0.0, 0.6, 0.6);
        let first = {
            let c = db.query().window(w).run();
            (c.stats(), c.io_stats())
        };
        // A cold repeat of the same query must report the same per-query
        // cost even though the workspace's cumulative counters grew.
        db.store_mut().begin_query();
        let second = {
            let c = db.query().window(w).run();
            (c.stats(), c.io_stats())
        };
        assert_eq!(first.0, second.0);
        assert_eq!(first.1.read_requests, second.1.read_requests);
        assert_eq!(first.1.io_ms, second.1.io_ms);
        // Cumulative disk stats kept growing past the per-query delta.
        assert!(db.io_stats().read_requests > second.1.read_requests);
    }

    #[test]
    #[should_panic(expected = "already stored")]
    fn duplicate_id_rejected() {
        let ws = Workspace::new(64);
        let mut db = ws.create_database(DbOptions::new(OrganizationKind::Secondary));
        db.insert(1, street(0.1, 0.1));
        db.insert(1, street(0.2, 0.2));
    }

    #[test]
    #[should_panic(expected = "already stored")]
    fn duplicate_id_via_bulk_load_rejected() {
        let ws = Workspace::new(64);
        let mut db = ws.create_database(DbOptions::new(OrganizationKind::Secondary));
        db.store_mut().bulk_load(&[ObjectRecord::new(
            ObjectId(5),
            Rect::new(0.1, 0.1, 0.2, 0.2),
            640,
        )]);
        db.insert(5, street(0.1, 0.1));
    }

    #[test]
    #[should_panic(expected = "needs .window(..) or .point(..)")]
    fn query_without_target_panics() {
        let ws = Workspace::new(64);
        let db = ws.create_database(DbOptions::new(OrganizationKind::Secondary));
        let _ = db.query().run();
    }

    #[test]
    fn join_of_two_databases() {
        let ws = Workspace::new(512);
        let mut a = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
        let mut b = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
        for i in 0..30u64 {
            a.insert(i, street((i % 6) as f64 / 6.0, (i / 6) as f64 / 6.0));
            // Same layout shifted slightly: many crossings.
            b.insert(
                i,
                street((i % 6) as f64 / 6.0 + 0.005, (i / 6) as f64 / 6.0),
            );
        }
        a.finish_loading();
        b.finish_loading();
        let cursor = a.join(&b).run();
        let stats = cursor.stats();
        let pairs = cursor.pairs();
        assert!(stats.mbr_pairs > 0);
        assert!(!pairs.is_empty());
        assert!(pairs.len() as u64 <= stats.mbr_pairs, "refinement filters");
    }

    #[test]
    fn remove_intermixed_with_queries() {
        let ws = Workspace::new(256);
        let mut db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
        for i in 0..60u64 {
            db.insert(i, street((i % 10) as f64 / 10.0, (i / 10) as f64 / 10.0));
        }
        db.finish_loading();
        assert!(db.remove(5));
        assert!(!db.remove(5));
        let all = Rect::new(-1.0, -1.0, 2.0, 2.0);
        let hits = db.query().window(all).run().ids();
        assert_eq!(hits.len(), 59);
        assert!(!hits.contains(&5));
        // Re-insert under the same id after removal.
        db.insert(5, street(0.9, 0.9));
        assert_eq!(db.query().window(all).run().ids().len(), 60);
    }

    #[test]
    fn io_accounting_visible() {
        let ws = Workspace::new(64);
        let mut db = ws.create_database(DbOptions::new(OrganizationKind::Secondary));
        for i in 0..20u64 {
            db.insert(i, street((i % 5) as f64 / 5.0, (i / 5) as f64 / 5.0));
        }
        db.finish_loading();
        let s = db.io_stats();
        assert!(s.write_requests > 0);
        assert!(db.occupied_pages() > 0);
        assert!(db.occupied_mb() > 0.0);
    }

    #[test]
    fn custom_store_backs_a_database() {
        let ws = Workspace::new(64);
        let store = MemoryStore::new(ws.disk(), ws.pool());
        let mut db = ws.create_database_with(Box::new(store));
        assert_eq!(db.store_name(), "memory");
        for i in 0..20u64 {
            db.insert(i, street((i % 5) as f64 / 5.0, (i / 5) as f64 / 5.0));
        }
        db.finish_loading();
        let hits = db.query().window(Rect::new(0.0, 0.0, 1.0, 1.0)).run();
        assert_eq!(hits.stats().io_ms, 0.0, "memory store charges no I/O");
        assert_eq!(hits.ids().len(), 20);
    }
}

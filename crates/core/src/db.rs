//! The user-facing database API.
//!
//! A [`Workspace`] models one machine (simulated disk + shared buffer
//! pool); databases created in the same workspace can be joined against
//! each other. [`SpatialDatabase`] wraps an organization model and keeps
//! the exact geometry in memory for the *refinement* step, so queries
//! return exact answers while all I/O is charged to the simulated disk
//! exactly as the paper's cost model prescribes.

use spatialdb_disk::{Disk, DiskHandle, DiskParams, IoStats, PAGE_SIZE};
use spatialdb_geom::{DecomposedPolyline, HasMbr, Point, Polyline, Rect};
use spatialdb_join::{JoinConfig, JoinStats, SpatialJoin};
use spatialdb_rtree::ObjectId;
use spatialdb_storage::{
    new_shared_pool, ClusterConfig, ClusterOrganization, ObjectRecord, Organization,
    OrganizationKind, OrganizationModel, PrimaryOrganization, QueryStats, SecondaryOrganization,
    SharedPool, WindowTechnique,
};
use std::collections::HashMap;

/// Options for creating a [`SpatialDatabase`].
#[derive(Clone, Debug)]
pub struct DbOptions {
    /// Which organization model stores the objects.
    pub organization: OrganizationKind,
    /// `Smax` in bytes (cluster organization only). Default 80 KB, the
    /// paper's series-A value.
    pub smax_bytes: u64,
    /// Use the restricted buddy system (§5.3.1) instead of full-`Smax`
    /// units (cluster organization only).
    pub restricted_buddy: bool,
    /// Window-query technique (cluster organization only).
    pub technique: WindowTechnique,
}

impl DbOptions {
    /// Defaults for the given organization model.
    pub fn new(organization: OrganizationKind) -> Self {
        DbOptions {
            organization,
            smax_bytes: 80 * 1024,
            restricted_buddy: false,
            technique: WindowTechnique::Slm,
        }
    }

    /// Set `Smax`.
    pub fn smax_bytes(mut self, bytes: u64) -> Self {
        self.smax_bytes = bytes;
        self
    }

    /// Enable the restricted buddy system.
    pub fn restricted_buddy(mut self, on: bool) -> Self {
        self.restricted_buddy = on;
        self
    }

    /// Set the window-query technique.
    pub fn technique(mut self, t: WindowTechnique) -> Self {
        self.technique = t;
        self
    }
}

/// One simulated machine: a disk and a shared buffer pool.
pub struct Workspace {
    disk: DiskHandle,
    pool: SharedPool,
}

impl Workspace {
    /// Create a workspace with the paper's disk parameters and a buffer
    /// of `buffer_pages` pages.
    pub fn new(buffer_pages: usize) -> Self {
        Self::with_params(DiskParams::default(), buffer_pages)
    }

    /// Create a workspace with explicit disk parameters.
    pub fn with_params(params: DiskParams, buffer_pages: usize) -> Self {
        let disk = Disk::new(params);
        let pool = new_shared_pool(disk.clone(), buffer_pages);
        Workspace { disk, pool }
    }

    /// The simulated disk.
    pub fn disk(&self) -> DiskHandle {
        self.disk.clone()
    }

    /// The shared buffer pool.
    pub fn pool(&self) -> SharedPool {
        self.pool.clone()
    }

    /// Create a database in this workspace.
    pub fn create_database(&self, options: DbOptions) -> SpatialDatabase {
        let org = match options.organization {
            OrganizationKind::Secondary => Organization::Secondary(SecondaryOrganization::new(
                self.disk.clone(),
                self.pool.clone(),
            )),
            OrganizationKind::Primary => Organization::Primary(PrimaryOrganization::new(
                self.disk.clone(),
                self.pool.clone(),
            )),
            OrganizationKind::Cluster => {
                let config = if options.restricted_buddy {
                    ClusterConfig::restricted_buddy(options.smax_bytes)
                } else {
                    ClusterConfig::plain(options.smax_bytes)
                };
                Organization::Cluster(ClusterOrganization::new(
                    self.disk.clone(),
                    self.pool.clone(),
                    config,
                ))
            }
        };
        SpatialDatabase {
            org,
            technique: options.technique,
            geometry: HashMap::new(),
        }
    }
}

/// A spatial database: an organization model plus the exact geometry used
/// for query refinement.
pub struct SpatialDatabase {
    org: Organization,
    technique: WindowTechnique,
    geometry: HashMap<u64, DecomposedPolyline>,
}

impl SpatialDatabase {
    /// Insert a polyline object under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already present.
    pub fn insert_polyline(&mut self, id: u64, line: Polyline) {
        assert!(
            !self.geometry.contains_key(&id),
            "object {id} already stored"
        );
        let rec = ObjectRecord::new(ObjectId(id), line.mbr(), line.serialized_size() as u32);
        self.org.insert(&rec);
        self.geometry.insert(id, DecomposedPolyline::new(line));
    }

    /// Delete an object. Returns `false` when `id` was not stored.
    /// Insertions and deletions can be intermixed with queries without
    /// any global reorganization (§4.1 of the paper).
    pub fn remove(&mut self, id: u64) -> bool {
        let removed = self.org.delete(ObjectId(id));
        if removed {
            self.geometry.remove(&id);
        }
        removed
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.org.num_objects()
    }

    /// `true` if the database is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Window query with exact refinement: ids of all objects sharing a
    /// point with `window`, sorted ascending.
    pub fn window_query(&mut self, window: &Rect) -> Vec<u64> {
        let technique = self.technique;
        // Filter step + object transfer, charged to the simulated disk.
        self.org.window_query(window, technique);
        // Refinement on the candidates (the transfer above brought their
        // exact representations into memory; CPU cost is not modelled for
        // interactive use).
        let candidates = self
            .org
            .tree()
            .window_entries(window, &mut spatialdb_rtree::NoIo);
        let mut hits: Vec<u64> = candidates
            .iter()
            .filter(|e| self.geometry[&e.oid.0].intersects_rect(window))
            .map(|e| e.oid.0)
            .collect();
        hits.sort_unstable();
        hits
    }

    /// Window query returning only the I/O statistics (no refinement) —
    /// the measurement mode of the paper's experiments.
    pub fn window_query_stats(&mut self, window: &Rect) -> QueryStats {
        let technique = self.technique;
        self.org.window_query(window, technique)
    }

    /// Point query with exact refinement: ids of all objects containing
    /// `point`, sorted ascending.
    pub fn point_query(&mut self, point: &Point) -> Vec<u64> {
        self.org.point_query(point);
        let candidates = self
            .org
            .tree()
            .point_entries(point, &mut spatialdb_rtree::NoIo);
        let mut hits: Vec<u64> = candidates
            .iter()
            .filter(|e| self.geometry[&e.oid.0].polyline().contains_point(point))
            .map(|e| e.oid.0)
            .collect();
        hits.sort_unstable();
        hits
    }

    /// Accumulated I/O statistics of the workspace disk.
    pub fn io_stats(&self) -> IoStats {
        self.org.disk().stats()
    }

    /// Total pages occupied on the simulated disk.
    pub fn occupied_pages(&self) -> u64 {
        self.org.occupied_pages()
    }

    /// Occupied storage in megabytes.
    pub fn occupied_mb(&self) -> f64 {
        (self.occupied_pages() * PAGE_SIZE as u64) as f64 / (1024.0 * 1024.0)
    }

    /// Write back dirty pages and prepare for cold queries.
    pub fn finish_loading(&mut self) {
        self.org.flush();
        self.org.begin_query();
    }

    /// Direct access to the organization model (experiments,
    /// diagnostics).
    pub fn organization_mut(&mut self) -> &mut Organization {
        &mut self.org
    }

    /// Which organization model this database uses.
    pub fn kind(&self) -> OrganizationKind {
        self.org.kind()
    }

    /// The exact geometry of an object, if stored.
    pub fn geometry(&self, id: u64) -> Option<&DecomposedPolyline> {
        self.geometry.get(&id)
    }
}

/// Complete intersection join of two databases of the same workspace:
/// returns the exact intersecting pairs plus the cost breakdown of §6.3.
pub fn spatial_join(
    left: &mut SpatialDatabase,
    right: &mut SpatialDatabase,
    config: JoinConfig,
) -> (Vec<(u64, u64)>, JoinStats) {
    let (pairs, stats) = SpatialJoin::new(&mut left.org, &mut right.org).run_with_pairs(config);
    // Exact refinement of the candidate pairs on the decomposed
    // representations.
    let mut result: Vec<(u64, u64)> = pairs
        .iter()
        .filter(|(a, b)| left.geometry[&a.0].intersects(&right.geometry[&b.0]))
        .map(|(a, b)| (a.0, b.0))
        .collect();
    result.sort_unstable();
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn street(x: f64, y: f64) -> Polyline {
        Polyline::new(vec![
            Point::new(x, y),
            Point::new(x + 0.01, y + 0.005),
            Point::new(x + 0.02, y),
        ])
    }

    #[test]
    fn insert_and_query_all_kinds() {
        for kind in [
            OrganizationKind::Secondary,
            OrganizationKind::Primary,
            OrganizationKind::Cluster,
        ] {
            let ws = Workspace::new(256);
            let mut db = ws.create_database(DbOptions::new(kind));
            for i in 0..50u64 {
                db.insert_polyline(i, street((i % 10) as f64 / 10.0, (i / 10) as f64 / 10.0));
            }
            db.finish_loading();
            assert_eq!(db.len(), 50);
            let hits = db.window_query(&Rect::new(0.0, 0.0, 0.25, 0.25));
            assert!(!hits.is_empty(), "{kind:?}");
            // Exact refinement: every reported object really intersects.
            for id in &hits {
                assert!(db
                    .geometry(*id)
                    .unwrap()
                    .intersects_rect(&Rect::new(0.0, 0.0, 0.25, 0.25)));
            }
        }
    }

    #[test]
    fn point_query_exact() {
        let ws = Workspace::new(256);
        let mut db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
        db.insert_polyline(7, street(0.5, 0.5));
        db.finish_loading();
        // On the first vertex.
        assert_eq!(db.point_query(&Point::new(0.5, 0.5)), vec![7]);
        // Inside the MBR but off the line.
        assert!(db.point_query(&Point::new(0.505, 0.0049)).is_empty());
    }

    #[test]
    #[should_panic(expected = "already stored")]
    fn duplicate_id_rejected() {
        let ws = Workspace::new(64);
        let mut db = ws.create_database(DbOptions::new(OrganizationKind::Secondary));
        db.insert_polyline(1, street(0.1, 0.1));
        db.insert_polyline(1, street(0.2, 0.2));
    }

    #[test]
    fn join_of_two_databases() {
        let ws = Workspace::new(512);
        let mut a = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
        let mut b = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
        for i in 0..30u64 {
            a.insert_polyline(i, street((i % 6) as f64 / 6.0, (i / 6) as f64 / 6.0));
            // Same layout shifted slightly: many crossings.
            b.insert_polyline(i, street((i % 6) as f64 / 6.0 + 0.005, (i / 6) as f64 / 6.0));
        }
        a.finish_loading();
        b.finish_loading();
        let (pairs, stats) = spatial_join(&mut a, &mut b, JoinConfig::default());
        assert!(stats.mbr_pairs > 0);
        assert!(!pairs.is_empty());
        assert!(pairs.len() as u64 <= stats.mbr_pairs, "refinement filters");
    }

    #[test]
    fn remove_intermixed_with_queries() {
        let ws = Workspace::new(256);
        let mut db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
        for i in 0..60u64 {
            db.insert_polyline(i, street((i % 10) as f64 / 10.0, (i / 10) as f64 / 10.0));
        }
        db.finish_loading();
        assert!(db.remove(5));
        assert!(!db.remove(5));
        let all = Rect::new(-1.0, -1.0, 2.0, 2.0);
        let hits = db.window_query(&all);
        assert_eq!(hits.len(), 59);
        assert!(!hits.contains(&5));
        // Re-insert under the same id after removal.
        db.insert_polyline(5, street(0.9, 0.9));
        assert_eq!(db.window_query(&all).len(), 60);
    }

    #[test]
    fn io_accounting_visible() {
        let ws = Workspace::new(64);
        let mut db = ws.create_database(DbOptions::new(OrganizationKind::Secondary));
        for i in 0..20u64 {
            db.insert_polyline(i, street((i % 5) as f64 / 5.0, (i / 5) as f64 / 5.0));
        }
        db.finish_loading();
        let s = db.io_stats();
        assert!(s.write_requests > 0);
        assert!(db.occupied_pages() > 0);
        assert!(db.occupied_mb() > 0.0);
    }
}

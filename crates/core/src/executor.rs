//! The parallel query executor.
//!
//! The engine splits a query into the paper's two steps, and they
//! parallelize very differently:
//!
//! * the **filter step** (R\*-tree walk + object transfer) charges the
//!   simulated disk — a single arm with one LRU buffer. Its cost model
//!   is inherently serial: which accesses become requests depends on the
//!   exact order pages enter the shared buffer. The executor therefore
//!   issues the filter steps of a batch **in submission order** on the
//!   calling thread, which makes the per-query and aggregate
//!   [`QueryStats`]/[`IoStats`] *identical* to running the same queries
//!   sequentially — deterministic at every thread count.
//! * the **refinement step** (exact geometry tests) is pure CPU over
//!   immutable state, and is fanned across a scoped thread pool.
//!
//! Entry points: [`Query::run_par`](crate::query::Query::run_par) for
//! one query, [`Workspace::run_batch`](crate::db::Workspace::run_batch)
//! for a batch (the queries may target different databases — anything
//! `Send + Sync`, which every [`SpatialStore`](spatialdb_storage::SpatialStore)
//! is).

use crate::query::{candidate_ids, execute_filter, refined_geometry, Query, Target};
use spatialdb_disk::IoStats;
use spatialdb_rtree::LeafEntry;
use spatialdb_storage::QueryStats;

/// Materialized result of one query executed by the parallel executor.
///
/// Carries exactly what the sequential
/// [`ResultCursor`](crate::query::ResultCursor) would have produced:
/// the refined ids in ascending order and the per-query cost deltas.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    ids: Vec<u64>,
    stats: QueryStats,
    io: IoStats,
}

impl QueryOutcome {
    /// The exact answers (ids of objects surviving refinement), sorted
    /// ascending — byte-identical to the sequential cursor's
    /// [`ids`](crate::query::ResultCursor::ids).
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Consume the outcome, returning the sorted ids.
    pub fn into_ids(self) -> Vec<u64> {
        self.ids
    }

    /// Filter-step statistics of this query alone.
    pub fn stats(&self) -> QueryStats {
        self.stats
    }

    /// Detailed I/O counters of this query alone.
    pub fn io_stats(&self) -> IoStats {
        self.io
    }
}

/// Results of a batch run: one [`QueryOutcome`] per submitted query, in
/// submission order, plus deterministic aggregates.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    outcomes: Vec<QueryOutcome>,
}

impl BatchOutcome {
    /// Per-query outcomes in submission order.
    pub fn outcomes(&self) -> &[QueryOutcome] {
        &self.outcomes
    }

    /// Number of queries executed.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// `true` if the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Aggregate [`QueryStats`] accumulated in submission order —
    /// identical to accumulating the stats of a sequential loop over the
    /// same queries (same values, same floating-point summation order).
    pub fn aggregate_stats(&self) -> QueryStats {
        let mut total = QueryStats::default();
        for o in &self.outcomes {
            total.accumulate(&o.stats);
        }
        total
    }

    /// Aggregate I/O counters, summed in submission order.
    pub fn aggregate_io(&self) -> IoStats {
        let mut total = IoStats::new();
        for o in &self.outcomes {
            total = total.plus(&o.io);
        }
        total
    }
}

impl IntoIterator for BatchOutcome {
    type Item = QueryOutcome;
    type IntoIter = std::vec::IntoIter<QueryOutcome>;

    fn into_iter(self) -> Self::IntoIter {
        self.outcomes.into_iter()
    }
}

/// One query after its filter step: everything refinement needs.
struct Prepared<'a> {
    db: &'a crate::db::SpatialDatabase,
    target: Target,
    /// Sorted candidate ids from the warm directory (no I/O charged).
    candidates: Vec<u64>,
    stats: QueryStats,
    io: IoStats,
}

/// Execute the filter steps in submission order on the calling thread,
/// reusing one candidate scratch buffer across the whole batch. Both
/// the filter execution and the candidate re-read are the cursor path's
/// own helpers ([`execute_filter`], [`candidate_ids`]), so the executor
/// cannot drift from `Query::run`.
fn filter_phase(queries: Vec<Query<'_>>) -> Vec<Prepared<'_>> {
    let mut scratch: Vec<LeafEntry> = Vec::new();
    queries
        .into_iter()
        .map(|q| {
            let db = q.db;
            let target = q
                .target
                .expect("Query::run() needs .window(..) or .point(..) first");
            let technique = q.technique.unwrap_or(db.technique);
            let (stats, io) = execute_filter(db, &target, technique);
            let candidates = candidate_ids(db, &target, &mut scratch);
            Prepared {
                db,
                target,
                candidates,
                stats,
                io,
            }
        })
        .collect()
}

/// Refine a slice of sorted candidate ids with the cursor path's
/// [`refined_geometry`] predicate.
fn refine(db: &crate::db::SpatialDatabase, target: &Target, candidates: &[u64]) -> Vec<u64> {
    candidates
        .iter()
        .copied()
        .filter(|&id| refined_geometry(db, target, id).is_some())
        .collect()
}

/// Run a batch: serial deterministic filter phase, then refinement
/// fanned across `n_threads` scoped worker threads (contiguous chunks of
/// the batch, merged back in submission order).
pub fn run_batch(queries: Vec<Query<'_>>, n_threads: usize) -> BatchOutcome {
    let prepared = filter_phase(queries);
    if prepared.is_empty() {
        return BatchOutcome {
            outcomes: Vec::new(),
        };
    }
    let threads = n_threads.clamp(1, prepared.len());
    let per = prepared.len().div_ceil(threads);
    let refined: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = prepared
            .chunks(per)
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|p| refine(p.db, &p.target, &p.candidates))
                        .collect::<Vec<Vec<u64>>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("refinement worker panicked"))
            .collect()
    });
    let outcomes = prepared
        .into_iter()
        .zip(refined)
        .map(|(p, ids)| QueryOutcome {
            ids,
            stats: p.stats,
            io: p.io,
        })
        .collect();
    BatchOutcome { outcomes }
}

/// Run one query with its refinement partitioned across `n_threads`
/// (contiguous chunks of the sorted candidate list — concatenation
/// preserves the ascending id order).
pub(crate) fn run_one_par(query: Query<'_>, n_threads: usize) -> QueryOutcome {
    let mut prepared = filter_phase(vec![query]);
    let p = prepared.pop().expect("one query in, one prepared out");
    if p.candidates.is_empty() {
        return QueryOutcome {
            ids: Vec::new(),
            stats: p.stats,
            io: p.io,
        };
    }
    let threads = n_threads.clamp(1, p.candidates.len());
    let per = p.candidates.len().div_ceil(threads);
    let ids: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = p
            .candidates
            .chunks(per)
            .map(|chunk| scope.spawn(|| refine(p.db, &p.target, chunk)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("refinement worker panicked"))
            .collect()
    });
    QueryOutcome {
        ids,
        stats: p.stats,
        io: p.io,
    }
}

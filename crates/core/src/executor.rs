//! The parallel query executor.
//!
//! The engine splits a query into the paper's two steps, and they
//! parallelize very differently:
//!
//! * the **filter step** (R\*-tree walk + object transfer) charges the
//!   simulated disk — a single arm with one LRU buffer. Its cost model
//!   is inherently serial: which accesses become requests depends on the
//!   exact order pages enter the shared buffer. The executor therefore
//!   issues the filter steps of a batch **in submission order** on the
//!   calling thread by default, which makes the per-query and aggregate
//!   [`QueryStats`]/[`IoStats`] *identical* to running the same queries
//!   sequentially — deterministic at every thread count.
//! * the **refinement step** (exact geometry tests) is pure CPU over
//!   immutable state, and is fanned across a scoped thread pool.
//!
//! Since the buffer pool is sharded
//! ([`ShardedPool`](spatialdb_disk::ShardedPool)), the filter steps *can*
//! also overlap: [`FilterMode::Overlapped`] fans whole queries
//! (filter + refinement) across the worker pool. Per-query deltas stay
//! exact — each worker measures against its own thread-local I/O tally —
//! and queries whose page sets hash to **disjoint shards** proceed
//! without ever contending, producing the same hit/miss classification
//! as the serialized order. Queries that do share pages may interleave
//! in the shared LRU state, so aggregate `io_ms` is
//! schedule-dependent; with `n_threads <= 1` the overlapped mode
//! degenerates to submission order and stays byte-deterministic (the
//! single-thread path). Use the default [`FilterMode::Serialized`]
//! whenever reproducing the paper's figures.
//!
//! Entry points: [`Query::run_par`](crate::query::Query::run_par) for
//! one query, and [`Workspace::run_batch`](crate::db::Workspace::run_batch)
//! for a batch (the queries may target different databases — anything
//! `Send + Sync`, which every [`SpatialStore`](spatialdb_storage::SpatialStore)
//! is). An [`ExecPlan`] picks the thread count and [`FilterMode`];
//! a bare thread count (`run_batch(queries, 8)`) is the serialized
//! deterministic default.

use crate::query::{
    candidate_ids, execute_filter, execute_filter_traced, refined_geometry, Query, Target,
};
use spatialdb_disk::{
    simulate_queries_closed, simulate_queries_striped, ArmGeometry, ArmPolicy, ArmStats,
    ArrayConfig, IoStats, LatencyStats, PageRequest, QueryTrace, RotationModel, StripePolicy,
};
use spatialdb_rtree::LeafEntry;
use spatialdb_storage::QueryStats;

/// Materialized result of one query executed by the parallel executor.
///
/// Carries exactly what the sequential
/// [`ResultCursor`](crate::query::ResultCursor) would have produced:
/// the refined ids in ascending order and the per-query cost deltas.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    ids: Vec<u64>,
    stats: QueryStats,
    io: IoStats,
    latency: Option<LatencyStats>,
}

impl QueryOutcome {
    /// The exact answers (ids of objects surviving refinement), sorted
    /// ascending — byte-identical to the sequential cursor's
    /// [`ids`](crate::query::ResultCursor::ids).
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Consume the outcome, returning the sorted ids.
    pub fn into_ids(self) -> Vec<u64> {
        self.ids
    }

    /// Filter-step statistics of this query alone.
    pub fn stats(&self) -> QueryStats {
        self.stats
    }

    /// Detailed I/O counters of this query alone.
    pub fn io_stats(&self) -> IoStats {
        self.io
    }

    /// Simulated latency of this query under the disk-arm scheduler —
    /// present only for batches run under
    /// [`FilterMode::OverlappedIo`] (queue wait, service and completion
    /// time in simulated ms).
    pub fn latency_stats(&self) -> Option<LatencyStats> {
        self.latency
    }
}

/// Results of a batch run: one [`QueryOutcome`] per submitted query, in
/// submission order, plus deterministic aggregates.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    outcomes: Vec<QueryOutcome>,
    arm_stats: Vec<ArmStats>,
    inter_arrival_ms: f64,
}

impl BatchOutcome {
    /// Per-query outcomes in submission order.
    pub fn outcomes(&self) -> &[QueryOutcome] {
        &self.outcomes
    }

    /// Per-arm cumulative statistics of the simulated disk array
    /// (utilization, mean queue depth), indexed by arm — non-empty only
    /// for batches run under [`FilterMode::OverlappedIo`].
    pub fn arm_stats(&self) -> &[ArmStats] {
        &self.arm_stats
    }

    /// The open-arrival spacing the timed run actually used: query *i*
    /// arrived at `i · inter_arrival_ms` on the simulated clock. Derived
    /// from the batch's own mean service time under
    /// [`Arrival::Open`]; `0.0` for untimed batches and closed bursts.
    pub fn inter_arrival_ms(&self) -> f64 {
        self.inter_arrival_ms
    }

    /// Number of queries executed.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// `true` if the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Aggregate [`QueryStats`] accumulated in submission order —
    /// identical to accumulating the stats of a sequential loop over the
    /// same queries (same values, same floating-point summation order).
    pub fn aggregate_stats(&self) -> QueryStats {
        let mut total = QueryStats::default();
        for o in &self.outcomes {
            total.accumulate(&o.stats);
        }
        total
    }

    /// Aggregate I/O counters, summed in submission order.
    pub fn aggregate_io(&self) -> IoStats {
        let mut total = IoStats::new();
        for o in &self.outcomes {
            total = total.plus(&o.io);
        }
        total
    }
}

impl IntoIterator for BatchOutcome {
    type Item = QueryOutcome;
    type IntoIter = std::vec::IntoIter<QueryOutcome>;

    fn into_iter(self) -> Self::IntoIter {
        self.outcomes.into_iter()
    }
}

/// One query after its filter step: everything refinement needs.
struct Prepared<'a> {
    db: &'a crate::db::SpatialDatabase,
    target: Target,
    /// Sorted candidate ids from the warm directory (no I/O charged).
    candidates: Vec<u64>,
    stats: QueryStats,
    io: IoStats,
    /// Captured request trace (only under [`FilterMode::OverlappedIo`]).
    trace: Vec<PageRequest>,
}

/// Execute one query's filter step and candidate re-read. Both are the
/// cursor path's own helpers ([`execute_filter`], [`candidate_ids`]),
/// and both the serialized and the overlapped scheduling go through
/// this one function — neither executor path can drift from
/// `Query::run` or from each other.
/// With `traced`, the filter step goes through the stores' batched read
/// path ([`SpatialStore::window_query_traced`](spatialdb_storage::SpatialStore::window_query_traced)):
/// the same synchronous execution — identical answers, stats and charged
/// I/O — additionally capturing the disk requests for replay through the
/// arm scheduler.
fn prepare_one<'a>(q: Query<'a>, scratch: &mut Vec<LeafEntry>, traced: bool) -> Prepared<'a> {
    let db = q.db;
    let target = q
        .target
        .expect("Query::run() needs .window(..) or .point(..) first");
    let technique = q.technique.unwrap_or(db.technique);
    // One pinned snapshot across the filter step and the candidate
    // re-read: a writer publishing between the two cannot desynchronize
    // the candidate set from the charged I/O.
    let store = db.store();
    let (stats, io, trace) = if traced {
        execute_filter_traced(&*store, &target, technique)
    } else {
        let (stats, io) = execute_filter(&*store, &target, technique);
        (stats, io, Vec::new())
    };
    let candidates = candidate_ids(&*store, &target, scratch);
    Prepared {
        db,
        target,
        candidates,
        stats,
        io,
        trace,
    }
}

/// Execute the filter steps in submission order on the calling thread,
/// reusing one candidate scratch buffer across the whole batch.
fn filter_phase(queries: Vec<Query<'_>>) -> Vec<Prepared<'_>> {
    let mut scratch: Vec<LeafEntry> = Vec::new();
    queries
        .into_iter()
        .map(|q| prepare_one(q, &mut scratch, false))
        .collect()
}

/// Refine a slice of sorted candidate ids with the cursor path's
/// [`refined_geometry`] predicate.
fn refine(db: &crate::db::SpatialDatabase, target: &Target, candidates: &[u64]) -> Vec<u64> {
    candidates
        .iter()
        .copied()
        .filter(|&id| refined_geometry(db, target, id).is_some())
        .collect()
}

/// When the queries of a timed batch arrive on the simulated clock
/// (the arrival process of [`FilterMode::OverlappedIo`]).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum Arrival {
    /// All queries arrive at time 0 — a closed burst with maximal
    /// queueing. The default.
    #[default]
    Burst,
    /// Fixed spacing: query *i* arrives at `i ·` the given milliseconds.
    Every(f64),
    /// Open arrivals at a load factor: the spacing is the batch's own
    /// mean synchronous service time (`Σ io_ms / n`, measured during the
    /// traced filter phase) divided by the load. `Open(1.0)` keeps the
    /// arm saturated on average; lower loads thin the queue. The factor
    /// must be positive.
    Open(f64),
    /// A closed loop of `clients` concurrent clients, each issuing its
    /// next query `think_ms` after its previous one **completes**:
    /// arrivals self-throttle under load, producing the classic
    /// response-time-vs-clients curve
    /// ([`simulate_queries_closed`](spatialdb_disk::simulate_queries_closed)).
    Closed {
        /// Concurrent clients (0 is treated as 1). Client `c` issues
        /// queries `c, c + clients, c + 2·clients, …` of the batch.
        clients: usize,
        /// Think time between a query's completion and the same
        /// client's next arrival (simulated ms).
        think_ms: f64,
    },
}

impl Arrival {
    /// Open arrivals at `load` (see [`Arrival::Open`]).
    pub fn open(load: f64) -> Self {
        assert!(load > 0.0, "arrival load factor must be positive");
        Arrival::Open(load)
    }

    /// Fixed spacing of `ms` simulated milliseconds between arrivals.
    pub fn every_ms(ms: f64) -> Self {
        assert!(ms >= 0.0, "arrival spacing must be non-negative");
        Arrival::Every(ms)
    }

    /// A closed loop of `clients` clients with `think_ms` think time
    /// (see [`Arrival::Closed`]).
    pub fn closed(clients: usize, think_ms: f64) -> Self {
        assert!(clients > 0, "a closed loop needs at least one client");
        assert!(think_ms >= 0.0, "think time must be non-negative");
        Arrival::Closed { clients, think_ms }
    }

    /// The inter-arrival spacing in ms, given the batch's mean
    /// synchronous service time. Closed loops have no fixed spacing
    /// (arrivals chain off completions), so they report 0 like bursts.
    fn spacing_ms(&self, mean_service_ms: f64) -> f64 {
        match *self {
            Arrival::Burst | Arrival::Closed { .. } => 0.0,
            Arrival::Every(ms) => ms,
            Arrival::Open(load) => {
                assert!(load > 0.0, "arrival load factor must be positive");
                mean_service_ms / load
            }
        }
    }
}

/// Configuration of the overlapped-I/O filter mode
/// ([`FilterMode::OverlappedIo`]): how deep each query's submission
/// window is, how the arms order outstanding requests, and how fast
/// queries arrive.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct OverlapConfig {
    /// Maximum requests one query keeps outstanding on the arm: its
    /// first `depth` requests are submitted at arrival, each completion
    /// releases the next. Depth 1 reproduces the synchronous request
    /// order.
    pub depth: usize,
    /// Arm scheduling policy across the queries' outstanding requests.
    pub policy: ArmPolicy,
    /// The arrival process stamping each query's arrival time.
    pub arrival: Arrival,
    /// Number of independent disk arms the simulated array declusters
    /// regions across (0 is treated as 1). With 1 arm (the default) the
    /// timeline is byte-identical to the single-arm scheduler whatever
    /// the stripe policy.
    pub arms: usize,
    /// How regions map to arms (see
    /// [`StripePolicy`](spatialdb_disk::StripePolicy)).
    pub stripe: StripePolicy,
    /// Rotational-latency model of the arms' timelines (the charged
    /// accounting always stays on the flat §5.1 average).
    pub rotation: RotationModel,
}

impl Default for OverlapConfig {
    fn default() -> Self {
        OverlapConfig {
            depth: 4,
            policy: ArmPolicy::Elevator,
            arrival: Arrival::Burst,
            arms: 1,
            stripe: StripePolicy::RoundRobin,
            rotation: RotationModel::FlatAverage,
        }
    }
}

/// How a batch's filter steps are scheduled (the refinement step always
/// fans across the worker pool).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum FilterMode {
    /// Issue the filter steps in submission order on the calling
    /// thread: per-query and aggregate stats are byte-identical to
    /// sequential execution at every thread count. The default, and
    /// the mode every paper figure runs under.
    #[default]
    Serialized,
    /// Fan whole queries (filter + refinement) across the worker pool.
    /// Per-query deltas stay exact (thread-local tallies); queries
    /// whose page sets hit disjoint shards of the
    /// [`ShardedPool`](spatialdb_disk::ShardedPool) never contend and
    /// classify hits/misses as in submission order, while overlapping
    /// page sets make the aggregate `io_ms` schedule-dependent. With
    /// `n_threads <= 1` this degenerates to the serialized order
    /// (deterministic single-thread path).
    Overlapped,
    /// The overlapped-I/O mode: filter steps execute in submission
    /// order through the stores' **batched read path** (answers,
    /// `QueryStats` and charged `IoStats` byte-identical to
    /// [`Serialized`](FilterMode::Serialized)), each query's captured
    /// requests are replayed through the **disk-arm scheduler** with a
    /// depth-*k* submission window under an open-arrival workload, and
    /// the per-query [`LatencyStats`] land on the outcomes
    /// ([`QueryOutcome::latency_stats`]). The refinement CPU runs on
    /// the worker pool **while** this thread computes the simulated-I/O
    /// timeline. Deterministic at every thread count.
    OverlappedIo(OverlapConfig),
}

/// How a batch executes: worker-thread count plus [`FilterMode`].
///
/// The one argument of [`run_batch`] (and of
/// [`Workspace::run_batch`](crate::db::Workspace::run_batch)). A bare
/// `usize` converts into the serialized deterministic default, so
/// `run_batch(queries, 8)` keeps working:
///
/// ```
/// use spatialdb::executor::{ExecPlan, OverlapConfig};
///
/// let deterministic = ExecPlan::threads(8);
/// let concurrent = ExecPlan::threads(8).overlapped();
/// let timed = ExecPlan::threads(8).timed(OverlapConfig::default());
/// # let _ = (deterministic, concurrent, timed);
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ExecPlan {
    /// Worker threads for the refinement fan (and, under
    /// [`FilterMode::Overlapped`], the filter fan).
    pub threads: usize,
    /// How the filter steps are scheduled.
    pub mode: FilterMode,
}

impl ExecPlan {
    /// A serialized (deterministic) plan on `n` worker threads.
    pub fn threads(n: usize) -> Self {
        ExecPlan {
            threads: n,
            mode: FilterMode::Serialized,
        }
    }

    /// Fan whole queries (filter + refinement) across the workers
    /// ([`FilterMode::Overlapped`]).
    #[must_use]
    pub fn overlapped(mut self) -> Self {
        self.mode = FilterMode::Overlapped;
        self
    }

    /// Replay the filter steps through the disk-arm scheduler
    /// ([`FilterMode::OverlappedIo`]), attaching per-query
    /// [`LatencyStats`] to the outcomes.
    #[must_use]
    pub fn timed(mut self, cfg: OverlapConfig) -> Self {
        self.mode = FilterMode::OverlappedIo(cfg);
        self
    }
}

impl Default for ExecPlan {
    fn default() -> Self {
        ExecPlan::threads(1)
    }
}

impl From<usize> for ExecPlan {
    fn from(n_threads: usize) -> Self {
        ExecPlan::threads(n_threads)
    }
}

/// Run a batch under an [`ExecPlan`] (a bare thread count converts to
/// the serialized deterministic default): filter phase per the plan's
/// [`FilterMode`], then refinement fanned across the plan's worker
/// threads (contiguous chunks of the batch, merged back in submission
/// order).
pub fn run_batch(queries: Vec<Query<'_>>, plan: impl Into<ExecPlan>) -> BatchOutcome {
    let plan = plan.into();
    match plan.mode {
        // Overlapped scheduling only differs once two workers exist;
        // at one thread the serialized path *is* the overlap order,
        // which keeps the single-thread path deterministic.
        FilterMode::Overlapped if plan.threads > 1 => run_batch_overlapped(queries, plan.threads),
        FilterMode::OverlappedIo(cfg) => run_batch_overlapped_io(queries, plan.threads, cfg),
        _ => run_batch_serialized(queries, plan.threads),
    }
}

/// Run a batch under an explicit [`FilterMode`].
#[deprecated(
    since = "0.1.0",
    note = "use run_batch(queries, ExecPlan { threads, mode })"
)]
pub fn run_batch_with(queries: Vec<Query<'_>>, n_threads: usize, mode: FilterMode) -> BatchOutcome {
    run_batch(
        queries,
        ExecPlan {
            threads: n_threads,
            mode,
        },
    )
}

/// The overlapped-I/O batch runner (see [`FilterMode::OverlappedIo`]):
/// serialized traced filter phase, then the shared tail with the
/// arm-timeline simulation.
fn run_batch_overlapped_io(
    queries: Vec<Query<'_>>,
    n_threads: usize,
    cfg: OverlapConfig,
) -> BatchOutcome {
    if queries.is_empty() {
        return BatchOutcome {
            outcomes: Vec::new(),
            arm_stats: Vec::new(),
            inter_arrival_ms: 0.0,
        };
    }
    // The timed mode is the one mode with cross-query shared state (one
    // disk array, one set of DiskParams), so it must hold even when
    // called directly rather than through `Workspace::run_batch`.
    let disk = queries[0].db.store().disk();
    for (i, q) in queries.iter().enumerate() {
        assert!(
            std::sync::Arc::ptr_eq(&q.db.store().disk(), &disk),
            "query {i} targets a database of another workspace; \
             a timed batch simulates one disk array"
        );
    }
    let params = disk.params();
    let mut scratch: Vec<LeafEntry> = Vec::new();
    let prepared: Vec<Prepared<'_>> = queries
        .into_iter()
        .map(|q| prepare_one(q, &mut scratch, true))
        .collect();
    finish_batch(prepared, n_threads, Some((params, cfg)))
}

/// The shared tail of the serialized and timed paths: fan refinement
/// across the worker pool — optionally replaying the captured request
/// traces through the disk-arm scheduler on the calling thread
/// *meanwhile* — then zip the outcomes back in submission order.
fn finish_batch(
    mut prepared: Vec<Prepared<'_>>,
    n_threads: usize,
    timing: Option<(spatialdb_disk::DiskParams, OverlapConfig)>,
) -> BatchOutcome {
    if prepared.is_empty() {
        return BatchOutcome {
            outcomes: Vec::new(),
            arm_stats: Vec::new(),
            inter_arrival_ms: 0.0,
        };
    }
    // The open-arrival spacing comes from the batch's own traced filter
    // phase: mean synchronous service time over the load factor,
    // accumulated in submission order (the same summation order as a
    // sequential loop, so the figure is bit-reproducible).
    let spacing = timing.as_ref().map_or(0.0, |(_, cfg)| {
        let mean = prepared.iter().map(|p| p.stats.io_ms).sum::<f64>() / prepared.len() as f64;
        cfg.arrival.spacing_ms(mean)
    });
    let traces: Vec<QueryTrace> = if timing.is_some() {
        prepared
            .iter_mut()
            .enumerate()
            .map(|(i, p)| QueryTrace {
                arrival_ms: i as f64 * spacing,
                // The trace is only needed by the simulation — move it
                // out instead of copying every request.
                requests: std::mem::take(&mut p.trace),
            })
            .collect()
    } else {
        Vec::new()
    };
    let threads = n_threads.clamp(1, prepared.len());
    let per = prepared.len().div_ceil(threads);
    let (refined, timed) = std::thread::scope(|scope| {
        let handles: Vec<_> = prepared
            .chunks(per)
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|p| refine(p.db, &p.target, &p.candidates))
                        .collect::<Vec<Vec<u64>>>()
                })
            })
            .collect();
        // Refinement CPU overlaps with the simulated I/O: the workers
        // grind exact-geometry tests while this thread schedules the
        // depth-k request windows on the array's arms.
        let timed = timing.map(|(params, cfg)| {
            let array = ArrayConfig {
                arms: cfg.arms,
                stripe: cfg.stripe,
                policy: cfg.policy,
                rotation: cfg.rotation,
            };
            match cfg.arrival {
                Arrival::Closed { clients, think_ms } => simulate_queries_closed(
                    params,
                    ArmGeometry::default(),
                    array,
                    cfg.depth,
                    clients,
                    think_ms,
                    &traces,
                ),
                _ => simulate_queries_striped(
                    params,
                    ArmGeometry::default(),
                    array,
                    cfg.depth,
                    &traces,
                ),
            }
        });
        let refined: Vec<Vec<u64>> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("refinement worker panicked"))
            .collect();
        (refined, timed)
    });
    let (latency, arm_stats) = match timed {
        Some((latency, arm_stats)) => (latency.into_iter().map(Some).collect(), arm_stats),
        None => (vec![None; prepared.len()], Vec::new()),
    };
    let outcomes = prepared
        .into_iter()
        .zip(refined)
        .zip(latency)
        .map(|((p, ids), lat)| QueryOutcome {
            ids,
            stats: p.stats,
            io: p.io,
            latency: lat,
        })
        .collect();
    BatchOutcome {
        outcomes,
        arm_stats,
        inter_arrival_ms: spacing,
    }
}

/// Overlapped scheduling: contiguous chunks of the batch, each worker
/// running filter + refinement per query against the shared (sharded)
/// pool, outcomes merged back in submission order. Each worker measures
/// its queries against its own thread-local I/O tally, so the per-query
/// deltas are exact even while the workers charge the same disk
/// concurrently.
fn run_batch_overlapped(queries: Vec<Query<'_>>, n_threads: usize) -> BatchOutcome {
    if queries.is_empty() {
        return BatchOutcome {
            outcomes: Vec::new(),
            arm_stats: Vec::new(),
            inter_arrival_ms: 0.0,
        };
    }
    let threads = n_threads.clamp(1, queries.len());
    let per = queries.len().div_ceil(threads);
    let chunks: Vec<Vec<Query<'_>>> = {
        let mut chunks = Vec::with_capacity(threads);
        let mut rest = queries;
        while !rest.is_empty() {
            let tail = rest.split_off(per.min(rest.len()));
            chunks.push(rest);
            rest = tail;
        }
        chunks
    };
    let outcomes: Vec<QueryOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    let mut scratch: Vec<LeafEntry> = Vec::new();
                    chunk
                        .into_iter()
                        .map(|q| {
                            let p = prepare_one(q, &mut scratch, false);
                            let ids = refine(p.db, &p.target, &p.candidates);
                            QueryOutcome {
                                ids,
                                stats: p.stats,
                                io: p.io,
                                latency: None,
                            }
                        })
                        .collect::<Vec<QueryOutcome>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("overlapped query worker panicked"))
            .collect()
    });
    BatchOutcome {
        outcomes,
        arm_stats: Vec::new(),
        inter_arrival_ms: 0.0,
    }
}

/// Serialized scheduling: deterministic filter phase on the calling
/// thread, then the shared refinement tail.
fn run_batch_serialized(queries: Vec<Query<'_>>, n_threads: usize) -> BatchOutcome {
    finish_batch(filter_phase(queries), n_threads, None)
}

/// Run one query with its refinement partitioned across `n_threads`
/// (contiguous chunks of the sorted candidate list — concatenation
/// preserves the ascending id order).
pub(crate) fn run_one_par(query: Query<'_>, n_threads: usize) -> QueryOutcome {
    let mut prepared = filter_phase(vec![query]);
    let p = prepared.pop().expect("one query in, one prepared out");
    if p.candidates.is_empty() {
        return QueryOutcome {
            ids: Vec::new(),
            stats: p.stats,
            io: p.io,
            latency: None,
        };
    }
    let threads = n_threads.clamp(1, p.candidates.len());
    let per = p.candidates.len().div_ceil(threads);
    let ids: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = p
            .candidates
            .chunks(per)
            .map(|chunk| scope.spawn(|| refine(p.db, &p.target, chunk)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("refinement worker panicked"))
            .collect()
    });
    QueryOutcome {
        ids,
        stats: p.stats,
        io: p.io,
        latency: None,
    }
}

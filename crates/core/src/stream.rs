//! The mixed-stream executor mode: one interleaved stream of reads
//! **and writes**, executed without serial barriers.
//!
//! [`run_stream`] consumes a [`StreamOp`] sequence — window queries,
//! point queries, spatial joins, inserts and deletes, possibly against
//! several databases of one workspace — and executes it under the
//! shadow-paging concurrency model of
//! [`SpatialDatabase`](crate::db::SpatialDatabase):
//!
//! * **Phase A (stream order, calling thread):** every operation's
//!   I/O-charging half runs here, in logical commit order. A query op
//!   pins a snapshot, runs its filter step and re-reads its candidate
//!   ids; a join op pins both operands and runs the MBR join; an
//!   insert/delete commits through the `&self` shadow-paging write path
//!   and publishes a new root. Per-op [`IoStats`] deltas are measured
//!   against the calling thread's local tally, so they are exact and
//!   independent of the worker count.
//! * **Refinement (worker pool, concurrent):** the CPU-bound
//!   exact-geometry tests of each query/join are handed to a shared
//!   work queue the moment its phase-A half completes, and scoped
//!   workers drain the queue **while phase A keeps committing** — a
//!   writer never waits for a reader's refinement, and a reader's
//!   candidates stay consistent because they were fixed under an epoch
//!   pin and deletes only tombstone exact geometry
//!   ([`StableMap`](spatialdb_epoch::StableMap) keeps it addressable).
//!
//! Results are merged back by stream index, so the full
//! [`StreamOutcome`] — answers, per-op stats, per-op I/O — is
//! **byte-identical at any thread count**: determinism comes from
//! phase A's fixed order, not from barriers.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

use crate::db::SpatialDatabase;
use crate::query::{candidate_ids, execute_filter, refine_pair, refined_geometry, Target};
use spatialdb_disk::IoStats;
use spatialdb_geom::{Geometry, Point, Rect};
use spatialdb_join::{JoinConfig, SpatialJoin};
use spatialdb_rtree::{LeafEntry, ObjectId};
use spatialdb_storage::QueryStats;

/// One operation of a mixed read/write stream.
#[derive(Debug)]
pub enum StreamOp<'a> {
    /// A window query: all objects sharing a point with the rectangle.
    Window {
        /// Database to query.
        db: &'a SpatialDatabase,
        /// The query window.
        window: Rect,
    },
    /// A point query: all objects containing the point.
    Point {
        /// Database to query.
        db: &'a SpatialDatabase,
        /// The query point.
        point: Point,
    },
    /// A spatial join between two databases of one workspace (the
    /// default [`JoinConfig`]).
    Join {
        /// Left operand.
        left: &'a SpatialDatabase,
        /// Right operand.
        right: &'a SpatialDatabase,
    },
    /// Insert an object (commits through the `&self` shadow-paging
    /// write path).
    Insert {
        /// Database to insert into.
        db: &'a SpatialDatabase,
        /// New object id (must not be stored yet).
        id: u64,
        /// Exact geometry of the object.
        geometry: Geometry,
    },
    /// Delete an object by id (a miss is recorded, not an error).
    Delete {
        /// Database to delete from.
        db: &'a SpatialDatabase,
        /// Object id to delete.
        id: u64,
    },
}

/// The materialized result of one [`StreamOp`].
#[derive(Clone, Debug)]
pub enum OpOutcome {
    /// A window/point query: refined ids (ascending), filter stats and
    /// this op's exact I/O delta.
    Query {
        /// Exact answers, sorted ascending.
        ids: Vec<u64>,
        /// Filter-step statistics of this query alone.
        stats: QueryStats,
        /// I/O charged by this query alone.
        io: IoStats,
    },
    /// A join: number of exactly-intersecting pairs and the I/O delta
    /// of the MBR join + object transfer.
    Join {
        /// Pairs surviving exact refinement.
        pairs: u64,
        /// I/O charged by this join alone.
        io: IoStats,
    },
    /// An insert commit.
    Insert {
        /// I/O charged by this insert alone.
        io: IoStats,
    },
    /// A delete commit.
    Delete {
        /// Whether the object existed (and was removed).
        existed: bool,
        /// I/O charged by this delete alone.
        io: IoStats,
    },
}

impl OpOutcome {
    /// This operation's exact I/O delta.
    pub fn io_stats(&self) -> IoStats {
        match self {
            OpOutcome::Query { io, .. }
            | OpOutcome::Join { io, .. }
            | OpOutcome::Insert { io }
            | OpOutcome::Delete { io, .. } => *io,
        }
    }

    /// Exact answers this operation produced: refined ids for a query,
    /// refined pairs for a join, 0 for writes.
    pub fn results(&self) -> u64 {
        match self {
            OpOutcome::Query { ids, .. } => ids.len() as u64,
            OpOutcome::Join { pairs, .. } => *pairs,
            OpOutcome::Insert { .. } | OpOutcome::Delete { .. } => 0,
        }
    }
}

/// Results of a mixed stream, one [`OpOutcome`] per op in stream order.
#[derive(Clone, Debug)]
pub struct StreamOutcome {
    outcomes: Vec<OpOutcome>,
}

impl StreamOutcome {
    /// Per-op outcomes in stream order.
    pub fn outcomes(&self) -> &[OpOutcome] {
        &self.outcomes
    }

    /// Number of operations executed.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// `true` if the stream was empty.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Total exact answers across the stream (query ids + join pairs).
    pub fn results(&self) -> u64 {
        self.outcomes.iter().map(OpOutcome::results).sum()
    }

    /// Aggregate I/O, summed in stream order — identical to a
    /// sequential loop's accumulation.
    pub fn aggregate_io(&self) -> IoStats {
        let mut total = IoStats::new();
        for o in &self.outcomes {
            total = total.plus(&o.io_stats());
        }
        total
    }
}

/// A refinement unit: the pure-CPU half of a query or join, detached
/// from phase A the moment its candidates are fixed.
enum RefineJob<'a> {
    Query {
        index: usize,
        db: &'a SpatialDatabase,
        target: Target,
        candidates: Vec<u64>,
    },
    Join {
        index: usize,
        left: &'a SpatialDatabase,
        right: &'a SpatialDatabase,
        pairs: Vec<(ObjectId, ObjectId)>,
    },
}

/// What a worker hands back for a job, keyed by stream index.
enum Refined {
    Ids(Vec<u64>),
    Pairs(u64),
}

/// The shared refinement queue: phase A pushes, workers pop; closing
/// wakes everyone to drain and exit.
struct RefineQueue<'a> {
    state: Mutex<QueueState<'a>>,
    ready: Condvar,
}

struct QueueState<'a> {
    jobs: VecDeque<RefineJob<'a>>,
    closed: bool,
}

impl<'a> RefineQueue<'a> {
    fn new() -> Self {
        RefineQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn locked(&self) -> MutexGuard<'_, QueueState<'a>> {
        // lint: raw-lock-audited — Condvar::wait needs the std guard, which
        // DepMutex does not expose. The queue is strictly leaf-level: no
        // other lock is ever held while pushing, popping, or waiting here
        // (phase A pushes only after its commit/pin released everything).
        self.state.lock().expect("refinement queue poisoned")
    }

    fn push(&self, job: RefineJob<'a>) {
        self.locked().jobs.push_back(job);
        self.ready.notify_one();
    }

    fn close(&self) {
        self.locked().closed = true;
        self.ready.notify_all();
    }

    /// Blocking pop; `None` once the queue is closed and drained.
    fn pop(&self) -> Option<RefineJob<'a>> {
        let mut state = self.locked();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .expect("refinement queue poisoned while waiting");
        }
    }
}

/// Execute a mixed read/write stream on `threads` refinement workers.
///
/// See the [module docs](self) for the execution model. The returned
/// [`StreamOutcome`] is byte-identical at any `threads` value; all
/// databases referenced by the ops should share one workspace (their
/// per-op I/O is measured on the calling thread's tally).
pub fn run_stream(ops: Vec<StreamOp<'_>>, threads: usize) -> StreamOutcome {
    if ops.is_empty() {
        return StreamOutcome {
            outcomes: Vec::new(),
        };
    }
    let workers = threads.max(1);
    let queue = RefineQueue::new();
    let mut outcomes: Vec<OpOutcome> = Vec::with_capacity(ops.len());
    let refined: Vec<(usize, Refined)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    while let Some(job) = queue.pop() {
                        match job {
                            RefineJob::Query {
                                index,
                                db,
                                target,
                                candidates,
                            } => {
                                let ids = candidates
                                    .iter()
                                    .copied()
                                    .filter(|&id| refined_geometry(db, &target, id).is_some())
                                    .collect();
                                done.push((index, Refined::Ids(ids)));
                            }
                            RefineJob::Join {
                                index,
                                left,
                                right,
                                pairs,
                            } => {
                                let n = pairs
                                    .iter()
                                    .filter(|&&(a, b)| refine_pair(left, right, a, b))
                                    .count();
                                done.push((index, Refined::Pairs(n as u64)));
                            }
                        }
                    }
                    done
                })
            })
            .collect();

        // Phase A: stream order on this thread. Every disk charge and
        // every commit happens here, so the per-op deltas cannot depend
        // on the worker count — and every refinement job is live on the
        // queue before the next commit runs, never after a barrier.
        let mut scratch: Vec<LeafEntry> = Vec::new();
        for (index, op) in ops.into_iter().enumerate() {
            match op {
                StreamOp::Window { db, window } => {
                    let o = prepare_query(db, Target::Window(window), index, &mut scratch, &queue);
                    outcomes.push(o);
                }
                StreamOp::Point { db, point } => {
                    let o = prepare_query(db, Target::Point(point), index, &mut scratch, &queue);
                    outcomes.push(o);
                }
                StreamOp::Join { left, right } => {
                    let disk = left.store().disk();
                    let before = disk.local_stats();
                    let pairs = {
                        let (ls, rs) = (left.store(), right.store());
                        SpatialJoin::new(&*ls, &*rs)
                            .run_with_pairs(JoinConfig::default())
                            .0
                    };
                    let io = disk.local_stats().since(&before);
                    outcomes.push(OpOutcome::Join { pairs: 0, io });
                    queue.push(RefineJob::Join {
                        index,
                        left,
                        right,
                        pairs,
                    });
                }
                StreamOp::Insert { db, id, geometry } => {
                    let disk = db.store().disk();
                    let before = disk.local_stats();
                    db.insert(id, geometry);
                    outcomes.push(OpOutcome::Insert {
                        io: disk.local_stats().since(&before),
                    });
                }
                StreamOp::Delete { db, id } => {
                    let disk = db.store().disk();
                    let before = disk.local_stats();
                    let existed = db.remove(id);
                    outcomes.push(OpOutcome::Delete {
                        existed,
                        io: disk.local_stats().since(&before),
                    });
                }
            }
        }
        queue.close();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("stream refinement worker panicked"))
            .collect()
    });
    // Merge the detached refinements back by stream index.
    for (index, result) in refined {
        match (&mut outcomes[index], result) {
            (OpOutcome::Query { ids, .. }, Refined::Ids(v)) => *ids = v,
            (OpOutcome::Join { pairs, .. }, Refined::Pairs(n)) => *pairs = n,
            _ => unreachable!("refinement result kind mismatches its stream op"),
        }
    }
    StreamOutcome { outcomes }
}

/// Phase A of one query op: pin a snapshot, run the filter step, fix
/// the candidate ids, and detach the refinement. Returns the outcome
/// placeholder (ids filled in at merge time).
fn prepare_query<'a>(
    db: &'a SpatialDatabase,
    target: Target,
    index: usize,
    scratch: &mut Vec<LeafEntry>,
    queue: &RefineQueue<'a>,
) -> OpOutcome {
    // One pinned snapshot for the filter step and the candidate re-read;
    // dropped before the next commit so reclamation is never held up by
    // an op that already detached its refinement.
    let store = db.store();
    let (stats, io) = execute_filter(&*store, &target, db.technique);
    let candidates = candidate_ids(&*store, &target, scratch);
    drop(store);
    queue.push(RefineJob::Query {
        index,
        db,
        target,
        candidates,
    });
    OpOutcome::Query {
        ids: Vec::new(),
        stats,
        io,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{DbOptions, Workspace};
    use spatialdb_geom::Polyline;
    use spatialdb_storage::OrganizationKind;

    fn street(x: f64, y: f64) -> Geometry {
        Polyline::new(vec![
            Point::new(x, y),
            Point::new((x + 0.01).min(1.0), (y + 0.005).min(1.0)),
        ])
        .into()
    }

    fn loaded_db(ws: &Workspace, n: u64) -> SpatialDatabase {
        let mut db = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
        for i in 0..n {
            let f = i as f64 / n as f64;
            db.insert(i, street(f * 0.9, (f * 7.0) % 0.9));
        }
        db.finish_loading();
        db
    }

    fn mixed_ops<'a>(db: &'a SpatialDatabase, other: &'a SpatialDatabase) -> Vec<StreamOp<'a>> {
        vec![
            StreamOp::Window {
                db,
                window: Rect::new(0.0, 0.0, 0.6, 0.6),
            },
            StreamOp::Insert {
                db,
                id: 10_000,
                geometry: street(0.5, 0.5),
            },
            StreamOp::Point {
                db,
                point: Point::new(0.305, 0.135),
            },
            StreamOp::Join {
                left: db,
                right: other,
            },
            StreamOp::Delete { db, id: 3 },
            StreamOp::Window {
                db,
                window: Rect::new(0.4, 0.4, 1.0, 1.0),
            },
            StreamOp::Delete { db, id: 999_999 },
        ]
    }

    #[test]
    fn stream_outcome_is_identical_at_any_thread_count() {
        let run = |threads: usize| {
            let ws = Workspace::new(256);
            let a = loaded_db(&ws, 40);
            let b = loaded_db(&ws, 25);
            let out = run_stream(mixed_ops(&a, &b), threads);
            (format!("{out:?}"), out.results(), out.aggregate_io())
        };
        let one = run(1);
        for threads in [2, 8] {
            assert_eq!(one, run(threads), "diverged at {threads} threads");
        }
    }

    #[test]
    fn writes_take_effect_in_stream_order() {
        let ws = Workspace::new(256);
        let a = loaded_db(&ws, 40);
        let b = loaded_db(&ws, 25);
        let out = run_stream(mixed_ops(&a, &b), 4);
        assert_eq!(out.len(), 7);
        // The insert landed before the second window; the delete of id 3
        // happened after the first window (which still saw it).
        let OpOutcome::Query { ids: first, .. } = &out.outcomes()[0] else {
            panic!("op 0 is a window");
        };
        assert!(first.contains(&3), "op 0 predates the delete");
        let OpOutcome::Query { ids: last, .. } = &out.outcomes()[5] else {
            panic!("op 5 is a window");
        };
        assert!(last.contains(&10_000), "op 5 follows the insert");
        assert!(!last.contains(&3), "op 5 follows the delete");
        let OpOutcome::Delete { existed, .. } = out.outcomes()[4] else {
            panic!("op 4 is a delete");
        };
        assert!(existed);
        let OpOutcome::Delete { existed: miss, .. } = out.outcomes()[6] else {
            panic!("op 6 is a delete");
        };
        assert!(!miss, "deleting an unknown id reports a miss");
        assert!(a.geometry(3).is_none());
        assert!(a.geometry(10_000).is_some());
    }

    #[test]
    fn per_op_io_sums_to_the_global_delta() {
        let ws = Workspace::new(256);
        let a = loaded_db(&ws, 40);
        let b = loaded_db(&ws, 25);
        let before = ws.disk().stats();
        let out = run_stream(mixed_ops(&a, &b), 3);
        let global = ws.disk().stats().since(&before);
        let attributed = out.aggregate_io();
        // Integer counters exactly; io_ms within float-summation
        // tolerance (the global counter accumulates in a different
        // association order than the per-op deltas).
        assert_eq!(attributed.read_requests, global.read_requests);
        assert_eq!(attributed.pages_read, global.pages_read);
        assert_eq!(attributed.write_requests, global.write_requests);
        assert_eq!(attributed.pages_written, global.pages_written);
        assert_eq!(attributed.seeks, global.seeks);
        assert_eq!(attributed.latencies, global.latencies);
        assert!((attributed.io_ms - global.io_ms).abs() <= 1e-6 * global.io_ms.abs().max(1.0));
    }
}
